#!/usr/bin/env bash
# Tier-1 verification + the pipeline perf smoke, exactly as CI runs them.
#
#   ./scripts/ci.sh          # tests + smoke benchmark
#   ./scripts/ci.sh tests    # tier-1 tests only
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1: pytest =="
python -m pytest -x -q

if [ "${1:-all}" != "tests" ]; then
  echo "== benchmarks: pipeline smoke (writes BENCH_pipeline.json) =="
  python benchmarks/pipeline_smoke.py
fi
