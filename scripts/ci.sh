#!/usr/bin/env bash
# Tier-1 verification + the CLI smoke + the pipeline perf smoke, exactly as
# CI runs them.
#
#   ./scripts/ci.sh          # tests + CLI smoke + cache smoke + smoke benchmark + serve gate + fuzz gate
#   ./scripts/ci.sh tests    # tier-1 tests only
#   ./scripts/ci.sh bench    # CLI smoke + parser parity + cache smoke + smoke benchmark
#   ./scripts/ci.sh parity   # parser-backend parity suite only
#   ./scripts/ci.sh cache    # persistent cache cross-process smoke only
#   ./scripts/ci.sh serve-gate  # HTTP serving layer load gate only
#   ./scripts/ci.sh fuzz-gate   # differential fuzzer cross-backend gate only
#
# The CLI smoke drives the `python -m repro` service entry point (a full
# four-protocol sweep emitting the JSON wire contract) — a packaging check
# that the api layer is importable and executable outside pytest.
#
# The smoke benchmark writes BENCH_pipeline.json and exits non-zero when a
# headline speedup regresses (parser-backend parity and the indexed
# backend's >=5x cold-parse speedup floor with >30% span-memo reuse,
# cached-vs-cold load/construction, the
# warm-cache sweep re-run — which must add zero parse AND winnow cache
# misses, clear the 4600 sentences/s floor, and reproduce byte-identical
# winnow traces with networkx never imported — the parallel engine sweep,
# the codegen compiled-program cache: a cached compile must stay >10x
# cheaper than a cold one, or the service layer: the serialized run must
# round-trip equal and the warm sweep endpoint must beat the cold
# sequential engine sweep) — see benchmarks/pipeline_smoke.py for the
# exact gates.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

if [ "${1:-all}" = "parity" ]; then
  echo "== parser-backend parity suite =="
  python -m pytest tests/test_parsing.py -q
  exit 0
fi

# Persistent cache cross-process smoke: warm the store from one process,
# then sweep again from a *second* process — the second run must answer
# every parse AND every winnow from disk (zero misses in both layers: the
# warm boot re-runs no CKY chart and no §4.2 check).
cache_smoke() {
  echo "== cache smoke: python -m repro cache warm twice, separate processes =="
  local store
  store="$(mktemp -d "${TMPDIR:-/tmp}/repro-cache-ci.XXXXXX")"
  trap 'rm -rf "$store"' RETURN
  python -m repro cache warm --cache-dir "$store" --json > /dev/null
  python -m repro cache warm --cache-dir "$store" --json \
    | python -c '
import json, sys
data = json.load(sys.stdin)["data"]
for layer in ("parse", "winnow"):
    stats = data[layer]
    misses = stats["misses"]
    disk_hits = stats.get("disk_hits", 0)
    if misses:
        sys.exit(f"CACHE FAILURE: second-process sweep recomputed {misses} "
                 f"{layer} entries (disk hits: {disk_hits})")
    print(f"ok ({layer}: 0 misses, {disk_hits} disk hits)")
'
}

if [ "${1:-all}" = "cache" ]; then
  cache_smoke
  exit 0
fi

# Serving-layer load gate: boot `python -m repro serve` twice over one
# shared cache directory.  Boot #1 runs the harness cold (gates latency
# and error rate only — its traffic populates the store); boot #2 runs it
# with --expect-warm, which additionally requires zero parse misses
# through the server (disk warm-start) and sustained throughput >= 1/2 of
# the in-process api_sweep_warm_sentences_per_s baseline recorded in
# BENCH_pipeline.json.  Boot #2's numbers land under serve_* keys there.
serve_gate() {
  echo "== serve gate: load harness against python -m repro serve =="
  local store log pid=""
  store="$(mktemp -d "${TMPDIR:-/tmp}/repro-serve-ci.XXXXXX")"
  log="$store/serve.log"
  # shellcheck disable=SC2064
  trap "[ -n \"\$pid\" ] && kill \"\$pid\" 2>/dev/null; rm -rf '$store'" RETURN

  local port
  # Sets $pid and $port (no subshell: the trap needs the real pid).
  boot_server() {
    python -m repro serve --port 0 --cache-dir "$store/cache" > "$log" 2>&1 &
    pid=$!
    local i
    for i in $(seq 1 100); do
      grep -q "serving on" "$log" 2>/dev/null && break
      if ! kill -0 "$pid" 2>/dev/null; then
        echo "SERVE FAILURE: server died during boot:" >&2
        cat "$log" >&2
        return 1
      fi
      sleep 0.2
    done
    port="$(sed -n 's/.*:\([0-9]*\) .*/\1/p' "$log" | head -1)"
    [ -n "$port" ] || { echo "SERVE FAILURE: could not read port" >&2; return 1; }
  }

  boot_server || return 1
  echo "-- boot 1 (cold store, port $port): latency + error gates"
  python benchmarks/load_harness.py --url "http://127.0.0.1:$port" \
    --requests 24 --warmup 4 --concurrency 3 \
    --min-throughput-fraction 0 --no-write
  kill "$pid" 2>/dev/null && wait "$pid" 2>/dev/null || true
  pid=""

  boot_server || return 1
  echo "-- boot 2 (warm store, port $port): throughput + warm-start gates"
  python benchmarks/load_harness.py --url "http://127.0.0.1:$port" \
    --requests 24 --warmup 4 --concurrency 3 --expect-warm
  kill "$pid" 2>/dev/null && wait "$pid" 2>/dev/null || true
  pid=""
}

if [ "${1:-all}" = "serve-gate" ]; then
  serve_gate
  exit 0
fi

# Differential fuzz gate: a fixed-seed campaign replays generated episodes
# against every executable backend (reference, exec-Python, interpreter)
# and must come back with zero divergences, zero oracle violations, a full
# green interop matrix (every backend pair × all four protocols × every
# scenario family), a stable emitted-C fingerprint lock, and — run twice —
# a byte-identical trace digest.  The report lands in FUZZ_matrix.json
# (uploaded as a CI artifact) and its headline numbers merge into
# BENCH_pipeline.json under fuzz_* keys.  The CLI itself exits non-zero on
# any divergence/violation; the python check below enforces coverage and
# reproducibility on top.
fuzz_gate() {
  echo "== fuzz gate: python -m repro fuzz, fixed seed, all backends =="
  local rerun
  rerun="$(mktemp "${TMPDIR:-/tmp}/repro-fuzz-rerun.XXXXXX")"
  # shellcheck disable=SC2064
  trap "rm -f '$rerun'" RETURN
  python -m repro fuzz --seed 0 --episodes 200 --json \
    --record-bench BENCH_pipeline.json > FUZZ_matrix.json
  python -m repro fuzz --seed 0 --episodes 200 --json > "$rerun"
  python - "$rerun" <<'EOF'
import json, sys

first = json.load(open("FUZZ_matrix.json"))["data"]
second = json.load(open(sys.argv[1]))["data"]
if first["traces_sha1"] != second["traces_sha1"]:
    sys.exit("FUZZ FAILURE: seed 0 is not reproducible — trace digests "
             f"differ ({first['traces_sha1']} vs {second['traces_sha1']})")
matrix = first["matrix"]
if not first["clean"] or not matrix["all_green"]:
    sys.exit(f"FUZZ FAILURE: matrix not green: {matrix}")
if len(matrix["pairs"]) < 2:
    sys.exit(f"FUZZ FAILURE: need >=2 backend pairs, got {matrix['pairs']}")
protocols = {p for pair in matrix["cells"].values() for p in pair}
if len(protocols) != 4:
    sys.exit(f"FUZZ FAILURE: expected 4 fuzzed protocols, got {protocols}")
for pair, per_protocol in matrix["cells"].items():
    for protocol, families in per_protocol.items():
        if len(families) < 3:
            sys.exit(f"FUZZ FAILURE: {pair}/{protocol} covered only "
                     f"{sorted(families)} — need >=3 scenario families")
unstable = [p for p, e in first["c_fingerprints"].items() if not e["stable"]]
if unstable:
    sys.exit(f"FUZZ FAILURE: unstable C renders for {unstable}")
print(f"ok ({first['episodes']} episodes x {len(matrix['pairs'])} pairs, "
      f"{len(protocols)} protocols, matrix green, digest "
      f"{first['traces_sha1'][:12]} reproducible)")
EOF
}

if [ "${1:-all}" = "fuzz-gate" ]; then
  fuzz_gate
  exit 0
fi

if [ "${1:-all}" != "bench" ]; then
  echo "== tier-1: pytest =="
  python -m pytest -x -q
fi

if [ "${1:-all}" != "tests" ]; then
  if [ "${1:-all}" = "bench" ]; then
    # The full run already executed these inside tier-1; the bench-only
    # path still must not skip the backend-parity contract.
    echo "== parser-backend parity suite =="
    python -m pytest tests/test_parsing.py -q
  fi

  echo "== cli smoke: python -m repro sweep --all --json =="
  python -m repro sweep --all --json > /dev/null
  echo "ok"

  echo "== cli smoke: python -m repro parse ICMP --compare (backend parity) =="
  python -m repro parse ICMP --compare > /dev/null
  echo "ok"

  echo "== cli smoke: python -m repro winnow ICMP --profile =="
  python -m repro winnow ICMP --profile > /dev/null
  echo "ok"

  cache_smoke

  echo "== benchmarks: pipeline smoke (writes BENCH_pipeline.json, gates perf) =="
  python benchmarks/pipeline_smoke.py
fi

if [ "${1:-all}" = "all" ]; then
  serve_gate
  fuzz_gate
fi
