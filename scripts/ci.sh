#!/usr/bin/env bash
# Tier-1 verification + the pipeline perf smoke, exactly as CI runs them.
#
#   ./scripts/ci.sh          # tests + smoke benchmark (perf gates)
#   ./scripts/ci.sh tests    # tier-1 tests only
#   ./scripts/ci.sh bench    # smoke benchmark only
#
# The smoke benchmark writes BENCH_pipeline.json and exits non-zero when a
# headline speedup regresses (cached-vs-cold load/construction, the
# warm-cache sweep re-run, the parallel engine sweep, or the codegen
# compiled-program cache: a cached compile must stay >10x cheaper than a
# cold one) — see benchmarks/pipeline_smoke.py for the exact gates.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

if [ "${1:-all}" != "bench" ]; then
  echo "== tier-1: pytest =="
  python -m pytest -x -q
fi

if [ "${1:-all}" != "tests" ]; then
  echo "== benchmarks: pipeline smoke (writes BENCH_pipeline.json, gates perf) =="
  python benchmarks/pipeline_smoke.py
fi
