"""BFD generality (§6.4): state-management sentences → a live state machine.

Processes the RFC 5880 §6.8.6 corpus through the service layer, fetches the
generated reception code as a fingerprint-verified
:class:`~repro.api.GeneratedArtifact`, and drives a three-way handshake
between a generated session and a reference session — then exercises the
Table 5 demand-mode sentence.

Run:  python examples/bfd_state_machine.py
"""

from repro.api import SageService
from repro.framework.bfd import (
    STATE_NAMES,
    BFDControlHeader,
    BFDStateVariables,
    STATE_DOWN,
    STATE_UP,
    make_control_packet,
)
from repro.netsim import BFDSession
from repro.runtime import GeneratedBFD


def main() -> None:
    service = SageService()
    run = service.run("BFD", mode="revised")
    print("BFD sentence statuses:", run.by_status())
    program = run.code_unit.program_named(
        "bfd_reception_of_bfd_control_packets_receiver"
    )
    print(f"\ngenerated reception code ({len(program.ops)} ops):\n")
    print(program.render_python())

    # The artifact endpoint: the serialized IR plus its content SHA-1 —
    # rebuilding verifies the fingerprint, then compiles through the shared
    # cache (equivalent to GeneratedBFD.from_unit(run.code_unit), plus the
    # integrity check a wire hop needs).
    artifact = service.artifact("BFD", backend="python", mode="revised")
    generated = GeneratedBFD.from_artifact(artifact)

    # A handshake: the generated side vs a reference responder.
    mine = BFDStateVariables(LocalDiscr=1)
    peer = BFDSession()
    peer.state.LocalDiscr = 2

    print("\nhandshake (generated side state after each received packet):")
    for round_number in range(3):
        # Peer sends us its view; our generated code processes it.
        generated.receive_control(mine, make_control_packet(peer.state))
        # We send ours; the reference peer processes it.
        peer.receive_control(make_control_packet(mine))
        print(f"  round {round_number + 1}: "
              f"generated={STATE_NAMES[mine.SessionState]} "
              f"reference-peer={STATE_NAMES[peer.state.SessionState]}")

    assert mine.SessionState == STATE_UP
    assert peer.state.SessionState == STATE_UP
    print("\nsession established on both ends (Down -> Init -> Up)")

    # The Table 5 demand-mode sentence in action.
    demand_packet = BFDControlHeader(
        state=STATE_UP, my_discriminator=2, your_discriminator=1, demand=1
    )
    context = generated.receive_control(mine, demand_packet)
    print(f"demand mode announced by peer: transmission ceased = "
          f"{context.transmission_ceased}")

    # Teardown: the peer signals Down.
    down_packet = BFDControlHeader(
        state=STATE_DOWN, my_discriminator=2, your_discriminator=1
    )
    generated.receive_control(mine, down_packet)
    print(f"peer signalled Down: generated session is now "
          f"{STATE_NAMES[mine.SessionState]}")
    assert mine.SessionState == STATE_DOWN


if __name__ == "__main__":
    main()
