"""End-to-end ICMP: RFC 792 text → generated code → ping/traceroute interop.

Reproduces the paper's §6.2 headline — through the service layer: a
:class:`~repro.api.SageService` processes the bundled RFC 792 corpus
(request/response contracts, exactly what ``python -m repro process ICMP
--json`` speaks), the generated builders travel as a serialized
:class:`~repro.api.GeneratedArtifact` (fingerprint-verified IR), and the
rehydrated implementation mounts on the course-topology router under the
Linux-faithful ping and traceroute — first in strict mode (showing the
§6.5 under-specification failure), then in revised mode (clean interop).

Run:  python examples/icmp_end_to_end.py
"""

from repro.api import ProcessRequest, SageService, from_json, to_json
from repro.framework import verify_clean
from repro.framework.addressing import ip_to_int
from repro.netsim import Ping, course_topology, ping, traceroute
from repro.rfc.registry import default_registry
from repro.runtime import GeneratedICMP

SERVICE = SageService()


def run_mode(mode: str) -> None:
    print(f"\n===== mode: {mode} =====")
    # Both modes share the registry's parse cache: the revised engine
    # re-parses only the rewritten sentences the strict run never saw.
    response = SERVICE.process(ProcessRequest(
        protocol="ICMP", mode=mode, artifacts=("python",),
    ))
    print("sentence statuses:", response.status_counts)
    for report in response.flagged():
        print(f"  needs human attention [{report.status}]: "
              f"{report.text[:70]}...")

    # The artifact round-trips through its wire form: what a remote client
    # would fetch, verify (IR content SHA-1), and execute locally.
    artifact = from_json(to_json(response.artifacts[0]))
    print(f"\ngenerated {len(artifact.functions)} builder functions, "
          f"{len(artifact.source.splitlines())} lines of Python "
          f"(IR sha1 {artifact.fingerprint[:12]}…)")

    topology = course_topology(implementation=GeneratedICMP.from_artifact(artifact))
    echo = ping(topology.client, ip_to_int("10.0.1.1"), count=4)
    print(f"ping router:            {echo.received}/{echo.transmitted} replies "
          f"{echo.rejections[:1] or ''}")
    if mode == "strict":
        return  # the remaining scenarios need the revised spec

    unreachable = ping(topology.client, ip_to_int("8.8.8.8"))
    print(f"ping unknown network:   ICMP errors {[(e.icmp_type, e.icmp_code) for e in unreachable.errors]}")
    exceeded = Ping(topology.client, ttl=1).run(ip_to_int("192.168.2.2"))
    print(f"ping with TTL=1:        ICMP errors {[(e.icmp_type, e.icmp_code) for e in exceeded.errors]}")
    route = traceroute(topology.client, ip_to_int("192.168.2.2"))
    print(f"traceroute server1:     reached={route.destination_reached} "
          f"hops={len(route.hops)}")

    clean, warnings = verify_clean(
        topology.client.sent_capture + topology.client.received_capture
    )
    print(f"tcpdump verification:   "
          f"{'all packets clean' if clean else warnings[:3]}")


def run_interpreter_backend() -> None:
    """The same interop, executing the IR directly — no exec(), no source."""
    print("\n===== backend: interp (direct IR interpreter) =====")
    artifact = SERVICE.artifact("ICMP", backend="interp", mode="revised")
    topology = course_topology(
        implementation=GeneratedICMP.from_artifact(artifact, backend="interp")
    )
    echo = ping(topology.client, ip_to_int("10.0.1.1"), count=4)
    route = traceroute(topology.client, ip_to_int("192.168.2.2"))
    print(f"ping router:            {echo.received}/{echo.transmitted} replies")
    print(f"traceroute server1:     reached={route.destination_reached}")


def main() -> None:
    run_mode("strict")  # fails ping: the identifier is zeroed (§6.5)
    run_mode("revised")  # interoperates perfectly (§6.2)
    run_interpreter_backend()  # same builders, no text round-trip
    registry = default_registry()
    print("\nshared parse cache after both modes:",
          registry.parse_cache().stats())
    print("shared compiled-program cache:",
          registry.compiled_cache().stats())


if __name__ == "__main__":
    main()
