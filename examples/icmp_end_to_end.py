"""End-to-end ICMP: RFC 792 text → generated code → ping/traceroute interop.

Reproduces the paper's §6.2 headline: the SAGE pipeline reads the bundled
RFC 792 corpus, generates Python builders for all eight ICMP message types,
mounts them on the course-topology router, and drives the Linux-faithful
ping and traceroute against them — first in strict mode (showing the §6.5
under-specification failure), then in revised mode (clean interop).

Run:  python examples/icmp_end_to_end.py
"""

from repro.core import SageEngine
from repro.framework import verify_clean
from repro.framework.addressing import ip_to_int
from repro.netsim import Ping, course_topology, ping, traceroute
from repro.rfc.registry import default_registry
from repro.runtime import GeneratedICMP


def run_mode(mode: str) -> None:
    print(f"\n===== mode: {mode} =====")
    # Both modes share the registry's parse cache: the revised engine
    # re-parses only the rewritten sentences the strict run never saw.
    run = SageEngine(mode=mode).process_corpus("ICMP")
    print("sentence statuses:", run.by_status())
    for result in run.flagged():
        print(f"  needs human attention [{result.status}]: "
              f"{result.spec.text[:70]}...")

    source = run.code_unit.render_python()
    print(f"\ngenerated {len(run.code_unit.programs)} builder functions, "
          f"{len(source.splitlines())} lines of Python")

    topology = course_topology(implementation=GeneratedICMP.from_source(source))
    echo = ping(topology.client, ip_to_int("10.0.1.1"), count=4)
    print(f"ping router:            {echo.received}/{echo.transmitted} replies "
          f"{echo.rejections[:1] or ''}")
    if mode == "strict":
        return  # the remaining scenarios need the revised spec

    unreachable = ping(topology.client, ip_to_int("8.8.8.8"))
    print(f"ping unknown network:   ICMP errors {[(e.icmp_type, e.icmp_code) for e in unreachable.errors]}")
    exceeded = Ping(topology.client, ttl=1).run(ip_to_int("192.168.2.2"))
    print(f"ping with TTL=1:        ICMP errors {[(e.icmp_type, e.icmp_code) for e in exceeded.errors]}")
    route = traceroute(topology.client, ip_to_int("192.168.2.2"))
    print(f"traceroute server1:     reached={route.destination_reached} "
          f"hops={len(route.hops)}")

    clean, warnings = verify_clean(
        topology.client.sent_capture + topology.client.received_capture
    )
    print(f"tcpdump verification:   "
          f"{'all packets clean' if clean else warnings[:3]}")


def run_interpreter_backend() -> None:
    """The same interop, executing the IR directly — no exec(), no source."""
    print("\n===== backend: interp (direct IR interpreter) =====")
    run = SageEngine(mode="revised").process_corpus("ICMP")
    topology = course_topology(
        implementation=GeneratedICMP.from_unit(run.code_unit, backend="interp")
    )
    echo = ping(topology.client, ip_to_int("10.0.1.1"), count=4)
    route = traceroute(topology.client, ip_to_int("192.168.2.2"))
    print(f"ping router:            {echo.received}/{echo.transmitted} replies")
    print(f"traceroute server1:     reached={route.destination_reached}")


def main() -> None:
    run_mode("strict")  # fails ping: the identifier is zeroed (§6.5)
    run_mode("revised")  # interoperates perfectly (§6.2)
    run_interpreter_backend()  # same builders, no text round-trip
    registry = default_registry()
    print("\nshared parse cache after both modes:",
          registry.parse_cache().stats())
    print("shared compiled-program cache:",
          registry.compiled_cache().stats())


if __name__ == "__main__":
    main()
