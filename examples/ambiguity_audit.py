"""Ambiguity audit: run SAGE as a *specification linter* over an RFC.

This is the workflow the paper proposes for spec authors (Figure 4), driven
through the interactive service surface: open a
:class:`~repro.api.DisambiguationSession` on a protocol; every sentence
that parses to zero or multiple logical forms, or whose terms cannot be
resolved unambiguously to protocol fields, surfaces as a
:class:`~repro.api.SentenceReport` with its per-check winnow provenance
and the competing interpretations — then a resolution is journaled and the
replayed run shows the flag disappear.

Run:  python examples/ambiguity_audit.py
"""

from repro.api import DisambiguationSession, SageService
from repro.disambiguation import summarize
from repro.rfc.registry import ProtocolRegistry


def main() -> None:
    # A journal-only registry (no bundled rewrites): the linter sees the
    # RFC text exactly as written.
    registry = ProtocolRegistry(bundled_rewrites=False)
    session = DisambiguationSession("ICMP", mode="revised", registry=registry)
    run = session.run

    print(f"audited {len(run.results)} sentences from RFC "
          f"{run.corpus.document.number}")
    print("statuses:", run.by_status())

    print("\n--- sentences needing revision ---")
    for report in session.flagged():
        print(f"\n[{report.status}] #{report.index} {report.message} / "
              f"{report.field or 'description'}")
        print(f"  {report.text}")
        if report.reason:
            print(f"  reason: {report.reason}")
        print(f"  LF count after each check: {report.check_counts}")
        for position, survivor in enumerate(report.survivors[:2]):
            print(f"  LF {position}: {survivor['signature'][:100]}")

    summary = summarize(run.traces())
    print("\n--- winnowing effectiveness (Figure 5a) ---")
    print(f"{summary.sentence_count} sentences had multiple logical forms")
    for stage, maximum, average, minimum in summary.rows():
        print(f"  after {stage:<18} max={maximum:<3} avg={average:5.2f} min={minimum}")

    # Resolve one flag the way an operator would, and replay.
    first = session.pending()[0]
    session.resolve(first.index, annotate=True,
                    note="descriptive prose; no protocol behaviour")
    print(f"\nresolved #{first.index} (annotate): "
          f"{len(session.pending())} sentences still pending; "
          f"{len(session.resolutions())} decisions journaled")

    # Lint every registered RFC in one batch service call.
    print("\n--- all registered protocols (one sweep endpoint call) ---")
    sweep = SageService(registry=registry).sweep(parallel=True)
    for name in sweep.protocols:
        response = sweep.responses[name]
        print(f"  {name:<5} {response.sentence_count:>3} sentences, "
              f"{response.flagged_count} flagged for revision")


if __name__ == "__main__":
    main()
