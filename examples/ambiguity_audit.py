"""Ambiguity audit: run SAGE as a *specification linter* over an RFC.

This is the workflow the paper proposes for spec authors (Figure 4): feed a
draft through the pipeline; every sentence that parses to zero or multiple
logical forms, or whose terms cannot be resolved unambiguously to protocol
fields, is reported with the competing interpretations so the author can
revise it.

Run:  python examples/ambiguity_audit.py
"""

from repro.ccg.semantics import signature
from repro.core import SageEngine
from repro.disambiguation import summarize
from repro.rfc import load_corpus


def main() -> None:
    corpus = load_corpus("ICMP")
    engine = SageEngine(mode="strict")
    run = engine.process_corpus(corpus)

    print(f"audited {len(run.results)} sentences from RFC {corpus.document.number}")
    print("statuses:", run.by_status())

    print("\n--- sentences needing revision ---")
    for result in run.flagged():
        print(f"\n[{result.status}] {result.spec.message} / "
              f"{result.spec.field or 'description'}")
        print(f"  {result.spec.text}")
        if result.reason:
            print(f"  reason: {result.reason}")
        if result.trace and result.trace.final_count > 1:
            print(f"  {result.trace.final_count} competing interpretations, e.g.:")
            for form in result.trace.survivors[:2]:
                print(f"    {signature(form)[:100]}")

    summary = summarize(run.traces())
    print("\n--- winnowing effectiveness (Figure 5a) ---")
    print(f"{summary.sentence_count} sentences had multiple logical forms")
    for stage, maximum, average, minimum in summary.rows():
        print(f"  after {stage:<18} max={maximum:<3} avg={average:5.2f} min={minimum}")

    modal = [r for r in run.results
             if r.logical_form is not None and "May" in str(r.logical_form)]
    print(f"\n--- optional ('may') behaviours to unit-test (§6.5) ---")
    for result in modal:
        print(f"  {result.spec.text[:80]}")

    # Lint every registered RFC in one parallel batch call.
    print("\n--- all registered protocols (one process_corpora sweep) ---")
    for name, sweep_run in engine.process_corpora().items():
        flagged = len(sweep_run.flagged())
        print(f"  {name:<5} {len(sweep_run.results):>3} sentences, "
              f"{flagged} flagged for revision")


if __name__ == "__main__":
    main()
