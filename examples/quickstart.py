"""Quickstart: one sentence through the full SAGE pipeline.

Parses a specification sentence with the CCG parser, shows the ambiguity the
parser surfaces, winnows it with the disambiguation checks, and compiles the
surviving logical form to both C and Python.

Run:  python examples/quickstart.py
"""

from repro.ccg.semantics import signature
from repro.codegen import CEmitter, HandlerRegistry, PyEmitter, SentenceContext
from repro.disambiguation import winnow
from repro.rfc.registry import default_registry

SENTENCE = "For computing the checksum, the checksum field should be zero."


def main() -> None:
    print(f"sentence: {SENTENCE}\n")

    # 1. Noun-phrase labeling (the spaCy-equivalent stage).  The registry
    # hands back the memoized chunker/parser pair every consumer shares.
    registry = default_registry()
    chunker = registry.chunker()
    tokens = chunker.chunk_text(SENTENCE)
    print("tokens:  ", " | ".join(token.text for token in tokens), "\n")

    # 2. CCG parsing: every derivable logical form.
    parser = registry.parser()
    result = parser.parse(tokens)
    print(f"CCG produced {result.count} logical forms:")
    for form in result.logical_forms:
        print("   ", signature(form))

    # 3. Winnowing (the five §4.2 checks).
    trace = winnow(SENTENCE, result.logical_forms)
    print("\ncounts after each check:", trace.counts)
    survivor = trace.survivors[0]
    print("surviving logical form: ", signature(survivor), "\n")

    # 4. Code generation, in both backends.
    registry = HandlerRegistry()
    context = SentenceContext(
        protocol="ICMP", message="Echo or Echo Reply Message", field="checksum"
    )
    handled = registry.generate(survivor, context)
    print("C backend:")
    for line in CEmitter().emit(handled.ops, depth=1):
        print(line)
    print("\nPython backend:")
    for line in PyEmitter().emit(handled.ops, depth=1):
        print(line)


if __name__ == "__main__":
    main()
