"""Quickstart: one sentence through the full SAGE pipeline, stage by stage.

Drives the three pipeline stage objects directly — the same objects a
:class:`~repro.core.SageEngine` composes: the parse stage (NP chunking +
CCG, with the shared registry parse cache), the winnow stage (§4.2 checks),
and the generate stage (Table 4 context + handler dispatch), compiling the
surviving logical form to both C and Python — then the same pipeline again
as one :class:`~repro.api.SageService` request/response round trip.

The parse stage runs the default ``indexed`` parser backend (category-
indexed chart over a packed forest); swap in the reference CKY chart with
``ParseStage(backend="reference")`` or, on the CLI, ``python -m repro
process ICMP --parser-backend reference`` — outputs are identical, parity
is CI-gated (DESIGN.md §8).

Run:  python examples/quickstart.py
"""

from repro.api import ProcessRequest, SageService, to_json
from repro.ccg.semantics import signature
from repro.codegen import CEmitter, PyEmitter
from repro.core import GenerateStage, ParseStage, WinnowStage
from repro.rfc.corpus import SpecSentence
from repro.rfc.registry import default_registry

SENTENCE = "For computing the checksum, the checksum field should be zero."


def main() -> None:
    print(f"sentence: {SENTENCE}\n")

    spec = SpecSentence(
        text=SENTENCE, protocol="ICMP",
        message="Echo or Echo Reply Message", field="checksum", kind="field",
    )

    # 1+2. The parse stage: noun-phrase labeling (the spaCy-equivalent
    # pass) then CCG parsing, against the memoized registry substrate and
    # the shared content-addressed parse cache.
    registry = default_registry()
    parse = ParseStage(registry.parser(), registry.chunker(),
                       cache=registry.parse_cache())
    tokens = parse.chunker.chunk_text(SENTENCE)
    print("tokens:  ", " | ".join(token.text for token in tokens), "\n")
    parsed = parse.run(spec)
    print(f"CCG produced {parsed.result.count} logical forms "
          f"(cache key fingerprint {parse.fingerprint()[:12]}…):")
    for form in parsed.logical_forms:
        print("   ", signature(form))

    # 3. The winnow stage (the five §4.2 checks).
    trace = WinnowStage().run(parsed)
    print("\ncounts after each check:", trace.counts)
    survivor = trace.survivors[0]
    print("surviving logical form: ", signature(survivor), "\n")

    # 4. The generate stage: context resolution + handler dispatch, then
    # both emitter backends.
    generate = GenerateStage()
    context = generate.context_for(spec)
    handled = generate.generate(survivor, context)
    print("C backend:")
    for line in CEmitter().emit(handled.ops, depth=1):
        print(line)
    print("\nPython backend:")
    for line in PyEmitter().emit(handled.ops, depth=1):
        print(line)

    # The cache remembers: a re-parse of the same sentence is a dict hit.
    again = parse.run(spec)
    print(f"\nre-parse served from cache: {again.from_cache} "
          f"({registry.parse_cache().stats()})")

    # 5. The same pipeline as a service call: one request object in, one
    # JSON-round-trippable response out (what `python -m repro process
    # ICMP --json` prints).
    service = SageService(registry=registry)
    response = service.process(ProcessRequest(protocol="ICMP",
                                              include_sentences=False,
                                              artifacts=("c",)))
    artifact = response.artifacts[0]
    print(f"\nservice response: {response.status_counts} "
          f"({len(to_json(response))} bytes as JSON)")
    print(f"C artifact: {len(artifact.source.splitlines())} lines, "
          f"IR sha1 {artifact.fingerprint[:12]}…")


if __name__ == "__main__":
    main()
