"""JSON round-trip contracts: ``from_json(to_json(x)) == x`` for every
pipeline result, across all four bundled protocols and under randomized
(hypothesis) payloads."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    SCHEMA_VERSION,
    ContractError,
    GeneratedArtifact,
    ProcessRequest,
    ProcessResponse,
    RequestError,
    Resolution,
    SchemaVersionError,
    SweepRequest,
    from_json,
    to_json,
)
from repro.api.contracts import sem_from_dict, sem_to_dict
from repro.ccg.semantics import Call, Const, signature
from repro.codegen.ir import (
    Condition,
    FingerprintMismatch,
    op_from_dict,
    op_to_dict,
)
from repro.codegen.ops import (
    ComputeChecksum,
    Conditional,
    CopyData,
    Discard,
    Send,
    SetField,
    SwapFields,
    Value,
)
from repro.core import SageEngine, SentenceStatus
from repro.rfc.registry import default_registry

PROTOCOLS = ("ICMP", "IGMP", "NTP", "BFD")


@pytest.fixture(scope="module")
def runs():
    """One revised-mode run per bundled protocol (warm shared substrate)."""
    engine = SageEngine(mode="revised")
    return engine.process_corpora(parallel=False)


@pytest.fixture(scope="module")
def strict_runs():
    engine = SageEngine(mode="strict")
    return engine.process_corpora(parallel=False)


# -- pipeline results over the real corpora ------------------------------------

class TestRunRoundTrips:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_sage_run_round_trips(self, runs, protocol):
        run = runs[protocol]
        assert from_json(to_json(run)) == run

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_strict_run_round_trips(self, strict_runs, protocol):
        run = strict_runs[protocol]
        assert from_json(to_json(run)) == run

    def test_round_trip_rehydrates_the_memoized_corpus(self, runs):
        back = from_json(to_json(runs["ICMP"]))
        assert back.corpus is default_registry().load_corpus("ICMP")

    def test_statuses_survive_as_enum_members(self, runs):
        back = from_json(to_json(runs["ICMP"]))
        statuses = {result.status for result in back.results}
        assert statuses <= set(SentenceStatus)

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_winnow_traces_round_trip(self, runs, protocol):
        for trace in runs[protocol].traces():
            assert from_json(to_json(trace)) == trace

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_code_units_round_trip(self, runs, protocol):
        unit = runs[protocol].code_unit
        back = from_json(to_json(unit))
        assert back == unit
        assert back.fingerprint() == unit.fingerprint()
        assert back.render_c() == unit.render_c()

    def test_sentence_results_round_trip(self, runs):
        for result in runs["ICMP"].results:
            assert from_json(to_json(result)) == result

    def test_rewritten_sub_results_survive(self, runs):
        rewritten = runs["ICMP"].rewritten()
        assert rewritten  # the ICMP corpus has paper rewrites
        result = rewritten[0]
        back = from_json(to_json(result))
        assert back.sub_results == result.sub_results
        assert back.rewrite == result.rewrite


# -- randomized payloads -------------------------------------------------------

constants = st.sampled_from(["checksum", "code", "type", "0", "1", "datagram"])


def terms(max_leaves=6):
    return st.recursive(
        st.builds(
            Const, constants,
            span=st.one_of(st.none(), st.tuples(st.integers(0, 9),
                                                st.integers(10, 19))),
        ),
        lambda children: st.builds(
            Call,
            st.sampled_from(["Is", "Of", "And", "Action", "If"]),
            st.lists(children, min_size=1, max_size=3).map(tuple),
            trigger=st.one_of(st.none(), st.integers(0, 30)),
            flags=st.sets(st.sampled_from(["distributed", "overgen"])).map(
                frozenset
            ),
        ),
        max_leaves=max_leaves,
    )


protocols_s = st.sampled_from(["icmp", "ip"])
fields_s = st.sampled_from(["type", "code", "checksum", "identifier"])
values_s = st.one_of(
    st.integers(0, 255).map(Value.constant),
    st.sampled_from(["code", "chosen_value"]).map(Value.param),
    st.tuples(protocols_s, fields_s).map(lambda p: Value.request_field(*p)),
    st.just(Value.clock()),
)
conditions_s = st.one_of(
    st.builds(Condition, kind=st.just("field_equals"), protocol=protocols_s,
              name=fields_s, value=st.integers(0, 7), negated=st.booleans()),
    st.builds(Condition, kind=st.just("mode_in"),
              modes=st.lists(st.sampled_from(["demand", "async"]),
                             min_size=1, max_size=2).map(tuple)),
)
leaf_ops_s = st.one_of(
    st.builds(SetField, protocols_s, fields_s, values_s,
              optional=st.booleans()),
    st.builds(SwapFields, protocol_a=protocols_s, field_a=fields_s,
              protocol_b=protocols_s, field_b=fields_s),
    st.builds(ComputeChecksum, protocol=st.just("icmp"),
              name=st.just("checksum"),
              function=st.just("internet_checksum"),
              range_start=st.sampled_from(["type", "code"])),
    st.just(CopyData()),
    st.builds(Send, message=st.sampled_from(["query", "report"]),
              destination=st.sampled_from(["", "all_hosts_group"])),
    st.builds(Discard, reason=st.sampled_from(["", "bad"])),
)


def op_trees():
    return st.recursive(
        leaf_ops_s,
        lambda children: st.builds(
            Conditional, condition=conditions_s,
            body=st.lists(children, min_size=1, max_size=3),
        ),
        max_leaves=8,
    )


resolutions_s = st.one_of(
    st.builds(Resolution.rewrite,
              st.text(min_size=1, max_size=60).filter(str.strip),
              st.text(min_size=1, max_size=60).filter(str.strip),
              category=st.sampled_from(["ambiguous", "unparsed", "imprecise"]),
              note=st.text(max_size=20),
              protocol=st.sampled_from(["", "ICMP", "BFD"]),
              status_before=st.sampled_from(["", "unparsed", "ambiguous-lf"])),
    st.builds(Resolution.annotate,
              st.text(min_size=1, max_size=60).filter(str.strip),
              note=st.text(max_size=20)),
    st.builds(Resolution.select_lf,
              st.text(min_size=1, max_size=60).filter(str.strip),
              st.text(min_size=1, max_size=80)),
)


class TestRandomizedRoundTrips:
    @given(terms())
    @settings(max_examples=80, deadline=None)
    def test_sem_round_trips_with_provenance(self, term):
        back = sem_from_dict(json.loads(json.dumps(sem_to_dict(term))))
        assert back == term
        assert signature(back) == signature(term)
        # provenance metadata (excluded from ==) survives too
        assert sem_to_dict(back) == sem_to_dict(term)

    @given(op_trees())
    @settings(max_examples=80, deadline=None)
    def test_ops_round_trip(self, op):
        assert op_from_dict(json.loads(json.dumps(op_to_dict(op)))) == op

    @given(resolutions_s)
    @settings(max_examples=80, deadline=None)
    def test_resolutions_round_trip(self, resolution):
        assert from_json(to_json(resolution)) == resolution


# -- requests, responses, artifacts --------------------------------------------

class TestRequestResponseContracts:
    def test_process_request_round_trips(self):
        request = ProcessRequest(protocol="ICMP", mode="strict",
                                 include_sentences=False, artifacts=("c",))
        assert from_json(to_json(request)) == request

    def test_sweep_request_round_trips(self):
        request = SweepRequest(protocols=("ICMP", "BFD"), parallel=False,
                               max_workers=3, include_sentences=True)
        assert from_json(to_json(request)) == request

    def test_process_response_round_trips(self, runs):
        response = ProcessResponse.from_run(runs["ICMP"], "revised",
                                            artifacts=("c", "python"))
        assert from_json(to_json(response)) == response

    def test_bad_mode_is_a_request_error(self):
        with pytest.raises(RequestError):
            ProcessRequest.from_dict({"protocol": "ICMP", "mode": "casual"})

    def test_missing_protocol_is_a_request_error(self):
        with pytest.raises(RequestError):
            ProcessRequest.from_dict({})

    def test_artifact_round_trips_and_verifies(self, runs):
        artifact = GeneratedArtifact.from_program(runs["ICMP"].code_unit,
                                                  backend="c")
        back = from_json(to_json(artifact))
        assert back == artifact
        rebuilt = back.to_program()
        assert rebuilt.fingerprint() == runs["ICMP"].code_unit.fingerprint()
        assert rebuilt.render_c() == artifact.source

    def test_tampered_artifact_is_rejected(self, runs):
        artifact = GeneratedArtifact.from_program(runs["ICMP"].code_unit,
                                                  backend="c")
        payload = json.loads(to_json(artifact))
        ops = payload["data"]["program"]["functions"][0]["ops"]
        ops[0]["value"] = {"kind": "const", "const": 99}
        with pytest.raises(FingerprintMismatch):
            from_json(json.dumps(payload)).to_program()


# -- envelope failure modes ----------------------------------------------------

class TestEnvelope:
    def test_schema_version_is_stamped(self, runs):
        payload = json.loads(to_json(runs["ICMP"].code_unit))
        assert payload["schema"] == SCHEMA_VERSION
        assert payload["kind"] == "code_unit"

    def test_future_schema_is_rejected(self):
        with pytest.raises(SchemaVersionError):
            from_json(json.dumps({"schema": 999, "kind": "code_unit",
                                  "data": {}}))

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(ContractError):
            from_json(json.dumps({"schema": SCHEMA_VERSION,
                                  "kind": "teapot", "data": {}}))

    def test_non_json_is_a_contract_error(self):
        with pytest.raises(ContractError):
            from_json("this is not json")

    def test_malformed_data_is_a_contract_error(self):
        with pytest.raises(ContractError):
            from_json(json.dumps({"schema": SCHEMA_VERSION,
                                  "kind": "winnow_trace",
                                  "data": {"wrong": "shape"}}))

    def test_unserializable_object_is_a_contract_error(self):
        with pytest.raises(ContractError):
            to_json(object())
