"""Tests for the declarative header codec (pack/unpack roundtrips)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.framework.packet import FieldSpec, Header, HeaderLayout, LayoutField


class TinyHeader(Header):
    FIELDS = (
        FieldSpec("version", 4, default=1),
        FieldSpec("flags", 4),
        FieldSpec("length", 8),
        FieldSpec("token", 16),
    )


class TestFieldSpec:
    def test_max_value(self):
        assert FieldSpec("x", 4).max_value == 15
        assert FieldSpec("x", 16).max_value == 0xFFFF

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            FieldSpec("x", 0)


class TestHeaderPacking:
    def test_defaults_apply(self):
        header = TinyHeader()
        assert header.version == 1
        assert header.flags == 0

    def test_pack_layout_is_big_endian_bit_order(self):
        header = TinyHeader(version=0xA, flags=0x5, length=0xFF, token=0x1234)
        assert header.pack() == bytes([0xA5, 0xFF, 0x12, 0x34])

    def test_unpack_reverses_pack(self):
        header = TinyHeader(version=2, flags=7, length=42, token=999, payload=b"xy")
        again = TinyHeader.unpack(header.pack())
        assert again == header
        assert again.payload == b"xy"

    def test_unknown_field_rejected(self):
        with pytest.raises(TypeError):
            TinyHeader(bogus=1)

    def test_out_of_range_value_rejected(self):
        with pytest.raises(ValueError):
            TinyHeader(version=16)

    def test_non_integer_rejected(self):
        with pytest.raises(TypeError):
            TinyHeader(version="1")

    def test_truncated_unpack_raises(self):
        with pytest.raises(ValueError):
            TinyHeader.unpack(b"\x00\x00")

    def test_len_includes_payload(self):
        assert len(TinyHeader(payload=b"abc")) == 4 + 3

    def test_copy_is_independent(self):
        header = TinyHeader(token=5)
        clone = header.copy()
        clone.token = 6
        assert header.token == 5

    @given(
        version=st.integers(0, 15),
        flags=st.integers(0, 15),
        length=st.integers(0, 255),
        token=st.integers(0, 0xFFFF),
        payload=st.binary(max_size=64),
    )
    def test_roundtrip_property(self, version, flags, length, token, payload):
        header = TinyHeader(
            version=version, flags=flags, length=length, token=token, payload=payload
        )
        assert TinyHeader.unpack(header.pack()) == header


class TestHeaderLayout:
    def layout(self):
        return HeaderLayout(
            protocol="demo",
            fields=[LayoutField("type", 8), LayoutField("code", 8), LayoutField("checksum", 16)],
        )

    def test_total_bits(self):
        assert self.layout().total_bits() == 32

    def test_generated_class_roundtrips(self):
        cls = self.layout().to_header_class()
        instance = cls(type=3, code=1, checksum=0xBEEF, payload=b"z")
        assert cls.unpack(instance.pack()) == instance

    def test_offsets(self):
        offsets = dict(
            (field.name, offset) for field, offset in self.layout().iter_offsets()
        )
        assert offsets == {"type": 0, "code": 8, "checksum": 16}

    def test_c_struct_rendering(self):
        struct_text = self.layout().to_c_struct()
        assert "struct demo_hdr {" in struct_text
        assert "uint8_t type;" in struct_text
        assert "uint16_t checksum;" in struct_text

    def test_c_struct_bitfields_for_sub_byte(self):
        layout = HeaderLayout("v", [LayoutField("version", 4), LayoutField("ihl", 4)])
        struct_text = layout.to_c_struct()
        assert "uint8_t version : 4;" in struct_text
