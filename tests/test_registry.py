"""Tests for the cached protocol registry (repro.rfc.registry)."""

import pytest

from repro.ccg.chart import CCGChartParser
from repro.core import Sage
from repro.nlp import NounPhraseChunker
from repro.rfc import icmp_corpus, load_corpus
from repro.rfc.registry import (
    BUNDLED_PROTOCOLS,
    ProtocolRegistry,
    UnknownProtocolError,
    default_registry,
)

# A minimal fifth protocol: one message section, a diagram, and sentences
# the existing lexicon already parses end to end.
TOY_RFC = """\
RFC: 9999
TOY PROTOCOL

Introduction

   The toy protocol is used by hosts.

Toy Probe Message

    0                   1                   2                   3
    0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1
   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
   |     Type      |     Code      |          Checksum             |
   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+

   TOY Fields:

   Type

      7

   Code

      0

   Checksum

      The checksum is the 16-bit one's complement of the one's
      complement sum of the message starting with the type field.
      For computing the checksum, the checksum field should be zero.
"""


@pytest.fixture
def registry():
    """A private registry so tests never dirty the process-wide default."""
    return ProtocolRegistry()


class TestRegistration:
    def test_bundled_protocols_present(self, registry):
        assert set(registry.protocols()) == {"ICMP", "IGMP", "NTP", "BFD"}
        assert len(BUNDLED_PROTOCOLS) == 4

    def test_lookup_is_case_insensitive(self, registry):
        assert registry.load_corpus("icmp") is registry.load_corpus("ICMP")

    def test_unknown_protocol_raises_clear_error(self, registry):
        with pytest.raises(UnknownProtocolError) as excinfo:
            registry.load_corpus("OSPF")
        message = str(excinfo.value)
        assert "OSPF" in message
        assert "ICMP" in message  # the error names what IS registered
        assert isinstance(excinfo.value, KeyError)

    def test_duplicate_registration_rejected_without_replace(self, registry):
        with pytest.raises(ValueError):
            registry.register_protocol("ICMP", "rfc792_icmp.txt")
        registry.register_protocol("ICMP", "rfc792_icmp.txt", replace=True)

    def test_registration_requires_a_source(self, registry):
        with pytest.raises(ValueError):
            registry.register_protocol("EMPTY")


class TestMemoization:
    def test_corpus_is_memoized(self, registry):
        assert registry.load_corpus("ICMP") is registry.load_corpus("ICMP")

    def test_dictionary_lexicon_parser_chunker_memoized(self, registry):
        assert registry.dictionary() is registry.dictionary()
        assert registry.lexicon() is registry.lexicon()
        assert registry.parser() is registry.parser()
        assert registry.chunker() is registry.chunker()
        assert registry.rewrites() is registry.rewrites()
        # The parser really wraps the memoized lexicon.
        assert registry.parser().lexicon is registry.lexicon()

    def test_lexicon_variants_cached_separately(self, registry):
        full = registry.lexicon()
        clean = registry.lexicon(include_overgen=False)
        assert full is not clean
        assert len(clean.entries()) < len(full.entries())
        assert registry.lexicon(include_overgen=False) is clean

    def test_invalidate_one_protocol(self, registry):
        first = registry.load_corpus("ICMP")
        untouched = registry.load_corpus("BFD")
        registry.invalidate("ICMP")
        assert registry.load_corpus("ICMP") is not first
        assert registry.load_corpus("BFD") is untouched

    def test_invalidate_unknown_protocol_raises(self, registry):
        with pytest.raises(UnknownProtocolError):
            registry.invalidate("OSPF")

    def test_clear_drops_everything_but_keeps_registrations(self, registry):
        corpus = registry.load_corpus("ICMP")
        lexicon = registry.lexicon()
        registry.clear()
        assert set(registry.protocols()) == {"ICMP", "IGMP", "NTP", "BFD"}
        assert registry.load_corpus("ICMP") is not corpus
        assert registry.lexicon() is not lexicon

    def test_legacy_wrappers_hit_the_default_registry_cache(self):
        assert icmp_corpus() is load_corpus("ICMP")
        assert icmp_corpus() is default_registry().load_corpus("ICMP")


class TestSageIntegration:
    def test_default_sages_share_substrate(self):
        first = Sage()
        second = Sage()
        assert first.parser is second.parser
        assert first.lexicon is second.lexicon
        assert first.chunker is second.chunker
        assert first.rewrites is second.rewrites

    def test_explicit_arguments_stay_private(self, registry):
        chunker = NounPhraseChunker()
        sage = Sage(lexicon=registry.lexicon(), chunker=chunker)
        assert sage.chunker is chunker
        assert isinstance(sage.parser, CCGChartParser)
        assert sage.parser is not default_registry().parser()

    def test_process_corpus_accepts_protocol_names(self, registry):
        run = Sage(protocol_registry=registry).process_corpus("ICMP")
        assert run.corpus is registry.load_corpus("ICMP")
        assert len(run.results) == 87


class TestFifthProtocol:
    def test_synthetic_protocol_end_to_end(self, registry):
        registry.register_protocol(
            "TOY", text=TOY_RFC, description="synthetic fifth protocol"
        )
        assert "TOY" in registry.protocols()

        corpus = registry.load_corpus("TOY")
        assert corpus.protocol == "TOY"
        section = corpus.document.section_titled("Toy Probe Message")
        assert section is not None
        assert section.diagram.layout.field_names() == ["type", "code", "checksum"]

        run = Sage(mode="revised", protocol_registry=registry).process_corpus("TOY")
        assert run.flagged() == []
        program = run.code_unit.program_named("toy_toy_probe_receiver")
        assert program is not None
        rendered = program.render_python()
        assert "ctx.set_field('toy', 'type', 7)" in rendered
        assert "ctx.compute_checksum('toy', 'checksum'" in rendered

    def test_unregister_removes_protocol(self, registry):
        registry.register_protocol("TOY", text=TOY_RFC)
        registry.load_corpus("TOY")
        registry.unregister_protocol("TOY")
        with pytest.raises(UnknownProtocolError):
            registry.load_corpus("TOY")
