"""The persistent content-addressed cache store: byte-level store
semantics (atomic publish, corruption quarantine, clear/stats), the
promoted parse/compiled caches sharing warm state across registry
instances, `REPRO_CACHE_DIR` pickup, the engine's single-worker
parallel fallback, and a multiprocessing stress test racing writers
into one store directory."""

import multiprocessing
import os

import pytest

from repro.cache import (
    COMPILED_NAMESPACE,
    PARSE_NAMESPACE,
    WINNOW_NAMESPACE,
    CacheStore,
    PersistentCompiledCache,
    PersistentParseCache,
    PersistentWinnowCache,
)
from repro.ccg.chart import ParseResult
from repro.ccg.semantics import Call, Const
from repro.core import SageEngine
from repro.rfc.registry import CompiledProgramCache, ParseCache, ProtocolRegistry


# -- the byte-level store ------------------------------------------------------

class TestCacheStore:
    def test_round_trip(self, tmp_path):
        store = CacheStore(tmp_path)
        assert store.put("ns", "key-1", b"payload-1")
        assert store.get("ns", "key-1") == b"payload-1"
        assert store.stats()["disk_hits"] == 1
        assert store.stats()["writes"] == 1

    def test_absent_key_is_a_miss(self, tmp_path):
        store = CacheStore(tmp_path)
        assert store.get("ns", "nope") is None
        assert store.stats()["disk_misses"] == 1

    def test_identical_rewrites_dedupe_to_one_entry(self, tmp_path):
        store = CacheStore(tmp_path)
        store.put("ns", "key", b"same")
        store.put("ns", "key", b"same")
        assert store.entry_count("ns") == 1
        assert store.get("ns", "key") == b"same"

    def test_layout_is_versioned_and_sharded(self, tmp_path):
        store = CacheStore(tmp_path)
        store.put("parse", "some-key", b"x")
        path = store.path_for("parse", "some-key")
        assert path.startswith(os.path.join(str(tmp_path), "v1", "parse"))
        assert os.path.exists(path)
        # Two-hex-char shard directory between namespace and entry.
        shard = os.path.basename(os.path.dirname(path))
        assert len(shard) == 2

    def test_corrupt_entry_quarantined_and_recomputable(self, tmp_path):
        store = CacheStore(tmp_path)
        store.put("ns", "key", b"good-bytes")
        path = store.path_for("ns", "key")
        with open(path, "wb") as handle:
            handle.write(b"garbage that is not an entry")
        # The corrupt file reads as a miss and moves to quarantine/ ...
        assert store.get("ns", "key") is None
        assert store.quarantine_count() == 1
        assert not os.path.exists(path)
        assert store.stats()["quarantined"] == 1
        # ... and the slot accepts a recompute.
        assert store.put("ns", "key", b"good-bytes")
        assert store.get("ns", "key") == b"good-bytes"

    def test_truncated_payload_is_detected(self, tmp_path):
        store = CacheStore(tmp_path)
        store.put("ns", "key", b"a" * 100)
        path = store.path_for("ns", "key")
        blob = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(blob[:-10])  # valid magic, torn payload
        assert store.get("ns", "key") is None
        assert store.quarantine_count() == 1

    def test_clear_removes_entries_and_quarantine(self, tmp_path):
        store = CacheStore(tmp_path)
        store.put("a", "k1", b"1")
        store.put("b", "k2", b"2")
        with open(store.path_for("a", "k1"), "wb") as handle:
            handle.write(b"junk")
        store.get("a", "k1")  # quarantines
        assert store.clear() == 1  # k2 (k1 already moved to quarantine)
        assert store.entry_count() == 0
        assert store.quarantine_count() == 0
        assert store.get("b", "k2") is None

    def test_stats_reports_namespace_footprint(self, tmp_path):
        store = CacheStore(tmp_path)
        store.put("parse", "k", b"abc")
        stats = store.stats()
        assert stats["layout_version"] == 1
        assert stats["namespaces"]["parse"]["entries"] == 1
        assert stats["namespaces"]["parse"]["bytes"] > 0

    def test_verify_clean_store(self, tmp_path):
        store = CacheStore(tmp_path)
        store.put("a", "k1", b"one")
        store.put("b", "k2", b"two")
        assert store.verify() == {"checked": 2, "corrupt": 0}
        assert store.quarantine_count() == 0

    def test_verify_quarantines_corruption(self, tmp_path):
        store = CacheStore(tmp_path)
        store.put("ns", "good", b"good")
        store.put("ns", "bad", b"soon-torn")
        path = store.path_for("ns", "bad")
        blob = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(blob[:-4])  # valid magic, torn payload
        assert store.verify() == {"checked": 2, "corrupt": 1}
        assert store.quarantine_count() == 1
        # The slot is free again: a recompute republishes and verifies clean.
        assert store.put("ns", "bad", b"soon-torn")
        assert store.verify() == {"checked": 2, "corrupt": 0}


class TestCacheCliExitCodes:
    """`python -m repro cache stats` must fail loudly (exit 6) on a
    corrupted store and report hit *rates*, not just raw counters."""

    def _corrupt_one_entry(self, store):
        namespace = store.namespaces()[0]
        path = next(iter(store._entry_paths(namespace)))
        blob = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(blob[:-4])

    def test_stats_exit_zero_and_rates_on_clean_store(self, tmp_path, capsys):
        from repro.api.cli import main as cli_main

        store = CacheStore(tmp_path)
        store.put("parse", "k", b"entry")
        assert cli_main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        output = capsys.readouterr().out
        assert "verified" in output
        assert "hit rate" in output

    def test_stats_exit_six_on_corrupted_store(self, tmp_path, capsys):
        import json as json_module

        from repro.api.cli import main as cli_main

        store = CacheStore(tmp_path)
        store.put("parse", "k1", b"entry-one")
        store.put("parse", "k2", b"entry-two")
        self._corrupt_one_entry(store)
        code = cli_main(["cache", "stats", "--cache-dir", str(tmp_path),
                         "--json"])
        assert code == 6
        captured = capsys.readouterr()
        error = json_module.loads(captured.err)
        assert error["error"] == "cache-corrupt"
        assert error["corrupt"] == 1
        # the stats payload still printed before the failure
        payload = json_module.loads(captured.out)
        assert payload["data"]["verification"]["corrupt"] == 1


# -- the promoted registry caches ----------------------------------------------

def _parse_value():
    form = Call("Is", (Const("type"), Const("0")))
    result = ParseResult(logical_forms=[form], token_count=3,
                         cells_filled=5, backend="indexed")
    return (result, True)


KEY = ("indexed", "lexsha", "chunkfp", "the type is 0", "type")


class TestPersistentParseCache:
    def test_write_through_and_cross_instance_hit(self, tmp_path):
        store = CacheStore(tmp_path)
        first = PersistentParseCache(store)
        value = _parse_value()
        first.put(KEY, value)

        # A second cache over the same directory — a fresh process in
        # miniature: no shared memory, only the store.
        second = PersistentParseCache(CacheStore(tmp_path))
        got = second.get(KEY)
        assert got == value
        stats = second.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 0
        assert stats["disk_hits"] == 1
        # The disk hit promoted into memory: the next get never touches disk.
        second.get(KEY)
        assert second.stats()["store"]["disk_hits"] == 1

    def test_memory_clear_keeps_disk(self, tmp_path):
        cache = PersistentParseCache(CacheStore(tmp_path))
        cache.put(KEY, _parse_value())
        cache.clear()
        assert len(cache) == 0
        assert cache.get(KEY) == _parse_value()
        assert cache.stats()["disk_hits"] == 1

    def test_clear_disk_forces_recompute(self, tmp_path):
        cache = PersistentParseCache(CacheStore(tmp_path))
        cache.put(KEY, _parse_value())
        cache.clear()
        assert cache.clear_disk() == 1
        assert cache.get(KEY) is None
        assert cache.stats()["misses"] == 1

    def test_corrupt_disk_entry_degrades_to_miss(self, tmp_path):
        store = CacheStore(tmp_path)
        cache = PersistentParseCache(store)
        cache.put(KEY, _parse_value())
        cache.clear()
        # Valid store framing, garbage parse payload: the envelope decode
        # fails and the cache reports an honest miss.
        from repro.cache.persistent import _key_string
        store.put(PARSE_NAMESPACE, _key_string(KEY), b"not a parse entry")
        assert cache.get(KEY) is None
        # The recompute republishes a good copy over it.
        cache.put(KEY, _parse_value())
        cache.clear()
        assert cache.get(KEY) == _parse_value()

    def test_ad_hoc_values_stay_memory_only(self, tmp_path):
        store = CacheStore(tmp_path)
        cache = PersistentParseCache(store)
        cache.put(("weird",), {"not": "a parse entry"})
        assert cache.get(("weird",)) == {"not": "a parse entry"}
        assert store.entry_count(PARSE_NAMESPACE) == 0


class TestPersistentWinnowCache:
    @staticmethod
    def _winnow_value():
        from repro.disambiguation import winnow

        forms = [
            Call("Is", (Const("checksum", span=(0, 1)),
                        Const("0", span=(2, 3)))),
            Call("Is", (Const("0", span=(2, 3)),
                        Const("checksum", span=(0, 1)))),
        ]
        return winnow("the checksum is 0", forms)

    WKEY = ("suite-fp", "substrate-fp", "checksum", "the checksum is 0",
            "lf-digest")

    def test_trace_round_trips_across_instances(self, tmp_path):
        value = self._winnow_value()
        first = PersistentWinnowCache(CacheStore(tmp_path))
        first.put(self.WKEY, value)
        # A second cache over the same directory — a fresh process in
        # miniature: the whole WinnowTrace (stage counts and survivors)
        # must come back from disk alone.
        second = PersistentWinnowCache(CacheStore(tmp_path))
        got = second.get(self.WKEY)
        assert got is not None
        assert got.counts == value.counts
        assert [repr(f) for f in got.survivors] \
            == [repr(f) for f in value.survivors]
        assert second.stats()["disk_hits"] == 1
        assert second.store.entry_count(WINNOW_NAMESPACE) == 1

    def test_corrupt_disk_entry_degrades_to_miss(self, tmp_path):
        from repro.cache.persistent import _key_string

        store = CacheStore(tmp_path)
        cache = PersistentWinnowCache(store)
        cache.put(self.WKEY, self._winnow_value())
        cache.clear()
        store.put(WINNOW_NAMESPACE, _key_string(self.WKEY),
                  b"not a winnow entry")
        assert cache.get(self.WKEY) is None
        assert cache.stats()["misses"] == 1

    def test_warm_boot_recomputes_no_winnow(self, tmp_path):
        """Two registry instances over one store: the second's corpus run
        must answer every winnow from disk — zero recomputes, the
        cross-process warm-boot contract ``scripts/ci.sh`` gates via
        ``python -m repro cache stats``."""
        from repro.core import Sage

        def sweep(registry):
            corpus = registry.load_corpus("IGMP")
            sage = Sage(mode="revised", protocol_registry=registry)
            return sage.process_corpus(corpus)

        cold = ProtocolRegistry(cache_dir=tmp_path)
        first = sweep(cold)
        assert cold.winnow_cache().stats()["misses"] > 0  # actually winnowed

        warm = ProtocolRegistry(cache_dir=tmp_path)
        second = sweep(warm)
        stats = warm.winnow_cache().stats()
        assert stats["misses"] == 0
        assert stats["disk_hits"] > 0
        assert second.by_status() == first.by_status()


class TestPersistentCompiledCache:
    def test_source_round_trips_across_instances(self, tmp_path):
        first = PersistentCompiledCache(CacheStore(tmp_path))
        key = ("python", "sha1-of-ir")
        first.put_source(key, "def f():\n    return 1\n")
        second = PersistentCompiledCache(CacheStore(tmp_path))
        assert second.get_source(key) == "def f():\n    return 1\n"
        assert second.get_source(("python", "other")) is None

    def test_base_cache_has_no_disk_layer(self):
        cache = CompiledProgramCache()
        assert cache.get_source(("python", "x")) is None
        cache.put_source(("python", "x"), "src")  # no-op, must not raise
        assert cache.get_source(("python", "x")) is None


# -- registry promotion --------------------------------------------------------

class TestRegistryPromotion:
    def test_no_cache_dir_keeps_plain_caches(self):
        registry = ProtocolRegistry()
        assert registry.cache_store() is None
        assert type(registry.parse_cache()) is ParseCache
        assert type(registry.winnow_cache()) is ParseCache
        assert type(registry.compiled_cache()) is CompiledProgramCache

    def test_cache_dir_promotes_all_caches(self, tmp_path):
        registry = ProtocolRegistry(cache_dir=tmp_path)
        assert registry.cache_store() is not None
        assert isinstance(registry.parse_cache(), PersistentParseCache)
        assert isinstance(registry.winnow_cache(), PersistentWinnowCache)
        assert isinstance(registry.compiled_cache(), PersistentCompiledCache)
        # All promoted caches share the registry's one store.
        assert registry.parse_cache().store is registry.compiled_cache().store
        assert registry.winnow_cache().store is registry.parse_cache().store

    def test_env_var_pickup(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        registry = ProtocolRegistry()
        assert registry.cache_dir == str(tmp_path)
        assert isinstance(registry.parse_cache(), PersistentParseCache)

    def test_explicit_dir_beats_env_var(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        registry = ProtocolRegistry(cache_dir=tmp_path / "arg")
        assert registry.cache_dir == str(tmp_path / "arg")


# -- the engine's single-worker parallel fallback ------------------------------

class TestSingleWorkerFallback:
    def test_one_worker_degrades_to_sequential(self):
        engine = SageEngine(mode="revised")
        baseline = engine.process_corpora(parallel=False)
        fallback = engine.process_corpora(parallel=True, max_workers=1)
        # No pool ran: the engine recorded no worker fan-out ...
        assert engine.last_parallel_workers is None
        # ... and the output is the sequential output, identically.
        assert set(fallback) == set(baseline)
        for name, run in baseline.items():
            assert fallback[name].by_status() == run.by_status()
            assert [r.status for r in fallback[name].results] == [
                r.status for r in run.results
            ]


# -- concurrent writers (multiprocessing stress) -------------------------------

N_WORKERS = 4
N_SHARED = 6
N_DISTINCT = 4
N_ROUNDS = 5


def _payload(tag):
    return (f"payload:{tag}:").encode() * 40


def _stress_worker(root, worker_id, barrier, errors):
    """Race writes of identical and distinct keys; verify every read is
    either a miss or the exact expected payload (no torn reads)."""
    store = CacheStore(root)
    barrier.wait()  # maximize write contention
    try:
        for round_no in range(N_ROUNDS):
            for i in range(N_SHARED):
                store.put("stress", f"shared-{i}", _payload(f"shared-{i}"))
            for j in range(N_DISTINCT):
                key = f"distinct-{worker_id}-{j}"
                store.put("stress", key, _payload(key))
            # Read everything any worker may have written so far.
            for i in range(N_SHARED):
                got = store.get("stress", f"shared-{i}")
                if got is not None and got != _payload(f"shared-{i}"):
                    errors.put(f"torn shared read: shared-{i} round {round_no}")
            for other in range(N_WORKERS):
                for j in range(N_DISTINCT):
                    key = f"distinct-{other}-{j}"
                    got = store.get("stress", key)
                    if got is not None and got != _payload(key):
                        errors.put(f"torn distinct read: {key}")
        if store.quarantined:
            errors.put(f"worker {worker_id} quarantined {store.quarantined} "
                       "entries during a clean race")
    except Exception as exc:  # pragma: no cover - failure reporting
        errors.put(f"worker {worker_id} crashed: {exc!r}")


class TestConcurrentWriters:
    def test_racing_writers_never_tear(self, tmp_path):
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(N_WORKERS)
        errors = ctx.Queue()
        workers = [
            ctx.Process(target=_stress_worker,
                        args=(str(tmp_path), worker_id, barrier, errors))
            for worker_id in range(N_WORKERS)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=120)
        assert all(worker.exitcode == 0 for worker in workers)

        failures = []
        while not errors.empty():
            failures.append(errors.get())
        assert not failures, failures

        # After the dust settles: one entry per key (identical racing
        # writes deduped), every key answers without recompute, nothing
        # was quarantined and no temp files leaked.
        store = CacheStore(tmp_path)
        assert store.entry_count("stress") == N_SHARED + N_WORKERS * N_DISTINCT
        for i in range(N_SHARED):
            assert store.get("stress", f"shared-{i}") == _payload(f"shared-{i}")
        for worker_id in range(N_WORKERS):
            for j in range(N_DISTINCT):
                key = f"distinct-{worker_id}-{j}"
                assert store.get("stress", key) == _payload(key)
        assert store.disk_misses == 0
        assert store.quarantine_count() == 0
        assert os.listdir(os.path.join(store.base, "tmp")) == []

    def test_corrupt_entry_recovered_after_race(self, tmp_path):
        # Corrupt one settled entry, then let racing writers republish it:
        # exactly one reader quarantines, every later read sees good bytes.
        store = CacheStore(tmp_path)
        store.put("stress", "shared-0", _payload("shared-0"))
        with open(store.path_for("stress", "shared-0"), "wb") as handle:
            handle.write(b"bit rot")

        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(2)
        errors = ctx.Queue()
        workers = [
            ctx.Process(target=_stress_worker,
                        args=(str(tmp_path), worker_id, barrier, errors))
            for worker_id in range(2)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=120)
        assert all(worker.exitcode == 0 for worker in workers)
        # The workers' first shared-0 put landed before any read, so no
        # worker should have seen the corrupt file as a quarantine *and*
        # reads afterwards must all be clean.
        failures = []
        while not errors.empty():
            failures.append(errors.get())
        torn = [f for f in failures if f.startswith("torn")]
        assert not torn, torn
        assert store.get("stress", "shared-0") == _payload("shared-0")
