"""The pluggable parsing subsystem: trie lexicon, packed forest, parity.

Three layers of coverage:

* unit tests for the new lexicon indexes (first-word/phrase-length index,
  trie walk, entry dedup with a stable fingerprint) and the packed forest
  (enumeration order, derivation packing, the explicit pruning budget);
* the backend-parity contract: the ``indexed`` backend must produce the
  same logical forms — signature sets, statuses, golden generated C —
  as the ``reference`` CKY chart on every bundled corpus in both pipeline
  modes, plus hypothesis-driven random token streams;
* the cache-key contract: backend id participates in every parse-cache
  key (no cross-backend contamination), and a lexicon edit invalidates
  both backends' entries.
"""

import pathlib
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    ProcessRequest,
    SageService,
    from_json,
    to_json,
)
from repro.api.errors import ParserBackendNotFound
from repro.ccg.chart import CCGChartParser, ParseResult
from repro.ccg.lexicon import LexEntry, Lexicon, build_lexicon, core_entries
from repro.ccg.semantics import signature
from repro.core.engine import SageEngine
from repro.core.stages import ParseStage
from repro.nlp import NounPhraseChunker
from repro.parsing import (
    DEFAULT_PARSER_BACKEND,
    PROFILE,
    IndexedChartParser,
    ParserBackend,
    PruneBudget,
    UnknownParserBackendError,
    backend_id,
    create_parser,
    parser_backend_names,
    profile_delta,
    reset_parser_state,
)
from repro.rfc.corpus import SpecSentence
from repro.rfc.registry import ParseCache, ProtocolRegistry, default_registry

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

PROTOCOLS = ("ICMP", "IGMP", "NTP", "BFD")
MODES = ("strict", "revised")


@pytest.fixture(scope="module")
def registry():
    return default_registry()


@pytest.fixture(scope="module")
def chunker(registry):
    return registry.chunker()


@pytest.fixture(scope="module")
def reference(registry):
    return registry.parser(backend="reference")


@pytest.fixture(scope="module")
def indexed(registry):
    return registry.parser(backend="indexed")


# -- lexicon indexes -----------------------------------------------------------

class TestLexiconIndexes:
    def test_phrase_lengths(self):
        lexicon = build_lexicon()
        assert lexicon.phrase_lengths("starting") == (2,)
        assert 1 in lexicon.phrase_lengths("is")
        assert lexicon.phrase_lengths("no-such-word") == ()

    def test_trie_matches_agree_with_lookup(self):
        lexicon = build_lexicon()
        words = ["set", "to", "zero", "starting", "with", "the", "type"]
        for start in range(len(words)):
            via_trie = {end: entries
                        for end, entries in lexicon.iter_matches(words, start)}
            for end in range(start + 1, min(start + 1 + lexicon.max_phrase_words,
                                            len(words) + 1)):
                direct = lexicon.lookup(words[start:end])
                if direct:
                    assert via_trie[end] == direct
                else:
                    assert end not in via_trie

    def test_trie_yields_shortest_first(self):
        lexicon = build_lexicon()
        ends = [end for end, _ in
                lexicon.iter_matches(["starting", "with", "the"], 0)]
        assert ends == sorted(ends)

    def test_add_deduplicates_identical_entries(self):
        lexicon = build_lexicon()
        before = len(lexicon.entries())
        fingerprint = lexicon.fingerprint()
        lexicon.extend(core_entries())  # every one already present
        assert len(lexicon.entries()) == before
        assert lexicon.fingerprint() == fingerprint

    def test_distinct_groups_are_not_deduplicated(self):
        lexicon = Lexicon()
        entry = core_entries()[0]
        lexicon.add(entry)
        other_group = LexEntry(entry.phrase, entry.category, entry.sem,
                               group="other", overgen=entry.overgen)
        lexicon.add(other_group)
        assert len(lexicon.entries()) == 2

    def test_new_entry_still_changes_fingerprint(self):
        lexicon = build_lexicon()
        fingerprint = lexicon.fingerprint()
        extra = LexEntry("frobnicates", core_entries()[0].category,
                         core_entries()[0].sem, group="test")
        lexicon.add(extra)
        assert lexicon.fingerprint() != fingerprint
        assert lexicon.lookup(["frobnicates"]) == [extra]


# -- the backend registry ------------------------------------------------------

class TestBackendRegistry:
    def test_bundled_backends(self):
        names = parser_backend_names()
        assert "reference" in names
        assert "indexed" in names
        assert DEFAULT_PARSER_BACKEND == "indexed"

    def test_create_parser(self):
        lexicon = build_lexicon()
        assert isinstance(create_parser("reference", lexicon), CCGChartParser)
        assert isinstance(create_parser("indexed", lexicon),
                          IndexedChartParser)
        # None resolves to the default backend.
        assert backend_id(create_parser(None, lexicon)) == DEFAULT_PARSER_BACKEND

    def test_unknown_backend(self):
        with pytest.raises(UnknownParserBackendError):
            create_parser("nope", build_lexicon())

    def test_backends_satisfy_protocol(self, reference, indexed):
        assert isinstance(reference, ParserBackend)
        assert isinstance(indexed, ParserBackend)

    def test_registry_memoizes_per_backend(self, registry):
        assert registry.parser(backend="indexed") is registry.parser(
            backend="indexed")
        assert registry.parser(backend="indexed") is not registry.parser(
            backend="reference")
        # Backends over the same groups share the memoized lexicon.
        assert (registry.parser(backend="indexed").lexicon
                is registry.parser(backend="reference").lexicon)


# -- the packed forest ---------------------------------------------------------

class TestParseForest:
    SENTENCE = "The checksum is zero and the code is one."

    def test_enumeration_order_matches_parse_result(self, indexed, chunker):
        tokens = chunker.chunk_text(self.SENTENCE)
        forest = indexed.parse_forest(tokens)
        result = indexed.parse(tokens)
        assert list(forest.logical_forms()) == result.logical_forms

    def test_enumeration_order_matches_reference(self, reference, indexed,
                                                 chunker):
        tokens = chunker.chunk_text(self.SENTENCE)
        forest = indexed.parse_forest(tokens)
        assert ([signature(form) for form in forest.logical_forms()]
                == [signature(form)
                    for form in reference.parse(tokens).logical_forms])

    def test_forest_packs_derivations(self, indexed, chunker):
        tokens = chunker.chunk_text(self.SENTENCE)
        forest = indexed.parse_forest(tokens)
        # Spurious ambiguity means strictly more derivations than items.
        assert forest.packed_derivations() > forest.item_count()
        assert any(item.derivation_count() > 1
                   for items in forest.cells.values() for item in items)

    def test_roots_are_grounded(self, indexed, chunker):
        forest = indexed.parse_forest(chunker.chunk_text(self.SENTENCE))
        assert forest.root_items()
        for item in forest.root_items():
            assert item.grounded

    def test_lazy_enumeration(self, indexed, chunker):
        forest = indexed.parse_forest(chunker.chunk_text(self.SENTENCE))
        generator = forest.logical_forms()
        first = next(generator)
        assert signature(first)  # generator yields without exhausting

    def test_unpruned_by_default(self, indexed, chunker):
        forest = indexed.parse_forest(chunker.chunk_text(self.SENTENCE))
        assert forest.dropped_items == 0
        assert not forest.pruned


class TestPruneBudget:
    SENTENCE = "The checksum is zero and the code is one."

    def test_budget_records_drops(self, registry, chunker):
        tight = IndexedChartParser(registry.lexicon(),
                                   budget=PruneBudget(max_cell_items=3))
        tokens = chunker.chunk_text(self.SENTENCE)
        forest = tight.parse_forest(tokens)
        assert forest.pruned
        assert forest.dropped_items > 0
        result = forest.to_result()
        assert result.pruned
        assert result.dropped_items == forest.dropped_items

    def test_reference_counts_drops_identically(self, registry, chunker):
        tokens = chunker.chunk_text(self.SENTENCE)
        tight_ref = CCGChartParser(registry.lexicon(), max_cell_items=3)
        tight_idx = IndexedChartParser(registry.lexicon(), max_cell_items=3)
        ref_result = tight_ref.parse(tokens)
        idx_result = tight_idx.parse(tokens)
        assert ref_result.pruned and idx_result.pruned
        assert ref_result.dropped_items == idx_result.dropped_items
        assert ref_result.logical_forms == idx_result.logical_forms

    def test_max_cell_items_constructor_equivalence(self, registry):
        parser = IndexedChartParser(registry.lexicon(), max_cell_items=7)
        assert parser.budget.max_cell_items == 7
        assert parser.max_cell_items == 7


# -- backend parity ------------------------------------------------------------

def _result_fingerprint(result: ParseResult) -> tuple:
    return (
        [signature(form) for form in result.logical_forms],
        result.unknown_words,
        result.token_count,
        result.cells_filled,
        result.dropped_items,
    )


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_backend_parse_parity_per_corpus(registry, chunker, reference,
                                         indexed, protocol):
    """Raw parser parity: identical LF lists (signatures AND provenance-
    sensitive equality), unknown words, and chart statistics."""
    for spec in registry.load_corpus(protocol).sentences:
        tokens = chunker.chunk_text(spec.text)
        ref_result = reference.parse(tokens)
        idx_result = indexed.parse(tokens)
        assert _result_fingerprint(ref_result) == _result_fingerprint(idx_result)
        assert ref_result.logical_forms == idx_result.logical_forms
        assert ref_result.backend == "reference"
        assert idx_result.backend == "indexed"


@pytest.fixture(scope="module")
def runs_by_backend(registry):
    """mode → backend → {protocol: SageRun}, all four corpora."""
    runs = {}
    for mode in MODES:
        runs[mode] = {}
        for backend in ("reference", "indexed"):
            engine = SageEngine(mode=mode, protocol_registry=registry,
                                parser_backend=backend)
            runs[mode][backend] = engine.process_corpora(parallel=False)
    return runs


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_backend_pipeline_parity(runs_by_backend, mode, protocol):
    """Full-pipeline parity: statuses, survivor signature sets, pruned
    flags, and generated code agree between the backends."""
    ref_run = runs_by_backend[mode]["reference"][protocol]
    idx_run = runs_by_backend[mode]["indexed"][protocol]
    assert [str(r.status) for r in ref_run.results] == [
        str(r.status) for r in idx_run.results
    ]
    for ref_result, idx_result in zip(ref_run.results, idx_run.results):
        ref_sigs = ([signature(f) for f in ref_result.trace.survivors]
                    if ref_result.trace else [])
        idx_sigs = ([signature(f) for f in idx_result.trace.survivors]
                    if idx_result.trace else [])
        assert ref_sigs == idx_sigs
        assert ref_result.pruned == idx_result.pruned
        assert ref_result.subject_supplied == idx_result.subject_supplied
    assert ref_run.code_unit.render_c() == idx_run.code_unit.render_c()


@pytest.mark.parametrize("mode", MODES)
def test_backend_golden_icmp(runs_by_backend, mode):
    """Both backends reproduce the golden ICMP C byte-for-byte."""
    golden = (GOLDEN_DIR / f"icmp_{mode}.c").read_text()
    for backend in ("reference", "indexed"):
        rendered = runs_by_backend[mode][backend]["ICMP"].code_unit.render_c()
        assert rendered + "\n" == golden or rendered == golden


WORD_POOL = [
    "the", "checksum", "is", "zero", "code", "if", "and", "of", "gateway",
    "set", "to", "one", "message", "discarded", "echo", "reply", "data",
    "field", "or", "not", "host", "address", "source", "may", "be", "sent",
]


class TestBackendPropertyParity:
    @given(st.lists(st.sampled_from(WORD_POOL), min_size=1, max_size=9))
    @settings(max_examples=60, deadline=None)
    def test_random_token_streams(self, words):
        registry = default_registry()
        chunker = registry.chunker()
        tokens = chunker.chunk_text(" ".join(words) + ".")
        ref_result = registry.parser(backend="reference").parse(tokens)
        idx_result = registry.parser(backend="indexed").parse(tokens)
        assert _result_fingerprint(ref_result) == _result_fingerprint(idx_result)

    @given(st.sampled_from(PROTOCOLS), st.integers(0, 10 ** 6))
    @settings(max_examples=30, deadline=None)
    def test_sampled_corpus_sentences(self, protocol, seed):
        registry = default_registry()
        sentences = registry.load_corpus(protocol).sentences
        spec = sentences[seed % len(sentences)]
        tokens = registry.chunker().chunk_text(spec.text)
        ref_result = registry.parser(backend="reference").parse(tokens)
        idx_result = registry.parser(backend="indexed").parse(tokens)
        assert _result_fingerprint(ref_result) == _result_fingerprint(idx_result)


# -- parse stage and cache keys ------------------------------------------------

class TestBackendCacheKeys:
    SPEC = SpecSentence(text="The checksum is zero.", protocol="ICMP",
                        message="echo", field="checksum", kind="field")

    def _stage(self, backend: str, cache: ParseCache):
        registry = default_registry()
        return ParseStage(registry.parser(backend=backend),
                          registry.chunker(), cache=cache)

    def test_fingerprint_carries_backend_id(self):
        cache = ParseCache()
        reference_stage = self._stage("reference", cache)
        indexed_stage = self._stage("indexed", cache)
        assert reference_stage.fingerprint().startswith("reference:")
        assert indexed_stage.fingerprint().startswith("indexed:")
        assert (reference_stage.fingerprint().split(":", 1)[1]
                == indexed_stage.fingerprint().split(":", 1)[1])

    def test_no_cross_backend_contamination(self):
        cache = ParseCache()
        reference_stage = self._stage("reference", cache)
        indexed_stage = self._stage("indexed", cache)
        first = reference_stage.run(self.SPEC)
        assert not first.from_cache
        # The other backend must NOT be served the reference's entry.
        second = indexed_stage.run(self.SPEC)
        assert not second.from_cache
        assert len(cache) == 2
        # Each backend hits its own entry on repeat.
        assert reference_stage.run(self.SPEC).from_cache
        assert indexed_stage.run(self.SPEC).from_cache
        assert reference_stage.run(self.SPEC).result.backend == "reference"
        assert indexed_stage.run(self.SPEC).result.backend == "indexed"

    def test_lexicon_edit_invalidates_both_backends(self):
        cache = ParseCache()
        lexicon = build_lexicon()
        reference_stage = ParseStage(CCGChartParser(lexicon),
                                    default_registry().chunker(), cache=cache)
        indexed_stage = ParseStage(IndexedChartParser(lexicon),
                                   default_registry().chunker(), cache=cache)
        reference_stage.run(self.SPEC)
        indexed_stage.run(self.SPEC)
        assert len(cache) == 2
        # Edit the shared lexicon: both stages must miss (fresh keys), and
        # the stale entries must not be served to either backend.
        lexicon.add(LexEntry("zorble", core_entries()[0].category,
                             core_entries()[0].sem, group="test"))
        assert not reference_stage.run(self.SPEC).from_cache
        assert not indexed_stage.run(self.SPEC).from_cache
        assert len(cache) == 4

    def test_stage_backend_kwarg(self):
        stage = ParseStage(backend="reference")
        assert backend_id(stage.parser) == "reference"
        default_stage = ParseStage()
        assert backend_id(default_stage.parser) == DEFAULT_PARSER_BACKEND

    def test_lexicon_edit_changes_indexed_parse(self):
        """The indexed backend's process-global lexical cache must key on
        lexicon content: an edit affecting a word *in* the sentence has to
        reach the next parse, in lockstep with a fresh reference parse."""
        chunker = default_registry().chunker()
        tokens = chunker.chunk_text("The gateway is frobbed.")
        lexicon = build_lexicon()
        indexed_parser = IndexedChartParser(lexicon)
        before = indexed_parser.parse(tokens)
        # Give "frobbed" a passive-verb reading; a word *in* the sentence,
        # so a stale lexical-span cache would hide it.
        template = lexicon.lookup(["reversed"])[0]
        lexicon.add(LexEntry("frobbed", template.category, template.sem,
                             group="test"))
        after = indexed_parser.parse(tokens)
        assert (_result_fingerprint(after) != _result_fingerprint(before))
        reference_after = CCGChartParser(lexicon).parse(tokens)
        assert _result_fingerprint(after) == _result_fingerprint(reference_after)

    def test_backend_id_of_unnamed_subclass(self):
        """A subclass that overrides behavior without claiming a name must
        not inherit its base backend's cache identity."""

        class TweakedParser(CCGChartParser):
            pass

        class NamedParser(CCGChartParser):
            name = "tweaked"

        lexicon = build_lexicon()
        assert backend_id(TweakedParser(lexicon)) == "TweakedParser"
        assert backend_id(NamedParser(lexicon)) == "tweaked"
        assert backend_id(CCGChartParser(lexicon)) == "reference"
        assert backend_id(IndexedChartParser(lexicon)) == "indexed"


# -- engine / registry threading ----------------------------------------------

class TestEngineBackendThreading:
    def test_engine_parser_backend_override(self):
        engine = SageEngine(parser_backend="reference")
        assert backend_id(engine.parser) == "reference"
        default_engine = SageEngine()
        assert backend_id(default_engine.parser) == DEFAULT_PARSER_BACKEND

    def test_register_protocol_parser_backend(self):
        registry = ProtocolRegistry()
        registry.register_protocol(
            "TOY",
            text=("RFC: 9999\nTOY PROTOCOL\n\nIntroduction\n\n"
                  "   The toy protocol is used by hosts.\n"
                  "   The checksum is zero.\n"),
            parser_backend="reference",
        )
        assert registry.parser_backend_for("TOY") == "reference"
        assert registry.parser_backend_for("ICMP") == DEFAULT_PARSER_BACKEND
        engine = SageEngine(protocol_registry=registry)
        parsed = engine.parse_batch("TOY")
        assert parsed
        assert all(item.result.backend == "reference" for item in parsed)

    def test_parse_batch_backend_override(self):
        engine = SageEngine()
        parsed = engine.parse_batch("IGMP", parser_backend="reference")
        assert parsed
        assert all(item.result.backend == "reference" for item in parsed)
        again = engine.parse_batch("IGMP", parser_backend="reference")
        assert all(item.from_cache for item in again)

    def test_parse_batch_honors_custom_lexicon(self):
        """An engine built over a private lexicon must batch-parse with
        that grammar even when the caller names a backend explicitly."""
        lexicon = build_lexicon(groups=("core",))  # no domain entries
        engine = SageEngine(lexicon=lexicon, parse_cache=False)
        parsed = engine.parse_batch("NTP", parser_backend="reference")
        assert engine._parse_stages["reference"].parser.lexicon is lexicon
        full_engine = SageEngine(parse_cache=False)
        full = full_engine.parse_batch("NTP", parser_backend="reference")
        # The core-only grammar must behave differently from the full one
        # somewhere in the corpus (the ntp-group entries are missing).
        assert any(
            [signature(f) for f in a.result.logical_forms]
            != [signature(f) for f in b.result.logical_forms]
            for a, b in zip(parsed, full)
        )

    def test_set_lexicon_pins_per_protocol_resolution(self):
        """After swapping an engine onto a custom grammar, per-protocol
        backend resolution must never fall back to the registry lexicon."""
        registry = ProtocolRegistry()
        registry.register_protocol(
            "TOY",
            text=("RFC: 9999\nTOY PROTOCOL\n\nIntroduction\n\n"
                  "   The checksum is zero.\n"),
            parser_backend="reference",
        )
        engine = SageEngine(protocol_registry=registry, parse_cache=False)
        custom = build_lexicon(groups=("core",))
        engine.set_lexicon(custom)
        assert engine.lexicon is custom
        spec = registry.load_corpus("TOY").sentences[0]
        stage = engine._stage_for(spec)
        assert stage.parser.lexicon is custom

    def test_pruned_surfaces_on_sentence_results(self):
        # RFC 5880's densest sentence genuinely overflows the default
        # 2000-item cell budget — the historical silent truncation, now an
        # honest flag, identical under both backends.
        for backend in ("reference", "indexed"):
            engine = SageEngine(parser_backend=backend)
            run = engine.process_corpus("BFD")
            assert any(result.pruned for result in run.results)


# -- api surface ---------------------------------------------------------------

class TestApiBackendSelection:
    def test_process_request_round_trip(self):
        request = ProcessRequest(protocol="ICMP", parser_backend="reference")
        assert from_json(to_json(request)) == request
        # Default stays off the wire.
        assert "parser_backend" not in ProcessRequest("ICMP").to_dict()

    def test_service_backend_parity(self):
        service = SageService()
        by_backend = {
            backend: service.process(ProcessRequest(
                protocol="IGMP", parser_backend=backend))
            for backend in ("reference", "indexed")
        }
        assert (by_backend["reference"].status_counts
                == by_backend["indexed"].status_counts)
        assert ([r.status for r in by_backend["reference"].sentences]
                == [r.status for r in by_backend["indexed"].sentences])

    def test_unknown_parser_backend_is_structured(self):
        service = SageService()
        with pytest.raises(ParserBackendNotFound):
            service.process(ProcessRequest(protocol="ICMP",
                                           parser_backend="nope"))

    def test_parse_diagnostics(self):
        service = SageService()
        report = service.parse_diagnostics("NTP")
        assert report["protocol"] == "NTP"
        assert report["parser_backend"] == DEFAULT_PARSER_BACKEND
        assert report["sentence_count"] == len(report["sentences"])
        assert report["sentences_per_s"] > 0
        for sentence in report["sentences"]:
            assert set(sentence) >= {"index", "text", "lf_count",
                                     "lf_set_sha1", "pruned"}

    def test_diagnostics_parity_across_backends(self):
        service = SageService()
        sha_sets = {
            backend: [s["lf_set_sha1"] for s in service.parse_diagnostics(
                "IGMP", parser_backend=backend)["sentences"]]
            for backend in ("reference", "indexed")
        }
        assert sha_sets["reference"] == sha_sets["indexed"]

    def test_pruned_in_sentence_report_round_trip(self):
        service = SageService()
        response = service.process(ProcessRequest(protocol="BFD"))
        pruned_reports = [r for r in response.sentences if r.pruned]
        assert pruned_reports
        rebuilt = from_json(to_json(response))
        assert [r.pruned for r in rebuilt.sentences] == [
            r.pruned for r in response.sentences
        ]


# -- agenda exploration, span memo, deferred construction, profiling -----------

class TestBudgetContract:
    """A budget below one item per cell is a contradiction and must fail at
    construction, never parse to a silently empty forest."""

    def test_zero_budget_fails_loudly(self):
        with pytest.raises(ValueError, match="max_cell_items"):
            PruneBudget(max_cell_items=0)

    def test_negative_budget_fails_loudly(self):
        with pytest.raises(ValueError, match="max_cell_items"):
            PruneBudget(max_cell_items=-3)

    def test_zero_max_cell_items_parser_fails(self, registry):
        with pytest.raises(ValueError, match="max_cell_items"):
            IndexedChartParser(registry.lexicon(), max_cell_items=0)

    def test_drops_survive_span_memo_replay(self, registry, chunker):
        """The counted drops are part of the span memo's stored value: a
        second parser replaying memoized cells must charge exactly the
        drops the combining parse counted."""
        tokens = chunker.chunk_text(
            "The checksum is zero and the code is one.")
        budget = PruneBudget(max_cell_items=3)
        first = IndexedChartParser(registry.lexicon(), budget=budget)
        combined = first.parse_forest(tokens)
        assert combined.pruned and combined.dropped_items > 0
        replayed = IndexedChartParser(
            registry.lexicon(), budget=budget).parse_forest(tokens)
        assert replayed.dropped_items == combined.dropped_items
        assert (_result_fingerprint(replayed.to_result())
                == _result_fingerprint(combined.to_result()))


class TestBfdOverflowSentence:
    """The known BFD chart-overflow sentence keeps its accurate pruned
    accounting through the agenda rewrite, all the way up to the API's
    SentenceReport."""

    def test_sentence_report_pruned_stays_accurate(self, registry, chunker):
        service = SageService(registry=registry)
        response = service.process(ProcessRequest(protocol="BFD"))
        pruned = [r for r in response.sentences if r.pruned]
        assert pruned, "the BFD overflow sentence must stay flagged"
        assert any("demand mode" in r.text.lower() for r in pruned)
        # The report's flag is the forest's counted-drop fact, not a guess:
        # re-deriving the forest reproduces a positive, identical drop
        # count for every flagged sentence.
        parser = IndexedChartParser(registry.lexicon())
        for report in pruned:
            forest = parser.parse_forest(chunker.chunk_text(report.text))
            assert forest.pruned and forest.dropped_items > 0


class TestSpanMemoInvariance:
    """Cross-sentence span reuse is an optimization, never a semantic
    change: batch-parsing a shuffled corpus with the memo enabled equals
    per-sentence parsing with the memo disabled."""

    _baseline_cache: dict = {}

    @classmethod
    def _memoless_fingerprint(cls, registry, chunker, text):
        if text not in cls._baseline_cache:
            parser = IndexedChartParser(registry.lexicon(),
                                        reuse_spans=False)
            cls._baseline_cache[text] = _result_fingerprint(
                parser.parse(chunker.chunk_text(text)))
        return cls._baseline_cache[text]

    @given(st.integers(0, 10 ** 9))
    @settings(max_examples=5, deadline=None)
    def test_shuffled_batch_matches_memoless(self, seed):
        registry = default_registry()
        chunker = registry.chunker()
        sentences = [spec.text
                     for spec in registry.load_corpus("ICMP").sentences]
        random.Random(seed).shuffle(sentences)
        batch_parser = IndexedChartParser(registry.lexicon())
        for text in sentences:
            got = _result_fingerprint(
                batch_parser.parse(chunker.chunk_text(text)))
            assert got == self._memoless_fingerprint(registry, chunker, text)


class TestDeferredTermConstruction:
    """Combined items are inserted from structural ids alone; their terms
    materialize lazily and must match the ids they were inserted under."""

    SENTENCE = ("If the code is zero, the checksum is zero and "
                "the code is one.")

    def test_parse_defers_term_construction(self, registry, chunker):
        parser = IndexedChartParser(registry.lexicon(), reuse_spans=False)
        forest = parser.parse_forest(chunker.chunk_text(self.SENTENCE))
        deferred = [item
                    for items in forest.cells.values()
                    for item in items if item.ntriple is None]
        assert deferred, "combination must not build terms eagerly"

    def test_forced_terms_match_structural_ids(self, registry, chunker):
        """The structural production engine and the term producer must
        agree item-for-item: forcing any deferred item yields a triple
        whose sid and groundedness equal the ones it was inserted (and
        deduplicated) under."""
        parser = IndexedChartParser(registry.lexicon(), reuse_spans=False)
        forest = parser.parse_forest(chunker.chunk_text(self.SENTENCE))
        checked = 0
        for items in forest.cells.values():
            for item in items:
                triple = item.triple()
                assert triple[1] == item.sid
                assert triple[2] == item.grounded
                checked += 1
        assert checked > 50  # a real chart, not a degenerate one


class TestProfileCounters:
    SENTENCE = "The checksum is zero and the code is one."

    def test_counters_accumulate_per_parse(self, registry, chunker):
        tokens = chunker.chunk_text(self.SENTENCE)
        parser = IndexedChartParser(registry.lexicon())
        before = PROFILE.counts()
        parser.parse_forest(tokens)
        delta = profile_delta(before, PROFILE.counts())
        assert delta["parses"] == 1
        assert delta["agenda_pops"] > 0
        # Every popped target is either answered by the span memo or
        # combined fresh — no third path.  (A hit on a memoized *empty*
        # span seeds nothing, so seeded counts a subset of the hits.)
        assert (delta["cells_visited"] + delta["span_memo_hits"]
                == delta["agenda_pops"])
        assert delta["cells_seeded"] <= delta["span_memo_hits"]
        assert delta["deferred_items"] >= delta["forced_items"] >= 0

    def test_identical_reparse_is_pure_span_reuse(self, registry, chunker):
        tokens = chunker.chunk_text(self.SENTENCE)
        IndexedChartParser(registry.lexicon()).parse_forest(tokens)  # warm
        before = PROFILE.counts()
        IndexedChartParser(registry.lexicon()).parse_forest(tokens)
        delta = profile_delta(before, PROFILE.counts())
        assert delta["span_memo_hits"] == delta["agenda_pops"] > 0
        assert delta["span_memo_misses"] == 0
        assert delta["span_reuse_rate"] == 1.0

    def test_reset_parser_state_recools_every_memo(self, registry, chunker):
        tokens = chunker.chunk_text(self.SENTENCE)
        parser = IndexedChartParser(registry.lexicon())
        warm = parser.parse_forest(tokens)  # warm every memo
        reset_parser_state()
        before = PROFILE.counts()
        cold = parser.parse_forest(tokens)
        delta = profile_delta(before, PROFILE.counts())
        # A genuinely cold parse: nothing answered from the span memo,
        # every combined span paid for fresh — and the output is
        # unaffected by the reset (sids survive; only memos dropped).
        assert delta["span_memo_hits"] == 0
        assert delta["span_memo_misses"] == delta["agenda_pops"] > 0
        assert _result_fingerprint(cold.to_result()) == _result_fingerprint(
            warm.to_result()
        )

    def test_profile_in_parse_diagnostics(self, registry):
        service = SageService(registry=registry)
        report = service.parse_diagnostics("IGMP")
        profile = report["profile"]
        assert set(profile) > {"parses", "agenda_pops", "span_reuse_rate",
                               "deferred_items", "budget_drops"}
        assert all(isinstance(value, (int, float))
                   for value in profile.values())
