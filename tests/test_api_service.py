"""The SageService front door and the ``python -m repro`` CLI."""

import io
import json
import pathlib

import pytest

from repro.api import (
    BackendNotFound,
    ProcessRequest,
    ProcessResponse,
    ProtocolNotFound,
    RequestError,
    SageService,
    SweepRequest,
    SweepResponse,
    from_json,
    to_json,
)
from repro.api.cli import main as cli_main
from repro.core import SageEngine
from repro.framework.addressing import ip_to_int
from repro.framework.icmp import ECHO_REPLY, ICMPHeader, make_echo
from repro.framework.ip import PROTO_ICMP, IPv4Header, make_ip_packet
from repro.rfc.registry import ProtocolRegistry
from repro.runtime import ExecutionContext, GeneratedICMP

PROTOCOLS = ("ICMP", "IGMP", "NTP", "BFD")


@pytest.fixture(scope="module")
def service():
    return SageService()  # default registry: warm shared substrate


class TestProcess:
    def test_process_matches_the_engine(self, service):
        response = service.process(ProcessRequest(protocol="ICMP"))
        run = SageEngine(mode="revised").process_corpus("ICMP")
        assert response.protocol == "ICMP"
        assert response.sentence_count == len(run.results)
        assert response.status_counts == {
            str(status): count for status, count in run.by_status().items()
        }
        assert response.flagged_count == len(run.flagged())
        assert len(response.sentences) == len(run.results)

    def test_request_forms_are_equivalent(self, service):
        from_object = service.process(ProcessRequest(protocol="BFD"))
        from_dict = service.process({"protocol": "BFD"})
        from_json_text = service.process(
            to_json(ProcessRequest(protocol="BFD"))
        )
        from_kwargs = service.process(protocol="BFD")
        assert from_object == from_dict == from_json_text == from_kwargs

    def test_include_sentences_false_omits_reports(self, service):
        response = service.process(ProcessRequest(protocol="IGMP",
                                                  include_sentences=False))
        assert response.sentences == []
        assert response.sentence_count > 0

    def test_artifact_rendering_matches_the_run(self, service):
        response = service.process(ProcessRequest(protocol="ICMP",
                                                  artifacts=("c",)))
        run = service.run("ICMP")
        assert response.artifacts[0].source == run.code_unit.render_c()
        assert response.artifacts[0].fingerprint == run.code_unit.fingerprint()

    def test_strict_mode_flags_sentences(self, service):
        response = service.process(ProcessRequest(protocol="ICMP",
                                                  mode="strict"))
        assert response.flagged_count > 0
        assert [r for r in response.flagged() if r.status == "ambiguous-lf"]


class TestSweep:
    def test_sweep_covers_every_registered_protocol(self, service):
        response = service.sweep(SweepRequest(parallel=False))
        assert response.protocols == list(PROTOCOLS)
        for name in PROTOCOLS:
            assert response.responses[name].sentence_count > 0

    def test_sweep_subset_and_case_folding(self, service):
        response = service.sweep(SweepRequest(protocols=("icmp", "bfd"),
                                              parallel=False))
        assert response.protocols == ["ICMP", "BFD"]

    def test_sweep_matches_per_protocol_process(self, service):
        sweep = service.sweep(SweepRequest(parallel=False,
                                           include_sentences=True))
        for name in PROTOCOLS:
            single = service.process(ProcessRequest(protocol=name))
            assert sweep.responses[name] == single

    def test_parallel_sweep_output_is_identical(self, service):
        parallel = service.sweep(SweepRequest(parallel=True,
                                              include_sentences=True))
        sequential = service.sweep(SweepRequest(parallel=False,
                                                include_sentences=True))
        assert parallel.responses == sequential.responses

    def test_sweep_round_trips(self, service):
        response = service.sweep(SweepRequest(parallel=False))
        back = from_json(to_json(response))
        assert isinstance(back, SweepResponse)
        assert back == response


class TestArtifacts:
    def test_artifact_executes_after_the_wire(self, service):
        artifact_json = to_json(service.artifact("ICMP", backend="python"))
        implementation = GeneratedICMP.from_artifact(artifact_json)
        echo = make_echo(0x42, 7, b"service-layer")
        request = make_ip_packet(
            ip_to_int("10.0.1.100"), ip_to_int("10.0.1.1"), PROTO_ICMP,
            echo.pack(),
        )
        reply_bytes = implementation.echo_reply(request, ip_to_int("10.0.1.1"))
        reply = ICMPHeader.unpack(IPv4Header.unpack(reply_bytes).data)
        assert reply.type == ECHO_REPLY
        assert reply.identifier == 0x42
        assert reply.payload == b"service-layer"

    def test_interp_artifact_is_self_contained(self, service):
        artifact = service.artifact("ICMP", backend="interp")
        assert artifact.source == ""  # the interpreter emits no text
        implementation = GeneratedICMP.from_artifact(artifact,
                                                     backend="interp")
        assert implementation.builder("icmp_echo_reply_receiver") is not None

    def test_non_executable_artifact_falls_back_to_python(self, service):
        implementation = GeneratedICMP.from_artifact(
            service.artifact("ICMP", backend="c")
        )
        assert implementation.builder("icmp_echo_reply_receiver") is not None


class TestErrors:
    def test_unknown_protocol(self, service):
        with pytest.raises(ProtocolNotFound) as excinfo:
            service.process(ProcessRequest(protocol="QUIC"))
        payload = excinfo.value.to_dict()
        assert payload["error"] == "protocol-not-found"
        assert payload["known"] == list(PROTOCOLS)

    def test_unknown_protocol_in_sweep(self, service):
        with pytest.raises(ProtocolNotFound):
            service.sweep(SweepRequest(protocols=("ICMP", "QUIC")))

    def test_unknown_backend(self, service):
        with pytest.raises(BackendNotFound):
            service.artifact("ICMP", backend="rust")
        with pytest.raises(BackendNotFound):
            service.process(ProcessRequest(protocol="ICMP",
                                           artifacts=("rust",)))

    def test_bad_mode(self, service):
        with pytest.raises(RequestError):
            service.run("ICMP", mode="casual")

    def test_request_object_plus_kwargs_rejected(self, service):
        with pytest.raises(RequestError):
            service.process(ProcessRequest(protocol="ICMP"), protocol="BFD")


class TestCli:
    def _run(self, argv):
        out = io.StringIO()
        code = cli_main(argv, out=out)
        return code, out.getvalue()

    def test_process_json_is_a_contract_payload(self):
        code, output = self._run(["process", "ICMP", "--json"])
        assert code == 0
        response = from_json(output)
        assert isinstance(response, ProcessResponse)
        assert response.status_counts["ok"] > 0

    def test_sweep_all_json(self):
        code, output = self._run(["sweep", "--all", "--json"])
        assert code == 0
        response = from_json(output)
        assert isinstance(response, SweepResponse)
        assert response.protocols == list(PROTOCOLS)

    def test_sweep_without_targets_fails_structured(self, capsys):
        assert cli_main(["sweep"]) == 2
        assert "bad-request" in capsys.readouterr().err

    def test_unknown_protocol_exits_3(self, capsys):
        # Not-found failures exit 3, distinct from bad-request's 2 —
        # aligned with the ApiError code family across all subcommands.
        assert cli_main(["process", "QUIC"]) == 3
        assert "protocol-not-found" in capsys.readouterr().err

    def test_emit_writes_the_rendered_source(self, tmp_path):
        target = tmp_path / "icmp.c"
        code, _output = self._run(["emit", "ICMP", "--backend", "c",
                                   "--output", str(target)])
        assert code == 0
        service = SageService()
        assert target.read_text() == service.run("ICMP").code_unit.render_c() + "\n"

    def test_resolve_list_human_output(self):
        code, output = self._run(["resolve", "ICMP", "--no-bundled-rewrites",
                                  "--list"])
        assert code == 0
        assert "flagged sentences" in output
        assert "[unparsed]" in output

    def test_resolve_json_reports(self):
        code, output = self._run(["resolve", "ICMP", "--no-bundled-rewrites",
                                  "--pending", "--json"])
        assert code == 0
        payload = json.loads(output)
        assert payload["kind"] == "sentence_report_list"
        assert payload["data"]["reports"]

    def test_resolve_without_journal_is_refused(self, capsys):
        # the decision would die with the process while claiming success
        code = cli_main(["resolve", "ICMP", "--no-bundled-rewrites",
                         "--sentence", "5", "--annotate"])
        assert code == 2
        assert "bad-request" in capsys.readouterr().err

    def test_malformed_journal_is_a_structured_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("this is not json")
        code = cli_main(["resolve", "ICMP", "--journal", str(bad),
                         "--pending"])
        assert code == 2
        assert "bad-request" in capsys.readouterr().err

    def test_unknown_backend_fails_before_the_run(self, service):
        with pytest.raises(BackendNotFound):
            service.artifact("ICMP", backend="rust")

    def test_resolve_and_replay_via_journal(self, tmp_path):
        journal = tmp_path / "journal.json"
        code, output = self._run([
            "resolve", "ICMP", "--no-bundled-rewrites",
            "--journal", str(journal), "--sentence", "5", "--annotate",
            "--note", "cli test", "--replay", "--json",
        ])
        assert code == 0
        assert journal.exists()
        lines = output.strip().splitlines()
        resolution = from_json(lines[0])
        assert resolution.kind == "annotate"
        replayed = from_json(lines[1])
        # replaying the journal: one fewer flagged sentence than a bare
        # no-rewrites run
        code2, bare = self._run(["process", "ICMP", "--no-bundled-rewrites",
                                 "--json"])
        assert code2 == 0
        assert replayed.flagged_count == from_json(bare).flagged_count - 1
