"""Tests for the differential scenario fuzzer (repro.fuzz).

Covers the generator's determinism, the runner's divergence detection
(including an injected broken peer proving the harness actually catches
disagreement), the oracles, the shrinker's case-file round trip, the
interop matrix artifact, and the service/CLI surface.
"""

import json

import pytest

from repro.api.cli import main as cli_main
from repro.api.errors import RequestError
from repro.api.service import SageService
from repro.core.engine import SageEngine
from repro.fuzz import (
    EXECUTABLE_BACKENDS,
    FAMILIES,
    PROTOCOLS,
    DifferentialRunner,
    Episode,
    InteropMatrix,
    TraceGenerator,
    bench_keys,
    check_trace,
    first_difference,
    load_case,
    record_bench,
    register_oracle,
    register_peer,
    run_fuzz,
    save_case,
    shrink,
)
from repro.fuzz.oracles import ORACLES
from repro.fuzz.scenarios import _PEER_FACTORIES


@pytest.fixture(scope="module")
def units():
    runs = SageEngine(mode="revised").process_corpora(list(PROTOCOLS),
                                                      parallel=False)
    return {name: run.code_unit for name, run in runs.items()}


class TestTraceGenerator:
    def test_same_seed_reproduces_episodes_exactly(self):
        first = [e.to_dict() for e in TraceGenerator(seed=5).episodes(24)]
        second = [e.to_dict() for e in TraceGenerator(seed=5).episodes(24)]
        assert first == second

    def test_different_seeds_differ(self):
        first = [e.to_dict() for e in TraceGenerator(seed=5).episodes(24)]
        second = [e.to_dict() for e in TraceGenerator(seed=6).episodes(24)]
        assert first != second

    def test_one_pass_covers_every_family(self):
        total_families = sum(len(fams) for fams in FAMILIES.values())
        episodes = TraceGenerator(seed=0).episodes(total_families)
        assert {(e.protocol, e.family) for e in episodes} == {
            (protocol, family)
            for protocol, fams in FAMILIES.items() for family in fams
        }

    def test_protocol_filter(self):
        episodes = TraceGenerator(seed=0, protocols=("ntp",)).episodes(6)
        assert {e.protocol for e in episodes} == {"NTP"}

    def test_family_filter(self):
        episodes = TraceGenerator(seed=0, families=("ping",)).episodes(4)
        assert {(e.protocol, e.family) for e in episodes} == {("ICMP", "ping")}

    def test_unknown_protocol_rejected(self):
        with pytest.raises(KeyError):
            TraceGenerator(protocols=("SMTP",))

    def test_unknown_family_rejected(self):
        with pytest.raises(KeyError):
            TraceGenerator(families=("warp-speed",))

    def test_episode_json_round_trip(self):
        episode = TraceGenerator(seed=9).episodes(1)[0]
        assert Episode.from_json(episode.to_json()) == episode


class TestFirstDifference:
    def test_equal_values(self):
        assert first_difference({"a": [1, {"b": 2}]}, {"a": [1, {"b": 2}]}) is None

    def test_nested_path(self):
        found = first_difference({"a": {"b": [1, 2]}}, {"a": {"b": [1, 3]}})
        assert found == ("a.b[1]", 2, 3)

    def test_list_length(self):
        assert first_difference({"a": [1]}, {"a": [1, 2]}) == ("a.length", 1, 2)

    def test_missing_key(self):
        assert first_difference({}, {"a": 1}) == ("a", None, 1)

    def test_scalar_root(self):
        assert first_difference(1, 2) == ("<root>", 1, 2)


class TestDifferentialRunner:
    def test_needs_two_backends(self, units):
        with pytest.raises(ValueError):
            DifferentialRunner(units, backends=("reference",))

    def test_small_campaign_is_clean(self, units):
        report = run_fuzz(units, seed=0, episodes=12)
        assert report.clean
        assert report.episodes == 12
        assert report.matrix.all_green
        assert not report.divergences and not report.violations
        assert all(entry["stable"]
                   for entry in report.c_fingerprints.values())
        assert set(report.c_fingerprints) == set(PROTOCOLS)

    def test_same_seed_same_trace_digest(self, units):
        first = run_fuzz(units, seed=42, episodes=8)
        second = run_fuzz(units, seed=42, episodes=8)
        assert first.traces_sha1 == second.traces_sha1

    def test_report_round_trips_through_json(self, units):
        report = run_fuzz(units, seed=0, episodes=4, protocols=("IGMP",))
        decoded = json.loads(json.dumps(report.to_dict()))
        assert decoded["clean"] is True
        assert decoded["matrix"]["all_green"] is True

    def test_broken_peer_is_caught_and_shrinks(self, units):
        """A peer that always fires its timeout must split the matrix —
        and the divergence must shrink to a still-failing episode."""
        class _EagerNTP:
            @staticmethod
            def timeout_predicate(peer):
                return True

        register_peer("NTP", "eager", lambda unit: _EagerNTP())
        try:
            report = run_fuzz(units, seed=1, episodes=6,
                              protocols=("NTP",),
                              backends=("reference", "eager"))
            assert report.divergences
            assert not report.matrix.all_green
            assert not report.clean
            assert report.matrix.divergent_cells
            runner = DifferentialRunner(units,
                                        backends=("reference", "eager"))
            smallest = shrink(report.divergences[0].episode, runner.diverges)
            assert runner.diverges(smallest)
            # Shrinking only simplifies params, never the episode identity.
            assert smallest.protocol == "NTP"
            assert smallest.seed == report.divergences[0].episode.seed
        finally:
            _PEER_FACTORIES.pop(("NTP", "eager"))


class TestOracles:
    def test_registered_oracle_runs_and_reports(self):
        episode = Episode(protocol="IGMP", family="query", seed=0, params={})

        def always_flags(ep, trace):
            return ["synthetic violation"]

        register_oracle("IGMP", always_flags)
        try:
            assert "synthetic violation" in check_trace(episode, {})
        finally:
            ORACLES["IGMP"].remove(always_flags)

    def test_bfd_state_oracle_flags_illegal_state(self):
        episode = Episode(protocol="BFD", family="packet-storm", seed=0,
                          params={})
        trace = {"steps": [{"snapshot": {"SessionState": 9,
                                         "RemoteSessionState": 1}}]}
        violations = check_trace(episode, trace)
        assert violations and "SessionState=9" in violations[0]

    def test_ntp_oracle_flags_unreset_timer(self):
        episode = Episode(protocol="NTP", family="timeout", seed=0, params={})
        trace = {"trajectory": [[3, 1, "dead"]], "emitted": []}
        violations = check_trace(episode, trace)
        assert violations and "reset" in violations[0]


class TestShrink:
    def test_shrinks_lists_and_scalars(self):
        episode = Episode(protocol="NTP", family="timeout", seed=0,
                          params={"count": 9, "items": [1, 2, 3, 4]})

        def still_fails(candidate):
            return candidate.params.get("count", 0) >= 3

        smallest = shrink(episode, still_fails)
        assert still_fails(smallest)
        assert smallest.params["count"] < 9
        assert smallest.params["items"] == []  # irrelevant list emptied

    def test_refuses_passing_episode(self):
        episode = Episode(protocol="NTP", family="timeout", seed=0, params={})
        with pytest.raises(ValueError):
            shrink(episode, lambda candidate: False)

    def test_case_file_round_trip(self, tmp_path):
        episode = TraceGenerator(seed=3).episodes(1)[0]
        path = save_case(episode, tmp_path, note="unit test")
        assert load_case(path) == episode
        payload = json.loads(path.read_text())
        assert payload["kind"] == "fuzz_case"
        assert payload["note"] == "unit test"

    def test_load_case_rejects_other_kinds(self, tmp_path):
        path = tmp_path / "not_a_case.json"
        path.write_text(json.dumps({"kind": "something-else"}))
        with pytest.raises(ValueError):
            load_case(path)


class TestInteropMatrix:
    def test_records_and_scores_cells(self):
        matrix = InteropMatrix.for_backends(("a", "b", "c"))
        assert matrix.pairs == ("a|b", "a|c", "b|c")
        matrix.record("a|b", "NTP", "timeout", diverged=False)
        matrix.record("a|b", "NTP", "timeout", diverged=True)
        assert not matrix.all_green
        assert matrix.divergent_cells == [("a|b", "NTP", "timeout")]
        cell = matrix.cell("a|b", "NTP", "timeout")
        assert (cell.episodes, cell.divergences) == (2, 1)
        assert matrix.rows()[0][-1] == "DIVERGED"

    def test_bench_keys_extract_headline_numbers(self):
        matrix = InteropMatrix.for_backends(("a", "b"))
        matrix.record("a|b", "NTP", "timeout", diverged=False)
        report = {"seed": 7, "episodes": 1, "backends": ["a", "b"],
                  "divergences": [], "violations": [],
                  "matrix": matrix.to_dict(), "traces_sha1": "cafe",
                  "c_fingerprints": {}, "clean": True}
        keys = bench_keys(report)
        assert keys["fuzz_seed"] == 7
        assert keys["fuzz_matrix_all_green"] is True
        assert keys["fuzz_traces_sha1"] == "cafe"

    def test_record_bench_preserves_existing_numbers(self, tmp_path):
        path = tmp_path / "BENCH_pipeline.json"
        path.write_text(json.dumps({"pipeline_total_s": 1.25,
                                    "serve_rps": 100, "fuzz_seed": 99}))
        merged = record_bench({"seed": 0, "episodes": 2, "clean": True,
                               "divergences": [], "violations": [],
                               "matrix": {}}, path)
        on_disk = json.loads(path.read_text())
        assert on_disk == merged
        assert on_disk["pipeline_total_s"] == 1.25  # untouched
        assert on_disk["serve_rps"] == 100          # untouched
        assert on_disk["fuzz_seed"] == 0            # replaced


class TestServiceAndCli:
    def test_service_fuzz_endpoint(self):
        report = SageService().fuzz(seed=0, episodes=3, protocols=("IGMP",))
        assert report["clean"] is True
        assert report["episodes"] == 3
        assert report["matrix"]["pairs"] == [
            "reference|python", "reference|interp", "python|interp"]

    def test_service_fuzz_rejects_unknown_protocol(self):
        with pytest.raises(RequestError):
            SageService().fuzz(protocols=("SMTP",))

    def test_service_fuzz_rejects_unknown_family(self):
        with pytest.raises(RequestError):
            SageService().fuzz(families=("warp-speed",))

    def test_cli_fuzz_json_campaign(self, capsys):
        import io

        out = io.StringIO()
        code = cli_main(["fuzz", "--seed", "0", "--episodes", "2",
                         "--protocol", "IGMP", "--json"], out=out)
        assert code == 0
        payload = json.loads(out.getvalue())
        assert payload["kind"] == "fuzz_report"
        assert payload["data"]["clean"] is True
        assert payload["data"]["cases"] == []

    def test_cli_replay_round_trip(self, tmp_path):
        import io

        episode = TraceGenerator(seed=0, protocols=("IGMP",)).episodes(1)[0]
        path = save_case(episode, tmp_path)
        out = io.StringIO()
        code = cli_main(["fuzz", "--replay", str(path), "--json"], out=out)
        assert code == 0
        payload = json.loads(out.getvalue())
        assert payload["kind"] == "fuzz_replay"
        assert payload["data"]["clean"] is True
