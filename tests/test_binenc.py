"""The ``schema:1b`` binary envelope: ``from_bytes(to_bytes(x)) == x`` for
every contract kind, equality with the JSON-decoded object, parse-cache
entry framing, and corruption rejection — across the real corpora and
under randomized (hypothesis) payloads."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    ContractError,
    SageService,
    SweepRequest,
    from_bytes,
    from_json,
    to_bytes,
    to_json,
)
from repro.api.binenc import (
    MAGIC,
    _T_LIST,
    _T_SNEW,
    _T_SREF,
    parse_entry_from_bytes,
    parse_entry_to_bytes,
)
from repro.api.errors import EnvelopeDecodeError
from repro.ccg.chart import ParseResult
from repro.ccg.semantics import App, Call, Const, Lam, Var
from repro.core import SageEngine, SentenceResult, SentenceStatus
from repro.rfc.corpus import SpecSentence

PROTOCOLS = ("ICMP", "IGMP", "NTP", "BFD")


@pytest.fixture(scope="module")
def runs():
    """One revised-mode run per bundled protocol (warm shared substrate)."""
    engine = SageEngine(mode="revised")
    return engine.process_corpora(parallel=False)


# -- pipeline results over the real corpora ------------------------------------

class TestRunRoundTrips:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_sage_run_round_trips(self, runs, protocol):
        run = runs[protocol]
        assert from_bytes(to_bytes(run)) == run

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_binary_decode_equals_json_decode(self, runs, protocol):
        run = runs[protocol]
        assert from_bytes(to_bytes(run)) == from_json(to_json(run))

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_envelope_smaller_than_json(self, runs, protocol):
        run = runs[protocol]
        assert len(to_bytes(run)) * 3 <= len(to_json(run).encode())

    def test_every_sentence_result_round_trips(self, runs):
        for result in runs["ICMP"].results:
            assert from_bytes(to_bytes(result)) == result

    def test_traces_and_specs_round_trip(self, runs):
        for result in runs["ICMP"].results:
            assert from_bytes(to_bytes(result.spec)) == result.spec
            if result.trace is not None:
                assert from_bytes(to_bytes(result.trace)) == result.trace
            if result.rewrite is not None:
                assert from_bytes(to_bytes(result.rewrite)) == result.rewrite

    def test_code_unit_round_trips(self, runs):
        unit = runs["ICMP"].code_unit
        back = from_bytes(to_bytes(unit))
        assert to_json(back) == to_json(unit)

    def test_sweep_response_round_trips(self):
        response = SageService().sweep(SweepRequest(parallel=False))
        back = from_bytes(to_bytes(response))
        assert back == from_json(to_json(response))
        assert len(to_bytes(response)) < len(to_json(response).encode())


# -- parse-cache entry framing -------------------------------------------------

class TestParseEntryFraming:
    def test_real_parse_results_round_trip(self):
        from repro.rfc.registry import default_registry

        registry = default_registry()
        corpus = registry.load_corpus("ICMP")
        parser = registry.parser()
        chunker = registry.chunker()
        for spec in corpus.sentences[:10]:
            result = parser.parse(chunker.chunk_text(spec.text))
            blob = parse_entry_to_bytes(result, True)
            back, subject_supplied = parse_entry_from_bytes(blob)
            assert subject_supplied is True
            assert back == result

    def test_flags_and_counters_survive(self):
        result = ParseResult(
            logical_forms=[Const("type")],
            unknown_words=["zorp", "blig"],
            token_count=7,
            cells_filled=21,
            dropped_items=0,
            backend="indexed",
        )
        back, subject_supplied = parse_entry_from_bytes(
            parse_entry_to_bytes(result, False)
        )
        assert subject_supplied is False
        assert back == result


# -- randomized payloads -------------------------------------------------------

constants = st.sampled_from(["checksum", "code", "type", "0", "1", "datagram"])


def terms(max_leaves=6):
    leaves = st.one_of(
        st.builds(
            Const, constants,
            span=st.one_of(st.none(), st.tuples(st.integers(0, 9),
                                                st.integers(10, 19))),
        ),
        st.builds(Var, st.sampled_from(["x", "y", "m"])),
    )
    return st.recursive(
        leaves,
        lambda children: st.one_of(
            st.builds(
                Call,
                st.sampled_from(["Is", "Of", "And", "Action", "If"]),
                st.lists(children, min_size=1, max_size=3).map(tuple),
                trigger=st.one_of(st.none(), st.integers(0, 30)),
                flags=st.sets(st.sampled_from(["distributed", "overgen"])).map(
                    frozenset
                ),
            ),
            st.builds(Lam, st.sampled_from(["x", "y"]), children),
            st.builds(App, children, children),
        ),
        max_leaves=max_leaves,
    )


SPEC = SpecSentence(text="t", protocol="ICMP", message="Echo Message",
                    field="type", kind="field")


class TestRandomizedRoundTrips:
    @settings(max_examples=60, deadline=None)
    @given(term=terms())
    def test_sem_trees_round_trip(self, term):
        result = SentenceResult(
            spec=SPEC, status=SentenceStatus.OK, logical_form=term
        )
        assert from_bytes(to_bytes(result)) == result

    @settings(max_examples=30, deadline=None)
    @given(forms=st.lists(terms(max_leaves=4), max_size=4))
    def test_parse_entries_round_trip(self, forms):
        result = ParseResult(
            logical_forms=forms, token_count=3, cells_filled=9,
            dropped_items=1, backend="reference",
        )
        back, _ = parse_entry_from_bytes(parse_entry_to_bytes(result, True))
        assert back == result

    @settings(max_examples=30, deadline=None)
    @given(term=terms(max_leaves=4))
    def test_shared_subterms_decode_shared(self, term):
        # The encoder memoizes repeated subtrees by identity; the decoder
        # must rebuild the *same* object graph (one node, two references).
        call = Call("And", (term, term))
        result = SentenceResult(spec=SPEC, status="ok", logical_form=call)
        back = from_bytes(to_bytes(result))
        assert back == result
        decoded = back.logical_form
        assert decoded.args[0] is decoded.args[1]


# -- corruption rejection ------------------------------------------------------

class TestCorruptionRejection:
    def test_bad_magic_rejected(self):
        with pytest.raises(ContractError):
            from_bytes(b"JUNK" + b"\x00" * 16)

    def test_truncation_rejected(self, runs):
        blob = to_bytes(runs["ICMP"].results[0])
        with pytest.raises(ContractError):
            from_bytes(blob[: len(blob) // 2])

    def test_flipped_bytes_rejected_or_detected(self, runs):
        result = runs["ICMP"].results[0]
        blob = bytearray(to_bytes(result))
        blob[len(MAGIC) + 1] ^= 0xFF
        try:
            back = from_bytes(bytes(blob))
        except ContractError:
            return
        # A flip that still frames must not silently equal the original.
        assert back != result

    def test_json_text_is_not_a_binary_envelope(self, runs):
        with pytest.raises(ContractError):
            from_bytes(to_json(runs["ICMP"]).encode())

    def test_parse_entry_rejects_run_envelope(self, runs):
        with pytest.raises(ContractError):
            parse_entry_from_bytes(to_bytes(runs["ICMP"]))


# -- wire bounds checks --------------------------------------------------------
# Length prefixes and element counts come straight off the wire; each must
# be rejected against the bytes actually present *before* sizing an
# allocation or driving a decode loop.  A hostile 2**40 "length" must be a
# structured decode error (HTTP 400 through the server), never a
# multi-gigabyte allocation attempt or a hang.

def _leb(n: int) -> bytes:
    out = bytearray()
    while n > 0x7F:
        out.append((n & 0x7F) | 0x80)
        n >>= 7
    out.append(n)
    return bytes(out)


class TestWireBoundsChecks:
    def test_decode_error_is_a_contract_error(self):
        # transports catching ContractError keep working unchanged
        assert issubclass(EnvelopeDecodeError, ContractError)

    def test_oversized_string_length_is_rejected(self):
        frame = MAGIC + bytes([_T_SNEW]) + _leb(2**40)
        with pytest.raises(EnvelopeDecodeError, match="string length"):
            from_bytes(frame)

    def test_oversized_list_count_is_rejected(self):
        kind = b"process_request"
        frame = (MAGIC + bytes([_T_SNEW]) + _leb(len(kind)) + kind
                 + bytes([_T_LIST]) + _leb(2**40))
        with pytest.raises(EnvelopeDecodeError, match="list count"):
            from_bytes(frame)

    def test_never_terminating_varint_is_rejected(self):
        # 11 continuation bytes: past 64 bits without ever terminating
        frame = MAGIC + bytes([_T_SNEW]) + b"\x80" * 11
        with pytest.raises(EnvelopeDecodeError, match="64 bits"):
            from_bytes(frame)

    def test_truncated_varint_is_rejected(self):
        frame = MAGIC + bytes([_T_SNEW]) + b"\x80"
        with pytest.raises(EnvelopeDecodeError, match="past the end"):
            from_bytes(frame)

    def test_dangling_string_backreference_is_rejected(self):
        frame = MAGIC + bytes([_T_SREF]) + _leb(5)
        with pytest.raises(EnvelopeDecodeError, match="intern slot"):
            from_bytes(frame)

    def test_truncated_parse_entry_is_structured(self, runs):
        result = runs["ICMP"].results[0]
        entry = parse_entry_to_bytes(
            ParseResult(
                logical_forms=([result.logical_form]
                               if result.logical_form is not None else []),
                token_count=3, cells_filled=9, backend="reference",
            ),
            True,
        )
        for cut in (len(MAGIC) + 1, len(entry) // 2, len(entry) - 1):
            with pytest.raises(ContractError):
                parse_entry_from_bytes(entry[:cut])
