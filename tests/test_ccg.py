"""Tests for the CCG substrate: categories, semantics, chart parsing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ccg.categories import (
    NP,
    S,
    Func,
    Prim,
    backward,
    forward,
    parse_category,
)
from repro.ccg.chart import CCGChartParser
from repro.ccg.lexicon import build_lexicon
from repro.ccg.semantics import (
    App,
    Call,
    Const,
    Lam,
    Var,
    free_vars,
    is_grounded,
    reduce_term,
    signature,
    span_of,
    stamp,
    substitute,
)
from repro.nlp import NounPhraseChunker


class TestCategories:
    def test_parse_primitive(self):
        assert parse_category("S") == S
        assert parse_category("NP") == NP

    def test_parse_left_associative(self):
        assert parse_category("S\\NP/NP") == forward(backward(S, NP), NP)

    def test_parse_parenthesized(self):
        category = parse_category("(S/S)/S")
        assert category == forward(forward(S, S), S)

    def test_roundtrip_str(self):
        for text in ("S", "S\\NP", "(S\\NP)/NP", "(S/(S\\NP))\\NP"):
            assert str(parse_category(text)) == str(parse_category(str(parse_category(text))))

    @pytest.mark.parametrize("bad", ["", "S//NP", "(S", "S)"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_category(bad)


class TestSemantics:
    def test_beta_reduction(self):
        term = App(Lam("x", Call("Is", (Var("x"), Const("0")))), Const("checksum"))
        reduced = reduce_term(term)
        assert signature(reduced) == "@Is('checksum','0')"

    def test_capture_avoiding_substitution(self):
        # (λy. x y) with x := y must not capture the bound y.
        term = Lam("y", App(Var("x"), Var("y")))
        result = substitute(term, "x", Var("y"))
        assert isinstance(result, Lam)
        assert result.param != "y"  # alpha-renamed

    def test_free_vars(self):
        term = Lam("x", App(Var("x"), Var("y")))
        assert free_vars(term) == {"y"}

    def test_groundedness(self):
        assert is_grounded(Call("Is", (Const("a"), Const("b"))))
        assert not is_grounded(Lam("x", Var("x")))
        assert not is_grounded(Call("Is", (Var("x"), Const("b"))))

    def test_stamp_spans_and_triggers(self):
        template = Lam("x", Call("If", (Var("x"), Const("c"))))
        stamped = stamp(template, 5)
        call = stamped.body
        assert call.trigger == 5
        assert call.args[1].span == (5, 6)

    def test_span_union(self):
        call = Call("Is", (Const("a", span=(2, 3)), Const("b", span=(7, 8))))
        assert span_of(call) == (2, 8)

    @given(st.integers(0, 50))
    def test_stamp_is_pure(self, index):
        template = Call("Is", (Const("a"), Const("b")))
        stamped = stamp(template, index)
        assert stamped.trigger == index
        assert template.trigger is None  # original untouched


@pytest.fixture(scope="module")
def parser():
    return CCGChartParser(build_lexicon())


@pytest.fixture(scope="module")
def chunker():
    return NounPhraseChunker()


class TestChartParser:
    def parse(self, parser, chunker, text):
        return parser.parse(chunker.chunk_text(text))

    def test_simple_assignment(self, parser, chunker):
        result = self.parse(parser, chunker, "The checksum is zero.")
        signatures = {signature(f) for f in result.logical_forms}
        assert "@Is('checksum','0')" in signatures

    def test_overgeneration_creates_ambiguity(self, parser, chunker):
        result = self.parse(parser, chunker, "The checksum is zero.")
        assert result.count >= 2  # the reversed-@Is over-generation

    def test_conditional(self, parser, chunker):
        result = self.parse(parser, chunker, "If code = 0, the type is zero.")
        signatures = {signature(f) for f in result.logical_forms}
        assert "@If(@Is('code','0'),@Is('type','0'))" in signatures
        # The swapped over-generated form is present pre-winnowing.
        assert "@If(@Is('type','0'),@Is('code','0'))" in signatures

    def test_coordination_group_and_distributed(self, parser, chunker):
        result = self.parse(parser, chunker,
                            "The identifier and the pointer are zeroed.")
        signatures = {signature(f) for f in result.logical_forms}
        grouped = "@Action('zero',@And('identifier','pointer'))"
        distributed = "@And(@Action('zero','identifier'),@Action('zero','pointer'))"
        assert grouped in signatures
        assert distributed in signatures

    def test_of_chains_give_both_bracketings(self, parser, chunker):
        result = self.parse(parser, chunker,
                            "The pointer is the octet of the header of the datagram.")
        signatures = {signature(f) for f in result.logical_forms}
        assert any("@Of(@Of(" in s for s in signatures)
        assert any("@Of('octet',@Of(" in s for s in signatures)

    def test_unknown_function_word_fails_parse(self, parser, chunker):
        # "unless" tags as a subordinator (not fused into an NP) and has no
        # lexicon entry, so the sentence cannot parse.
        result = parser.parse(chunker.chunk_text("Unless the checksum."))
        assert result.count == 0

    def test_unknown_verb_fallback(self, parser, chunker):
        result = self.parse(parser, chunker, "The gateway transmits the datagram.")
        assert result.count >= 1
        assert any("transmits" in signature(f) for f in result.logical_forms)

    def test_parse_is_deterministic(self, parser, chunker):
        text = "For computing the checksum, the checksum field should be zero."
        first = {signature(f) for f in self.parse(parser, chunker, text).logical_forms}
        second = {signature(f) for f in self.parse(parser, chunker, text).logical_forms}
        assert first == second


class TestLexiconAccounting:
    def test_groups_present(self):
        counts = build_lexicon().count_by_group()
        assert set(counts) == {"core", "icmp", "igmp", "ntp", "bfd"}

    def test_without_overgen_is_smaller(self):
        full = build_lexicon()
        clean = full.without_overgen()
        assert len(clean.entries()) < len(full.entries())

    def test_overgen_entries_drive_ambiguity(self):
        chunker = NounPhraseChunker()
        with_overgen = CCGChartParser(build_lexicon())
        without = CCGChartParser(build_lexicon(include_overgen=False))
        text = "The checksum is zero."
        assert (without.parse(chunker.chunk_text(text)).count
                < with_overgen.parse(chunker.chunk_text(text)).count)
