"""Tests for the IGMP switch, BFD sessions, and NTP peers in the simulator."""

from repro.framework.addressing import ip_to_int
from repro.framework.bfd import (
    STATE_ADMIN_DOWN,
    STATE_DOWN,
    STATE_INIT,
    STATE_UP,
    BFDControlHeader,
)
from repro.framework.igmp import ALL_HOSTS_GROUP, HOST_MEMBERSHIP_REPORT, IGMPHeader
from repro.framework.ip import PROTO_IGMP, IPv4Header, make_ip_packet
from repro.framework.igmp import make_query
from repro.framework.ntp import MODE_BROADCAST, MODE_CLIENT, NTPHeader, PeerVariables
from repro.framework.udp import UDPHeader
from repro.netsim import BFDSession, Host, IGMPSwitch, NTPPeer, Network, run_handshake
from repro.framework.tcpdump import decode_packet


def igmp_network():
    network = Network()
    sender = Host("sender")
    sender.add_interface("eth0", "10.0.5.2/24")
    switch = IGMPSwitch("switch")
    switch.add_interface("eth0", "10.0.5.1/24")
    network.add_node(sender)
    network.add_node(switch)
    network.connect("sender", "eth0", "switch", "eth0")
    return network, sender, switch


class TestIGMPSwitch:
    def test_query_elicits_reports(self):
        network, sender, switch = igmp_network()
        member = ip_to_int("10.0.5.9")
        group = ip_to_int("225.1.2.3")
        switch.join(member, group)

        query = make_query()
        packet = make_ip_packet(
            ip_to_int("10.0.5.2"), ALL_HOSTS_GROUP, PROTO_IGMP, query.pack(), ttl=1
        )
        sender.send(packet)
        network.run()

        assert len(switch.queries_seen) == 1
        reports = [
            IGMPHeader.unpack(IPv4Header.unpack(raw).data)
            for raw in switch.sent_capture
        ]
        assert len(reports) == 1
        assert reports[0].type == HOST_MEMBERSHIP_REPORT
        assert reports[0].group_address == group

    def test_reports_are_tcpdump_clean(self):
        network, sender, switch = igmp_network()
        switch.join(ip_to_int("10.0.5.9"), ip_to_int("225.1.2.3"))
        sender.send(
            make_ip_packet(
                ip_to_int("10.0.5.2"), ALL_HOSTS_GROUP, PROTO_IGMP, make_query().pack(), ttl=1
            )
        )
        network.run()
        for raw in switch.sent_capture:
            assert decode_packet(raw).clean

    def test_query_not_to_all_hosts_ignored(self):
        network, sender, switch = igmp_network()
        switch.join(ip_to_int("10.0.5.9"), ip_to_int("225.1.2.3"))
        sender.send(
            make_ip_packet(
                ip_to_int("10.0.5.2"), ip_to_int("10.0.5.1"), PROTO_IGMP,
                make_query().pack(), ttl=1,
            )
        )
        network.run()
        assert switch.queries_seen == []

    def test_multiple_groups_all_reported(self):
        network, sender, switch = igmp_network()
        member = ip_to_int("10.0.5.9")
        groups = [ip_to_int("225.0.0.1"), ip_to_int("225.0.0.2"), ip_to_int("226.1.1.1")]
        for group in groups:
            switch.join(member, group)
        sender.send(
            make_ip_packet(
                ip_to_int("10.0.5.2"), ALL_HOSTS_GROUP, PROTO_IGMP, make_query().pack(), ttl=1
            )
        )
        network.run()
        reported = sorted(
            IGMPHeader.unpack(IPv4Header.unpack(raw).data).group_address
            for raw in switch.sent_capture
        )
        assert reported == sorted(groups)


class TestBFDSession:
    def test_three_way_state_progression(self):
        a = BFDSession()
        b = BFDSession()
        a.state.LocalDiscr = 1
        b.state.LocalDiscr = 2
        run_handshake(a, b)
        assert a.state.SessionState == STATE_UP
        assert b.state.SessionState == STATE_UP
        assert a.state.RemoteDiscr == 2
        assert b.state.RemoteDiscr == 1

    def test_down_down_goes_init(self):
        session = BFDSession()
        session.state.LocalDiscr = 5
        packet = BFDControlHeader(state=STATE_DOWN, my_discriminator=9)
        session.receive_control(packet)
        assert session.state.SessionState == STATE_INIT

    def test_wrong_discriminator_discarded(self):
        session = BFDSession()
        session.state.LocalDiscr = 5
        packet = BFDControlHeader(
            state=STATE_UP, my_discriminator=9, your_discriminator=777
        )
        session.receive_control(packet)
        assert session.discarded == ["no session with that discriminator"]
        assert session.state.SessionState == STATE_DOWN

    def test_zero_detect_mult_discarded(self):
        session = BFDSession()
        packet = BFDControlHeader(state=STATE_DOWN, my_discriminator=9, detect_mult=0)
        session.receive_control(packet)
        assert "detect mult is zero" in session.discarded

    def test_admin_down_session_ignores_traffic(self):
        session = BFDSession()
        session.state.SessionState = STATE_ADMIN_DOWN
        packet = BFDControlHeader(state=STATE_DOWN, my_discriminator=9)
        session.receive_control(packet)
        assert session.state.SessionState == STATE_ADMIN_DOWN

    def test_neighbor_signaling_down_tears_session(self):
        a = BFDSession()
        b = BFDSession()
        a.state.LocalDiscr, b.state.LocalDiscr = 1, 2
        run_handshake(a, b)
        b.state.SessionState = STATE_DOWN
        a.receive_control(b.send_control())
        assert a.state.SessionState == STATE_DOWN

    def test_demand_mode_ceases_periodic_transmission(self):
        """The Table 5 demand-mode sentence, as state-machine behaviour."""
        a = BFDSession()
        b = BFDSession()
        a.state.LocalDiscr, b.state.LocalDiscr = 1, 2
        run_handshake(a, b)
        b.state.DemandMode = 1
        a.receive_control(b.send_control())
        assert a.periodic_transmission_enabled is False


class TestNTPPeer:
    def test_timeout_fires_at_threshold_in_client_mode(self):
        peer = NTPPeer(local_address=ip_to_int("10.0.9.1"),
                       remote_address=ip_to_int("10.0.9.2"))
        peer.peer.threshold = 4
        emitted = peer.run_for(10)
        # Threshold 4: fires at t=4 and then every 4s after the reset.
        assert len(emitted) == 2
        assert peer.peer.timeouts_fired == 2

    def test_no_timeout_in_broadcast_mode(self):
        peer = NTPPeer(
            local_address=1, remote_address=2,
            peer=PeerVariables(mode=MODE_BROADCAST, threshold=2),
        )
        assert peer.run_for(10) == []

    def test_emitted_packet_has_ntp_and_udp_headers(self):
        """§6.3: 'generated packets for the timeout procedure containing
        both NTP and UDP headers'."""
        peer = NTPPeer(local_address=ip_to_int("10.0.9.1"),
                       remote_address=ip_to_int("10.0.9.2"))
        peer.peer.threshold = 1
        packet_bytes = peer.run_for(1)[0]
        packet = IPv4Header.unpack(packet_bytes)
        datagram = UDPHeader.unpack(packet.data)
        assert datagram.dst_port == 123
        message = NTPHeader.unpack(datagram.payload)
        assert message.mode == MODE_CLIENT
        assert decode_packet(packet_bytes).clean
