"""Cross-cutting property-based tests on core invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ccg.semantics import Call, Const, signature
from repro.disambiguation import AssociativityCheck, CheckSuite, winnow
from repro.disambiguation.winnow import final_selection
from repro.framework import icmp
from repro.framework.addressing import ip_to_int
from repro.framework.ip import PROTO_ICMP, IPv4Header, make_ip_packet
from repro.framework.tcpdump import decode_packet
from repro.lf import canonical_signature, flatten_associative, isomorphic

# -- strategies -----------------------------------------------------------------

constants = st.sampled_from(
    ["checksum", "code", "type", "identifier", "0", "1", "3", "datagram"]
)


def terms(max_depth=3):
    return st.recursive(
        constants.map(Const),
        lambda children: st.tuples(
            st.sampled_from(["Is", "Of", "And", "Action", "If"]),
            st.lists(children, min_size=2, max_size=3),
        ).map(lambda pair: Call(pair[0], tuple(pair[1]))),
        max_leaves=6,
    )


class TestLFInvariants:
    @given(terms())
    @settings(max_examples=80, deadline=None)
    def test_flatten_is_idempotent(self, term):
        once = flatten_associative(term)
        twice = flatten_associative(once)
        assert signature(once) == signature(twice)

    @given(terms())
    @settings(max_examples=80, deadline=None)
    def test_every_term_isomorphic_to_itself(self, term):
        assert isomorphic(term, term)

    @given(terms())
    @settings(max_examples=80, deadline=None)
    def test_canonical_signature_stable_under_flatten(self, term):
        assert canonical_signature(term) == canonical_signature(
            flatten_associative(term)
        )

    @given(st.lists(terms(), min_size=0, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_winnow_never_increases_and_never_annihilates(self, forms):
        trace = winnow("s", forms, CheckSuite.default())
        assert trace.final_count <= len(forms)
        if forms:
            assert trace.final_count >= 1  # checks narrow, never destroy

    @given(st.lists(terms(), min_size=1, max_size=5))
    @settings(max_examples=60, deadline=None)
    def test_final_selection_keeps_subset(self, forms):
        selected = final_selection(forms)
        assert selected
        assert all(any(f is g for g in forms) for f in selected)


def scramble(term, rng):
    """A random isomorphism-preserving rewrite of ``term``.

    Shuffles commutative (And) children and re-nests associative (Of/And)
    chains — exactly the regroupings §4.2's associativity check must treat
    as one reading, and nothing more.
    """
    if not isinstance(term, Call):
        return term
    args = [scramble(arg, rng) for arg in term.args]
    if term.pred == "And" and len(args) > 1:
        rng.shuffle(args)
    if term.pred in ("Of", "And") and len(args) > 2 and rng.random() < 0.7:
        i = rng.randrange(len(args) - 1)
        args[i:i + 2] = [Call(term.pred, (args[i], args[i + 1]))]
    return Call(term.pred, tuple(args), trigger=term.trigger,
                flags=term.flags)


class TestCanonicalOracle:
    """The canonical signature is *exactly* VF2 isomorphism.

    The winnow hot path replaced per-pair ``nx.is_isomorphic`` with a
    one-pass canonical form per LF; these properties pin the two to the
    same equivalence relation — both directions, so the canonical form
    neither merges distinct readings nor splits equivalent ones.
    """

    @given(terms(), terms())
    @settings(max_examples=150, deadline=None)
    def test_canonical_equality_iff_isomorphic(self, a, b):
        assert (canonical_signature(a) == canonical_signature(b)) \
            == isomorphic(a, b)

    @given(terms(), st.randoms(use_true_random=False))
    @settings(max_examples=150, deadline=None)
    def test_regrouped_term_stays_in_class(self, term, rng):
        regrouped = scramble(term, rng)
        assert isomorphic(term, regrouped)
        assert canonical_signature(term) == canonical_signature(regrouped)

    @given(st.lists(terms(), min_size=1, max_size=6))
    @settings(max_examples=80, deadline=None)
    def test_associativity_filter_keeps_one_per_vf2_class(self, forms):
        kept = AssociativityCheck().filter(list(forms))
        for form in forms:
            assert sum(1 for survivor in kept
                       if isomorphic(form, survivor)) == 1


class TestWireInvariants:
    @given(st.integers(0, 0xFFFF), st.integers(0, 0xFFFF),
           st.binary(max_size=64))
    @settings(max_examples=80, deadline=None)
    def test_echo_reply_of_any_echo_verifies(self, identifier, sequence, data):
        echo = icmp.make_echo(identifier, sequence, data)
        reply = icmp.make_echo_reply(echo)
        assert reply.checksum_ok()
        assert reply.payload == data

    @given(st.binary(max_size=40), st.integers(1, 255))
    @settings(max_examples=80, deadline=None)
    def test_reference_packets_decode_clean(self, data, ttl):
        echo = icmp.make_echo(1, 1, data)
        packet = make_ip_packet(
            ip_to_int("10.0.0.1"), ip_to_int("10.0.0.2"), PROTO_ICMP,
            echo.pack(), ttl=ttl,
        )
        assert decode_packet(packet.pack()).clean

    @given(st.binary(min_size=1, max_size=40))
    @settings(max_examples=80, deadline=None)
    def test_quoted_datagram_is_header_plus_at_most_8(self, data):
        original = make_ip_packet(
            ip_to_int("1.2.3.4"), ip_to_int("5.6.7.8"), PROTO_ICMP, data
        )
        quoted = icmp.quoted_datagram(original)
        assert quoted[:20] == original.header_bytes()
        assert len(quoted) <= 20 + 8

    @given(st.integers(0, 0xFFFFFFFF))
    @settings(max_examples=80, deadline=None)
    def test_ip_roundtrip_any_address(self, address):
        packet = make_ip_packet(address, (~address) & 0xFFFFFFFF, PROTO_ICMP, b"x")
        again = IPv4Header.unpack(packet.pack())
        assert again.src == address
        assert again.checksum_ok()
