"""Unit and property tests for one's-complement checksum arithmetic."""

import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.framework.checksum import (
    incremental_update,
    internet_checksum,
    ones_complement_sum,
    verify_checksum,
)


class TestOnesComplementSum:
    def test_empty(self):
        assert ones_complement_sum(b"") == 0

    def test_single_word(self):
        assert ones_complement_sum(b"\x12\x34") == 0x1234

    def test_two_words(self):
        assert ones_complement_sum(b"\x12\x34\x00\x01") == 0x1235

    def test_carry_folds(self):
        # 0xFFFF + 0x0001 wraps to 0x0001 in one's complement.
        assert ones_complement_sum(b"\xff\xff\x00\x01") == 0x0001

    def test_odd_length_pads_right(self):
        # Trailing byte 0xAB acts as the word 0xAB00.
        assert ones_complement_sum(b"\xab") == 0xAB00

    def test_rfc1071_example(self):
        # The worked example from RFC 1071 §3.
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        assert internet_checksum(data) == (~0xDDF2) & 0xFFFF

    def test_result_always_16_bits(self):
        assert 0 <= ones_complement_sum(b"\xff" * 1001) <= 0xFFFF


class TestInternetChecksum:
    def test_all_zeros_checksums_to_ffff(self):
        assert internet_checksum(b"\x00" * 8) == 0xFFFF

    def test_verify_accepts_correct_checksum(self):
        body = b"\x08\x00\x00\x00\x12\x34\x00\x01hello"
        checksum = internet_checksum(body)
        patched = body[:2] + struct.pack("!H", checksum) + body[4:]
        assert verify_checksum(patched)

    def test_verify_rejects_corrupted_data(self):
        body = b"\x08\x00\x00\x00\x12\x34\x00\x01hello"
        checksum = internet_checksum(body)
        patched = bytearray(body[:2] + struct.pack("!H", checksum) + body[4:])
        patched[-1] ^= 0xFF
        assert not verify_checksum(bytes(patched))

    @given(st.binary(min_size=0, max_size=256))
    def test_checksummed_message_always_verifies(self, payload):
        """Inserting the computed checksum always makes the message verify."""
        body = b"\x00\x00" + payload
        checksum = internet_checksum(body)
        message = struct.pack("!H", checksum) + payload
        assert verify_checksum(message)

    @given(st.binary(min_size=2, max_size=64))
    def test_checksum_is_16_bit(self, data):
        assert 0 <= internet_checksum(data) <= 0xFFFF

    @given(st.binary(min_size=2, max_size=64).filter(lambda b: len(b) % 2 == 0))
    def test_zero_checksum_field_convention(self, data):
        """Checksum of even-length data with its checksum appended sums to -0.

        (Only for even lengths: appending to odd-length data shifts word
        alignment, so the padded-alone and concatenated sums differ.)
        """
        checksum = internet_checksum(data)
        combined = data + struct.pack("!H", checksum)
        assert ones_complement_sum(combined) == 0xFFFF


class TestIncrementalUpdate:
    def test_matches_full_recompute_for_single_word_change(self):
        original = bytearray(b"\x08\x00\x00\x00\x12\x34\x00\x01")
        checksum = internet_checksum(bytes(original))
        # Change word at offset 4 (0x1234 -> 0xABCD).
        updated = bytearray(original)
        updated[4:6] = b"\xab\xcd"
        expected = internet_checksum(bytes(updated))
        assert incremental_update(checksum, 0x1234, 0xABCD) == expected

    @given(
        st.binary(min_size=8, max_size=40).filter(lambda b: len(b) % 2 == 0),
        st.integers(min_value=0, max_value=0xFFFF),
    )
    def test_incremental_equals_recompute(self, data, new_word):
        """RFC 1624: patching any aligned word incrementally == full recompute.

        The one excluded case is a patched message summing to (positive)
        zero, where the formula returns the other zero representation —
        RFC 1624 §3's known ±0 ambiguity, impossible for real IP headers.
        """
        offset = 2  # always patch the second word
        old_word = (data[offset] << 8) | data[offset + 1]
        patched = data[:offset] + struct.pack("!H", new_word) + data[offset + 2:]
        if ones_complement_sum(patched) == 0:
            return  # ±0 ambiguity: not reachable with real headers
        checksum = internet_checksum(data)
        assert incremental_update(checksum, old_word, new_word) == internet_checksum(
            patched
        )

    def test_identity_update_has_a_known_quirk_free_form(self):
        # Updating a word to itself must preserve the checksum.
        checksum = internet_checksum(b"\x01\x02\x03\x04")
        assert incremental_update(checksum, 0x0304, 0x0304) == checksum


@pytest.mark.parametrize("length", [0, 1, 2, 3, 20, 21, 64, 1500])
def test_arbitrary_lengths_do_not_crash(length):
    data = bytes(range(256)) * (length // 256 + 1)
    assert 0 <= internet_checksum(data[:length]) <= 0xFFFF
