"""The HTTP serving layer: routing, envelopes, deadlines, the worker pool,
and concurrent multi-process access to one shared persistent store."""

import asyncio
import concurrent.futures
import json
import threading
import time
from http.client import HTTPConnection

import pytest

from repro.api.binenc import from_bytes, to_bytes
from repro.api.contracts import ProcessRequest, SweepRequest, from_json
from repro.cache.store import CacheStore
from repro.server import (
    BINARY_CONTENT_TYPE,
    ReproServer,
    ServiceConfig,
    WorkerPool,
    run_endpoint,
)


class ServerHandle:
    """A ReproServer running on a background event-loop thread."""

    def __init__(self, server: ReproServer):
        self.server = server
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self._drive, daemon=True)

    def _drive(self):
        asyncio.set_event_loop(self.loop)
        self.loop.run_forever()

    def start(self):
        self.thread.start()
        asyncio.run_coroutine_threadsafe(
            self.server.start(), self.loop
        ).result(timeout=30)
        asyncio.run_coroutine_threadsafe(
            self.server._server.start_serving(), self.loop
        ).result(timeout=30)
        return self

    def stop(self):
        asyncio.run_coroutine_threadsafe(
            self.server.stop(), self.loop
        ).result(timeout=30)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10)
        self.loop.close()

    def request(self, method: str, path: str, body=None, headers=None,
                timeout: float = 120.0):
        conn = HTTPConnection("127.0.0.1", self.server.port, timeout=timeout)
        try:
            conn.request(method, path, body=body, headers=headers or {})
            response = conn.getresponse()
            return response.status, response.getheader("Content-Type"), \
                response.read()
        finally:
            conn.close()


@pytest.fixture(scope="module")
def server():
    """An inline-mode server over the warm shared default registry."""
    handle = ServerHandle(ReproServer(port=0, deadline_s=120.0)).start()
    yield handle
    handle.stop()


class TestRouting:
    def test_healthz(self, server):
        status, content_type, body = server.request("GET", "/healthz")
        assert status == 200
        assert content_type == "application/json"
        payload = json.loads(body)
        assert payload["ok"] is True
        assert payload["uptime_s"] >= 0

    def test_unknown_route_is_404(self, server):
        status, _ct, body = server.request("GET", "/nope")
        assert status == 404
        assert json.loads(body)["error"] == "not-found"

    def test_method_mismatch_is_405(self, server):
        assert server.request("POST", "/healthz")[0] == 405
        assert server.request("GET", "/v1/process")[0] == 405

    def test_trailing_slash_routes(self, server):
        assert server.request("GET", "/healthz/")[0] == 200


class TestProcess:
    def test_bare_dict_body(self, server):
        status, _ct, body = server.request(
            "POST", "/v1/process",
            body=json.dumps({"protocol": "ICMP", "include_sentences": False}),
        )
        assert status == 200
        response = from_json(body.decode("utf-8"))
        assert response.protocol == "ICMP"
        assert response.sentence_count > 0
        assert response.sentences == []

    def test_envelope_body_matches_bare_dict(self, server):
        from repro.api.contracts import to_json

        request = ProcessRequest(protocol="BFD", include_sentences=False)
        s1, _c1, b1 = server.request("POST", "/v1/process",
                                     body=to_json(request))
        s2, _c2, b2 = server.request(
            "POST", "/v1/process",
            body=json.dumps({"protocol": "BFD", "include_sentences": False}),
        )
        assert s1 == s2 == 200
        assert b1 == b2

    def test_binary_negotiation_round_trips(self, server):
        request = ProcessRequest(protocol="ICMP")
        json_status, json_ct, json_body = server.request(
            "POST", "/v1/process",
            body=json.dumps({"protocol": "ICMP"}),
        )
        bin_status, bin_ct, bin_body = server.request(
            "POST", "/v1/process", body=to_bytes(request),
            headers={"Content-Type": BINARY_CONTENT_TYPE,
                     "Accept": BINARY_CONTENT_TYPE},
        )
        assert json_status == bin_status == 200
        assert json_ct == "application/json"
        assert bin_ct == BINARY_CONTENT_TYPE
        assert len(bin_body) < len(json_body)
        # the acceptance criterion: byte-equivalent after decode
        assert from_bytes(bin_body) == from_json(json_body.decode("utf-8"))

    def test_response_matches_the_service(self, server):
        from repro.api import SageService

        _s, _c, body = server.request(
            "POST", "/v1/process", body=json.dumps({"protocol": "IGMP"})
        )
        direct = SageService().process(ProcessRequest(protocol="IGMP"))
        assert from_json(body.decode("utf-8")) == direct


class TestSweep:
    def test_empty_body_sweeps_everything(self, server):
        status, _ct, body = server.request("POST", "/v1/sweep", body="")
        assert status == 200
        response = from_json(body.decode("utf-8"))
        assert response.protocols == ["ICMP", "IGMP", "NTP", "BFD"]

    def test_binary_sweep_request(self, server):
        request = SweepRequest(protocols=("icmp",), parallel=False,
                               include_sentences=False)
        status, content_type, body = server.request(
            "POST", "/v1/sweep", body=to_bytes(request),
            headers={"Content-Type": BINARY_CONTENT_TYPE,
                     "Accept": BINARY_CONTENT_TYPE},
        )
        assert status == 200
        assert content_type == BINARY_CONTENT_TYPE
        assert from_bytes(body).protocols == ["ICMP"]


class TestDiagnosticsAndSession:
    def test_parse_diagnostics(self, server):
        status, _ct, body = server.request("GET", "/v1/parse/ICMP")
        assert status == 200
        payload = json.loads(body)
        assert payload["kind"] == "parse_diagnostics"
        assert payload["data"]["sentence_count"] > 0
        assert "profile" in payload["data"]

    def test_session_flagged_and_pending(self, server):
        status, _ct, body = server.request(
            "GET", "/v1/session/ICMP/flagged?mode=strict"
        )
        assert status == 200
        payload = json.loads(body)
        assert payload["kind"] == "sentence_report_list"
        assert payload["data"]["reports"]
        status, _ct, body = server.request(
            "GET", "/v1/session/ICMP/pending?mode=strict"
        )
        assert status == 200
        assert json.loads(body)["data"]["pending_only"] is True


class TestErrorMapping:
    def test_unknown_protocol_is_404(self, server):
        status, _ct, body = server.request(
            "POST", "/v1/process", body=json.dumps({"protocol": "QUIC"})
        )
        assert status == 404
        payload = json.loads(body)
        assert payload["error"] == "protocol-not-found"
        assert "known" in payload

    def test_unknown_parser_backend_is_404(self, server):
        status, _ct, body = server.request(
            "GET", "/v1/parse/ICMP?parser_backend=quantum"
        )
        assert status == 404
        assert json.loads(body)["error"] == "parser-backend-not-found"

    def test_garbage_binary_body_is_400(self, server):
        status, _ct, body = server.request(
            "POST", "/v1/process", body=b"R1B\x01\xff\xff\xff\xff\xff\xff",
            headers={"Content-Type": BINARY_CONTENT_TYPE},
        )
        assert status == 400
        assert json.loads(body)["error"] in ("bad-envelope", "contract-error")

    def test_unparseable_json_is_400(self, server):
        status, _ct, body = server.request("POST", "/v1/process",
                                           body="{not json")
        assert status == 400
        assert json.loads(body)["error"] == "bad-request"

    def test_errors_are_json_even_for_binary_clients(self, server):
        status, content_type, _body = server.request(
            "POST", "/v1/process", body=json.dumps({"protocol": "QUIC"}),
            headers={"Accept": BINARY_CONTENT_TYPE},
        )
        assert status == 404
        assert content_type == "application/json"

    def test_tiny_deadline_is_504(self, server):
        status, _ct, body = server.request(
            "POST", "/v1/sweep", body="",
            headers={"X-Repro-Deadline": "0.000001"},
        )
        assert status == 504
        payload = json.loads(body)
        assert payload["error"] == "deadline-exceeded"
        assert payload["endpoint"] == "sweep"

    def test_oversized_body_is_413(self, server):
        from repro.server.http import MAX_BODY_BYTES

        conn = HTTPConnection("127.0.0.1", server.server.port, timeout=30)
        try:
            conn.putrequest("POST", "/v1/process")
            conn.putheader("Content-Length", str(MAX_BODY_BYTES + 1))
            conn.endheaders()
            response = conn.getresponse()
            assert response.status == 413
        finally:
            conn.close()


class TestStats:
    def test_stats_shape_and_counters(self, server):
        server.request("POST", "/v1/process",
                       body=json.dumps({"protocol": "ICMP",
                                        "include_sentences": False}))
        status, _ct, body = server.request("GET", "/stats")
        assert status == 200
        payload = json.loads(body)
        assert payload["kind"] == "server_stats"
        data = payload["data"]
        assert data["server"]["requests_total"] >= 2
        assert data["server"]["responses_by_status"]["200"] >= 1
        assert data["pool"] == {"mode": "inline", "workers": 1,
                                "cache_dir": None}
        service = data["service"]
        assert service["worker_count"] == 1
        assert service["parse_cache"]["hits"] >= 0
        assert 0.0 <= service["profile"]["span_reuse_rate"] <= 1.0


class TestPoolUnit:
    def test_run_endpoint_unknown_endpoint(self):
        from repro.api import SageService

        status, content_type, body = run_endpoint(SageService(), "teleport")
        assert status == 400
        assert content_type == "application/json"
        assert json.loads(body)["error"] == "bad-request"

    def test_inline_pool_serializes_one_service(self):
        with WorkerPool(workers=1) as pool:
            assert pool.mode == "inline"
            assert pool.workers == 1
            status, _ct, body = pool.run(
                "process",
                json.dumps({"protocol": "ICMP",
                            "include_sentences": False}).encode(),
            )
            assert status == 200
            assert from_json(body.decode("utf-8")).protocol == "ICMP"

    def test_keep_alive_reuses_one_connection(self, server):
        conn = HTTPConnection("127.0.0.1", server.server.port, timeout=60)
        try:
            bodies = []
            for _ in range(3):
                conn.request("POST", "/v1/process",
                             body=json.dumps({"protocol": "ICMP",
                                              "include_sentences": False}))
                response = conn.getresponse()
                assert response.status == 200
                bodies.append(response.read())
            assert len(set(bodies)) == 1
        finally:
            conn.close()


class TestConcurrentSharedStore:
    """The satellite: N processes hammering one ``--cache-dir`` through the
    server — no torn writes, no recompute beyond the first writer,
    byte-identical responses, and a clean warm second boot."""

    def test_process_pool_share_one_store(self, tmp_path):
        cache_dir = str(tmp_path / "store")
        config = ServiceConfig(cache_dir=cache_dir)
        handle = ServerHandle(
            ReproServer(port=0, config=config, workers=2, deadline_s=300.0)
        ).start()
        try:
            if handle.server.pool.mode != "process":
                pytest.skip("fork process pool unavailable on this platform")
            body = json.dumps({"protocol": "ICMP",
                               "include_sentences": False})

            def hit(_index):
                return handle.request("POST", "/v1/process", body=body,
                                      timeout=300.0)

            with concurrent.futures.ThreadPoolExecutor(max_workers=8) as pool:
                results = list(pool.map(hit, range(8)))
            assert [status for status, _c, _b in results] == [200] * 8
            # every concurrent response is byte-identical
            assert len({payload for _s, _c, payload in results}) == 1

            status, _ct, stats_body = handle.request("GET", "/stats",
                                                     timeout=300.0)
            assert status == 200
            aggregate = json.loads(stats_body)["data"]["service"]
            # no torn writes: racing writers published atomically, so
            # nothing was quarantined...
            assert aggregate["store"]["quarantined"] == 0
            # ...and no duplicate recompute beyond the first writer per
            # sentence: the parses each worker computed cold were exactly
            # the distinct entries published to disk (a worker that
            # re-parsed something already on disk would push misses past
            # writes).
            assert (aggregate["parse_cache"]["misses"]
                    <= aggregate["store"]["writes"]
                    + aggregate["store"]["disk_hits"])
        finally:
            handle.stop()
        store = CacheStore(cache_dir)
        assert store.verify() == {"checked": store.entry_count(),
                                  "corrupt": 0}
        assert store.entry_count() > 0

        # A fresh single-worker boot over the same directory must answer
        # the whole protocol from disk: zero parse misses.
        handle = ServerHandle(
            ReproServer(port=0, config=config, workers=1, deadline_s=300.0)
        ).start()
        try:
            status, _ct, body2 = handle.request(
                "POST", "/v1/process",
                body=json.dumps({"protocol": "ICMP",
                                 "include_sentences": False}),
                timeout=300.0,
            )
            assert status == 200
            assert body2 == results[0][2]
            status, _ct, stats_body = handle.request("GET", "/stats",
                                                     timeout=300.0)
            aggregate = json.loads(stats_body)["data"]["service"]
            assert aggregate["parse_cache"]["misses"] == 0
            assert aggregate["parse_cache"]["disk_hits"] > 0
        finally:
            handle.stop()
