"""Tests for RFC document parsing: diagrams, fields, corpora."""

import pytest

from repro.framework.packet import HeaderLayout
from repro.rfc import (
    bfd_corpus,
    extract_layout,
    find_rewrite,
    icmp_corpus,
    igmp_corpus,
    load_rewrites,
    ntp_corpus,
    parse_rfc_text,
)
from repro.rfc.header_diagram import is_diagram_start, is_ruler_line

DIAGRAM = """\
   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
   |     Type      |     Code      |          Checksum             |
   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
   |                             unused                            |
   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
"""


class TestHeaderDiagram:
    def test_field_extraction(self):
        parse = extract_layout(DIAGRAM.splitlines(), protocol="demo")
        fields = [(f.name, f.bits) for f in parse.layout.fields]
        assert fields == [("type", 8), ("code", 8), ("checksum", 16), ("unused", 32)]

    def test_generated_codec_is_32_bit_aligned(self):
        parse = extract_layout(DIAGRAM.splitlines(), protocol="demo")
        assert parse.layout.total_bits() % 32 == 0
        cls = parse.layout.to_header_class()
        instance = cls(type=3, code=1, checksum=0xBEEF, unused=0)
        assert cls.unpack(instance.pack()) == instance

    def test_payload_marker(self):
        lines = DIAGRAM.splitlines() + [
            "   |      Internet Header + 64 bits of Original Data Datagram      |",
            "   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+",
        ]
        parse = extract_layout(lines, protocol="demo")
        assert parse.payload_name is not None
        assert "Internet Header" in parse.payload_name

    def test_ruler_detection(self):
        assert is_ruler_line(
            " 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1"
        )
        assert not is_ruler_line("      3")  # a bare field value is not a ruler

    def test_diagram_start_detection(self):
        assert is_diagram_start("   +-+-+-+-+")
        assert is_diagram_start("   |  Type |")
        assert not is_diagram_start("      3")


class TestICMPCorpus:
    def test_eight_message_sections(self):
        corpus = icmp_corpus()
        assert len(corpus.document.message_sections) == 8

    def test_87_sentences(self):
        # The paper: "Among 87 instances in RFC 792".
        assert len(icmp_corpus().sentences) == 87

    def test_type_values_match_rfc(self):
        corpus = icmp_corpus()
        echo = corpus.document.section_titled("Echo or Echo Reply Message")
        assert echo.type_values() == {"echo": 8, "echo reply": 0}
        unreachable = corpus.document.section_titled("Destination Unreachable Message")
        assert unreachable.type_values() == {"destination unreachable": 3}

    def test_layouts_are_wire_accurate(self):
        corpus = icmp_corpus()
        echo = corpus.document.section_titled("Echo or Echo Reply Message")
        names = echo.diagram.layout.field_names()
        assert names == ["type", "code", "checksum", "identifier", "sequence_number"]
        timestamp = corpus.document.section_titled(
            "Timestamp or Timestamp Reply Message"
        )
        assert timestamp.diagram.layout.total_bits() == 160  # 20 bytes

    def test_field_groups(self):
        corpus = icmp_corpus()
        groups = {
            (s.field, s.field_group)
            for s in corpus.sentences if s.kind == "field"
        }
        assert ("destination_address", "ip") in groups
        assert ("checksum", "icmp") in groups

    def test_code_enumerations(self):
        section = icmp_corpus().document.section_titled(
            "Destination Unreachable Message"
        )
        code = section.field_named("code")
        assert len(code.values) == 6
        assert code.values[0].meaning == "net unreachable"


@pytest.mark.parametrize("loader,protocol,min_sentences", [
    (igmp_corpus, "IGMP", 8),
    (ntp_corpus, "NTP", 8),
    (bfd_corpus, "BFD", 20),
])
def test_other_corpora_load(loader, protocol, min_sentences):
    corpus = loader()
    assert corpus.protocol == protocol
    assert len(corpus.sentences) >= min_sentences
    assert any(
        section.diagram is not None
        for section in corpus.document.message_sections
    )


class TestRewrites:
    def test_rewrites_load(self):
        rewrites = load_rewrites()
        assert len(rewrites) >= 20
        categories = {r.category for r in rewrites}
        assert categories == {"ambiguous", "unparsed", "imprecise", "non-actionable"}

    def test_find_rewrite_is_whitespace_insensitive(self):
        rewrite = find_rewrite(
            "If code = 0,  an identifier to aid in matching echos and replies, "
            "may be zero."
        )
        assert rewrite is not None
        assert rewrite.category == "imprecise"

    def test_six_imprecise_identifier_variants(self):
        imprecise = [
            r for r in load_rewrites()
            if r.category == "imprecise" and "code = 0" in r.original
        ]
        assert len(imprecise) == 6  # Table 6's count


class TestGenericParsing:
    def test_preamble(self):
        document = parse_rfc_text("RFC: 9999\nSOME TITLE\n\nIntro\n\n   Text here.\n")
        assert document.number == "9999"
        assert document.title == "SOME TITLE"

    def test_intro_sentences_collected(self):
        document = parse_rfc_text(
            "RFC: 1\nT\n\nIntroduction\n\n   One sentence. Two sentence.\n"
        )
        assert document.intro_sections[0].sentences == [
            "One sentence.", "Two sentence."
        ]
