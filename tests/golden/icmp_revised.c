struct destination_unreachable_message_hdr {
    uint8_t type;
    uint8_t code;
    uint16_t checksum;
    uint32_t unused;
};

struct time_exceeded_message_hdr {
    uint8_t type;
    uint8_t code;
    uint16_t checksum;
    uint32_t unused;
};

struct parameter_problem_message_hdr {
    uint8_t type;
    uint8_t code;
    uint16_t checksum;
    uint8_t pointer;
    uint32_t unused : 24;
};

struct source_quench_message_hdr {
    uint8_t type;
    uint8_t code;
    uint16_t checksum;
    uint32_t unused;
};

struct redirect_message_hdr {
    uint8_t type;
    uint8_t code;
    uint16_t checksum;
    uint32_t gateway_internet_address;
};

struct echo_or_echo_reply_message_hdr {
    uint8_t type;
    uint8_t code;
    uint16_t checksum;
    uint16_t identifier;
    uint16_t sequence_number;
};

struct timestamp_or_timestamp_reply_message_hdr {
    uint8_t type;
    uint8_t code;
    uint16_t checksum;
    uint16_t identifier;
    uint16_t sequence_number;
    uint32_t originate_timestamp;
    uint32_t receive_timestamp;
    uint32_t transmit_timestamp;
};

struct information_request_or_information_reply_message_hdr {
    uint8_t type;
    uint8_t code;
    uint16_t checksum;
    uint16_t identifier;
    uint16_t sequence_number;
};

void icmp_destination_unreachable_receiver(struct icmp_hdr *hdr, struct ip_hdr *ip) {
    hdr->type = 3;
    hdr->code = params.code;
    ip->dst = req_ip->src;
    memcpy(hdr->data, req_ip, ihl_bytes(req_ip));
    memcpy(hdr->data + ihl_bytes(req_ip), req_ip_payload, 8);
    /* This data is used by the host to match the message to the appropriate  */
    /* The gateway may send a destination unreachable message to the source h */
    /* The destination host may also send a destination unreachable message t */
    /* The network specified in the destination field is unreachable. */
    hdr->checksum = 0;
    hdr->checksum = 0;
    hdr->checksum = internet_checksum((uint8_t *)&hdr->type, message_len_from(hdr, &hdr->type));
}

void icmp_time_exceeded_receiver(struct icmp_hdr *hdr, struct ip_hdr *ip) {
    hdr->type = 11;
    hdr->code = params.code;
    ip->dst = req_ip->src;
    memcpy(hdr->data, req_ip, ihl_bytes(req_ip));
    memcpy(hdr->data + ihl_bytes(req_ip), req_ip_payload, 8);
    /* This data is used by the host to match the message to the appropriate  */
    if (ip->ttl == 0) {
        discard_packet(); return;
    }
    /* The gateway may also notify the source host via the time exceeded mess */
    /* The time exceeded message may also be sent by a host. */
    hdr->checksum = 0;
    hdr->checksum = 0;
    hdr->checksum = internet_checksum((uint8_t *)&hdr->type, message_len_from(hdr, &hdr->type));
}

void icmp_parameter_problem_receiver(struct icmp_hdr *hdr, struct ip_hdr *ip) {
    hdr->type = 12;
    hdr->code = 0;
    ip->dst = req_ip->src;
    if (hdr->code == 0) {
        hdr->pointer = params.error_octet;
    }
    memcpy(hdr->data, req_ip, ihl_bytes(req_ip));
    memcpy(hdr->data + ihl_bytes(req_ip), req_ip_payload, 8);
    /* This data is used by the host to match the message to the appropriate  */
    /* If the gateway processing a datagram finds a problem with the header p */
    /* The gateway may also notify the source host via the parameter problem  */
    hdr->checksum = 0;
    hdr->checksum = 0;
    hdr->checksum = internet_checksum((uint8_t *)&hdr->type, message_len_from(hdr, &hdr->type));
}

void icmp_source_quench_receiver(struct icmp_hdr *hdr, struct ip_hdr *ip) {
    hdr->type = 4;
    hdr->code = 0;
    ip->dst = req_ip->src;
    memcpy(hdr->data, req_ip, ihl_bytes(req_ip));
    memcpy(hdr->data + ihl_bytes(req_ip), req_ip_payload, 8);
    /* This data is used by the host to match the message to the appropriate  */
    /* A gateway may discard internet datagrams if it does not have the buffe */
    /* The gateway may send a source quench message for every message that it */
    hdr->checksum = 0;
    hdr->checksum = 0;
    hdr->checksum = internet_checksum((uint8_t *)&hdr->type, message_len_from(hdr, &hdr->type));
}

void icmp_redirect_receiver(struct icmp_hdr *hdr, struct ip_hdr *ip) {
    hdr->type = 5;
    hdr->code = params.code;
    ip->dst = req_ip->src;
    hdr->gateway_internet_address = params.gateway_address;
    memcpy(hdr->data, req_ip, ihl_bytes(req_ip));
    memcpy(hdr->data + ihl_bytes(req_ip), req_ip_payload, 8);
    /* This data is used by the host to match the message to the appropriate  */
    /* The gateway may send a redirect message to the source host of the data */
    /* The redirect message advises the host of a shorter path to the destina */
    /* The gateway forwards the original datagram's data to the internet dest */
    hdr->checksum = 0;
    hdr->checksum = 0;
    hdr->checksum = internet_checksum((uint8_t *)&hdr->type, message_len_from(hdr, &hdr->type));
}

void icmp_echo_sender(struct icmp_hdr *hdr, struct ip_hdr *ip) {
    hdr->type = 8;
    hdr->code = 0;
    /* The address of the source in an echo message will be the destination o */
    swap(&ip->src, &ip->dst);
    if (ip->total_length % 2 == 1) {
        /* odd-length data padded with one zero octet for checksumming */
    }
    if (hdr->code == 0) {
        hdr->identifier = req->identifier;
    }
    if (hdr->code == 0) {
        hdr->sequence_number = req->sequence_number;
    }
    memcpy(hdr->data, req->data, req_data_len);
    /* The echoer returns the data in an echo reply message. */
    /* The identifier and sequence number may be used by the echo sender to a */
    hdr->checksum = 0;
    hdr->checksum = internet_checksum((uint8_t *)&hdr->type, message_len_from(hdr, &hdr->type));
}

void icmp_echo_reply_receiver(struct icmp_hdr *hdr, struct ip_hdr *ip) {
    hdr->type = 0;
    hdr->code = 0;
    /* The address of the source in an echo message will be the destination o */
    swap(&ip->src, &ip->dst);
    if (ip->total_length % 2 == 1) {
        /* odd-length data padded with one zero octet for checksumming */
    }
    if (hdr->code == 0) {
        hdr->identifier = req->identifier;
    }
    if (hdr->code == 0) {
        hdr->sequence_number = req->sequence_number;
    }
    memcpy(hdr->data, req->data, req_data_len);
    /* The echoer returns the data in an echo reply message. */
    /* The identifier and sequence number may be used by the echo sender to a */
    hdr->checksum = 0;
    hdr->checksum = internet_checksum((uint8_t *)&hdr->type, message_len_from(hdr, &hdr->type));
}

void icmp_timestamp_sender(struct icmp_hdr *hdr, struct ip_hdr *ip) {
    hdr->type = 13;
    hdr->code = 0;
    /* The address of the source in a timestamp message will be the destinati */
    swap(&ip->src, &ip->destination_address);
    if (hdr->code == 0) {
        hdr->identifier = req->identifier;
    }
    if (hdr->code == 0) {
        hdr->sequence_number = req->sequence_number;
    }
    hdr->originate_timestamp = req->originate_timestamp;
    hdr->receive_timestamp = params.current_time;
    hdr->transmit_timestamp = params.current_time;
    /* The timestamp is 32 bits of milliseconds since midnight universal time */
    /* The timestamps are recomputed for each reply. */
    /* If the time is not available in milliseconds, the timestamp may be ins */
    hdr->checksum = 0;
    hdr->checksum = 0;
    hdr->checksum = internet_checksum((uint8_t *)&hdr->type, message_len_from(hdr, &hdr->type));
}

void icmp_timestamp_reply_receiver(struct icmp_hdr *hdr, struct ip_hdr *ip) {
    hdr->type = 14;
    hdr->code = 0;
    /* The address of the source in a timestamp message will be the destinati */
    swap(&ip->src, &ip->destination_address);
    if (hdr->code == 0) {
        hdr->identifier = req->identifier;
    }
    if (hdr->code == 0) {
        hdr->sequence_number = req->sequence_number;
    }
    hdr->originate_timestamp = req->originate_timestamp;
    hdr->receive_timestamp = params.current_time;
    hdr->transmit_timestamp = params.current_time;
    /* The timestamp is 32 bits of milliseconds since midnight universal time */
    /* The timestamps are recomputed for each reply. */
    /* If the time is not available in milliseconds, the timestamp may be ins */
    hdr->checksum = 0;
    hdr->checksum = 0;
    hdr->checksum = internet_checksum((uint8_t *)&hdr->type, message_len_from(hdr, &hdr->type));
}

void icmp_information_request_sender(struct icmp_hdr *hdr, struct ip_hdr *ip) {
    hdr->type = 15;
    hdr->code = 0;
    /* The address of the source in an information request message will be th */
    swap(&ip->src, &ip->dst);
    if (hdr->code == 0) {
        hdr->identifier = req->identifier;
    }
    if (hdr->code == 0) {
        hdr->sequence_number = req->sequence_number;
    }
    /* This message may be sent with the source network in the IP header sour */
    /* The replying IP module should send the reply with the addresses fully  */
    /* The information reply message contains the network number of the local */
    hdr->checksum = 0;
    hdr->checksum = 0;
    hdr->checksum = internet_checksum((uint8_t *)&hdr->type, message_len_from(hdr, &hdr->type));
}

void icmp_information_reply_receiver(struct icmp_hdr *hdr, struct ip_hdr *ip) {
    hdr->type = 16;
    hdr->code = 0;
    /* The address of the source in an information request message will be th */
    swap(&ip->src, &ip->dst);
    if (hdr->code == 0) {
        hdr->identifier = req->identifier;
    }
    if (hdr->code == 0) {
        hdr->sequence_number = req->sequence_number;
    }
    /* This message may be sent with the source network in the IP header sour */
    /* The replying IP module should send the reply with the addresses fully  */
    /* The information reply message contains the network number of the local */
    hdr->checksum = 0;
    hdr->checksum = 0;
    hdr->checksum = internet_checksum((uint8_t *)&hdr->type, message_len_from(hdr, &hdr->type));
}
