"""Tests for the §4.2 winnowing checks and the LF graph machinery."""

import pytest

from repro.ccg.semantics import Call, Const
from repro.disambiguation import (
    ArgumentOrderingCheck,
    AssociativityCheck,
    CheckSuite,
    DistributivityCheck,
    PredicateOrderingCheck,
    TypeCheck,
    isolated_effects,
    summarize,
    winnow,
)
from repro.lf import canonical_signature, flatten_associative, isomorphic, to_graph


def const(value, span=None):
    return Const(value, span=span)


def call(pred, *args, trigger=None, flags=frozenset()):
    return Call(pred, tuple(args), trigger=trigger, flags=flags)


class TestTypeCheck:
    def test_action_needs_function_name(self):
        check = TypeCheck()
        good = call("Action", const("compute"), const("checksum"))
        bad = call("Action", const("0"), const("compute"))
        assert check.filter([good, bad]) == [good]

    def test_is_rejects_value_lhs(self):
        check = TypeCheck()
        good = call("Is", const("checksum"), const("0"))
        bad = call("Is", const("0"), const("checksum"))
        assert check.filter([good, bad]) == [good]

    def test_and_group_compatibility(self):
        check = TypeCheck()
        fields = call("And", const("source"), const("destination"))
        mixed = call("And", const("identifier"), const("replies"))
        good = call("Is", fields, const("0"))
        bad = call("Is", mixed, const("0"))
        assert check.filter([good, bad]) == [good]

    def test_if_needs_clauses(self):
        check = TypeCheck()
        good = call("If", call("Is", const("code"), const("0")),
                    call("Action", const("discard"), const("datagram")))
        bad = call("If", const("code"), const("0"))
        assert check.filter([good, bad]) == [good]


class TestArgumentOrdering:
    def test_swapped_conditional_removed(self):
        check = ArgumentOrderingCheck()
        condition = call("Is", const("code", (1, 2)), const("0", (3, 4)))
        action = call("Is", const("type", (5, 6)), const("3", (7, 8)))
        good = call("If", condition, action, trigger=0)
        swapped = call("If", action, condition, trigger=0)
        assert check.filter([good, swapped]) == [good]

    def test_trailing_conditional_accepted(self):
        check = ArgumentOrderingCheck()
        condition = call("Is", const("timer", (5, 6)), const("64", (7, 8)))
        action = call("Action", const("call", (0, 1)), const("proc", (1, 2)))
        trailing = call("If", condition, action, trigger=4)
        assert check.filter([trailing]) == [trailing]

    def test_is_left_to_right(self):
        check = ArgumentOrderingCheck()
        good = call("Is", const("checksum", (0, 1)), const("0", (3, 4)))
        reverse = call("Is", const("0", (3, 4)), const("checksum", (0, 1)))
        assert check.filter([good, reverse]) == [good]


class TestPredicateOrdering:
    def test_is_under_of_removed(self):
        check = PredicateOrderingCheck()
        good = call("Is", call("Of", const("a"), const("b")), const("c"))
        bad = call("Of", const("a"), call("Is", const("b"), const("c")))
        assert check.filter([good, bad]) == [good]

    def test_positional_rule(self):
        check = PredicateOrderingCheck()
        # @Of with @And in position 0 is blocked; in position 1 allowed.
        blocked = call("Of", call("And", const("a"), const("b")), const("c"))
        allowed = call("And", const("a"), call("Of", const("b"), const("c")))
        assert check.filter([blocked, allowed]) == [allowed]


class TestDistributivity:
    def test_prefers_non_distributed(self):
        check = DistributivityCheck()
        grouped = call("Is", call("And", const("a"), const("b")), const("c"))
        distributed = call(
            "And",
            call("Is", const("a"), const("c")),
            call("Is", const("b"), const("c")),
            flags=frozenset({"distributed"}),
        )
        assert check.filter([grouped, distributed]) == [grouped]

    def test_keeps_distributed_when_alone(self):
        check = DistributivityCheck()
        distributed = call("And", const("a"), const("b"),
                           flags=frozenset({"distributed"}))
        assert check.filter([distributed]) == [distributed]


class TestAssociativity:
    def test_of_regroupings_collapse(self):
        check = AssociativityCheck()
        left = call("Of", call("Of", const("a"), const("b")), const("c"))
        right = call("Of", const("a"), call("Of", const("b"), const("c")))
        assert len(check.filter([left, right])) == 1

    def test_different_orders_do_not_collapse(self):
        check = AssociativityCheck()
        one = call("Of", const("a"), const("b"))
        other = call("Of", const("b"), const("a"))
        assert len(check.filter([one, other])) == 2

    def test_and_is_commutative(self):
        check = AssociativityCheck()
        one = call("And", const("a"), const("b"))
        other = call("And", const("b"), const("a"))
        assert len(check.filter([one, other])) == 1


class TestGraphs:
    def test_flatten_merges_chains(self):
        nested = call("Of", call("Of", const("a"), const("b")), const("c"))
        flat = flatten_associative(nested)
        assert len(flat.args) == 3

    def test_isomorphic_figure3(self):
        # The two Figure 3 readings of sentence H are isomorphic.
        one = call("Of", call("Of", const("ones"), const("sum")), const("msg"))
        two = call("Of", const("ones"), call("Of", const("sum"), const("msg")))
        assert isomorphic(one, two)

    def test_not_isomorphic_across_predicates(self):
        assert not isomorphic(
            call("Of", const("a"), const("b")), call("And", const("a"), const("b"))
        )

    def test_graph_shape(self):
        graph = to_graph(call("Is", const("a"), const("b")))
        assert graph.number_of_nodes() == 3
        assert graph.number_of_edges() == 2

    def test_canonical_signature_invariant(self):
        one = call("And", const("a"), call("And", const("b"), const("c")))
        two = call("And", call("And", const("c"), const("a")), const("b"))
        assert canonical_signature(one) == canonical_signature(two)


class TestMemoInvalidation:
    """The content-addressed check memos must follow configuration changes.

    Verdicts are memoized in process-global tables keyed by each check's
    content fingerprint; mutating a check's configuration (registering a
    constant class) must move it to a fresh table, never serve a stale
    verdict.
    """

    def test_type_verdict_follows_class_registration(self):
        from repro.lf.predicates import FIELD

        check = TypeCheck()
        form = call("Action", const("frobnicate"), const("checksum"))
        # Unknown verbs class as CONCEPT, which @Action tolerates...
        assert check.well_typed(form)
        fp_before = check.fingerprint()
        # ...but registering the constant as a known non-function must
        # flip the verdict — a stale memo would keep saying True.
        check.classes.register("frobnicate", FIELD)
        assert check.fingerprint() != fp_before
        assert not check.well_typed(form)

    def test_suite_fingerprint_tracks_class_registration(self):
        from repro.lf.predicates import FUNCTION

        suite = CheckSuite.default()
        fp_before = suite.fingerprint()
        suite.type_check.classes.register("frobnicate", FUNCTION)
        assert suite.fingerprint() != fp_before

    def test_winnow_stage_cache_invalidates_on_suite_change(self):
        from types import SimpleNamespace

        from repro.core.stages import WinnowStage
        from repro.lf.predicates import FUNCTION
        from repro.rfc.registry import ParseCache

        stage = WinnowStage(cache=ParseCache())
        parsed = SimpleNamespace(
            spec=SimpleNamespace(field="checksum", text="the checksum is 0"),
            logical_forms=[call("Is", const("checksum", (0, 1)),
                                const("0", (2, 3)))],
        )
        first = stage.run(parsed)
        assert stage.run(parsed) is first  # served from the result cache
        key_before = stage.cache_key(parsed)
        stage.suite.type_check.classes.register("frobnicate", FUNCTION)
        assert stage.cache_key(parsed) != key_before
        assert stage.run(parsed) is not first  # stale entry unreachable

    def test_reset_winnow_state_clears_tables_in_place(self):
        from repro.disambiguation import reset_winnow_state

        check = TypeCheck()
        form = call("Is", const("checksum"), const("0"))
        assert check.well_typed(form)
        table = check._refresh()
        assert table  # the verdict was memoized
        reset_winnow_state()
        # Cleared in place: the check's bound table is the same object,
        # empty, and keeps answering after recomputation.
        assert check._refresh() is table
        assert not table
        assert check.well_typed(form)


class TestCorpusAssociativityPairs:
    def test_canonical_matches_vf2_on_real_parse_ambiguity(self):
        """Canonical signatures agree with VF2 on the corpus's own LF
        pairs — the associativity regroupings Figure 3 is about, not just
        synthetic hypothesis terms."""
        from itertools import combinations

        from repro.rfc.registry import ProtocolRegistry

        registry = ProtocolRegistry()
        corpus = registry.load_corpus("ICMP")
        chunker = registry.chunker()
        parser = registry.parser()
        pairs = equivalent = 0
        for spec in corpus.sentences:
            forms = parser.parse(
                chunker.chunk_text(spec.text)).logical_forms[:12]
            for a, b in combinations(forms, 2):
                same_class = (canonical_signature(a)
                              == canonical_signature(b))
                assert same_class == isomorphic(a, b), spec.text
                pairs += 1
                equivalent += same_class
        assert pairs > 100  # the corpus is genuinely ambiguous
        assert equivalent > 0  # ...including real regrouping pairs


class TestOracleFlag:
    def test_oracle_replay_agrees_with_canonical_fast_path(self, monkeypatch):
        from repro.disambiguation.checks import ORACLE_ENV
        from repro.disambiguation.profile import PROFILE

        monkeypatch.setenv(ORACLE_ENV, "1")
        check = AssociativityCheck()
        left = call("Of", call("Of", const("a"), const("b")), const("c"))
        right = call("Of", const("a"), call("Of", const("b"), const("c")))
        other = call("And", const("x"), const("y"))
        before = PROFILE.oracle_calls
        kept = check.filter([left, right, other])  # raises on disagreement
        assert len(kept) == 2
        assert PROFILE.oracle_calls > before


class TestWinnowDriver:
    def test_trace_records_all_stages(self):
        forms = [call("Is", const("checksum", (0, 1)), const("0", (2, 3)))]
        trace = winnow("s", forms)
        assert trace.counts["Base"] == 1
        assert trace.final_count == 1
        assert "Type" in trace.counts
        assert "Final Selection" in trace.counts

    def test_checks_never_annihilate(self):
        # A set where every LF is ill-typed: the type check must not empty it.
        bad = call("Action", const("0"), const("1"))
        trace = winnow("s", [bad])
        assert trace.final_count == 1

    def test_summarize_monotone(self):
        forms = [
            call("Is", const("checksum", (0, 1)), const("0", (2, 3))),
            call("Is", const("0", (2, 3)), const("checksum", (0, 1))),
        ]
        summary = summarize([winnow("s", forms)])
        assert summary.max_counts[0] >= summary.max_counts[-1]

    def test_isolated_effects_shapes(self):
        forms = [
            call("Is", const("checksum", (0, 1)), const("0", (2, 3))),
            call("Is", const("0", (2, 3)), const("checksum", (0, 1))),
        ]
        effects = isolated_effects([("s", forms)])
        by_name = {e.check_name: e for e in effects}
        assert by_name["Argument Ordering"].affected_sentences == 1
        assert by_name["Type"].mean_removed >= 1
