"""Tests for the NLP substrate: tokenizer, tagger, chunker, dictionary."""

from hypothesis import given
from hypothesis import strategies as st

from repro.nlp import (
    NounPhraseChunker,
    TermDictionary,
    load_default_dictionary,
    normalize_term,
    split_sentences,
    tag_word,
    tokenize,
)
from repro.nlp.chunker import ChunkerConfig
from repro.nlp.tokenizer import KIND_NOUN_PHRASE, KIND_NUMBER, KIND_STATEVAR


class TestTokenizer:
    def test_simple_sentence(self):
        tokens = tokenize("The checksum is zero.")
        assert [t.text for t in tokens] == ["The", "checksum", "is", "zero", "."]

    def test_field_test_idiom(self):
        tokens = tokenize("If code = 0, reply.")
        assert "=" in [t.text for t in tokens]

    def test_state_variable_is_one_token(self):
        tokens = tokenize("Set bfd.SessionState to Up.")
        kinds = {t.text: t.kind for t in tokens}
        assert kinds["bfd.SessionState"] == KIND_STATEVAR

    def test_hyphenated_words_survive(self):
        tokens = tokenize("time-to-live and 16-bit one's complement")
        texts = [t.text for t in tokens]
        assert "time-to-live" in texts
        assert "16-bit" in texts
        assert "one's" in texts

    def test_numbers(self):
        tokens = tokenize("the first 64 bits")
        number = [t for t in tokens if t.kind == KIND_NUMBER]
        assert [t.text for t in number] == ["64"]


class TestSentenceSplitting:
    def test_basic_split(self):
        text = "The type is 3. The code is 0."
        assert split_sentences(text) == ["The type is 3.", "The code is 0."]

    def test_abbreviations_do_not_split(self):
        text = "Fields (e.g. the type) are set. The rest follows."
        assert len(split_sentences(text)) == 2

    def test_statevar_dots_do_not_split(self):
        text = "Set bfd.SessionState to Up. Then stop."
        assert len(split_sentences(text)) == 2

    def test_trailing_fragment_kept(self):
        assert split_sentences("no terminal period") == ["no terminal period"]


class TestNormalization:
    def test_spaces_to_underscores(self):
        assert normalize_term("Echo Reply Message") == "echo_reply_message"

    def test_possessive(self):
        assert normalize_term("original datagram's data") == "original_datagrams_data"

    def test_statevar_dots_kept(self):
        assert normalize_term("bfd.SessionState") == "bfd.sessionstate"

    @given(st.text(alphabet="abc DEF'-", min_size=1, max_size=20))
    def test_normalization_is_idempotent(self, text):
        once = normalize_term(text)
        assert normalize_term(once.replace("_", " ")) == once


class TestTermDictionary:
    def test_longest_match_prefers_longer(self):
        dictionary = TermDictionary(["echo", "echo reply", "echo reply message"])
        words = ["echo", "reply", "message", "x"]
        assert dictionary.longest_match(words, 0) == 3

    def test_plural_matching(self):
        dictionary = TermDictionary(["echo", "reply", "address"])
        assert dictionary.longest_match(["echos"], 0) == 1
        assert dictionary.longest_match(["replies"], 0) == 1
        assert dictionary.longest_match(["addresses"], 0) == 1

    def test_miss(self):
        dictionary = TermDictionary(["checksum"])
        assert dictionary.longest_match(["unrelated"], 0) == 0

    def test_default_dictionary_is_about_400_terms(self):
        dictionary = load_default_dictionary()
        assert 350 <= len(dictionary) <= 520  # "about 400 terms"
        assert "checksum" in dictionary
        assert "echo reply message" in dictionary


class TestTagger:
    def test_closed_classes(self):
        assert tag_word("the") == "DET"
        assert tag_word("of") == "PREP"
        assert tag_word("must") == "MODAL"
        assert tag_word("and") == "CONJ"
        assert tag_word("if") == "SUB"

    def test_verbs_with_morphology(self):
        assert tag_word("reversed") == "VERB"
        assert tag_word("received") == "VERB"
        assert tag_word("computing") == "VERB"
        assert tag_word("discards") == "VERB"

    def test_unknown_defaults_to_noun(self):
        assert tag_word("discriminator") == "NOUN"


class TestChunker:
    def test_dictionary_phrases_fuse(self):
        chunker = NounPhraseChunker()
        tokens = chunker.chunk_text("the echo reply message is sent")
        np = [t for t in tokens if t.kind == KIND_NOUN_PHRASE]
        assert any(t.text == "echo reply message" for t in np)

    def test_noun_runs_fuse(self):
        chunker = NounPhraseChunker()
        tokens = chunker.chunk_text("the buffer capacity limit")
        np = [t.text for t in tokens if t.kind == KIND_NOUN_PHRASE]
        assert "buffer capacity limit" in " ".join(np) or "buffer space" not in np

    def test_adjacent_nps_merge(self):
        chunker = NounPhraseChunker()
        tokens = chunker.chunk_text("an ICMP type field")
        np = [t.text for t in tokens if t.kind == KIND_NOUN_PHRASE]
        assert "ICMP type field" in np

    def test_number_units_merge(self):
        chunker = NounPhraseChunker()
        tokens = chunker.chunk_text("32 bits of milliseconds")
        np = [t.text for t in tokens if t.kind == KIND_NOUN_PHRASE]
        assert "32 bits" in np

    def test_quoted_phrases_fuse(self):
        chunker = NounPhraseChunker()
        tokens = chunker.chunk_text('the "echo reply message" field')
        np = [t.text for t in tokens if t.kind == KIND_NOUN_PHRASE]
        assert any(t.startswith("echo reply message") for t in np)

    def test_ablation_disables_labeling(self):
        chunker = NounPhraseChunker(config=ChunkerConfig(use_np_labeling=False))
        tokens = chunker.chunk_text("the echo reply message")
        assert all(t.kind != KIND_NOUN_PHRASE for t in tokens)

    def test_statevar_becomes_np(self):
        chunker = NounPhraseChunker()
        tokens = chunker.chunk_text("set bfd.SessionState to 1")
        kinds = {t.text: t.kind for t in tokens}
        assert kinds["bfd.SessionState"] == KIND_NOUN_PHRASE
