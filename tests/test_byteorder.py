"""Tests for byte-order helpers."""

from hypothesis import given
from hypothesis import strategies as st

from repro.framework.byteorder import htonl, htons, ntohl, ntohs, swap16, swap32


class TestSwap:
    def test_swap16_known_value(self):
        assert swap16(0x1234) == 0x3412

    def test_swap32_known_value(self):
        assert swap32(0x12345678) == 0x78563412

    @given(st.integers(min_value=0, max_value=0xFFFF))
    def test_swap16_involution(self, value):
        assert swap16(swap16(value)) == value

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_swap32_involution(self, value):
        assert swap32(swap32(value)) == value


class TestHostNetwork:
    @given(st.integers(min_value=0, max_value=0xFFFF))
    def test_htons_ntohs_roundtrip(self, value):
        assert ntohs(htons(value)) == value

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_htonl_ntohl_roundtrip(self, value):
        assert ntohl(htonl(value)) == value

    def test_conversion_consistent_with_swap_on_little_endian(self):
        import sys

        if sys.byteorder == "little":
            assert htons(0x1234) == swap16(0x1234)
            assert htonl(0x12345678) == swap32(0x12345678)
        else:
            assert htons(0x1234) == 0x1234
