"""Integration tests: the Appendix A ICMP test scenarios, end to end.

Each scenario mirrors the paper's Appendix A setup on the course topology
and asserts the exact ICMP exchange the RFC prescribes, verified both by
the tool's view (ping/traceroute results) and tcpdump cleanliness.
"""

from repro.framework import icmp, verify_clean
from repro.framework.addressing import int_to_ip, ip_to_int
from repro.framework.ip import PROTO_ICMP, PROTO_UDP, IPv4Header, make_ip_packet
from repro.netsim import Ping, ping, traceroute
from repro.netsim.topologies import add_redirect_route, course_topology


class TestEchoScenario:
    def test_ping_router_interface(self):
        topology = course_topology()
        result = ping(topology.client, ip_to_int("10.0.1.1"), count=5)
        assert result.success
        assert [reply.sequence for reply in result.replies] == [1, 2, 3, 4, 5]

    def test_ping_across_router(self):
        topology = course_topology()
        result = ping(topology.client, ip_to_int("192.168.2.2"), count=3)
        assert result.success
        assert all(reply.source == ip_to_int("192.168.2.2") for reply in result.replies)

    def test_all_scenario_packets_tcpdump_clean(self):
        topology = course_topology()
        ping(topology.client, ip_to_int("192.168.2.2"), count=2)
        clean, warnings = verify_clean(
            topology.client.sent_capture
            + topology.client.received_capture
            + topology.server1.sent_capture
        )
        assert clean, warnings


class TestDestinationUnreachableScenario:
    def test_unknown_destination_gets_net_unreachable(self):
        topology = course_topology()
        result = ping(topology.client, ip_to_int("8.8.8.8"))
        assert result.received == 0
        assert result.errors
        error = result.errors[0]
        assert error.icmp_type == icmp.DEST_UNREACHABLE
        assert error.icmp_code == icmp.NET_UNREACHABLE
        assert error.source == ip_to_int("10.0.1.1")


class TestTimeExceededScenario:
    def test_ttl_one_probe_triggers_time_exceeded(self):
        topology = course_topology()
        prober = Ping(topology.client, ttl=1)
        result = prober.run(ip_to_int("192.168.2.2"))
        assert result.received == 0
        assert result.errors[0].icmp_type == icmp.TIME_EXCEEDED

    def test_error_quotes_offending_datagram(self):
        topology = course_topology()
        prober = Ping(topology.client, ttl=1)
        prober.run(ip_to_int("192.168.2.2"))
        # Find the time-exceeded packet the client received and check the quote.
        for raw in topology.client.received_capture:
            packet = IPv4Header.unpack(raw)
            if packet.protocol != PROTO_ICMP:
                continue
            message = icmp.ICMPHeader.unpack(packet.data)
            if message.type != icmp.TIME_EXCEEDED:
                continue
            quoted = IPv4Header.unpack(message.payload)
            assert quoted.src == ip_to_int("10.0.1.100")
            assert quoted.dst == ip_to_int("192.168.2.2")
            assert len(message.payload) == 20 + 8
            return
        raise AssertionError("no time-exceeded message captured")


class TestParameterProblemScenario:
    def test_nonzero_tos_rejected(self):
        topology = course_topology(require_tos_zero=True)
        result = Ping(topology.client).run(ip_to_int("192.168.2.2"), tos=1)
        assert result.errors[0].icmp_type == icmp.PARAMETER_PROBLEM

    def test_pointer_indexes_tos_octet(self):
        topology = course_topology(require_tos_zero=True)
        Ping(topology.client).run(ip_to_int("192.168.2.2"), tos=1)
        for raw in topology.client.received_capture:
            packet = IPv4Header.unpack(raw)
            message = icmp.ICMPHeader.unpack(packet.data)
            if message.type == icmp.PARAMETER_PROBLEM:
                assert message.pointer == 1
                return
        raise AssertionError("no parameter-problem message captured")

    def test_zero_tos_forwards_normally(self):
        topology = course_topology(require_tos_zero=True)
        result = ping(topology.client, ip_to_int("192.168.2.2"))
        assert result.success


class TestSourceQuenchScenario:
    def test_full_buffer_triggers_quench(self):
        topology = course_topology(buffer_capacity=0)
        result = ping(topology.client, ip_to_int("192.168.2.2"))
        assert result.received == 0
        assert result.errors[0].icmp_type == icmp.SOURCE_QUENCH


class TestRedirectScenario:
    def test_reachable_next_hop_on_own_subnet_redirects(self):
        topology = course_topology()
        destination = add_redirect_route(topology)
        result = ping(topology.client, ip_to_int(destination))
        assert result.errors[0].icmp_type == icmp.REDIRECT
        # The redirect names the better gateway on the client's subnet.
        for raw in topology.client.received_capture:
            packet = IPv4Header.unpack(raw)
            message = icmp.ICMPHeader.unpack(packet.data)
            if message.type == icmp.REDIRECT:
                assert int_to_ip(message.gateway) == "10.0.1.254"
                return
        raise AssertionError("no redirect captured")


class TestTimestampScenario:
    def test_timestamp_reply_roundtrip(self):
        topology = course_topology()
        topology.router.os.clock.advance(5_000)
        request = icmp.make_timestamp(77, 1, originate=1_000)
        packet = make_ip_packet(
            ip_to_int("10.0.1.100"), ip_to_int("10.0.1.1"), PROTO_ICMP,
            request.pack(),
        )
        replies = []

        def listener(received, _iface):
            if received.protocol == PROTO_ICMP and received.data[0] == icmp.TIMESTAMP_REPLY:
                replies.append(icmp.ICMPTimestampHeader.unpack(received.data))

        topology.client.add_listener(listener)
        topology.client.send(packet)
        topology.run()
        assert replies
        reply = replies[0]
        assert reply.originate == 1_000
        assert reply.receive == 5_000
        assert reply.transmit == 5_000
        assert (reply.identifier, reply.sequence) == (77, 1)


class TestInfoScenario:
    def test_info_reply_roundtrip(self):
        topology = course_topology()
        request = icmp.make_info_request(88, 2)
        packet = make_ip_packet(
            ip_to_int("10.0.1.100"), ip_to_int("10.0.1.1"), PROTO_ICMP, request.pack()
        )
        replies = []

        def listener(received, _iface):
            if received.protocol == PROTO_ICMP and received.data[0] == icmp.INFO_REPLY:
                replies.append(icmp.ICMPHeader.unpack(received.data))

        topology.client.add_listener(listener)
        topology.client.send(packet)
        topology.run()
        assert replies
        assert replies[0].identifier == 88
        assert replies[0].payload == b""


class TestTracerouteScenario:
    def test_path_through_router(self):
        topology = course_topology()
        result = traceroute(topology.client, ip_to_int("192.168.2.2"))
        assert result.destination_reached
        assert result.path() == [ip_to_int("10.0.1.1"), ip_to_int("192.168.2.2")]

    def test_traceroute_rejects_bad_quotes(self):
        """A router that quotes the wrong bytes breaks traceroute hop
        discovery (the tool validates the quoted datagram)."""
        from repro.framework.udp import make_udp
        from repro.netsim.icmp_impl import ReferenceICMP

        class BadQuoteICMP(ReferenceICMP):
            def time_exceeded(self, original, responder_address):
                # Right addresses, wrong quoted ports: the client receives
                # the error but cannot match it to its probe.
                datagram = make_udp(original.src, original.dst, 1, 2, b"")
                bogus = make_ip_packet(
                    original.src, original.dst, PROTO_UDP, datagram.pack()
                )
                bogus.src, bogus.dst = original.src, original.dst
                bogus.finalize()
                return super().time_exceeded(bogus, responder_address)

        topology = course_topology(implementation=BadQuoteICMP())
        result = traceroute(topology.client, ip_to_int("192.168.2.2"), max_ttl=2)
        assert any("quote" in rejection for rejection in result.rejections)
        # The first hop goes undiscovered because its error was rejected.
        assert result.hops[0].address is None
