"""Tests for the pcap writer/reader and the tcpdump-like verifier."""

import io

import pytest

from repro.framework import icmp
from repro.framework.addressing import ip_to_int
from repro.framework.ip import PROTO_ICMP, PROTO_UDP, make_ip_packet
from repro.framework.pcap import (
    packets_to_pcap_bytes,
    read_pcap,
    write_pcap,
)
from repro.framework.tcpdump import decode_capture, decode_packet, verify_clean
from repro.framework.udp import make_udp

SRC = ip_to_int("10.0.1.100")
DST = ip_to_int("192.168.2.2")


def echo_packet(payload=b"abcdefgh"):
    echo = icmp.make_echo(0x42, 1, payload)
    return make_ip_packet(SRC, DST, PROTO_ICMP, echo.pack()).pack()


class TestPcapRoundtrip:
    def test_roundtrip_preserves_bytes(self):
        packets = [echo_packet(), echo_packet(b"other-payload")]
        blob = packets_to_pcap_bytes(packets)
        parsed = list(read_pcap(io.BytesIO(blob)))
        assert [record.data for record in parsed] == packets
        assert all(not record.truncated for record in parsed)

    def test_write_returns_count(self):
        buffer = io.BytesIO()
        assert write_pcap(buffer, [echo_packet()] * 3) == 3

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            list(read_pcap(io.BytesIO(b"not a pcap file at all....")))

    def test_custom_timestamps(self):
        buffer = io.BytesIO()
        write_pcap(buffer, [echo_packet()], timestamps=[(100, 5)])
        record = next(read_pcap(io.BytesIO(buffer.getvalue())))
        assert (record.timestamp_sec, record.timestamp_usec) == (100, 5)

    def test_file_roundtrip(self, tmp_path):
        from repro.framework.pcap import read_pcap_file, write_pcap_file

        path = tmp_path / "capture.pcap"
        write_pcap_file(str(path), [echo_packet()])
        records = read_pcap_file(str(path))
        assert len(records) == 1


class TestTcpdumpDecode:
    def test_clean_echo_request(self):
        decoded = decode_packet(echo_packet())
        assert decoded.clean
        assert "ICMP echo request" in decoded.summary
        assert "id 66" in decoded.summary

    def test_bad_icmp_checksum_warns(self):
        raw = bytearray(echo_packet())
        raw[-1] ^= 0xFF
        decoded = decode_packet(bytes(raw))
        assert "bad ICMP checksum" in decoded.warnings

    def test_bad_ip_checksum_warns(self):
        raw = bytearray(echo_packet())
        raw[10] ^= 0xFF  # corrupt the IP checksum field itself
        decoded = decode_packet(bytes(raw))
        assert "bad IP header checksum" in decoded.warnings

    def test_truncated_packet_warns(self):
        decoded = decode_packet(echo_packet()[:15])
        assert not decoded.clean

    def test_length_mismatch_warns(self):
        decoded = decode_packet(echo_packet() + b"\x00\x00")
        assert any("total length" in warning for warning in decoded.warnings)

    def test_error_message_quoting_checked(self):
        original = make_ip_packet(SRC, DST, PROTO_UDP, b"0123456789")
        message = icmp.make_time_exceeded(0, original)
        packet = make_ip_packet(DST, SRC, PROTO_ICMP, message.pack()).pack()
        decoded = decode_packet(packet)
        assert decoded.clean
        assert "time exceeded" in decoded.summary

    def test_short_error_quote_warns(self):
        # An error message whose payload is shorter than an IP header.
        bogus = icmp.ICMPHeader(type=icmp.TIME_EXCEEDED, code=0, payload=b"short")
        bogus.finalize()
        packet = make_ip_packet(DST, SRC, PROTO_ICMP, bogus.pack()).pack()
        decoded = decode_packet(packet)
        assert any("too short" in warning for warning in decoded.warnings)

    def test_udp_decode(self):
        datagram = make_udp(SRC, DST, 1111, 2222, b"data")
        packet = make_ip_packet(SRC, DST, PROTO_UDP, datagram.pack()).pack()
        decoded = decode_packet(packet)
        assert decoded.clean
        assert "UDP 1111 > 2222" in decoded.summary

    def test_verify_clean_aggregates(self):
        good = echo_packet()
        bad = bytearray(echo_packet())
        bad[-1] ^= 0xFF
        ok, warnings = verify_clean([good, bytes(bad)])
        assert not ok
        assert any(warning.startswith("packet 1:") for warning in warnings)
        ok2, warnings2 = verify_clean([good])
        assert ok2 and not warnings2

    def test_decode_capture_flags_truncation(self):
        from repro.framework.pcap import CapturedPacket

        record = CapturedPacket(0, 0, echo_packet()[:30], original_length=100)
        decoded = decode_capture([record])
        assert any("truncated in capture" in warning for warning in decoded[0].warnings)
