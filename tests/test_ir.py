"""Tests for the typed codegen IR: nodes, passes, backends, caching."""

import pytest

from repro.codegen import (
    CEmitter,
    Function,
    FunctionNameCollision,
    IRInterpreter,
    IRValidationError,
    Program,
    PyEmitter,
    SentenceCode,
    backend_names,
    build_function,
    builder_role,
    collect_symbols,
    get_backend,
    validate_function,
)
from repro.codegen.ir import (
    AdvicePlacementPass,
    ChecksumFinalizationPass,
    SetFieldDedupePass,
    run_passes,
)
from repro.codegen.ops import (
    CallProcedure,
    ComputeChecksum,
    Condition,
    Conditional,
    Discard,
    Op,
    Send,
    SetField,
    SetStateVar,
    SwapFields,
    Value,
)


def setfield(name="type", const=3, protocol="icmp"):
    return SetField(protocol, name, Value.constant(const))


class TestFunctionAndProgram:
    def test_function_name_derived_from_routing_metadata(self):
        function = Function(protocol="ICMP", message_name="echo reply",
                            role="receiver")
        assert function.name == "icmp_echo_reply_receiver"

    def test_name_override_wins(self):
        function = Function(protocol="ICMP", message_name="echo reply",
                            role="receiver", name_override="custom")
        assert function.name == "custom"

    def test_fingerprint_changes_with_ops(self):
        a = Function(protocol="ICMP", message_name="echo", role="sender",
                     ops=[setfield(const=1)])
        b = Function(protocol="ICMP", message_name="echo", role="sender",
                     ops=[setfield(const=2)])
        assert a.fingerprint() != b.fingerprint()
        same = Function(protocol="ICMP", message_name="echo", role="sender",
                        ops=[setfield(const=1)])
        assert a.fingerprint() == same.fingerprint()

    def test_program_fingerprint_covers_struct_and_functions(self):
        a = Program(protocol="ICMP", struct_c="struct a {};")
        b = Program(protocol="ICMP", struct_c="struct b {};")
        assert a.fingerprint() != b.fingerprint()

    def test_program_add_rejects_slug_collisions(self):
        """Two messages slugging to the same builder name must not merge."""
        program = Program(protocol="ICMP")
        program.add(Function(protocol="ICMP", message_name="echo-reply",
                             role="receiver"))
        with pytest.raises(FunctionNameCollision) as excinfo:
            program.add(Function(protocol="ICMP", message_name="echo reply",
                                 role="receiver"))
        assert "echo-reply" in str(excinfo.value)
        assert "echo reply" in str(excinfo.value)

    def test_same_message_both_roles_is_not_a_collision(self):
        program = Program(protocol="ICMP")
        program.add(Function(protocol="ICMP", message_name="echo", role="sender"))
        program.add(Function(protocol="ICMP", message_name="echo", role="receiver"))
        assert len(program.programs) == 2

    def test_program_validate_finds_duplicates(self):
        program = Program(protocol="ICMP", programs=[
            Function(protocol="ICMP", message_name="echo", role="sender"),
            Function(protocol="ICMP", message_name="Echo", role="sender"),
        ])
        with pytest.raises(FunctionNameCollision):
            program.validate()


class TestValidation:
    def test_unknown_op_rejected(self):
        class Rogue(Op):
            pass

        function = Function(protocol="ICMP", message_name="x", role="receiver",
                            ops=[Rogue()])
        with pytest.raises(IRValidationError):
            validate_function(function)

    def test_unknown_value_kind_rejected(self):
        op = SetField("icmp", "type", Value(kind="telepathy"))
        function = Function(protocol="ICMP", message_name="x", role="receiver",
                            ops=[op])
        with pytest.raises(IRValidationError):
            validate_function(function)

    def test_unknown_condition_kind_rejected(self):
        op = Conditional(condition=Condition(kind="vibes"), body=[setfield()])
        function = Function(protocol="ICMP", message_name="x", role="receiver",
                            ops=[op])
        with pytest.raises(IRValidationError):
            validate_function(function)

    def test_nested_bodies_validated(self):
        bad = Conditional(
            condition=Condition(kind="field_equals", protocol="icmp",
                                name="type", value=0),
            body=[SetField("icmp", "", Value.constant(0))],
        )
        function = Function(protocol="ICMP", message_name="x", role="receiver",
                            ops=[bad])
        with pytest.raises(IRValidationError):
            validate_function(function)

    def test_clean_function_validates(self):
        function = build_function(
            "ICMP", "echo reply", "receiver",
            [SentenceCode(sentence="s", ops=[setfield()])],
        )
        validate_function(function)  # no raise


class TestPasses:
    def test_pass_pipeline_matches_historical_order(self):
        """finalize → advice → dedupe, exactly the pre-IR generator."""
        zero = SetField("icmp", "checksum", Value.constant(0),
                        advice_before="compute_checksum")
        compute = ComputeChecksum("icmp", "checksum", "internet_checksum")
        ident = setfield("identifier", 7)
        result = run_passes([compute, zero, ident])
        assert result == [ident, zero, compute]

    def test_checksum_finalization_dedupes(self):
        ops = [
            ComputeChecksum("icmp", "checksum", "internet_checksum"),
            setfield("identifier", 1),
            ComputeChecksum("icmp", "checksum", "internet_checksum"),
        ]
        result = ChecksumFinalizationPass().run(ops)
        assert sum(isinstance(op, ComputeChecksum) for op in result) == 1
        assert isinstance(result[0], SetField)

    def test_advice_stays_put_without_target(self):
        zero = SetField("icmp", "checksum", Value.constant(0),
                        advice_before="compute_checksum")
        other = setfield()
        result = AdvicePlacementPass().run([other, zero])
        assert result == [other, zero]

    def test_dedupe_keeps_non_const_assignments(self):
        a = SetField("icmp", "identifier", Value.param("chosen_value"))
        b = SetField("icmp", "identifier", Value.param("chosen_value"))
        assert SetFieldDedupePass().run([a, b]) == [a, b]


class TestSymbolTable:
    def test_collects_across_nesting(self):
        ops = [
            SetField("icmp", "type", Value.constant(0)),
            SetField("ip", "dst", Value.request_field("ip", "src")),
            SwapFields("ip", "src", "ip", "dst"),
            SetStateVar("bfd.remotediscr", Value.packet_field("my_discriminator")),
            Conditional(
                condition=Condition(kind="statevar_equals",
                                    name="bfd.sessionstate", other="down"),
                body=[CallProcedure("timeout_procedure"),
                      Send(message="query", destination="all_hosts_group")],
            ),
        ]
        table = collect_symbols(ops)
        assert ("icmp", "type") in table.fields
        assert ("ip", "src") in table.fields and ("ip", "dst") in table.fields
        assert "bfd.remotediscr" in table.state_vars
        assert "bfd.sessionstate" in table.state_vars
        assert "my_discriminator" in table.packet_fields
        assert "timeout_procedure" in table.procedures
        assert "query" in table.messages

    def test_params_collected(self):
        table = collect_symbols([SetField("icmp", "code", Value.param("code"))])
        assert table.params == frozenset({"code"})


class TestBackendRegistry:
    def test_bundled_backends_registered(self):
        assert {"c", "python", "interp"} <= set(backend_names())

    def test_get_backend_unknown_raises(self):
        with pytest.raises(KeyError):
            get_backend("fortran")

    def test_backend_capabilities(self):
        assert CEmitter.emits_text and not CEmitter.executable
        assert PyEmitter.emits_text and PyEmitter.executable
        assert IRInterpreter.executable and not IRInterpreter.emits_text

    def test_c_backend_is_not_executable(self):
        with pytest.raises(NotImplementedError):
            CEmitter().compile_program(Program(protocol="ICMP"))

    def test_interpreter_does_not_emit_text(self):
        function = Function(protocol="ICMP", message_name="x", role="receiver")
        with pytest.raises(NotImplementedError):
            IRInterpreter().emit_function(function)


class TestInterpreterSemantics:
    class RecordingContext:
        """Deterministic ctx double: records calls, answers from arguments."""

        def __init__(self):
            self.calls = []

        def set_field(self, protocol, name, value):
            self.calls.append(("set_field", protocol, name, value))

        def get_field(self, protocol, name):
            self.calls.append(("get_field", protocol, name))
            return (len(protocol) + len(name)) % 4

        def discard(self, reason=""):
            self.calls.append(("discard", reason))

        def send(self, message, destination=""):
            self.calls.append(("send", message, destination))

    def run_interp(self, ops):
        function = Function(protocol="ICMP", message_name="x", role="receiver",
                            ops=ops)
        context = self.RecordingContext()
        IRInterpreter().compile_function(function)(context)
        return context.calls

    def test_discard_stops_execution(self):
        calls = self.run_interp([Discard(reason="bad"), setfield()])
        assert calls == [("discard", "bad")]

    def test_discard_inside_conditional_unwinds(self):
        guarded = Conditional(
            condition=Condition(kind="field_equals", protocol="ip",
                                name="dst", value=1),
            body=[Discard(reason="nested")],
        )
        # ("ip","dst") → (2+3) % 4 == 1 → condition true → discard fires.
        calls = self.run_interp([guarded, setfield()])
        assert calls == [("get_field", "ip", "dst"), ("discard", "nested")]

    def test_false_branch_skips_body(self):
        guarded = Conditional(
            condition=Condition(kind="field_equals", protocol="ip",
                                name="dst", value=2),
            body=[Send(message="never")],
        )
        calls = self.run_interp([guarded, setfield("code", 9)])
        assert calls == [("get_field", "ip", "dst"),
                         ("set_field", "icmp", "code", 9)]


class TestBuilderRoleMetadata:
    def test_default_is_bundled_icmp_set(self):
        assert builder_role("echo") == "sender"
        assert builder_role("echo reply") == "receiver"

    def test_explicit_metadata_overrides(self):
        assert builder_role("echo", sender_built=frozenset()) == "receiver"
        assert builder_role("hello", sender_built=frozenset({"hello"})) == "sender"

    def test_registry_carries_sender_built(self):
        from repro.rfc.registry import default_registry

        registry = default_registry()
        assert registry.sender_built("ICMP") == frozenset(
            {"echo", "timestamp", "information request"}
        )
        assert registry.sender_built("BFD") == frozenset()

    def test_custom_registration_threads_through_roles(self):
        """A fifth protocol's sender-built metadata reaches the generator."""
        from repro.rfc.registry import ProtocolRegistry

        registry = ProtocolRegistry(bundled=False)
        registry.register_protocol("PING2", text="x", sender_built=("probe",))
        built = registry.sender_built("PING2")
        assert builder_role("probe", built) == "sender"
        assert builder_role("probe reply", built) == "receiver"


class TestCompiledProgramCache:
    def test_compile_unit_hits_on_repeat(self):
        from repro.rfc.registry import CompiledProgramCache
        from repro.runtime import compile_unit

        program = Program(protocol="ICMP")
        program.add(Function(protocol="ICMP", message_name="echo",
                             role="sender", ops=[setfield()]))
        cache = CompiledProgramCache()
        first = compile_unit(program, cache=cache)
        second = compile_unit(program, cache=cache)
        assert first is second
        assert cache.stats()["hits"] == 1

    def test_backends_cache_independently(self):
        from repro.rfc.registry import CompiledProgramCache
        from repro.runtime import compile_unit

        program = Program(protocol="ICMP")
        program.add(Function(protocol="ICMP", message_name="echo",
                             role="sender", ops=[setfield()]))
        cache = CompiledProgramCache()
        compile_unit(program, backend="python", cache=cache)
        compile_unit(program, backend="interp", cache=cache)
        assert len(cache) == 2

    def test_load_functions_source_keyed(self):
        from repro.rfc.registry import CompiledProgramCache
        from repro.runtime import load_functions

        source = "def f(ctx):\n    return ctx\n"
        cache = CompiledProgramCache()
        first = load_functions(source, cache=cache)
        second = load_functions(source, cache=cache)
        assert first is second and "f" in first
