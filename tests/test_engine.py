"""The staged engine: stage contracts, parse caching, facade parity, fan-out."""

import pytest

from repro.ccg.lexicon import build_lexicon
from repro.core import Sage, SageEngine, role_of
from repro.core.stages import ParseStage
from repro.nlp.chunker import ChunkerConfig, NounPhraseChunker
from repro.nlp.tokenizer import KIND_NOUN_PHRASE, Token
from repro.rfc.corpus import Rewrite, SpecSentence, sentence_key
from repro.rfc.registry import ParseCache, ProtocolRegistry, default_registry

ALL_PROTOCOLS = ("ICMP", "IGMP", "NTP", "BFD")
BOTH_MODES = ("strict", "revised")


def run_fingerprint(run):
    """Everything the acceptance criterion compares: statuses, codes, unit."""
    return (
        [r.status for r in run.results],
        [
            [(c.sentence, c.status, c.role, str(c.ops), str(c.goal_message))
             for c in r.codes]
            for r in run.results
        ],
        run.code_unit.render_python(),
        run.code_unit.render_c(),
    )


# -- facade / engine parity (the tentpole's compatibility guarantee) -----------

class TestFacadeParity:
    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    @pytest.mark.parametrize("mode", BOTH_MODES)
    def test_sage_and_engine_identical(self, protocol, mode):
        facade_run = Sage(mode=mode).process_corpus(protocol)
        engine_run = SageEngine(mode=mode).process_corpus(protocol)
        assert run_fingerprint(facade_run) == run_fingerprint(engine_run)

    def test_facade_exposes_engine_and_substrate(self):
        sage = Sage(mode="strict")
        assert sage.mode == "strict"
        assert sage.engine.mode == "strict"
        assert sage.lexicon is sage.engine.lexicon
        assert sage.parser is sage.engine.parser
        assert sage.chunker is sage.engine.chunker
        assert sage.suite is sage.engine.suite
        assert sage.registry is sage.engine.generate_stage.handlers

    def test_engine_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            SageEngine(mode="lenient")

    def test_facade_attributes_stay_writable(self):
        # Pre-engine these were plain instance attributes; assignment must
        # keep working through the facade.
        sage = Sage(mode="strict")
        sage.mode = "revised"
        assert sage.engine.mode == "revised"
        with pytest.raises(ValueError):
            sage.mode = "lenient"
        sage.rewrites = {}
        assert sage.engine.rewrites == {}
        from repro.disambiguation.checks import CheckSuite

        suite = CheckSuite.default()
        sage.suite = suite
        assert sage.engine.winnow_stage.suite is suite
        chunker = NounPhraseChunker()
        sage.chunker = chunker
        assert sage.engine.chunker is chunker
        lexicon = build_lexicon()
        sage.lexicon = lexicon
        assert sage.lexicon is lexicon
        assert sage.parser.lexicon is lexicon

    def test_generate_stage_rejects_conflicting_args(self):
        from repro.codegen.context import ContextResolver
        from repro.codegen.handlers import HandlerRegistry
        from repro.core import GenerateStage

        with pytest.raises(ValueError):
            GenerateStage(handlers=HandlerRegistry(),
                          resolver=ContextResolver())


# -- process_corpora ------------------------------------------------------------

class TestProcessCorpora:
    def test_sequential_matches_per_corpus_runs(self):
        engine = SageEngine(mode="revised")
        runs = engine.process_corpora(parallel=False)
        assert list(runs) == list(ALL_PROTOCOLS)
        for name in ALL_PROTOCOLS:
            single = engine.process_corpus(name)
            assert run_fingerprint(runs[name]) == run_fingerprint(single)

    def test_parallel_matches_sequential(self):
        engine = SageEngine(mode="revised")
        sequential = engine.process_corpora(parallel=False)
        parallel = engine.process_corpora(parallel=True)
        assert list(parallel) == list(sequential)
        for name, run in sequential.items():
            assert run_fingerprint(parallel[name]) == run_fingerprint(run)

    def test_parallel_strict_mode_and_small_chunks(self):
        engine = SageEngine(mode="strict")
        sequential = engine.process_corpora(["BFD", "IGMP"], parallel=False)
        parallel = engine.process_corpora(
            ["BFD", "IGMP"], parallel=True, chunk_size=3, max_workers=2
        )
        assert list(parallel) == ["BFD", "IGMP"]
        for name, run in sequential.items():
            assert run_fingerprint(parallel[name]) == run_fingerprint(run)

    def test_protocol_names_case_insensitive(self):
        runs = SageEngine().process_corpora(["icmp"], parallel=False)
        assert list(runs) == ["ICMP"]

    def test_parallel_merges_worker_parses_into_cache(self):
        registry = ProtocolRegistry()
        engine = SageEngine(mode="revised", protocol_registry=registry)
        cache = registry.parse_cache()
        assert len(cache) == 0
        engine.process_corpora(["IGMP"], parallel=True, chunk_size=4)
        # The workers parsed in their own processes, yet the parent cache
        # ends the call warm: a re-run adds no misses.
        assert len(cache) > 0
        misses = cache.stats()["misses"]
        engine.process_corpora(["IGMP"], parallel=False)
        assert cache.stats()["misses"] == misses


# -- the shared parse cache -----------------------------------------------------

class TestParseCache:
    def test_warm_rerun_skips_reparsing(self):
        registry = ProtocolRegistry()
        engine = SageEngine(mode="revised", protocol_registry=registry)
        cache = registry.parse_cache()
        first = engine.process_corpus("ICMP")
        misses_after_first = cache.stats()["misses"]
        assert misses_after_first > 0
        second = engine.process_corpus("ICMP")
        assert cache.stats()["misses"] == misses_after_first
        assert run_fingerprint(first) == run_fingerprint(second)

    def test_cache_shared_across_modes_and_instances(self):
        registry = ProtocolRegistry()
        SageEngine(mode="strict", protocol_registry=registry).process_corpus("IGMP")
        cache = registry.parse_cache()
        misses = cache.stats()["misses"]
        # A *different* engine in the *other* mode reuses the parses —
        # IGMP has no rewrites, so revised mode parses nothing new.
        SageEngine(mode="revised", protocol_registry=registry).process_corpus("IGMP")
        assert cache.stats()["misses"] == misses

    def test_cache_is_content_addressed_by_substrate(self):
        registry = default_registry()
        full = ParseStage(registry.parser(), registry.chunker(),
                          cache=ParseCache())
        spec = SpecSentence(text="The checksum is zero.", protocol="ICMP",
                            message="Echo or Echo Reply Message",
                            field="checksum", kind="field")
        full.run(spec)
        # Same text under a different grammar must be a different key.
        degraded = ParseStage(
            registry.parser(),
            NounPhraseChunker(dictionary=registry.dictionary(),
                              config=ChunkerConfig(use_dictionary=False)),
            cache=full.cache,
        )
        assert full.fingerprint() != degraded.fingerprint()
        assert full.cache_key(spec) != degraded.cache_key(spec)

    def test_lexicon_mutation_moves_stage_to_new_keys(self):
        from repro.ccg.chart import CCGChartParser

        lexicon = build_lexicon()
        registry = default_registry()
        stage = ParseStage(CCGChartParser(lexicon), registry.chunker(),
                           cache=ParseCache())
        spec = SpecSentence(text="The checksum is zero.", protocol="ICMP",
                            message="Echo Message", field="checksum",
                            kind="field")
        before = stage.cache_key(spec)
        assert stage.run(spec).result.logical_forms
        entry = lexicon.entries()[0]
        lexicon.add(entry.__class__(
            phrase="zorpliness", category=entry.category, sem=entry.sem,
        ))
        # The stage must not serve the pre-mutation parse from the cache.
        after = stage.cache_key(spec)
        assert before != after
        assert not stage.run(spec).from_cache

    def test_lexicon_fingerprint_tracks_content(self):
        first = build_lexicon()
        second = build_lexicon()
        assert first.fingerprint() == second.fingerprint()
        entry = first.entries()[0]
        first.add(entry.__class__(
            phrase="zorpliness", category=entry.category, sem=entry.sem,
        ))
        assert first.fingerprint() != second.fingerprint()

    def test_registry_invalidate_clears_parse_cache(self):
        registry = ProtocolRegistry()
        SageEngine(protocol_registry=registry).process_corpus("NTP")
        cache = registry.parse_cache()
        assert len(cache) > 0
        registry.invalidate()
        assert len(cache) == 0
        assert registry.parse_cache() is cache

    def test_engine_can_opt_out_of_caching(self):
        registry = ProtocolRegistry()
        engine = SageEngine(protocol_registry=registry, parse_cache=False)
        engine.process_corpus("IGMP")
        assert engine.parse_cache is None
        assert len(registry.parse_cache()) == 0

    def test_parse_cache_merge_and_stats(self):
        cache = ParseCache()
        cache.put(("a",), 1)
        assert cache.get(("a",)) == 1
        assert cache.get(("b",)) is None
        assert cache.stats() == {"size": 1, "hits": 1, "misses": 1}
        added = cache.merge({("a",): 99, ("b",): 2})
        assert added == 1  # existing entries are never overwritten
        assert cache.get(("a",)) == 1
        assert cache.get(("b",)) == 2


# -- the role marker fix (word boundaries) --------------------------------------

class TestRoleOf:
    def test_whole_word_markers_match(self):
        assert role_of("The sender zeroes this field.") == "sender"
        assert role_of("The receiver returns it.") == "receiver"
        assert role_of("The replying IP module sends it back.") == "receiver"
        assert role_of("The Echoer returns the data.") == "receiver"

    def test_substrings_of_unrelated_words_do_not_match(self):
        assert role_of("The senders of this datagram vary.") == ""
        assert role_of("The receivers may differ.") == ""
        assert role_of("Multiplying the value is wrong.") == ""
        assert role_of("A replyingly-phrased sentence.") == ""

    def test_punctuation_still_bounds_words(self):
        assert role_of("Returned by the sender.") == "sender"
        assert role_of("(sender)") == "sender"


# -- subject-supply re-parse variants (§4.1) -----------------------------------

class TestSupplyVariants:
    def spec(self, text, field="sequence_number"):
        return SpecSentence(text=text, protocol="ICMP", message="Echo Message",
                            field=field, kind="field")

    def tokens(self, *texts):
        return [Token(t, KIND_NOUN_PHRASE if t[0].isupper() else "word", i)
                for i, t in enumerate(texts)]

    def test_first_variant_prefixes_field_as_subject(self):
        tokens = self.tokens("identifies", "the", "octet")
        variants = list(ParseStage.supply_variants(self.spec("x"), tokens))
        first = variants[0]
        assert first[0].text == "sequence number"  # underscores become spaces
        assert first[0].kind == KIND_NOUN_PHRASE
        assert first[1].text == "is"
        assert [t.text for t in first[2:]] == ["identifies", "the", "octet"]

    def test_comma_variant_splices_after_first_comma_only(self):
        tokens = self.tokens("if", "code", ",", "zero", ",", "maybe")
        variants = list(ParseStage.supply_variants(self.spec("x"), tokens))
        assert len(variants) == 2
        spliced = [t.text for t in variants[1]]
        assert spliced == ["if", "code", ",", "sequence number", "zero", ",", "maybe"]

    def test_no_comma_yields_single_variant(self):
        tokens = self.tokens("identifies", "the", "octet")
        variants = list(ParseStage.supply_variants(self.spec("x"), tokens))
        assert len(variants) == 1

    def test_engine_marks_subject_supplied_parses(self):
        engine = SageEngine(mode="strict")
        spec = self.spec("Identifies the data.", field="identifier")
        result, supplied = engine.parse_sentence(spec)
        assert supplied
        assert result.logical_forms
        # The fragment alone does not parse; the field supplied the subject.
        bare = self.spec("Identifies the data.", field="")
        bare_result, bare_supplied = engine.parse_sentence(bare)
        assert not bare_supplied
        assert not bare_result.logical_forms


# -- rewrite recursion / sub-result aggregation --------------------------------

class TestSubResults:
    OUTER = "Frobnicate the gateway zorply."
    MIDDLE = "Blorp the checksum zorply."

    def engine_with_rewrites(self):
        engine = SageEngine(mode="revised")
        # Replace (not mutate) the shared rewrite index with a private one.
        engine.rewrites = {
            sentence_key(self.OUTER): Rewrite(
                original=self.OUTER,
                revised=self.MIDDLE + " The code is zero.",
                category="unparsed",
            ),
            sentence_key(self.MIDDLE): Rewrite(
                original=self.MIDDLE,
                revised="The checksum is zero.",
                category="unparsed",
            ),
        }
        return engine

    def spec(self):
        return SpecSentence(text=self.OUTER, protocol="ICMP",
                            message="Echo or Echo Reply Message",
                            field="checksum", kind="field")

    def test_nested_rewrites_recurse_and_aggregate_codes(self):
        result = self.engine_with_rewrites().process_sentence(self.spec())
        assert result.status == "rewritten"
        assert [sub.spec.text for sub in result.sub_results] == [
            self.MIDDLE, "The code is zero.",
        ]
        middle, tail = result.sub_results
        # Depth 2: the first revised sentence is itself rewritten.
        assert middle.status == "rewritten"
        assert [s.spec.text for s in middle.sub_results] == ["The checksum is zero."]
        assert middle.sub_results[0].status == "ok"
        assert tail.status == "ok"
        # Codes bubble up through every level of the recursion.
        assert [c.sentence for c in result.codes] == [
            "The checksum is zero.", "The code is zero.",
        ]
        assert all(c.status == "ok" and c.ops for c in result.codes)

    def test_strict_mode_flags_instead_of_recursing(self):
        engine = self.engine_with_rewrites()
        engine.mode = "strict"
        result = engine.process_sentence(self.spec())
        assert result.status == "unparsed"
        assert result.sub_results == []
        assert result.codes == []
        assert result.rewrite is not None

    def test_sub_specs_inherit_structural_context(self):
        result = self.engine_with_rewrites().process_sentence(self.spec())
        for sub in result.sub_results:
            assert sub.spec.protocol == "ICMP"
            assert sub.spec.message == "Echo or Echo Reply Message"
            assert sub.spec.field == "checksum"
            assert sub.spec.kind == "field"
