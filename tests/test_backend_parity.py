"""Property tests: the three backends agree over randomized IR op trees.

Two families of invariants:

* **C ↔ Python structural parity** — both text backends must express the
  same abstract operation sequence.  Each rendering is parsed back into a
  canonical event list (assignments, swaps, checksum computations,
  conditionals with recursive bodies) and the lists must be equal.
* **interpreter ↔ exec behavioural parity** — compiling a function through
  the Python emitter + ``exec`` and through the direct IR interpreter must
  produce byte-for-byte identical ``ctx`` call sequences, on randomized op
  trees (conditionals, swaps, checksum placement, early-discard) and on
  every builder of all four bundled corpora.
"""

import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codegen import CEmitter, Function, IRInterpreter, PyEmitter
from repro.codegen.ops import (
    ComputeChecksum,
    Condition,
    Conditional,
    CopyData,
    Discard,
    QuoteDatagram,
    Send,
    SetField,
    SwapFields,
    Value,
)
from repro.core import SageEngine

# -- strategies ----------------------------------------------------------------

protocols = st.sampled_from(["icmp", "ip"])
field_names = st.sampled_from(
    ["type", "code", "checksum", "identifier", "sequence_number", "dst", "src"]
)

values = st.one_of(
    st.integers(0, 255).map(Value.constant),
    st.sampled_from(["code", "chosen_value", "gateway_address"]).map(Value.param),
    st.tuples(protocols, field_names).map(
        lambda pair: Value.request_field(*pair)
    ),
    st.just(Value.clock()),
)

set_fields = st.builds(SetField, protocols, field_names, values)
swaps = st.builds(
    SwapFields,
    protocol_a=protocols, field_a=field_names,
    protocol_b=protocols, field_b=field_names,
)
checksums = st.builds(
    ComputeChecksum,
    protocol=st.just("icmp"), name=st.just("checksum"),
    function=st.just("internet_checksum"),
    range_start=st.sampled_from(["type", "code"]),
)
conditions = st.one_of(
    st.builds(
        Condition,
        kind=st.just("field_equals"), protocol=protocols, name=field_names,
        value=st.integers(0, 7), negated=st.booleans(),
    ),
    st.builds(
        Condition,
        kind=st.just("field_odd"), protocol=protocols, name=field_names,
    ),
)
leaf_ops = st.one_of(set_fields, swaps, checksums,
                     st.just(CopyData()), st.just(QuoteDatagram()),
                     st.builds(Send, message=st.sampled_from(["query", "report"])),
                     st.builds(Discard, reason=st.sampled_from(["", "bad"])))


def op_trees(max_depth=2):
    return st.recursive(
        leaf_ops,
        lambda children: st.builds(
            Conditional,
            condition=conditions,
            body=st.lists(children, min_size=1, max_size=3),
        ),
        max_leaves=8,
    )


op_lists = st.lists(op_trees(), min_size=0, max_size=6)


# -- C ↔ Python structural parity ---------------------------------------------

_C_OWNERS = {"hdr": "icmp", "ip": "ip", "req": "icmp", "req_ip": "ip"}


def _canon_c_value(text: str):
    text = text.strip()
    if re.fullmatch(r"\d+", text):
        return ("const", int(text))
    if text.startswith("params."):
        return ("param", text.removeprefix("params."))
    if text == "clock_ms()":
        return ("clock",)
    match = re.fullmatch(r"(req_ip|req)->(\w+)", text)
    if match:
        return ("request_field", _C_OWNERS[match.group(1)], match.group(2))
    raise AssertionError(f"unparsed C value {text!r}")


def _canon_python_value(text: str):
    text = text.strip()
    if re.fullmatch(r"\d+", text):
        return ("const", int(text))
    match = re.fullmatch(r"ctx\.param\('(\w+)'\)", text)
    if match:
        return ("param", match.group(1))
    if text == "ctx.clock_ms()":
        return ("clock",)
    match = re.fullmatch(r"ctx\.request_field\('(\w+)', '(\w+)'\)", text)
    if match:
        return ("request_field", match.group(1), match.group(2))
    raise AssertionError(f"unparsed Python value {text!r}")


def _events_from_c(lines):
    """Parse the C rendering into canonical events (recursive on blocks)."""
    events = []
    index = 0
    while index < len(lines):
        line = lines[index].strip()
        index += 1
        if not line:
            continue
        match = re.fullmatch(r"(hdr|ip)->(\w+) = 0;", line)
        if match and index < len(lines):
            # Checksum pair: "<ref> = 0;" then "<ref> = internet_checksum(...)".
            nxt = lines[index].strip()
            checksum = re.match(
                rf"(hdr|ip)->{match.group(2)} = internet_checksum\("
                r"\(uint8_t \*\)&hdr->(\w+),", nxt)
            if checksum and checksum.group(1) == match.group(1):
                events.append(("checksum", _C_OWNERS[match.group(1)],
                               match.group(2), checksum.group(2)))
                index += 1  # consume the internet_checksum call line
                continue
        match = re.fullmatch(r"(hdr|ip)->(\w+) = (.*);", line)
        if match:
            events.append(("set", _C_OWNERS[match.group(1)], match.group(2),
                           _canon_c_value(match.group(3))))
            continue
        match = re.fullmatch(r"swap\(&(hdr|ip)->(\w+), &(hdr|ip)->(\w+)\);", line)
        if match:
            events.append(("swap", _C_OWNERS[match.group(1)], match.group(2),
                           _C_OWNERS[match.group(3)], match.group(4)))
            continue
        if line.startswith("memcpy(hdr->data, req->data"):
            events.append(("copy_data",))
            continue
        if line.startswith("memcpy(hdr->data, req_ip"):
            events.append(("quote",))
            index += 1  # the second memcpy of the quoted-datagram pair
            continue
        match = re.fullmatch(r"if \((.*)\) \{", line)
        if match:
            depth, body = 1, []
            while depth:
                inner = lines[index]
                if inner.strip().endswith("{"):
                    depth += 1
                elif inner.strip() == "}":
                    depth -= 1
                if depth:
                    body.append(inner)
                index += 1
            events.append(("if", _canon_c_condition(match.group(1)),
                           _events_from_c(body)))
            continue
        match = re.fullmatch(r"send_message\((\w+), (\w+)\);", line)
        if match:
            events.append(("send", match.group(1)))
            continue
        if line == "discard_packet(); return;":
            events.append(("discard",))
            continue
        raise AssertionError(f"unparsed C line {line!r}")
    return events


def _canon_c_condition(text: str):
    match = re.fullmatch(r"(hdr|ip)->(\w+) (==|!=) (\d+)", text)
    if match:
        return ("field_equals", _C_OWNERS[match.group(1)], match.group(2),
                int(match.group(4)), match.group(3) == "!=")
    match = re.fullmatch(r"(hdr|ip)->(\w+) % 2 == 1", text)
    if match:
        return ("field_odd", _C_OWNERS[match.group(1)], match.group(2))
    raise AssertionError(f"unparsed C condition {text!r}")


def _events_from_python(lines):
    events = []
    index = 0
    while index < len(lines):
        line = lines[index].strip()
        indent = len(lines[index]) - len(lines[index].lstrip())
        index += 1
        if not line or line == "pass":
            continue
        match = re.fullmatch(r"ctx\.set_field\('(\w+)', '(\w+)', (.*)\)", line)
        if match:
            events.append(("set", match.group(1), match.group(2),
                           _canon_python_value(match.group(3))))
            continue
        match = re.fullmatch(
            r"ctx\.swap_fields\('(\w+)', '(\w+)', '(\w+)', '(\w+)'\)", line)
        if match:
            events.append(("swap", *match.groups()))
            continue
        match = re.fullmatch(
            r"ctx\.compute_checksum\('(\w+)', '(\w+)', start='(\w+)'\)", line)
        if match:
            events.append(("checksum", *match.groups()))
            continue
        if line == "ctx.copy_data()":
            events.append(("copy_data",))
            continue
        if line == "ctx.quote_datagram()":
            events.append(("quote",))
            continue
        match = re.fullmatch(r"if (.*):", line)
        if match:
            body = []
            while index < len(lines):
                body_indent = len(lines[index]) - len(lines[index].lstrip())
                if lines[index].strip() and body_indent <= indent:
                    break
                body.append(lines[index])
                index += 1
            events.append(("if", _canon_python_condition(match.group(1)),
                           _events_from_python(body)))
            continue
        match = re.fullmatch(r"ctx\.send\('(\w+)', '(\w*)'\)", line)
        if match:
            events.append(("send", match.group(1)))
            continue
        match = re.fullmatch(r"ctx\.discard\('(\w*)'\)", line)
        if match:
            events.append(("discard",))
            index += 1  # the paired "return ctx"
            continue
        raise AssertionError(f"unparsed Python line {line!r}")
    return events


def _canon_python_condition(text: str):
    match = re.fullmatch(
        r"ctx\.get_field\('(\w+)', '(\w+)'\) (==|!=) (\d+)", text)
    if match:
        return ("field_equals", match.group(1), match.group(2),
                int(match.group(4)), match.group(3) == "!=")
    match = re.fullmatch(r"ctx\.get_field\('(\w+)', '(\w+)'\) % 2 == 1", text)
    if match:
        return ("field_odd", match.group(1), match.group(2))
    raise AssertionError(f"unparsed Python condition {text!r}")


class TestCAndPythonStructuralParity:
    @given(op_lists)
    @settings(max_examples=120, deadline=None)
    def test_same_event_sequence(self, ops):
        c_events = _events_from_c(CEmitter().emit(ops))
        python_events = _events_from_python(PyEmitter().emit(ops))
        assert c_events == python_events


# -- interpreter ↔ exec behavioural parity ------------------------------------

class RecordingContext:
    """A ctx double recording every call, with deterministic answers so both
    backends see identical branch decisions."""

    def __init__(self):
        self.calls = []

    def _record(self, method, *args):
        self.calls.append((method, args))

    def set_field(self, protocol, name, value):
        self._record("set_field", protocol, name, value)

    def get_field(self, protocol, name):
        self._record("get_field", protocol, name)
        return (len(protocol) * 3 + len(name)) % 5

    def swap_fields(self, pa, fa, pb, fb):
        self._record("swap_fields", pa, fa, pb, fb)

    def request_field(self, protocol, name):
        self._record("request_field", protocol, name)
        return len(name)

    def param(self, name):
        self._record("param", name)
        return len(name) % 3

    def clock_ms(self):
        self._record("clock_ms")
        return 42

    def state_get(self, name):
        self._record("state_get", name)
        return len(name) % 2

    def state_set(self, name, value):
        self._record("state_set", name, value)

    def packet_field(self, name):
        self._record("packet_field", name)
        return len(name) % 3

    def variable(self, name):
        self._record("variable", name)
        return len(name)

    def mode_in(self, modes):
        self._record("mode_in", tuple(modes))
        return len(modes) % 2 == 1

    def session_found(self):
        self._record("session_found")
        return True

    def compute_checksum(self, protocol, name, start="type"):
        self._record("compute_checksum", protocol, name, start)

    def pad_for_checksum(self):
        self._record("pad_for_checksum")

    def copy_data(self):
        self._record("copy_data")

    def quote_datagram(self):
        self._record("quote_datagram")

    def discard(self, reason=""):
        self._record("discard", reason)

    def send(self, message, destination=""):
        self._record("send", message, destination)

    def encapsulate(self, outer):
        self._record("encapsulate", outer)

    def select_session(self):
        self._record("select_session")

    def call_procedure(self, name):
        self._record("call_procedure", name)

    def cease_transmission(self):
        self._record("cease_transmission")


def _parity_check(function: Function):
    source = PyEmitter().render_function(function.name, function.ops)
    namespace: dict = {}
    exec(compile(source, "<parity>", "exec"), namespace)
    executed = RecordingContext()
    namespace[function.name](executed)

    interpreted = RecordingContext()
    IRInterpreter().compile_function(function)(interpreted)
    assert executed.calls == interpreted.calls


class TestInterpreterExecParity:
    @given(op_lists)
    @settings(max_examples=120, deadline=None)
    def test_random_trees(self, ops):
        _parity_check(Function(protocol="ICMP", message_name="probe",
                               role="receiver", ops=ops))


@pytest.fixture(scope="module")
def revised_runs():
    return SageEngine(mode="revised").process_corpora(parallel=False)


@pytest.mark.parametrize("protocol", ["ICMP", "IGMP", "NTP", "BFD"])
def test_corpus_parity(revised_runs, protocol):
    """Every builder of every bundled corpus: interp ≡ exec, call for call."""
    unit = revised_runs[protocol].code_unit
    assert unit.programs
    for function in unit.programs:
        _parity_check(function)
