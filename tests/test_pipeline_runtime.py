"""Integration tests: the SAGE pipeline end to end, plus the runtime."""

import pytest

from repro.core import Sage, modal_sentences
from repro.framework.addressing import ip_to_int
from repro.netsim import course_topology, ping
from repro.rfc import bfd_corpus, icmp_corpus
from repro.runtime import GeneratedICMP, load_functions


@pytest.fixture(scope="module")
def strict_run():
    return Sage(mode="strict").process_corpus(icmp_corpus())


@pytest.fixture(scope="module")
def revised_run():
    return Sage(mode="revised").process_corpus(icmp_corpus())


class TestStrictPipeline:
    def test_flags_the_paper_sentences(self, strict_run):
        flagged_texts = [r.spec.text for r in strict_run.flagged()]
        assert any("To form an echo reply message" in t for t in flagged_texts)
        assert any("Address of the gateway" in t for t in flagged_texts)

    def test_ambiguous_sentences_have_multiple_lfs(self, strict_run):
        ambiguous = [r for r in strict_run.results if r.status == "ambiguous-lf"]
        assert ambiguous
        assert all(r.final_lf_count > 1 for r in ambiguous)

    def test_most_sentences_resolve_to_one_lf(self, strict_run):
        resolved = [
            r for r in strict_run.results
            if r.trace is not None and r.final_lf_count == 1
        ]
        assert len(resolved) > len(strict_run.results) * 0.7

    def test_modal_sentences_found(self, strict_run):
        # The @May readings behind the §6.5 unit-test discovery.
        modals = modal_sentences(strict_run)
        assert len(modals) >= 4

    def test_strict_code_fails_ping(self, strict_run):
        source = strict_run.code_unit.render_python()
        topology = course_topology(implementation=GeneratedICMP.from_source(source))
        result = ping(topology.client, ip_to_int("10.0.1.1"), count=2)
        assert result.received == 0  # the paper's non-interoperability

    def test_strict_code_zeroes_identifier(self, strict_run):
        """The §6.5 unit-test discovery: the naive "may be zero" reading
        makes the receiver zero the identifier in the reply."""
        from repro.framework import icmp
        from repro.framework.ip import PROTO_ICMP, IPv4Header, make_ip_packet

        source = strict_run.code_unit.render_python()
        implementation = GeneratedICMP.from_source(source)
        echo = icmp.make_echo(0x4242, 1, b"x" * 8)
        request = make_ip_packet(
            ip_to_int("10.0.1.100"), ip_to_int("10.0.1.1"), PROTO_ICMP, echo.pack()
        )
        raw = implementation.echo_reply(request, ip_to_int("10.0.1.1"))
        reply = icmp.ICMPHeader.unpack(IPv4Header.unpack(raw).data)
        assert reply.identifier == 0  # zeroed, not echoed: ping will reject


class TestRevisedPipeline:
    def test_no_flags_remain(self, revised_run):
        assert revised_run.flagged() == []

    def test_rewrites_applied(self, revised_run):
        rewritten = revised_run.rewritten()
        assert len(rewritten) >= 10
        for result in rewritten:
            assert result.rewrite is not None
            for sub in result.sub_results:
                assert sub.status in ("ok", "non-actionable")

    def test_sixteen_builders_generated(self, revised_run):
        # 8 sections; echo/timestamp/info sections carry two messages each.
        assert len(revised_run.code_unit.programs) == 11

    def test_c_and_python_renderings_exist(self, revised_run):
        c_source = revised_run.code_unit.render_c()
        python_source = revised_run.code_unit.render_python()
        assert "struct" in c_source
        assert "hdr->type = 0;" in c_source
        assert "def icmp_echo_reply_receiver(ctx):" in python_source

    def test_generated_code_compiles(self, revised_run):
        functions = load_functions(revised_run.code_unit.render_python())
        assert "icmp_echo_reply_receiver" in functions
        assert "icmp_destination_unreachable_receiver" in functions

    def test_revised_code_passes_ping(self, revised_run):
        source = revised_run.code_unit.render_python()
        topology = course_topology(implementation=GeneratedICMP.from_source(source))
        result = ping(topology.client, ip_to_int("10.0.1.1"), count=3)
        assert result.success, result.rejections

    def test_subject_supply_used(self, revised_run):
        supplied = [r for r in revised_run.results if r.subject_supplied]
        assert supplied  # fragments like "If code = 0, identifies the octet..."


class TestEchoReplySemantics:
    def test_reply_echoes_payload_and_ids(self, revised_run):
        from repro.framework import icmp
        from repro.framework.ip import PROTO_ICMP, IPv4Header, make_ip_packet

        source = revised_run.code_unit.render_python()
        implementation = GeneratedICMP.from_source(source)
        echo = icmp.make_echo(0xABCD, 7, b"payload-bytes")
        request = make_ip_packet(
            ip_to_int("10.0.1.100"), ip_to_int("10.0.1.1"), PROTO_ICMP, echo.pack()
        )
        raw = implementation.echo_reply(request, ip_to_int("10.0.1.1"))
        assert raw is not None
        reply_ip = IPv4Header.unpack(raw)
        assert reply_ip.src == ip_to_int("10.0.1.1")
        assert reply_ip.dst == ip_to_int("10.0.1.100")
        reply = icmp.ICMPHeader.unpack(reply_ip.data)
        assert reply.type == icmp.ECHO_REPLY
        assert reply.identifier == 0xABCD
        assert reply.sequence == 7
        assert reply.payload == b"payload-bytes"
        assert reply.checksum_ok()

    def test_error_message_quotes_datagram(self, revised_run):
        from repro.framework import icmp
        from repro.framework.ip import PROTO_UDP, IPv4Header, make_ip_packet

        source = revised_run.code_unit.render_python()
        implementation = GeneratedICMP.from_source(source)
        original = make_ip_packet(
            ip_to_int("10.0.1.100"), ip_to_int("8.8.8.8"), PROTO_UDP,
            b"0123456789",
        )
        raw = implementation.destination_unreachable(
            original, icmp.NET_UNREACHABLE, ip_to_int("10.0.1.1")
        )
        message = icmp.ICMPHeader.unpack(IPv4Header.unpack(raw).data)
        assert message.type == icmp.DEST_UNREACHABLE
        assert message.payload[:20] == original.header_bytes()
        assert message.payload[20:] == b"01234567"
        assert message.checksum_ok()


class TestBFDPipeline:
    def test_bfd_corpus_processes(self):
        run = Sage(mode="revised").process_corpus(bfd_corpus())
        assert run.by_status().get("unparsed", 0) == 0
        program = run.code_unit.program_named(
            "bfd_reception_of_bfd_control_packets_receiver"
        )
        assert program is not None
        rendered = program.render_python()
        assert "bfd.remotediscr" in rendered
        assert "ctx.discard" in rendered
