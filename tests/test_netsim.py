"""Tests for the network simulator: nodes, links, routing, delivery."""

import pytest

from repro.framework.addressing import ip_to_int
from repro.framework.ip import PROTO_ICMP, make_ip_packet
from repro.netsim import Host, Network, Router, RoutingTable
from repro.netsim.topologies import course_topology


class TestRoutingTable:
    def test_longest_prefix_wins(self):
        table = RoutingTable()
        table.add("10.0.0.0/8", "eth0")
        table.add("10.0.1.0/24", "eth1")
        route = table.lookup(ip_to_int("10.0.1.5"))
        assert route is not None and route.interface == "eth1"

    def test_miss_returns_none(self):
        table = RoutingTable()
        table.add("10.0.1.0/24", "eth0")
        assert table.lookup(ip_to_int("8.8.8.8")) is None

    def test_default_route(self):
        table = RoutingTable()
        table.add("0.0.0.0/0", "wan", next_hop="10.0.1.254")
        route = table.lookup(ip_to_int("8.8.8.8"))
        assert route is not None and route.next_hop == ip_to_int("10.0.1.254")

    def test_directly_connected_flag(self):
        table = RoutingTable()
        table.add("10.0.1.0/24", "eth0")
        assert table.lookup(ip_to_int("10.0.1.1")).directly_connected


class TestNetworkPlumbing:
    def test_duplicate_node_rejected(self):
        network = Network()
        network.add_node(Host("a"))
        with pytest.raises(ValueError):
            network.add_node(Host("a"))

    def test_connect_validates_interfaces(self):
        network = Network()
        a = Host("a")
        a.add_interface("eth0", "10.0.0.1/24")
        b = Host("b")
        b.add_interface("eth0", "10.0.0.2/24")
        network.add_node(a)
        network.add_node(b)
        with pytest.raises(KeyError):
            network.connect("a", "bogus0", "b", "eth0")

    def test_packet_crosses_link(self):
        network = Network()
        a = Host("a")
        a.add_interface("eth0", "10.0.0.1/24")
        b = Host("b")
        b.add_interface("eth0", "10.0.0.2/24")
        network.add_node(a)
        network.add_node(b)
        network.connect("a", "eth0", "b", "eth0")
        seen = []
        b.add_listener(lambda packet, iface: seen.append(packet))
        packet = make_ip_packet(
            ip_to_int("10.0.0.1"), ip_to_int("10.0.0.2"), PROTO_ICMP, b""
        )
        a.send(packet)
        network.run()
        assert len(seen) == 1
        assert seen[0].src == ip_to_int("10.0.0.1")

    def test_unplugged_interface_loses_packet(self):
        network = Network()
        a = Host("a")
        a.add_interface("eth0", "10.0.0.1/24")
        network.add_node(a)
        a.send(make_ip_packet(1, 2, PROTO_ICMP, b""))
        assert network.run() == 0

    def test_host_drops_bad_ip_checksum(self):
        network = Network()
        a = Host("a")
        a.add_interface("eth0", "10.0.0.1/24")
        b = Host("b")
        b.add_interface("eth0", "10.0.0.2/24")
        network.add_node(a)
        network.add_node(b)
        network.connect("a", "eth0", "b", "eth0")
        raw = bytearray(
            make_ip_packet(ip_to_int("10.0.0.1"), ip_to_int("10.0.0.2"), PROTO_ICMP, b"").pack()
        )
        raw[9] ^= 0x55  # corrupt protocol byte; checksum now wrong
        a.transmit("eth0", bytes(raw))
        network.run()
        assert b.dropped and b.dropped[0][1] == "bad ip checksum"

    def test_captures_record_both_sides(self):
        topology = course_topology()
        from repro.netsim import ping

        ping(topology.client, ip_to_int("10.0.1.1"))
        assert topology.client.sent_capture
        assert topology.client.received_capture
        assert topology.router.received_capture


class TestRouterForwarding:
    def test_ttl_decremented_on_forward(self):
        topology = course_topology()
        received = []
        topology.server1.add_listener(lambda packet, iface: received.append(packet))
        packet = make_ip_packet(
            ip_to_int("10.0.1.100"), ip_to_int("192.168.2.2"), PROTO_ICMP, b"", ttl=10
        )
        topology.client.send(packet)
        topology.run()
        assert received and received[0].ttl == 9
        assert received[0].checksum_ok()  # checksum refreshed after decrement

    def test_router_ignores_packet_with_bad_checksum(self):
        topology = course_topology()
        raw = bytearray(
            make_ip_packet(
                ip_to_int("10.0.1.100"), ip_to_int("192.168.2.2"), PROTO_ICMP, b""
            ).pack()
        )
        raw[12] ^= 0xFF
        topology.client.transmit("eth0", bytes(raw))
        topology.run()
        assert topology.router.sent_capture == []
