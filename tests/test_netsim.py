"""Tests for the network simulator: nodes, links, routing, delivery."""

import json

import pytest

from repro.framework.addressing import ip_to_int
from repro.framework.ip import PROTO_ICMP, make_ip_packet
from repro.netsim import Host, LinkFaults, Network, Router, RoutingTable
from repro.netsim.core import Transmission
from repro.netsim.topologies import course_topology


class TestRoutingTable:
    def test_longest_prefix_wins(self):
        table = RoutingTable()
        table.add("10.0.0.0/8", "eth0")
        table.add("10.0.1.0/24", "eth1")
        route = table.lookup(ip_to_int("10.0.1.5"))
        assert route is not None and route.interface == "eth1"

    def test_miss_returns_none(self):
        table = RoutingTable()
        table.add("10.0.1.0/24", "eth0")
        assert table.lookup(ip_to_int("8.8.8.8")) is None

    def test_default_route(self):
        table = RoutingTable()
        table.add("0.0.0.0/0", "wan", next_hop="10.0.1.254")
        route = table.lookup(ip_to_int("8.8.8.8"))
        assert route is not None and route.next_hop == ip_to_int("10.0.1.254")

    def test_directly_connected_flag(self):
        table = RoutingTable()
        table.add("10.0.1.0/24", "eth0")
        assert table.lookup(ip_to_int("10.0.1.1")).directly_connected


class TestNetworkPlumbing:
    def test_duplicate_node_rejected(self):
        network = Network()
        network.add_node(Host("a"))
        with pytest.raises(ValueError):
            network.add_node(Host("a"))

    def test_connect_validates_interfaces(self):
        network = Network()
        a = Host("a")
        a.add_interface("eth0", "10.0.0.1/24")
        b = Host("b")
        b.add_interface("eth0", "10.0.0.2/24")
        network.add_node(a)
        network.add_node(b)
        with pytest.raises(KeyError):
            network.connect("a", "bogus0", "b", "eth0")

    def test_packet_crosses_link(self):
        network = Network()
        a = Host("a")
        a.add_interface("eth0", "10.0.0.1/24")
        b = Host("b")
        b.add_interface("eth0", "10.0.0.2/24")
        network.add_node(a)
        network.add_node(b)
        network.connect("a", "eth0", "b", "eth0")
        seen = []
        b.add_listener(lambda packet, iface: seen.append(packet))
        packet = make_ip_packet(
            ip_to_int("10.0.0.1"), ip_to_int("10.0.0.2"), PROTO_ICMP, b""
        )
        a.send(packet)
        network.run()
        assert len(seen) == 1
        assert seen[0].src == ip_to_int("10.0.0.1")

    def test_unplugged_interface_loses_packet(self):
        network = Network()
        a = Host("a")
        a.add_interface("eth0", "10.0.0.1/24")
        network.add_node(a)
        a.send(make_ip_packet(1, 2, PROTO_ICMP, b""))
        assert network.run() == 0

    def test_host_drops_bad_ip_checksum(self):
        network = Network()
        a = Host("a")
        a.add_interface("eth0", "10.0.0.1/24")
        b = Host("b")
        b.add_interface("eth0", "10.0.0.2/24")
        network.add_node(a)
        network.add_node(b)
        network.connect("a", "eth0", "b", "eth0")
        raw = bytearray(
            make_ip_packet(ip_to_int("10.0.0.1"), ip_to_int("10.0.0.2"), PROTO_ICMP, b"").pack()
        )
        raw[9] ^= 0x55  # corrupt protocol byte; checksum now wrong
        a.transmit("eth0", bytes(raw))
        network.run()
        assert b.dropped and b.dropped[0][1] == "bad ip checksum"

    def test_captures_record_both_sides(self):
        topology = course_topology()
        from repro.netsim import ping

        ping(topology.client, ip_to_int("10.0.1.1"))
        assert topology.client.sent_capture
        assert topology.client.received_capture
        assert topology.router.received_capture


class TestRouterForwarding:
    def test_ttl_decremented_on_forward(self):
        topology = course_topology()
        received = []
        topology.server1.add_listener(lambda packet, iface: received.append(packet))
        packet = make_ip_packet(
            ip_to_int("10.0.1.100"), ip_to_int("192.168.2.2"), PROTO_ICMP, b"", ttl=10
        )
        topology.client.send(packet)
        topology.run()
        assert received and received[0].ttl == 9
        assert received[0].checksum_ok()  # checksum refreshed after decrement

    def test_router_ignores_packet_with_bad_checksum(self):
        topology = course_topology()
        raw = bytearray(
            make_ip_packet(
                ip_to_int("10.0.1.100"), ip_to_int("192.168.2.2"), PROTO_ICMP, b""
            ).pack()
        )
        raw[12] ^= 0xFF
        topology.client.transmit("eth0", bytes(raw))
        topology.run()
        assert topology.router.sent_capture == []


class TestTransmissionIdentity:
    def test_equality_ignores_fault_bookkeeping(self):
        original = Transmission("a", "eth0", b"\x01\x02")
        copy = Transmission("a", "eth0", b"\x01\x02", duplicate=True)
        copy.delayed = 2
        assert original == copy
        assert hash(original) == hash(copy)
        assert len({original, copy}) == 1

    def test_inequality_on_any_identity_field(self):
        base = Transmission("a", "eth0", b"\x01")
        assert base != Transmission("b", "eth0", b"\x01")
        assert base != Transmission("a", "eth1", b"\x01")
        assert base != Transmission("a", "eth0", b"\x02")
        assert base != "not a transmission"

    def test_repr_carries_flags_and_digest(self):
        plain = Transmission("a", "eth0", b"\x01\x02\x03")
        assert "a/eth0" in repr(plain)
        assert "3B" in repr(plain)
        assert "sha1:" in repr(plain)
        faulted = Transmission("a", "eth0", b"\x01", duplicate=True)
        faulted.delayed = 2
        assert "delayed x2" in repr(faulted)
        assert "duplicate" in repr(faulted)

    def test_summary_is_json_safe(self):
        record = Transmission("a", "eth0", b"\xde\xad").summary()
        assert record["hex"] == "dead"
        assert record["length"] == 2
        json.dumps(record)  # must not raise


def _host_pair(faults=None):
    """Two hosts on one (optionally faulted) wire; returns the network,
    both hosts, and the list every delivery to ``b`` appends to."""
    network = Network()
    a = Host("a")
    a.add_interface("eth0", "10.0.0.1/24")
    b = Host("b")
    b.add_interface("eth0", "10.0.0.2/24")
    network.add_node(a)
    network.add_node(b)
    network.connect("a", "eth0", "b", "eth0", faults=faults)
    seen = []
    b.add_listener(lambda packet, iface: seen.append(packet))
    return network, a, b, seen


def _send(host, payload: bytes) -> None:
    host.send(make_ip_packet(ip_to_int("10.0.0.1"), ip_to_int("10.0.0.2"),
                             PROTO_ICMP, payload))


class TestQueueDrainOrder:
    def test_fifo_delivery_order(self):
        network, a, _b, seen = _host_pair()
        for index in range(4):
            _send(a, bytes([index]))
        network.run()
        assert [packet.payload for packet in seen] == \
            [bytes([index]) for index in range(4)]

    def test_run_on_empty_queue_is_a_noop(self):
        network, a, _b, seen = _host_pair()
        assert network.run() == 0
        _send(a, b"\x01")
        network.run()
        delivered = network.delivered
        # Draining an already-empty queue performs nothing and must not
        # disturb the delivery counter.
        assert network.run() == 0
        assert network.delivered == delivered
        assert len(seen) == 1


class TestLinkFaultInjection:
    def test_certain_duplicate_delivers_twice(self):
        network, a, _b, seen = _host_pair(LinkFaults(duplicate=1.0, seed=7))
        _send(a, b"\x42")
        network.run()
        # The injected copy is never re-duplicated, so exactly two arrive.
        assert len(seen) == 2
        assert seen[0].pack() == seen[1].pack()
        assert len(network.fault_log) == 1
        assert network.fault_log[0].startswith("duplicate ")

    def test_certain_drop_delivers_nothing(self):
        network, a, _b, seen = _host_pair(LinkFaults(drop=1.0, seed=7))
        _send(a, b"\x42")
        network.run()
        assert seen == []
        assert network.fault_log[0].startswith("drop ")

    def test_delay_is_bounded_and_still_delivers(self):
        network, a, _b, seen = _host_pair(LinkFaults(delay=1.0, seed=7))
        _send(a, b"\x42")
        network.run()
        assert len(seen) == 1  # max_delays exhausted, then delivered
        assert len(network.fault_log) == LinkFaults().max_delays
        assert all(entry.startswith("delay ") for entry in network.fault_log)

    def test_probability_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            LinkFaults(drop=1.5)

    def _fault_log_for(self, seed: int) -> list:
        network, a, _b, _seen = _host_pair(
            LinkFaults(drop=0.3, duplicate=0.3, delay=0.3, seed=seed))
        for index in range(20):
            _send(a, bytes([index]))
        network.run()
        return network.fault_log

    def test_fault_sequence_deterministic_under_fixed_seed(self):
        assert self._fault_log_for(123) == self._fault_log_for(123)

    def test_fault_sequence_depends_on_seed(self):
        assert self._fault_log_for(123) != self._fault_log_for(321)

    def test_install_faults_rejects_foreign_link(self):
        network, _a, _b, _seen = _host_pair()
        from repro.netsim.core import Link

        with pytest.raises(KeyError):
            network.install_faults(Link("x", "eth0", "y", "eth0"),
                                   LinkFaults(drop=1.0))
