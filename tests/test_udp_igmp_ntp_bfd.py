"""Tests for the UDP, IGMP, NTP, and BFD codecs."""

from hypothesis import given
from hypothesis import strategies as st

from repro.framework.addressing import ip_to_int
from repro.framework.bfd import (
    STATE_DOWN,
    STATE_UP,
    BFDControlHeader,
    BFDStateVariables,
    make_control_packet,
)
from repro.framework.igmp import (
    ALL_HOSTS_GROUP,
    HOST_MEMBERSHIP_QUERY,
    HOST_MEMBERSHIP_REPORT,
    IGMPHeader,
    make_query,
    make_report,
)
from repro.framework.ntp import (
    MODE_CLIENT,
    MODE_SYMMETRIC_ACTIVE,
    NTP_PORT,
    NTPHeader,
    PeerVariables,
    encapsulate,
)
from repro.framework.udp import UDPHeader, make_udp

SRC = ip_to_int("10.0.1.100")
DST = ip_to_int("192.168.2.2")


class TestUDP:
    def test_header_is_8_bytes(self):
        assert UDPHeader.header_len() == 8

    def test_finalize_sets_length(self):
        datagram = make_udp(SRC, DST, 1000, 2000, b"hello")
        assert datagram.length == 13

    def test_checksum_verifies_with_pseudo_header(self):
        datagram = make_udp(SRC, DST, 1000, 2000, b"hello")
        assert datagram.checksum_ok(SRC, DST)

    def test_checksum_fails_with_wrong_addresses(self):
        datagram = make_udp(SRC, DST, 1000, 2000, b"hello")
        assert not datagram.checksum_ok(SRC, DST + 1)

    def test_zero_checksum_means_unchecked(self):
        datagram = make_udp(SRC, DST, 1, 2, b"x")
        datagram.checksum = 0
        assert datagram.checksum_ok(SRC, DST)

    @given(st.binary(max_size=64), st.integers(1, 0xFFFF), st.integers(1, 0xFFFF))
    def test_roundtrip_property(self, data, sport, dport):
        datagram = make_udp(SRC, DST, sport, dport, data)
        again = UDPHeader.unpack(datagram.pack())
        assert again == datagram
        assert again.checksum_ok(SRC, DST)


class TestIGMP:
    def test_query_shape(self):
        query = make_query()
        assert query.version == 1
        assert query.type == HOST_MEMBERSHIP_QUERY
        assert query.group_address == 0
        assert query.checksum_ok()

    def test_report_carries_group(self):
        group = 0xE1000005
        report = make_report(group)
        assert report.type == HOST_MEMBERSHIP_REPORT
        assert report.group_address == group
        assert report.checksum_ok()

    def test_message_is_8_octets(self):
        assert IGMPHeader.header_len() == 8

    def test_all_hosts_group_constant(self):
        assert ALL_HOSTS_GROUP == ip_to_int("224.0.0.1")

    def test_corruption_detected(self):
        raw = bytearray(make_query().pack())
        raw[-1] ^= 1
        assert not IGMPHeader.unpack(bytes(raw)).checksum_ok()


class TestNTP:
    def test_header_is_48_bytes(self):
        assert NTPHeader.header_len() == 48

    def test_roundtrip(self):
        message = NTPHeader(
            mode=MODE_CLIENT, stratum=2, poll=6, transmit_timestamp=0xDEADBEEF12345678
        )
        again = NTPHeader.unpack(message.pack())
        assert again == message

    def test_encapsulation_uses_port_123_both_ends(self):
        message = NTPHeader(mode=MODE_CLIENT)
        datagram = encapsulate(message, SRC, DST)
        assert datagram.src_port == NTP_PORT == datagram.dst_port
        assert datagram.checksum_ok(SRC, DST)
        assert NTPHeader.unpack(datagram.payload) == message

    def test_peer_modes(self):
        assert PeerVariables(mode=MODE_CLIENT).in_client_mode()
        assert PeerVariables(mode=MODE_SYMMETRIC_ACTIVE).in_symmetric_mode()
        assert not PeerVariables(mode=MODE_CLIENT).in_symmetric_mode()

    def test_timeout_procedure_resets_timer(self):
        peer = PeerVariables(mode=MODE_CLIENT, timer=64, threshold=64)
        message = peer.timeout_procedure()
        assert peer.timer == 0
        assert peer.timeouts_fired == 1
        assert message.mode == MODE_CLIENT


class TestBFD:
    def test_control_header_is_24_bytes(self):
        assert BFDControlHeader.header_len() == 24

    def test_roundtrip(self):
        packet = BFDControlHeader(
            state=STATE_UP, my_discriminator=7, your_discriminator=9, demand=1
        )
        again = BFDControlHeader.unpack(packet.pack())
        assert again == packet
        assert again.state_name() == "Up"

    def test_make_control_packet_reflects_state(self):
        state = BFDStateVariables(
            SessionState=STATE_DOWN, LocalDiscr=11, RemoteDiscr=22, DemandMode=1
        )
        packet = make_control_packet(state)
        assert packet.state == STATE_DOWN
        assert packet.my_discriminator == 11
        assert packet.your_discriminator == 22
        assert packet.demand == 1
        assert packet.length == 24

    def test_snapshot_is_a_copy(self):
        state = BFDStateVariables()
        snap = state.snapshot()
        state.SessionState = STATE_UP
        assert snap["SessionState"] == STATE_DOWN
