"""Tests for the ICMP codec and the eight reference message builders."""

from hypothesis import given
from hypothesis import strategies as st

from repro.framework import icmp
from repro.framework.addressing import ip_to_int
from repro.framework.ip import PROTO_UDP, make_ip_packet

SRC = ip_to_int("10.0.1.100")
DST = ip_to_int("192.168.2.2")


def sample_datagram(data=b"ABCDEFGHIJKL"):
    return make_ip_packet(SRC, DST, PROTO_UDP, data, ttl=9)


class TestEcho:
    def test_echo_fields(self):
        echo = icmp.make_echo(0x1234, 7, b"payload")
        assert echo.type == icmp.ECHO
        assert echo.code == 0
        assert echo.identifier == 0x1234
        assert echo.sequence == 7
        assert echo.payload == b"payload"
        assert echo.checksum_ok()

    def test_echo_reply_echoes_everything(self):
        echo = icmp.make_echo(42, 3, b"data-bytes")
        reply = icmp.make_echo_reply(echo)
        assert reply.type == icmp.ECHO_REPLY
        assert reply.identifier == 42
        assert reply.sequence == 3
        assert reply.payload == b"data-bytes"
        assert reply.checksum_ok()

    def test_checksum_differs_between_echo_and_reply(self):
        # Only the type byte differs (8 -> 0), so checksums must differ by
        # exactly that word in one's-complement arithmetic.
        echo = icmp.make_echo(1, 1, b"abc")
        reply = icmp.make_echo_reply(echo)
        assert echo.checksum != reply.checksum

    @given(st.integers(0, 0xFFFF), st.integers(0, 0xFFFF), st.binary(max_size=100))
    def test_echo_roundtrip_property(self, identifier, sequence, payload):
        echo = icmp.make_echo(identifier, sequence, payload)
        parsed = icmp.ICMPHeader.unpack(echo.pack())
        assert parsed.identifier == identifier
        assert parsed.sequence == sequence
        assert parsed.payload == payload
        assert parsed.checksum_ok()


class TestRestAccessors:
    def test_identifier_sequence_disjoint(self):
        header = icmp.ICMPHeader(type=icmp.ECHO)
        header.identifier = 0xAAAA
        header.sequence = 0x5555
        assert header.identifier == 0xAAAA
        assert header.sequence == 0x5555
        assert header.rest == 0xAAAA5555

    def test_pointer_is_high_byte(self):
        header = icmp.ICMPHeader(type=icmp.PARAMETER_PROBLEM)
        header.pointer = 0x1F
        assert header.rest == 0x1F000000
        assert header.pointer == 0x1F

    def test_gateway_is_whole_word(self):
        header = icmp.ICMPHeader(type=icmp.REDIRECT)
        header.gateway = ip_to_int("10.0.1.254")
        assert header.gateway == ip_to_int("10.0.1.254")


class TestErrorMessages:
    def test_quoted_datagram_is_header_plus_64_bits(self):
        original = sample_datagram(b"0123456789")
        quoted = icmp.quoted_datagram(original)
        assert quoted[:20] == original.header_bytes()
        assert quoted[20:] == b"01234567"  # exactly 8 data bytes

    def test_quoting_short_datagram(self):
        original = sample_datagram(b"abc")
        assert icmp.quoted_datagram(original)[20:] == b"abc"

    def test_dest_unreachable(self):
        message = icmp.make_dest_unreachable(icmp.NET_UNREACHABLE, sample_datagram())
        assert message.type == icmp.DEST_UNREACHABLE
        assert message.code == 0
        assert message.rest == 0  # "unused" word must be zero
        assert message.checksum_ok()

    def test_time_exceeded(self):
        message = icmp.make_time_exceeded(icmp.TTL_EXCEEDED, sample_datagram())
        assert message.type == icmp.TIME_EXCEEDED
        assert message.checksum_ok()

    def test_parameter_problem_pointer(self):
        message = icmp.make_parameter_problem(1, sample_datagram())
        assert message.pointer == 1
        assert message.checksum_ok()

    def test_source_quench(self):
        message = icmp.make_source_quench(sample_datagram())
        assert message.type == icmp.SOURCE_QUENCH
        assert message.rest == 0

    def test_redirect_carries_gateway(self):
        gateway = ip_to_int("10.0.1.254")
        message = icmp.make_redirect(1, gateway, sample_datagram())
        assert message.gateway == gateway
        assert message.checksum_ok()


class TestTimestampMessages:
    def test_timestamp_request(self):
        message = icmp.make_timestamp(5, 6, originate=123456)
        assert message.type == icmp.TIMESTAMP
        assert message.originate == 123456
        assert message.receive == 0
        assert message.transmit == 0
        assert message.checksum_ok()

    def test_timestamp_reply_echoes_originate(self):
        request = icmp.make_timestamp(5, 6, originate=111)
        reply = icmp.make_timestamp_reply(request, receive=222, transmit=333)
        assert reply.type == icmp.TIMESTAMP_REPLY
        assert (reply.originate, reply.receive, reply.transmit) == (111, 222, 333)
        assert (reply.identifier, reply.sequence) == (5, 6)
        assert reply.checksum_ok()

    def test_timestamp_header_is_20_bytes(self):
        assert icmp.ICMPTimestampHeader.header_len() == 20


class TestInfoMessages:
    def test_info_request_has_no_data(self):
        message = icmp.make_info_request(9, 10)
        assert message.type == icmp.INFO_REQUEST
        assert message.payload == b""

    def test_info_reply_echoes_id_seq(self):
        request = icmp.make_info_request(9, 10)
        reply = icmp.make_info_reply(request)
        assert reply.type == icmp.INFO_REPLY
        assert reply.identifier == 9
        assert reply.sequence == 10


class TestChecksumCoverage:
    def test_checksum_covers_payload(self):
        """The disambiguated reading: checksum covers header AND payload."""
        a = icmp.make_echo(1, 1, b"aaaa")
        b = icmp.make_echo(1, 1, b"aaab")
        assert a.checksum != b.checksum

    def test_corrupting_payload_fails_verification(self):
        message = icmp.make_echo(1, 1, b"payload")
        raw = bytearray(message.pack())
        raw[-1] ^= 0x01
        assert not icmp.ICMPHeader.unpack(bytes(raw)).checksum_ok()
