"""Tests for code generation: contexts, handlers, emitters, assembly."""

import pytest

from repro.ccg.semantics import Call, Const
from repro.codegen import (
    AmbiguousReference,
    CEmitter,
    HandlerRegistry,
    NonActionable,
    PyEmitter,
    SentenceContext,
    StaticContext,
    UnknownReference,
    builder_role,
    function_name,
)
from repro.codegen.generator import (
    SentenceCode,
    assemble_message_program,
    finalize_checksums_last,
    reorder_advice,
)
from repro.codegen.ops import ComputeChecksum, SetField, Value


def call(pred, *args, trigger=None):
    return Call(pred, tuple(args), trigger=trigger)


def const(value):
    return Const(value)


@pytest.fixture
def registry():
    return HandlerRegistry()


class TestStaticContext:
    def test_qualified_terms_resolve(self):
        static = StaticContext()
        assert str(static.lookup("ip_source_address")) == "ip.src"
        assert str(static.lookup("icmp_checksum")) == "icmp.checksum"

    def test_ambiguous_terms_raise(self):
        static = StaticContext()
        with pytest.raises(AmbiguousReference) as excinfo:
            static.lookup("checksum")
        assert len(excinfo.value.candidates) == 2

    def test_unknown_terms_raise(self):
        with pytest.raises(UnknownReference):
            StaticContext().lookup("frobnicator")


class TestDynamicResolution:
    def test_field_context_disambiguates_checksum(self, registry):
        # Inside the Checksum field block, "checksum" is unambiguous.
        context = SentenceContext(protocol="ICMP", message="Echo", field="checksum")
        target = registry.resolver.resolve("checksum", context)
        assert str(target) == "icmp.checksum"

    def test_without_field_context_checksum_is_ambiguous(self, registry):
        context = SentenceContext(protocol="ICMP", message="Echo", field="addresses")
        with pytest.raises(AmbiguousReference):
            registry.resolver.resolve("checksum", context)

    def test_local_fields_resolve_in_section(self, registry):
        context = SentenceContext(protocol="ICMP", message="Echo", field="identifier")
        assert str(registry.resolver.resolve("code", context)) == "icmp.code"


class TestHandlers:
    def context(self, **kwargs):
        defaults = dict(protocol="ICMP", message="Echo or Echo Reply Message",
                        field="")
        defaults.update(kwargs)
        return SentenceContext(**defaults)

    def test_is_constant(self, registry):
        result = registry.generate(
            call("Is", const("type"), const("3")), self.context(field="type")
        )
        op = result.ops[0]
        assert isinstance(op, SetField)
        assert (op.protocol, op.name, op.value.const) == ("icmp", "type", 3)

    def test_is_request_field(self, registry):
        form = call("Is", const("identifier"),
                    call("Of", const("identifier"), const("request")))
        result = registry.generate(form, self.context(field="identifier"))
        assert result.ops[0].value.kind == "request_field"

    def test_checksum_range(self, registry):
        form = call(
            "Is", const("checksum"),
            call("StartsWith",
                 call("Of", const("16_bit_ones_complement"), const("icmp_message")),
                 const("icmp_type")),
        )
        result = registry.generate(form, self.context(field="checksum"))
        op = result.ops[0]
        assert isinstance(op, ComputeChecksum)
        assert op.range_start == "type"

    def test_reverse_addresses(self, registry):
        form = call("Action", const("reverse"),
                    call("And", const("ip_source_address"),
                         const("ip_destination_address")))
        result = registry.generate(form, self.context())
        op = result.ops[0]
        assert (op.protocol_a, op.field_a, op.field_b) == ("ip", "src", "dst")

    def test_goal_routes_message(self, registry):
        form = call("Goal",
                    call("Action", const("form"), const("echo_reply_message")),
                    call("Action", const("recompute"), const("icmp_checksum")))
        result = registry.generate(form, self.context())
        assert result.goal_message == "echo_reply_message"

    def test_may_marks_optional(self, registry):
        form = call("May", call("Is", const("identifier"), const("0")))
        result = registry.generate(form, self.context(field="identifier"))
        assert result.ops[0].optional

    def test_unknown_action_is_non_actionable(self, registry):
        form = call("Action", const("frobnicate"), const("data"))
        with pytest.raises(NonActionable):
            registry.generate(form, self.context())

    def test_ambiguous_reference_propagates(self, registry):
        form = call("Is", const("type_code"), const("0"))
        with pytest.raises(AmbiguousReference):
            registry.generate(form, self.context(field="addresses"))

    def test_conjunctive_condition_nests(self, registry):
        form = call(
            "If",
            call("And",
                 call("Is", const("bfd.sessionstate"), const("down")),
                 call("Is", const("received_state"), const("down"))),
            call("Is", const("bfd.sessionstate"), const("init")),
        )
        result = registry.generate(form, self.context(protocol="BFD", message="x"))
        outer = result.ops[0]
        inner = outer.body[0]
        assert outer.condition.kind == "statevar_equals"
        assert inner.condition.kind == "packet_field_is"

    def test_handler_count_near_paper(self, registry):
        assert 20 <= registry.handler_count() <= 35  # paper: 25


class TestEmitters:
    def test_c_table4(self):
        op = SetField("icmp", "type", Value.constant(3))
        assert CEmitter().emit([op]) == ["    hdr->type = 3;"][:0] or \
            CEmitter().emit([op], 0) == ["hdr->type = 3;"]

    def test_python_rendering(self):
        op = SetField("ip", "dst", Value.request_field("ip", "src"))
        line = PyEmitter().emit([op], 0)[0]
        assert line == "ctx.set_field('ip', 'dst', ctx.request_field('ip', 'src'))"

    def test_function_rendering_roundtrips_exec(self):
        from repro.runtime import load_functions

        source = PyEmitter().render_function(
            "demo", [SetField("icmp", "type", Value.constant(3))]
        )
        functions = load_functions(source)
        assert "demo" in functions


class TestAssembly:
    def test_function_naming(self):
        assert function_name("ICMP", "echo reply", "receiver") == \
            "icmp_echo_reply_receiver"

    def test_builder_roles(self):
        assert builder_role("echo") == "sender"
        assert builder_role("echo reply") == "receiver"
        assert builder_role("destination unreachable") == "receiver"

    def test_checksums_sort_last_and_dedupe(self):
        ops = [
            ComputeChecksum("icmp", "checksum", "internet_checksum"),
            SetField("icmp", "identifier", Value.constant(1)),
            ComputeChecksum("icmp", "checksum", "internet_checksum"),
        ]
        result = finalize_checksums_last(ops)
        assert isinstance(result[0], SetField)
        assert sum(isinstance(op, ComputeChecksum) for op in result) == 1

    def test_advice_lands_before_checksum(self):
        zero = SetField("icmp", "checksum", Value.constant(0),
                        advice_before="compute_checksum")
        compute = ComputeChecksum("icmp", "checksum", "internet_checksum")
        result = reorder_advice([compute, zero])
        assert result.index(zero) < result.index(compute)

    def test_goal_scoping(self):
        reply_only = SentenceCode(
            sentence="s",
            ops=[SetField("icmp", "type", Value.constant(0))],
            goal_message="echo_reply_message",
        )
        echo = assemble_message_program("ICMP", "echo", [reply_only])
        reply = assemble_message_program("ICMP", "echo reply", [reply_only])
        assert not any(isinstance(op, SetField) for op in echo.ops)
        assert any(isinstance(op, SetField) for op in reply.ops)

    def test_role_scoping(self):
        sender_only = SentenceCode(
            sentence="s",
            ops=[SetField("icmp", "identifier", Value.param("chosen_value"))],
            role="sender",
        )
        echo = assemble_message_program("ICMP", "echo", [sender_only])
        reply = assemble_message_program("ICMP", "echo reply", [sender_only])
        assert any(isinstance(op, SetField) for op in echo.ops)
        assert not any(isinstance(op, SetField) for op in reply.ops)
