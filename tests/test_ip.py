"""Tests for the IPv4 codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.framework.addressing import ip_to_int
from repro.framework.ip import (
    PROTO_ICMP,
    PROTO_UDP,
    IPv4Header,
    make_ip_packet,
    reply_skeleton,
)

SRC = ip_to_int("10.0.1.100")
DST = ip_to_int("192.168.2.2")


class TestIPv4Packing:
    def test_header_is_20_bytes(self):
        assert IPv4Header.header_len() == 20

    def test_make_packet_finalizes_length_and_checksum(self):
        packet = make_ip_packet(SRC, DST, PROTO_ICMP, b"x" * 12)
        assert packet.total_length == 32
        assert packet.checksum_ok()

    def test_roundtrip(self):
        packet = make_ip_packet(SRC, DST, PROTO_UDP, b"hello", ttl=7, tos=3)
        again = IPv4Header.unpack(packet.pack())
        assert again == packet
        assert again.ttl == 7
        assert again.tos == 3

    def test_corruption_breaks_checksum(self):
        raw = bytearray(make_ip_packet(SRC, DST, PROTO_ICMP, b"").pack())
        raw[8] ^= 0xFF  # flip TTL
        assert not IPv4Header.unpack(bytes(raw)).checksum_ok()

    def test_options_accounted_in_ihl(self):
        packet = make_ip_packet(SRC, DST, PROTO_ICMP, b"data", options=b"\x01" * 4)
        assert packet.ihl == 6
        assert packet.options == b"\x01" * 4
        assert packet.data == b"data"

    def test_unpadded_options_rejected(self):
        with pytest.raises(ValueError):
            make_ip_packet(SRC, DST, PROTO_ICMP, b"", options=b"\x01\x02")

    def test_version_defaults_to_4(self):
        assert IPv4Header().version == 4

    @given(st.binary(max_size=128), st.integers(1, 255))
    def test_roundtrip_property(self, data, ttl):
        packet = make_ip_packet(SRC, DST, PROTO_ICMP, data, ttl=ttl)
        again = IPv4Header.unpack(packet.pack())
        assert again.data == data
        assert again.checksum_ok()


class TestReplySkeleton:
    def test_addresses_reversed(self):
        request = make_ip_packet(SRC, DST, PROTO_ICMP, b"")
        reply = reply_skeleton(request)
        assert reply.src == DST
        assert reply.dst == SRC

    def test_protocol_carried_or_overridden(self):
        request = make_ip_packet(SRC, DST, PROTO_UDP, b"")
        assert reply_skeleton(request).protocol == PROTO_UDP
        assert reply_skeleton(request, protocol=PROTO_ICMP).protocol == PROTO_ICMP

    def test_fresh_ttl(self):
        request = make_ip_packet(SRC, DST, PROTO_ICMP, b"", ttl=1)
        assert reply_skeleton(request).ttl == 64
