"""Generated code in netsim scenarios, one per protocol (§6.2–§6.4).

The acceptance surface of the IR refactor:

* the C rendering of the ICMP corpus is byte-identical to the pre-IR
  golden files (Table 4 parity);
* generated ICMP passes ping *and* traceroute interop on the course
  topology, via both executable backends;
* generated IGMP queries elicit correct reports from the commodity-switch
  model;
* generated NTP dispatch drives an NTPPeer's timeout policy exactly like
  the reference predicate;
* generated BFD reception brings a session Up against a reference peer and
  matches the reference FSM on all 32 (local, remote, demand) transitions.
"""

import itertools
import pathlib

import pytest

from repro.core import SageEngine
from repro.framework.addressing import ip_to_int
from repro.framework.bfd import BFDControlHeader
from repro.framework.igmp import HOST_MEMBERSHIP_REPORT
from repro.framework.ip import IPv4Header
from repro.framework.ntp import MODE_BROADCAST, MODE_CLIENT, NTPHeader, PeerVariables
from repro.framework.tcpdump import decode_packet
from repro.framework.udp import UDPHeader
from repro.netsim import (
    BFDSession,
    GeneratedBFDSession,
    generated_bfd_handshake,
    generated_course_topology,
    generated_ntp_peer,
    igmp_query_scenario,
    ping,
    traceroute,
)
from repro.netsim.bfd_session import run_handshake
from repro.runtime import GeneratedIGMP, generated_implementation

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"
BACKENDS = ("python", "interp")


@pytest.fixture(scope="module")
def runs():
    return SageEngine(mode="revised").process_corpora(parallel=False)


class TestGoldenC:
    """Table 4 parity: the IR refactor must not move a byte of C output."""

    def test_revised_icmp_c_is_byte_identical(self, runs):
        golden = (GOLDEN_DIR / "icmp_revised.c").read_text()
        assert runs["ICMP"].code_unit.render_c() + "\n" == golden

    def test_strict_icmp_c_is_byte_identical(self):
        run = SageEngine(mode="strict").process_corpus("ICMP")
        golden = (GOLDEN_DIR / "icmp_strict.c").read_text()
        assert run.code_unit.render_c() + "\n" == golden


class TestGeneratedICMPScenario:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_ping_interop(self, runs, backend):
        topology = generated_course_topology(runs["ICMP"].code_unit,
                                             backend=backend)
        result = ping(topology.client, ip_to_int("10.0.1.1"), count=3)
        assert result.success, result.rejections

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_traceroute_interop(self, runs, backend):
        topology = generated_course_topology(runs["ICMP"].code_unit,
                                             backend=backend)
        result = traceroute(topology.client, ip_to_int("192.168.2.2"))
        assert result.destination_reached
        assert result.path() == [ip_to_int("10.0.1.1"), ip_to_int("192.168.2.2")]

    def test_family_factory_builds_the_icmp_adapter(self, runs):
        from repro.runtime import GeneratedICMP

        implementation = generated_implementation("ICMP", runs["ICMP"].code_unit)
        assert isinstance(implementation, GeneratedICMP)

    def test_family_factory_rejects_unknown_protocols(self, runs):
        with pytest.raises(KeyError):
            generated_implementation("SMTP", runs["ICMP"].code_unit)


class TestGeneratedIGMPScenario:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_generated_query_elicits_reports(self, runs, backend):
        member = ip_to_int("10.0.5.9")
        group = ip_to_int("225.1.2.3")
        scenario = igmp_query_scenario(
            runs["IGMP"].code_unit, backend=backend,
            memberships=[(member, group)],
        )
        reports = scenario.run_query()
        assert scenario.switch.queries_seen, "switch never saw the generated query"
        assert [r.type for r in reports] == [HOST_MEMBERSHIP_REPORT]
        assert reports[0].group_address == group

    def test_generated_query_is_tcpdump_clean(self, runs):
        scenario = igmp_query_scenario(runs["IGMP"].code_unit)
        source = scenario.sender.interface("eth0").address
        query = scenario.implementation.query_datagram(source)
        assert decode_packet(query).clean

    def test_generated_query_matches_reference_bytes(self, runs):
        from repro.framework.igmp import make_query

        implementation = GeneratedIGMP.from_unit(runs["IGMP"].code_unit)
        assert implementation.membership_query().pack() == make_query().pack()

    def test_generated_report_matches_reference_bytes(self, runs):
        from repro.framework.igmp import make_report

        group = ip_to_int("226.0.0.5")
        implementation = GeneratedIGMP.from_unit(runs["IGMP"].code_unit)
        assert implementation.membership_report(group).pack() == \
            make_report(group).pack()


class TestGeneratedNTPScenario:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_generated_dispatch_fires_like_reference(self, runs, backend):
        peer = generated_ntp_peer(
            runs["NTP"].code_unit,
            ip_to_int("10.0.9.1"), ip_to_int("10.0.9.2"), backend=backend,
        )
        peer.peer.threshold = 4
        emitted = peer.run_for(10)
        assert len(emitted) == 2  # fires at t=4 and t=8, like the reference
        assert peer.peer.timeouts_fired == 2

    def test_emitted_packets_are_ntp_in_udp(self, runs):
        peer = generated_ntp_peer(
            runs["NTP"].code_unit,
            ip_to_int("10.0.9.1"), ip_to_int("10.0.9.2"),
        )
        peer.peer.threshold = 1
        raw = peer.run_for(1)[0]
        packet = IPv4Header.unpack(raw)
        datagram = UDPHeader.unpack(packet.data)
        assert datagram.dst_port == 123
        message = NTPHeader.unpack(datagram.payload)
        assert message.mode == MODE_CLIENT
        assert decode_packet(raw).clean

    def test_no_dispatch_outside_client_or_symmetric_mode(self, runs):
        peer = generated_ntp_peer(
            runs["NTP"].code_unit, 1, 2,
            peer=PeerVariables(mode=MODE_BROADCAST, threshold=2),
        )
        assert peer.run_for(6) == []

    def test_decision_only_dispatch_never_double_fires(self, runs):
        """The predicate records the decision; only the peer driver runs the
        timeout procedure — exactly one firing per threshold crossing."""
        peer = generated_ntp_peer(
            runs["NTP"].code_unit, 1, 2,
            peer=PeerVariables(mode=MODE_CLIENT, threshold=3),
        )
        emitted = peer.run_for(9)
        assert len(emitted) == 3
        assert peer.peer.timeouts_fired == 3


class TestGeneratedBFDScenario:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_handshake_reaches_up(self, runs, backend):
        generated, reference = generated_bfd_handshake(
            runs["BFD"].code_unit, backend=backend
        )
        from repro.framework.bfd import STATE_UP

        assert generated.state.SessionState == STATE_UP
        assert reference.state.SessionState == STATE_UP
        assert generated.state.RemoteDiscr == 2
        assert reference.state.RemoteDiscr == 1

    def test_demand_mode_ceases_periodic_transmission(self, runs):
        generated, reference = generated_bfd_handshake(runs["BFD"].code_unit)
        reference.state.DemandMode = 1
        generated.receive_control(reference.send_control())
        assert generated.periodic_transmission_enabled is False

    def test_discarded_packet_does_not_reenable_transmission(self, runs):
        """Like the reference session, a discard leaves the transmission
        policy untouched — an invalid packet must not undo demand mode."""
        generated, reference = generated_bfd_handshake(runs["BFD"].code_unit)
        reference.state.DemandMode = 1
        generated.receive_control(reference.send_control())
        assert generated.periodic_transmission_enabled is False
        bad = reference.send_control()
        bad.detect_mult = 0  # fails the §6.8.6 validation prefix
        generated.receive_control(bad)
        assert generated.discarded
        assert generated.periodic_transmission_enabled is False

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_all_32_transitions_match_reference(self, runs, backend):
        """Every (local state, received state, demand) against the §6.8.6
        reference transcription — the paper's transition-for-transition
        validation, via the netsim session adapter."""
        mismatches = []
        for local_state, remote_state, demand in itertools.product(
            range(4), range(4), (0, 1)
        ):
            reference = BFDSession()
            reference.state.SessionState = local_state
            reference.state.LocalDiscr = 7
            packet = BFDControlHeader(
                state=remote_state, my_discriminator=9,
                your_discriminator=7, demand=demand,
            )
            reference.receive_control(packet)

            generated = GeneratedBFDSession.from_unit(
                runs["BFD"].code_unit, backend=backend
            )
            generated.state.SessionState = local_state
            generated.state.LocalDiscr = 7
            generated.receive_control(packet)
            if generated.state.SessionState != reference.state.SessionState:
                mismatches.append((local_state, remote_state, demand))
        assert mismatches == []

    def test_generated_session_interoperates_with_reference_runner(self, runs):
        """run_handshake drives a generated and a reference session as
        equals — the substitution the netsim boundary promises."""
        generated = GeneratedBFDSession.from_unit(runs["BFD"].code_unit)
        generated.state.LocalDiscr = 11
        reference = BFDSession()
        reference.state.LocalDiscr = 22
        run_handshake(reference, generated)
        assert generated.state.SessionState == reference.state.SessionState


class TestCompiledCacheSharing:
    def test_repeat_topologies_reuse_the_compiled_program(self, runs):
        from repro.rfc.registry import default_registry

        cache = default_registry().compiled_cache()
        generated_course_topology(runs["ICMP"].code_unit)
        hits_before = cache.stats()["hits"]
        generated_course_topology(runs["ICMP"].code_unit)
        assert cache.stats()["hits"] > hits_before
