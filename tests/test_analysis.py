"""Tests for the analysis modules: student study, components, ablations."""

import pytest

from repro.analysis import (
    FaultyICMP,
    checksum_interpretation_study,
    compare_np_labels,
    detect_all,
    evaluate_implementation,
    faulty_cohort,
    run_ablation,
    run_study,
)
from repro.analysis.student_study import (
    ERROR_BYTE_ORDER,
    ERROR_CHECKSUM,
    ERROR_ICMP_HEADER,
    ERROR_IP_HEADER,
    ERROR_LENGTH,
    ERROR_PAYLOAD,
    TABLE2_PAPER_FREQUENCIES,
)


class TestFaultInjection:
    def test_clean_implementation_passes(self):
        outcome = evaluate_implementation(FaultyICMP())
        assert outcome.passed

    @pytest.mark.parametrize("fault,error_class", [
        ("icmp_header", ERROR_ICMP_HEADER),
        ("byte_order", ERROR_BYTE_ORDER),
        ("payload_content", ERROR_PAYLOAD),
        ("payload_length", ERROR_LENGTH),
        ("ip_header", ERROR_IP_HEADER),
    ])
    def test_each_fault_fails_and_classifies(self, fault, error_class):
        outcome = evaluate_implementation(FaultyICMP(faults={fault}))
        assert not outcome.passed
        assert error_class in outcome.error_classes

    def test_checksum_fault(self):
        outcome = evaluate_implementation(
            FaultyICMP(checksum_interpretation=1)
        )
        assert not outcome.passed
        assert ERROR_CHECKSUM in outcome.error_classes
        assert any("checksum" in reason for reason in outcome.rejection_reasons)

    def test_cohort_size_is_14(self):
        assert len(faulty_cohort()) == 14


class TestStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return run_study()

    def test_class_of_39(self, study):
        assert study.total == 39
        assert study.non_compiling == 1

    def test_parse_rate_matches_paper(self, study):
        assert study.correct == 24
        assert abs(study.parse_rate() - 0.615) < 0.01

    def test_every_error_class_in_at_least_4(self, study):
        frequencies = study.frequencies()
        for name in TABLE2_PAPER_FREQUENCIES:
            assert frequencies.get(name, 0) * 14 >= 4, name

    def test_checksum_interpretations(self):
        results = checksum_interpretation_study()
        assert len(results) == 7
        assert results[3] is True  # the correct whole-message reading
        assert not results[1] and not results[2] and not results[4]


class TestComponents:
    def test_bundled_corpora_detected(self):
        detected = {d.protocol: d for d in detect_all()}
        assert set(detected) == {"ICMP", "IGMP", "NTP", "BFD"}
        assert all(d.header_diagram for d in detected.values())
        assert detected["BFD"].state_management_sentences >= 10
        assert detected["ICMP"].state_management_sentences == 0


class TestAblations:
    def test_np_label_quality(self):
        comparison = compare_np_labels()
        assert comparison.good_label_count >= 1
        assert comparison.labeling_helps

    def test_dictionary_ablation_on_sample(self):
        result = run_ablation("dictionary", limit=20)
        assert result.increased + result.zeroed + result.unchanged + result.decreased == 20
        assert result.increased + result.zeroed > 0

    def test_np_ablation_zeroes_most(self):
        result = run_ablation("np-labeling", limit=20)
        assert result.zeroed > 10

    def test_unknown_component_rejected(self):
        with pytest.raises(ValueError):
            run_ablation("bogus")
