"""DisambiguationSession, the decision journal, and the end-to-end
acceptance flow: ICMP flagged sentences resolved through journaled
resolutions reproduce the paper's resolved corpus byte-identically (the
golden C files), with every hop through JSON-serialized contracts and the
``python -m repro`` CLI."""

import io
import pathlib

import pytest

from repro.api import (
    DisambiguationSession,
    ProcessRequest,
    RequestError,
    SageService,
    SentenceNotFound,
    from_json,
    to_json,
)
from repro.api.cli import main as cli_main
from repro.ccg.semantics import signature
from repro.core import SentenceStatus
from repro.disambiguation import (
    DecisionJournal,
    Resolution,
    ResolutionError,
    resolution_for_rewrite,
)
from repro.rfc.corpus import sentence_key
from repro.rfc.registry import ProtocolRegistry, default_registry

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


def fresh_session(protocol="ICMP", **kwargs):
    """A session over a journal-only registry (no bundled rewrites)."""
    registry = ProtocolRegistry(bundled_rewrites=False)
    return DisambiguationSession(protocol, registry=registry, **kwargs)


class TestResolutionRecords:
    def test_kinds_are_validated(self):
        with pytest.raises(ResolutionError):
            Resolution(kind="guess", original="x")
        with pytest.raises(ResolutionError):
            Resolution.rewrite("orig", "")  # rewrite needs revised text
        with pytest.raises(ResolutionError):
            Resolution.select_lf("orig", "")
        with pytest.raises(ResolutionError):
            Resolution.rewrite("orig", "new", category="bogus")

    def test_rewrite_round_trip_through_legacy_table(self):
        bundled = default_registry().load_rewrites()
        assert bundled
        for rewrite in bundled:
            lifted = resolution_for_rewrite(rewrite, protocol="ICMP")
            assert lifted.as_rewrite() == rewrite

    def test_journal_latest_wins(self):
        journal = DecisionJournal()
        journal.record(Resolution.annotate("The sentence."))
        journal.record(Resolution.rewrite("The sentence.", "Better text."))
        assert journal.by_key()[sentence_key("The sentence.")].kind == "rewrite"
        assert len(journal) == 2  # append-only: history is preserved

    def test_journal_persistence(self, tmp_path):
        path = tmp_path / "journal.json"
        journal = DecisionJournal(path=path)
        journal.record(Resolution.select_lf("Some sentence.", "@Is('a','b')"))
        reloaded = DecisionJournal.load(path)
        assert reloaded.resolutions == journal.resolutions
        assert reloaded.selections() == {
            sentence_key("Some sentence."): "@Is('a','b')"
        }

    def test_loading_a_missing_journal_is_empty_but_bound(self, tmp_path):
        journal = DecisionJournal.load(tmp_path / "new.json")
        assert len(journal) == 0
        journal.record(Resolution.annotate("x y z"))
        assert (tmp_path / "new.json").exists()

    def test_unknown_schema_is_rejected(self):
        with pytest.raises(ResolutionError):
            DecisionJournal.from_json('{"schema": 99, "resolutions": []}')


class TestSessionFlow:
    def test_flagged_enumeration_without_rewrites(self):
        session = fresh_session()
        flagged = session.flagged()
        assert len(flagged) == 8  # the paper's escalated ICMP sentences
        assert {report.status for report in flagged} <= {
            "unparsed", "ambiguous-lf", "ambiguous-ref"
        }
        # per-check provenance rides on every report
        for report in flagged:
            assert "Base" in report.check_counts
            assert "Final Selection" in report.check_counts

    def test_reports_expose_stable_survivors(self):
        session = fresh_session()
        ambiguous = [r for r in session.flagged()
                     if r.status == "ambiguous-lf"]
        assert ambiguous
        report = ambiguous[0]
        sigs = [survivor["signature"] for survivor in report.survivors]
        assert sigs == sorted(sigs)  # the Sem sort key ordering
        assert session.survivors(report.index) == sigs
        # deterministic across a completely fresh pipeline run
        assert fresh_session().survivors(report.index) == sigs

    def test_annotate_resolution_replays(self):
        session = fresh_session()
        report = session.pending()[0]
        before = len(session.pending())
        resolution = session.resolve(report.index, annotate=True, note="test")
        assert resolution.kind == "annotate"
        assert resolution.status_before == report.status
        assert len(session.pending()) == before - 1
        assert session.report(report.index).status == "non-actionable"

    def test_rewrite_resolution_category_defaults(self):
        session = fresh_session()
        unparsed = [r for r in session.flagged() if r.status == "unparsed"][0]
        resolution = session.resolve(
            unparsed.index,
            rewrite="The checksum field is set to 0.",
        )
        assert resolution.category == "unparsed"
        assert session.report(unparsed.index).status == "rewritten"

    def test_select_lf_resolution_forces_the_reading(self):
        session = fresh_session()
        ambiguous = [r for r in session.flagged()
                     if r.status == "ambiguous-lf"][0]
        sigs = session.survivors(ambiguous.index)
        assert len(sigs) > 1
        resolution = session.resolve(ambiguous.index, select_lf=1)
        assert resolution.lf_signature == sigs[1]
        result = session.run.results[ambiguous.index]
        # the chosen reading was routed to code generation
        assert result.logical_form is not None
        assert signature(result.logical_form) == sigs[1]
        assert result.status != SentenceStatus.AMBIGUOUS_LF

    def test_selections_do_not_apply_in_strict_mode(self):
        session = fresh_session(mode="strict")
        ambiguous = [r for r in session.flagged()
                     if r.status == "ambiguous-lf"][0]
        session.resolve(ambiguous.index, select_lf=0)
        assert session.report(ambiguous.index).status == "ambiguous-lf"
        # ...and the ineffective decision does not hide the sentence from
        # the operator's queue
        assert ambiguous.index in [r.index for r in session.pending()]

    def test_ineffective_selection_stays_pending(self):
        session = fresh_session()
        ambiguous = [r for r in session.flagged()
                     if r.status == "ambiguous-lf"][0]
        session.resolve(
            ambiguous.index,
            select_lf="@Bogus('signature','that','matches','nothing')",
        )
        assert session.report(ambiguous.index).status == "ambiguous-lf"
        assert ambiguous.index in [r.index for r in session.pending()]

    def test_resolutions_are_protocol_scoped(self):
        # The checksum-zeroing sentence appears verbatim in both the ICMP
        # and IGMP corpora; a decision made in an ICMP session must not
        # rewrite the IGMP corpus.
        registry = ProtocolRegistry(bundled_rewrites=False)
        shared = "For computing the checksum, the checksum field should be zero."
        service = SageService(registry=registry)
        igmp_before = service.process(ProcessRequest(protocol="IGMP")).status_counts

        session = service.session("ICMP")
        session.resolve(shared, annotate=True)
        assert session.report(shared).status == "non-actionable"
        igmp_after = service.process(ProcessRequest(protocol="IGMP")).status_counts
        assert igmp_after == igmp_before

        # a deliberately protocol-less resolution applies everywhere
        session.resolve(resolution=Resolution.annotate(shared))
        igmp_global = service.process(ProcessRequest(protocol="IGMP")).status_counts
        assert igmp_global != igmp_before

    def test_resolve_by_text_selector(self):
        session = fresh_session()
        report = session.flagged()[0]
        resolution = session.resolve(report.text, annotate=True)
        assert resolution.original == report.text

    def test_selector_errors(self):
        session = fresh_session()
        with pytest.raises(SentenceNotFound):
            session.report(10_000)
        with pytest.raises(SentenceNotFound):
            session.report("no such sentence anywhere")
        with pytest.raises(RequestError):
            session.resolve(0, rewrite="x", annotate=True)
        with pytest.raises(RequestError):
            session.resolve(0)

    def test_sessions_share_a_journal_through_the_service(self, tmp_path):
        registry = ProtocolRegistry(bundled_rewrites=False)
        journal = DecisionJournal(path=tmp_path / "shared.json")
        service = SageService(registry=registry, journal=journal)
        session = service.session("ICMP")
        assert session.journal is journal
        session.resolve(session.flagged()[0].index, annotate=True)
        # the service's own endpoints see the journaled decision
        response = service.process(ProcessRequest(protocol="ICMP"))
        assert response.status_counts.get("non-actionable", 0) > 0
        assert (tmp_path / "shared.json").exists()


class TestEndToEndGoldenReplay:
    """The acceptance flow: enumerate ICMP's flagged sentences, journal the
    paper's resolutions, and show a replayed fresh run reproduces the
    resolved corpus byte-identically — via JSON contracts and the CLI."""

    @pytest.fixture()
    def journaled(self, tmp_path):
        journal_path = tmp_path / "icmp_decisions.json"
        session = fresh_session(journal_path=journal_path)

        # The operator's queue: every flagged sentence, with provenance.
        flagged_keys = {report.key for report in session.flagged()}
        assert flagged_keys  # there is real work to do

        # The paper's decisions (Table 5/6), lifted from the legacy table
        # into journaled resolutions — each one serialized to JSON and back
        # before being applied, exercising the wire contract end to end.
        for rewrite in default_registry().load_rewrites():
            resolution = resolution_for_rewrite(rewrite, protocol="ICMP")
            session.resolve(resolution=from_json(to_json(resolution)))
        return session, journal_path

    def test_replay_reproduces_the_golden_c(self, journaled):
        session, _path = journaled
        golden = (GOLDEN_DIR / "icmp_revised.c").read_text()
        assert session.run.code_unit.render_c() + "\n" == golden
        # nothing is left for the operator
        assert session.flagged() == []
        assert session.run.by_status()["rewritten"] == 10

    def test_a_fresh_run_over_the_saved_journal_reproduces_it(self, journaled):
        _session, journal_path = journaled
        golden = (GOLDEN_DIR / "icmp_revised.c").read_text()
        # brand-new registry, brand-new session, only the journal carries
        # the decisions — the governance property.
        replayed = fresh_session(journal_path=journal_path)
        assert replayed.run.code_unit.render_c() + "\n" == golden

    def test_the_json_response_flow_matches_the_bundled_run(self, journaled):
        _session, journal_path = journaled
        registry = ProtocolRegistry(bundled_rewrites=False)
        service = SageService(registry=registry,
                              journal=DecisionJournal.load(journal_path))
        request_json = to_json(ProcessRequest(protocol="ICMP",
                                              artifacts=("c",)))
        response = from_json(to_json(service.process(request_json)))
        bundled = SageService(registry=ProtocolRegistry()).process(
            ProcessRequest(protocol="ICMP", artifacts=("c",))
        )
        assert response.status_counts == bundled.status_counts
        assert response.artifacts[0].fingerprint == bundled.artifacts[0].fingerprint
        assert response.artifacts[0].source == bundled.artifacts[0].source

    def test_the_cli_emits_the_golden_c_from_the_journal(self, journaled,
                                                         tmp_path):
        _session, journal_path = journaled
        target = tmp_path / "replayed_icmp.c"
        out = io.StringIO()
        code = cli_main([
            "emit", "ICMP", "--backend", "c",
            "--journal", str(journal_path), "--no-bundled-rewrites",
            "--output", str(target),
        ], out=out)
        assert code == 0
        assert target.read_text() == (GOLDEN_DIR / "icmp_revised.c").read_text()

    def test_strict_mode_still_matches_its_golden(self, journaled):
        # Annotations (like the bundled table's non-actionable entries)
        # apply in both modes; rewrites and selections are revised-mode
        # only.  A strict run over the same journal therefore reproduces
        # the strict golden byte-identically.
        _session, journal_path = journaled
        session = fresh_session(mode="strict", journal_path=journal_path)
        golden = (GOLDEN_DIR / "icmp_strict.c").read_text()
        assert session.run.code_unit.render_c() + "\n" == golden
