"""Tests for IPv4 address parsing and subnet arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.framework.addressing import Subnet, int_to_ip, ip_to_int


class TestAddressConversion:
    def test_parse_known_address(self):
        assert ip_to_int("10.0.1.1") == 0x0A000101

    def test_format_known_address(self):
        assert int_to_ip(0xC0A80201) == "192.168.2.1"

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_roundtrip(self, value):
        assert ip_to_int(int_to_ip(value)) == value

    @pytest.mark.parametrize(
        "bad", ["10.0.1", "10.0.1.1.1", "256.0.0.1", "a.b.c.d", "", "10.0.-1.1"]
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            ip_to_int(bad)

    def test_int_to_ip_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            int_to_ip(-1)
        with pytest.raises(ValueError):
            int_to_ip(1 << 32)


class TestSubnet:
    def test_contains_own_network(self):
        subnet = Subnet.parse("10.0.1.0/24")
        assert subnet.contains("10.0.1.1")
        assert subnet.contains("10.0.1.255")

    def test_excludes_neighbors(self):
        subnet = Subnet.parse("10.0.1.0/24")
        assert not subnet.contains("10.0.2.1")

    def test_host_bits_are_masked_at_parse(self):
        # The paper writes subnets as "10.0.1.1/24"; the network is 10.0.1.0.
        subnet = Subnet.parse("10.0.1.1/24")
        assert subnet.network == ip_to_int("10.0.1.0")

    def test_zero_prefix_contains_everything(self):
        subnet = Subnet.parse("0.0.0.0/0")
        assert subnet.contains("255.255.255.255")
        assert subnet.contains("0.0.0.0")

    def test_slash32_contains_only_itself(self):
        subnet = Subnet.parse("172.64.3.1/32")
        assert subnet.contains("172.64.3.1")
        assert not subnet.contains("172.64.3.2")

    @pytest.mark.parametrize("bad", ["10.0.0.0", "10.0.0.0/33", "10.0.0.0/-1"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            Subnet.parse(bad)

    def test_str_renders_cidr(self):
        assert str(Subnet.parse("192.168.2.1/24")) == "192.168.2.0/24"

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF), st.integers(0, 32))
    def test_every_address_is_in_its_own_subnet(self, address, prefix_len):
        subnet = Subnet.parse(f"{int_to_ip(address)}/{prefix_len}")
        assert subnet.contains(address)
