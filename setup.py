"""Shim so legacy editable installs work offline (no `wheel` package).

`pip install -e . --no-build-isolation` needs setuptools+wheel for a PEP 660
build; this environment ships setuptools 65 without wheel, so
`python setup.py develop` is the supported editable path here.
"""

from setuptools import setup

setup()
