"""Shared fixtures for the reproduction benchmarks.

Each benchmark regenerates one table or figure of the paper.  All pipeline
runs come from two session-scoped :class:`~repro.core.SageEngine` instances
(one per mode) sharing the cached protocol registry: corpora, dictionary,
lexicon, parser, and — through the registry's content-addressed parse cache
— every sentence parse are paid for once across the whole suite.  The four
revised-mode protocol runs are produced by one ``process_corpora`` sweep.
"""

import pytest

from repro.core import SageEngine
from repro.rfc.registry import default_registry


@pytest.fixture(scope="session")
def registry():
    return default_registry()


@pytest.fixture(scope="session")
def strict_engine(registry):
    return SageEngine(mode="strict", protocol_registry=registry)


@pytest.fixture(scope="session")
def revised_engine(registry):
    return SageEngine(mode="revised", protocol_registry=registry)


@pytest.fixture(scope="session")
def revised_runs(revised_engine):
    """All four protocols in one batch call (sequential keeps the parses in
    this process's cache for the fixtures that follow)."""
    return revised_engine.process_corpora(parallel=False)


@pytest.fixture(scope="session")
def icmp_run_strict(strict_engine):
    return strict_engine.process_corpus("ICMP")


@pytest.fixture(scope="session")
def icmp_run_revised(revised_runs):
    return revised_runs["ICMP"]


@pytest.fixture(scope="session")
def igmp_run(revised_runs):
    return revised_runs["IGMP"]


@pytest.fixture(scope="session")
def ntp_run(revised_runs):
    return revised_runs["NTP"]


@pytest.fixture(scope="session")
def bfd_run(revised_runs):
    return revised_runs["BFD"]


def print_table(title: str, headers: list[str], rows: list[tuple]) -> None:
    """Render a paper table to stdout (visible with pytest -s)."""
    print(f"\n=== {title} ===")
    print(" | ".join(str(h) for h in headers))
    for row in rows:
        print(" | ".join(str(cell) for cell in row))
