"""Shared fixtures for the reproduction benchmarks.

Each benchmark regenerates one table or figure of the paper; expensive
pipeline runs are cached per session so the suite stays fast.
"""

import pytest

from repro.core import Sage
from repro.rfc import bfd_corpus, icmp_corpus, igmp_corpus, ntp_corpus


@pytest.fixture(scope="session")
def icmp_run_strict():
    return Sage(mode="strict").process_corpus(icmp_corpus())


@pytest.fixture(scope="session")
def icmp_run_revised():
    return Sage(mode="revised").process_corpus(icmp_corpus())


@pytest.fixture(scope="session")
def igmp_run():
    return Sage(mode="revised").process_corpus(igmp_corpus())


@pytest.fixture(scope="session")
def ntp_run():
    return Sage(mode="revised").process_corpus(ntp_corpus())


@pytest.fixture(scope="session")
def bfd_run():
    return Sage(mode="revised").process_corpus(bfd_corpus())


def print_table(title: str, headers: list[str], rows: list[tuple]) -> None:
    """Render a paper table to stdout (visible with pytest -s)."""
    print(f"\n=== {title} ===")
    print(" | ".join(str(h) for h in headers))
    for row in rows:
        print(" | ".join(str(cell) for cell in row))
