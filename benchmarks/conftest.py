"""Shared fixtures for the reproduction benchmarks.

Each benchmark regenerates one table or figure of the paper.  Corpora,
dictionary, lexicon, and parser all come from the cached protocol registry,
so the session-scoped pipeline fixtures re-pay none of the load/build cost
beyond the first run.
"""

import pytest

from repro.core import Sage
from repro.rfc.registry import default_registry


@pytest.fixture(scope="session")
def registry():
    return default_registry()


@pytest.fixture(scope="session")
def icmp_run_strict(registry):
    return Sage(mode="strict").process_corpus(registry.load_corpus("ICMP"))


@pytest.fixture(scope="session")
def icmp_run_revised(registry):
    return Sage(mode="revised").process_corpus(registry.load_corpus("ICMP"))


@pytest.fixture(scope="session")
def igmp_run(registry):
    return Sage(mode="revised").process_corpus(registry.load_corpus("IGMP"))


@pytest.fixture(scope="session")
def ntp_run(registry):
    return Sage(mode="revised").process_corpus(registry.load_corpus("NTP"))


@pytest.fixture(scope="session")
def bfd_run(registry):
    return Sage(mode="revised").process_corpus(registry.load_corpus("BFD"))


def print_table(title: str, headers: list[str], rows: list[tuple]) -> None:
    """Render a paper table to stdout (visible with pytest -s)."""
    print(f"\n=== {title} ===")
    print(" | ".join(str(h) for h in headers))
    for row in rows:
        print(" | ".join(str(cell) for cell in row))
