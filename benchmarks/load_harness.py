"""Load harness for the serving layer: replay concurrent mixed traffic
against a live ``python -m repro serve`` instance and gate the result.

What it does:

* fires ``--requests`` requests from ``--concurrency`` keep-alive client
  threads at a fixed deterministic traffic mix — single-protocol
  ``/v1/process`` (JSON and ``schema:1b`` binary), the 4-protocol
  ``/v1/sweep`` batch, and ``/v1/parse`` diagnostics — after a short
  warmup phase that is measured but not scored;
* records per-request wall latency and derives p50/p99, sustained
  sentences/s (every response says how many corpus sentences it covered),
  and error/timeout counts;
* checks one JSON/binary equivalence pair in-band: the same
  ``ProcessRequest`` sent under both envelopes must decode to equal
  ``ProcessResponse`` objects (``from_json(json) == from_bytes(bin)``);
* with ``--expect-warm``: reads ``GET /stats`` afterwards and requires
  the aggregate parse cache to show **zero misses** and at least one
  disk hit — the cross-process warm-start criterion, observed through
  the server;
* gates: p99 ≤ ``--p99-ceiling``, zero non-timeout errors, and sustained
  warm throughput ≥ ``--min-throughput-fraction`` (default ½) of the
  in-process ``api_sweep_warm_sentences_per_s`` recorded in
  ``BENCH_pipeline.json`` by ``pipeline_smoke.py`` — the serving layer
  may cost at most half the in-process throughput;
* merges its numbers into ``BENCH_pipeline.json`` under ``serve_*`` keys
  plus a bounded per-SHA ``serve_history`` array (suppress with
  ``--no-write``).

Run (against an already-running server)::

    PYTHONPATH=src python -m repro serve --port 8742 &
    PYTHONPATH=src python benchmarks/load_harness.py --url http://127.0.0.1:8742

``scripts/ci.sh serve-gate`` boots the server (twice, sharing one cache
directory, so the second boot proves disk warm-start), runs this
harness, and tears everything down.
"""

import argparse
import json
import pathlib
import subprocess
import sys
import threading
import time
import urllib.parse
from http.client import HTTPConnection

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_pipeline.json"

BINARY_CONTENT_TYPE = "application/x-repro-bin"

#: The replayed mix, cycled deterministically.  Weights are implicit in
#: repetition: mostly cheap single-protocol traffic, a steady drizzle of
#: batch sweeps and parse diagnostics.
TRAFFIC_MIX = (
    ("process-icmp", "POST", "/v1/process",
     {"protocol": "ICMP", "include_sentences": False}, "json"),
    ("process-bfd", "POST", "/v1/process",
     {"protocol": "BFD", "include_sentences": False}, "json"),
    ("process-icmp-bin", "POST", "/v1/process",
     {"protocol": "ICMP", "include_sentences": False}, "bin"),
    ("sweep", "POST", "/v1/sweep",
     {"parallel": False, "include_sentences": False}, "json"),
    ("process-ntp", "POST", "/v1/process",
     {"protocol": "NTP", "include_sentences": False}, "json"),
    ("parse-icmp", "GET", "/v1/parse/ICMP", None, "json"),
    ("process-igmp", "POST", "/v1/process",
     {"protocol": "IGMP", "include_sentences": False}, "json"),
    ("process-bfd-bin", "POST", "/v1/process",
     {"protocol": "BFD", "include_sentences": False}, "bin"),
)


def _request_body(fields: dict | None, wire: str) -> tuple[bytes, dict]:
    """(body, headers) for one mix entry under the chosen envelope."""
    if fields is None:
        return b"", {}
    if wire == "bin":
        from repro.api.binenc import to_bytes
        from repro.api.contracts import ProcessRequest

        body = to_bytes(ProcessRequest(**fields))
        return body, {"Content-Type": BINARY_CONTENT_TYPE,
                      "Accept": BINARY_CONTENT_TYPE}
    return json.dumps(fields).encode("utf-8"), {}


def _sentences_in(label: str, wire: str, body: bytes) -> int:
    """How many corpus sentences this response covered (throughput unit)."""
    try:
        if wire == "bin":
            from repro.api.binenc import from_bytes

            response = from_bytes(body)
            return response.sentence_count
        payload = json.loads(body.decode("utf-8"))
        data = payload["data"]
        if payload.get("kind") == "sweep_response":
            return sum(item["sentence_count"]
                       for item in data["responses"].values())
        return data["sentence_count"]
    except Exception:
        return 0


class _Client(threading.Thread):
    """One keep-alive connection replaying its share of the schedule."""

    def __init__(self, host: str, port: int, schedule: list, cursor: dict,
                 lock: threading.Lock, records: list,
                 timeout: float) -> None:
        super().__init__(daemon=True)
        self.host, self.port, self.timeout = host, port, timeout
        self.schedule, self.cursor, self.lock = schedule, cursor, lock
        self.records = records

    def run(self) -> None:
        conn = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            while True:
                with self.lock:
                    index = self.cursor["next"]
                    if index >= len(self.schedule):
                        return
                    self.cursor["next"] = index + 1
                label, method, path, body, headers, wire = self.schedule[index]
                started = time.perf_counter()
                try:
                    conn.request(method, path, body=body or None,
                                 headers=headers)
                    response = conn.getresponse()
                    payload = response.read()
                    status = response.status
                except Exception:
                    # connection-level failure: reconnect, record a hard error
                    conn.close()
                    conn = HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
                    status, payload = 0, b""
                elapsed = time.perf_counter() - started
                sentences = (_sentences_in(label, wire, payload)
                             if status == 200 else 0)
                with self.lock:
                    self.records.append((index, label, status, elapsed,
                                         sentences))
        finally:
            conn.close()


def _quantile(sorted_values: list, fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                max(0, round(fraction * (len(sorted_values) - 1))))
    return sorted_values[index]


def _get(host: str, port: int, path: str, timeout: float) -> tuple[int, bytes]:
    conn = HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


def _check_envelope_equivalence(host: str, port: int,
                                timeout: float) -> bool:
    """The same request under both envelopes must decode to equal objects."""
    from repro.api.binenc import from_bytes, to_bytes
    from repro.api.contracts import ProcessRequest, from_json

    request = ProcessRequest(protocol="ICMP", include_sentences=True)
    conn = HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request("POST", "/v1/process", body=to_json_body(request))
        json_response = conn.getresponse()
        json_body = json_response.read()
        if json_response.status != 200:
            return False
        conn.request("POST", "/v1/process", body=to_bytes(request),
                     headers={"Content-Type": BINARY_CONTENT_TYPE,
                              "Accept": BINARY_CONTENT_TYPE})
        bin_response = conn.getresponse()
        bin_body = bin_response.read()
        if bin_response.status != 200:
            return False
    finally:
        conn.close()
    return from_json(json_body.decode("utf-8")) == from_bytes(bin_body)


def to_json_body(request) -> bytes:
    from repro.api.contracts import to_json

    return to_json(request).encode("utf-8")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--url", required=True,
                        help="base URL of a running repro server")
    parser.add_argument("--requests", type=int, default=64,
                        help="measured requests to replay (default: 64)")
    parser.add_argument("--warmup", type=int, default=8,
                        help="unscored warmup requests (default: 8)")
    parser.add_argument("--concurrency", type=int, default=4,
                        help="concurrent client connections (default: 4)")
    parser.add_argument("--timeout", type=float, default=120.0,
                        help="per-request client timeout (default: 120s)")
    parser.add_argument("--p99-ceiling", type=float, default=10.0,
                        metavar="SECONDS",
                        help="fail if p99 latency exceeds this (default: 10)")
    parser.add_argument("--min-throughput-fraction", type=float, default=0.5,
                        help="fail if sustained sentences/s falls below this "
                             "fraction of the in-process warm sweep number "
                             "from BENCH_pipeline.json (default: 0.5)")
    parser.add_argument("--expect-warm", action="store_true",
                        help="require /stats to show zero parse misses and "
                             ">0 disk hits after the replay (warm-start gate)")
    parser.add_argument("--no-write", action="store_true",
                        help="do not update BENCH_pipeline.json")
    args = parser.parse_args()

    parsed = urllib.parse.urlparse(args.url)
    host, port = parsed.hostname, parsed.port or 80

    # Build the full deterministic schedule: warmup then measured.
    schedule = []
    for index in range(args.warmup + args.requests):
        label, method, path, fields, wire = TRAFFIC_MIX[index % len(TRAFFIC_MIX)]
        body, headers = _request_body(fields, wire)
        schedule.append((label, method, path, body, headers, wire))

    status_code, _body = _get(host, port, "/healthz", args.timeout)
    if status_code != 200:
        print(f"LOAD FAILURE: /healthz answered {status_code}",
              file=sys.stderr)
        return 1

    records: list = []
    cursor = {"next": 0}
    lock = threading.Lock()
    started = time.perf_counter()
    clients = [_Client(host, port, schedule, cursor, lock, records,
                       args.timeout)
               for _ in range(args.concurrency)]
    for client in clients:
        client.start()
    for client in clients:
        client.join()
    wall_s = time.perf_counter() - started

    measured = [r for r in records if r[0] >= args.warmup]
    latencies = sorted(r[3] for r in measured)
    ok = [r for r in measured if r[2] == 200]
    timeouts = [r for r in measured if r[2] == 504]
    hard_errors = [r for r in measured if r[2] not in (200, 504)]
    sentences_total = sum(r[4] for r in measured)
    # Sustained throughput over the measured phase: the warmup requests
    # interleave at the start, so scale wall time by the measured share.
    measured_wall_s = wall_s * (len(measured) / max(len(records), 1))
    sentences_per_s = sentences_total / measured_wall_s if measured_wall_s else 0.0

    envelopes_equal = _check_envelope_equivalence(host, port, args.timeout)

    numbers = {
        "serve_url": args.url,
        "serve_requests": len(measured),
        "serve_concurrency": args.concurrency,
        "serve_wall_s": measured_wall_s,
        "serve_p50_s": _quantile(latencies, 0.50),
        "serve_p99_s": _quantile(latencies, 0.99),
        "serve_sentences_per_s": sentences_per_s,
        "serve_ok": len(ok),
        "serve_timeouts": len(timeouts),
        "serve_hard_errors": len(hard_errors),
        "serve_envelopes_equal": envelopes_equal,
    }

    baseline = None
    bench = {}
    if BENCH_PATH.exists():
        try:
            bench = json.loads(BENCH_PATH.read_text())
            baseline = bench.get("api_sweep_warm_sentences_per_s")
        except (json.JSONDecodeError, OSError):
            bench = {}
    numbers["serve_throughput_baseline"] = baseline
    numbers["serve_throughput_fraction"] = (
        (sentences_per_s / baseline) if baseline else None
    )

    warm = None
    if args.expect_warm:
        status_code, body = _get(host, port, "/stats", args.timeout)
        if status_code == 200:
            aggregate = json.loads(body.decode("utf-8"))["data"]["service"]
            parse = aggregate["parse_cache"]
            warm = {"misses": parse.get("misses"),
                    "disk_hits": parse.get("disk_hits", 0)}
        numbers["serve_warm_stats"] = warm

    print(json.dumps(numbers, indent=2))

    failures = []
    if hard_errors:
        sample = hard_errors[0]
        failures.append(
            f"{len(hard_errors)} non-timeout request failures "
            f"(first: {sample[1]} answered {sample[2]})"
        )
    if timeouts:
        failures.append(f"{len(timeouts)} requests hit the server deadline "
                        "(504)")
    if numbers["serve_p99_s"] > args.p99_ceiling:
        failures.append(
            f"p99 latency {numbers['serve_p99_s']:.3f}s exceeds the "
            f"{args.p99_ceiling:.3f}s ceiling"
        )
    if not envelopes_equal:
        failures.append("JSON and binary envelope responses did not decode "
                        "to equal objects")
    if baseline:
        floor = baseline * args.min_throughput_fraction
        if sentences_per_s < floor:
            failures.append(
                f"sustained {sentences_per_s:.1f} sentences/s is below "
                f"{args.min_throughput_fraction:.0%} of the in-process warm "
                f"sweep baseline ({baseline:.1f}/s, floor {floor:.1f}/s)"
            )
    else:
        print("note: no api_sweep_warm_sentences_per_s baseline in "
              f"{BENCH_PATH.name}; throughput gate skipped", file=sys.stderr)
    if args.expect_warm:
        if warm is None:
            failures.append("--expect-warm: /stats was unreadable")
        elif warm["misses"] != 0:
            failures.append(
                f"--expect-warm: {warm['misses']} parse misses through the "
                "server (the shared cache directory did not warm-start it)"
            )
        elif not warm["disk_hits"]:
            failures.append("--expect-warm: zero disk hits — the server "
                            "never read the shared cache directory")

    if not args.no_write:
        try:
            sha = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"], cwd=REPO_ROOT,
                capture_output=True, text=True, check=True,
            ).stdout.strip()
        except (OSError, subprocess.CalledProcessError):
            sha = "unknown"
        history = [entry for entry in bench.get("serve_history", [])
                   if entry.get("sha") != sha]
        history.append({
            "sha": sha,
            "serve_p50_s": numbers["serve_p50_s"],
            "serve_p99_s": numbers["serve_p99_s"],
            "serve_sentences_per_s": numbers["serve_sentences_per_s"],
            "serve_throughput_fraction": numbers["serve_throughput_fraction"],
        })
        bench.update(numbers)
        bench["serve_history"] = history[-50:]
        BENCH_PATH.write_text(json.dumps(bench, indent=2) + "\n")
        print(f"updated {BENCH_PATH}", file=sys.stderr)

    if failures:
        for failure in failures:
            print(f"LOAD FAILURE: {failure}", file=sys.stderr)
        return 1
    print(f"load gates passed: p50 {numbers['serve_p50_s']*1000:.0f}ms, "
          f"p99 {numbers['serve_p99_s']*1000:.0f}ms, "
          f"{sentences_per_s:.0f} sentences/s", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
