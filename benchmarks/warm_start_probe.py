"""One-process probe for the cross-process warm-start gate.

``pipeline_smoke.py`` launches this script twice in *separate* Python
processes against the same ``--cache-dir``: once with an empty store
(the cold run populates it) and once against the store the cold run
left behind.  Each invocation builds a fresh
:class:`~repro.rfc.registry.ProtocolRegistry` — nothing in-process is
shared between the two runs, so any speedup the second run reports is
the persistent store's doing and nothing else's.

Prints one JSON object on stdout:

* ``sweep_s`` — wall-clock seconds for the 4-protocol sequential
  ``SageEngine.process_corpora`` sweep (corpus loading and engine
  construction are outside the timer: the gate measures the pipeline,
  not interpreter startup);
* ``parse`` — the parse cache's counters (``misses`` must be 0 on the
  warm run; ``disk_hits`` shows the store answering);
* ``winnow`` — the winnow-result cache's counters (same contract: zero
  misses on the warm run means not one §4.2 check re-ran);
* ``trace_sha1`` — SHA-1 over every sentence's full winnow trace
  (per-stage counts plus ordered survivor signatures), in corpus order
  (winnow-output identity across runs);
* ``statuses`` — per-protocol ``SageRun.by_status()`` tallies;
* ``lf_sha1`` — SHA-1 over every sentence's status and winnowed
  logical-form signature, in corpus order (semantic-output identity
  across runs);
* ``icmp_c_sha1`` — SHA-1 of the generated ICMP C source (golden-code
  identity across runs).

Run:  PYTHONPATH=src python benchmarks/warm_start_probe.py --cache-dir DIR
"""

import argparse
import hashlib
import json
import sys
import time

from repro.ccg.semantics import signature
from repro.core import SageEngine
from repro.rfc.registry import ProtocolRegistry


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cache-dir", required=True,
                        help="persistent cache store root (shared between "
                             "the cold and warm invocations)")
    args = parser.parse_args()

    registry = ProtocolRegistry(cache_dir=args.cache_dir)
    engine = SageEngine(mode="revised", protocol_registry=registry)
    # Load corpora before the timer: both runs pay the same file I/O and
    # the gate is about the parse/winnow/generate pipeline.
    for name in registry.protocols():
        registry.load_corpus(name)

    start = time.perf_counter()
    runs = engine.process_corpora(parallel=False)
    sweep_s = time.perf_counter() - start

    lf_digest = hashlib.sha1()
    trace_digest = hashlib.sha1()
    for name in registry.protocols():
        for result in runs[name].results:
            lf_digest.update(result.spec.text.encode())
            lf_digest.update(str(result.status).encode())
            if result.logical_form is not None:
                lf_digest.update(signature(result.logical_form).encode())
            lf_digest.update(b"\x00")
            if result.trace is not None:
                trace = result.trace
                trace_digest.update(trace.sentence.encode())
                for stage, count in trace.counts.items():
                    trace_digest.update(f"{stage}={count};".encode())
                for form in trace.survivors:
                    trace_digest.update(signature(form).encode())
                    trace_digest.update(b"\x01")
            trace_digest.update(b"\x00")

    icmp_c = runs["ICMP"].code_unit.render_c()

    print(json.dumps({
        "sweep_s": sweep_s,
        "parse": registry.parse_cache().stats(),
        "winnow": registry.winnow_cache().stats(),
        "statuses": {name: runs[name].by_status()
                     for name in registry.protocols()},
        "lf_sha1": lf_digest.hexdigest(),
        "trace_sha1": trace_digest.hexdigest(),
        "icmp_c_sha1": hashlib.sha1(icmp_c.encode()).hexdigest(),
    }))
    return 0


if __name__ == "__main__":
    sys.exit(main())
