"""The sweep's worker reporting must be honest about the degrade path.

``SageEngine.process_corpora(parallel=True)`` falls back to inline
sequential execution when fork is unavailable or only one worker would
run; that is one effective worker, and ``pipeline_smoke.py`` must record
it as ``parallel_workers: 1`` with ``parallel_inline: true`` — never the
historical misleading ``0``.
"""

from pipeline_smoke import parallel_workers_report

from repro.core import SageEngine


def test_inline_degrade_reports_one_worker():
    assert parallel_workers_report(None) == {
        "parallel_workers": 1,
        "parallel_inline": True,
    }


def test_real_pool_reports_its_size():
    assert parallel_workers_report(4) == {
        "parallel_workers": 4,
        "parallel_inline": False,
    }
    assert parallel_workers_report(2)["parallel_workers"] == 2


def test_one_worker_sweep_degrades_and_reports_inline(revised_engine):
    """A forced one-worker parallel sweep takes the degrade path, and the
    smoke report renders that as inline single-worker execution."""
    runs = revised_engine.process_corpora(["ICMP"], parallel=True,
                                          max_workers=1)
    assert set(runs) == {"ICMP"}
    assert revised_engine.last_parallel_workers is None
    report = parallel_workers_report(revised_engine.last_parallel_workers)
    assert report["parallel_workers"] == 1
    assert report["parallel_inline"] is True
