"""Tables 4 & 11: context-driven code generation samples.

Table 4: the LF ``@Is('type', '3')`` in the Destination Unreachable context
compiles (C backend) to ``hdr->type = 3;``.
Table 11: the NTP peer-variable timeout sentence compiles to the nested
conditional dispatch.
"""

from conftest import print_table

from repro.ccg.semantics import Call, Const
from repro.codegen import CEmitter, HandlerRegistry, SentenceContext


def _table4():
    registry = HandlerRegistry()
    form = Call("Is", (Const("type", span=(0, 1)), Const("3", span=(2, 3))))
    context = SentenceContext(
        protocol="ICMP", message="Destination Unreachable Message", field="type"
    )
    result = registry.generate(form, context)
    return CEmitter().emit(result.ops)


def test_table4_lf_with_context_to_code(benchmark):
    lines = benchmark(_table4)
    print_table(
        "Table 4: LF + context -> code",
        ["LF", "context", "code"],
        [("@Is('type', '3')",
          "{protocol: ICMP, message: Destination Unreachable, field: type}",
          lines[0].strip())],
    )
    assert lines[0].strip() == "hdr->type = 3;"


def test_table11_ntp_timeout_code(benchmark, ntp_run):
    program = ntp_run.code_unit.program_named(
        "ntp_peer_variables_and_timeout_receiver"
    )
    assert program is not None
    rendered = benchmark(program.render_c)
    print(f"\n=== Table 11: NTP timeout sentence -> nested code ===\n{rendered}")
    # The paper's nested structure: timer test outside, mode test inside,
    # the procedure call innermost.
    assert "peer_timer >= timer_threshold_variable" in rendered
    assert "client_mode || symmetric_mode" in rendered
    assert "timeout_procedure();" in rendered
    timer_pos = rendered.index("peer_timer >=")
    mode_pos = rendered.index("client_mode ||")
    call_pos = rendered.index("timeout_procedure();")
    assert timer_pos < mode_pos < call_pos
