"""Figure 5: logical-form counts after each sequential check.

For every multi-LF sentence in each corpus (ICMP 5a, IGMP 5b, BFD 5c),
winnowing runs the checks in the paper's order and records the max/avg/min
counts after each stage.  Shape assertions: counts are monotonically
non-increasing, the ICMP base max is large (tens of LFs), and the minimum
ends at 1.
"""

import pytest
from conftest import print_table

from repro.disambiguation import summarize


def _series(run):
    summary = summarize(run.traces())
    return summary


@pytest.mark.parametrize("fixture_name,figure", [
    ("icmp_run_strict", "5a (ICMP)"),
    ("igmp_run", "5b (IGMP)"),
    ("bfd_run", "5c (BFD)"),
])
def test_fig5_winnowing(benchmark, request, fixture_name, figure):
    run = request.getfixturevalue(fixture_name)
    summary = benchmark(lambda: _series(run))
    rows = [
        (stage, maximum, f"{average:.2f}", minimum)
        for stage, maximum, average, minimum in summary.rows()
    ]
    print_table(f"Figure {figure}: LFs after sequential checks "
                f"({summary.sentence_count} ambiguous sentences)",
                ["Stage", "max", "avg", "min"], rows)

    assert summary.sentence_count > 0
    # Counts never increase across stages.
    assert summary.max_counts == sorted(summary.max_counts, reverse=True)
    assert summary.avg_counts == sorted(summary.avg_counts, reverse=True)
    # The minimum line reaches 1 after the full battery.
    assert summary.min_counts[-1] == 1
    # Winnowing strictly reduces ambiguity overall.
    assert summary.max_counts[-1] < summary.max_counts[0]


def test_fig5a_icmp_base_counts_are_large(icmp_run_strict):
    summary = summarize(icmp_run_strict.traces())
    # The paper reports 2-46 base LFs for ICMP; we assert the same order of
    # magnitude: a double-digit maximum.
    assert summary.max_counts[0] >= 10
    assert summary.min_counts[0] >= 2
