"""§6.1 implementation accounting, reported from the live registries.

The paper: a ~400-term dictionary, 71 ICMP lexicon entries, 32 type checks,
7 argument-ordering checks, 4 predicate-ordering checks, 1 distributivity
check, and 25 predicate handler functions.  This bench reports our measured
counterparts so drift is visible.
"""

from conftest import print_table

from repro.ccg.lexicon import build_lexicon
from repro.codegen import HandlerRegistry
from repro.disambiguation.checks import DEFAULT_ORDERING_BLOCKLIST
from repro.lf import default_type_rules
from repro.nlp import load_default_dictionary
from repro.rfc import load_corpus


def _counts():
    lexicon = build_lexicon()
    return {
        "dictionary terms": len(load_default_dictionary()),
        "lexicon entries (total)": len(lexicon.entries()),
        "lexicon entries (icmp group)": lexicon.count_by_group()["icmp"],
        "type checks": len(default_type_rules()),
        "predicate ordering checks": len(DEFAULT_ORDERING_BLOCKLIST),
        "predicate handlers": HandlerRegistry().handler_count(),
        "icmp corpus sentences": len(load_corpus("ICMP").sentences),
    }


def test_implementation_counts(benchmark):
    counts = benchmark(_counts)
    paper = {
        "dictionary terms": "~400",
        "lexicon entries (total)": "-",
        "lexicon entries (icmp group)": "71",
        "type checks": "32",
        "predicate ordering checks": "4",
        "predicate handlers": "25",
        "icmp corpus sentences": "87",
    }
    rows = [(name, value, paper[name]) for name, value in counts.items()]
    print_table("§6.1 implementation counts", ["item", "measured", "paper"], rows)

    assert counts["dictionary terms"] >= 350  # "about 400 terms"
    assert counts["type checks"] >= 30  # 32 in the paper
    assert counts["predicate handlers"] >= 20  # 25 in the paper
    assert counts["icmp corpus sentences"] == 87  # "Among 87 instances"
