"""§6.3-6.4 generality: IGMP, NTP, and BFD through the same pipeline.

* IGMP: the generated query/report senders interoperate with the
  commodity-switch model (packet-capture verified).
* NTP: the timeout procedure emits packets with both NTP and UDP headers.
* BFD: the generated §6.8.6 reception code matches the reference session
  state machine on every (local state, received state) transition.
* Lexicon increments: each protocol needed only a small addition over the
  ICMP lexicon (§6.1/§6.3 accounting).
"""

import itertools

from conftest import print_table

from repro.ccg.lexicon import build_lexicon
from repro.framework.addressing import ip_to_int
from repro.framework.bfd import BFDControlHeader, BFDStateVariables
from repro.framework.igmp import ALL_HOSTS_GROUP, HOST_MEMBERSHIP_REPORT, IGMPHeader
from repro.framework.ip import PROTO_IGMP, IPv4Header, make_ip_packet
from repro.framework.igmp import make_query
from repro.framework.ntp import MODE_CLIENT, NTPHeader, PeerVariables
from repro.framework.tcpdump import decode_packet
from repro.framework.udp import UDPHeader
from repro.netsim import BFDSession, Host, IGMPSwitch, NTPPeer, Network
from repro.runtime import GeneratedBFD, GeneratedNTPTimeout, load_functions


def test_igmp_query_interop(benchmark, igmp_run):
    """Generated-pipeline IGMP: query the switch model, capture reports."""

    def scenario():
        network = Network()
        sender = Host("sender")
        sender.add_interface("eth0", "10.0.5.2/24")
        switch = IGMPSwitch("switch")
        switch.add_interface("eth0", "10.0.5.1/24")
        network.add_node(sender)
        network.add_node(switch)
        network.connect("sender", "eth0", "switch", "eth0")
        switch.join(ip_to_int("10.0.5.9"), ip_to_int("225.1.2.3"))
        query = make_query()
        sender.send(make_ip_packet(
            ip_to_int("10.0.5.2"), ALL_HOSTS_GROUP, PROTO_IGMP, query.pack(), ttl=1
        ))
        network.run()
        return switch

    switch = benchmark(scenario)
    assert switch.queries_seen, "switch never saw the query"
    reports = [
        IGMPHeader.unpack(IPv4Header.unpack(raw).data)
        for raw in switch.sent_capture
    ]
    assert reports and all(r.type == HOST_MEMBERSHIP_REPORT for r in reports)
    assert all(decode_packet(raw).clean for raw in switch.sent_capture)
    # The pipeline generated builders for both IGMP messages.
    names = {program.name for program in igmp_run.code_unit.programs}
    assert "igmp_host_membership_query_receiver" in names or any(
        "query" in name for name in names
    )


def test_ntp_timeout_emits_ntp_in_udp(benchmark, ntp_run):
    """§6.3: 'generated packets for the timeout procedure containing both
    NTP and UDP headers', with the generated Table 11 dispatch deciding."""
    functions = load_functions(ntp_run.code_unit.render_python())
    dispatch = GeneratedNTPTimeout(functions)

    def scenario():
        peer = NTPPeer(
            local_address=ip_to_int("10.0.9.1"),
            remote_address=ip_to_int("10.0.9.2"),
            peer=PeerVariables(mode=MODE_CLIENT, threshold=3),
        )
        emitted = []
        for _ in range(9):
            peer.peer.tick()
            context = dispatch.run(peer.peer)
            if "timeout_procedure" in context.procedures_called:
                emitted.append(peer._encapsulate(
                    NTPHeader(mode=peer.peer.mode, stratum=peer.peer.stratum)
                ))
        return emitted

    emitted = benchmark(scenario)
    assert len(emitted) == 3  # threshold 3 over 9 ticks
    for raw in emitted:
        packet = IPv4Header.unpack(raw)
        datagram = UDPHeader.unpack(packet.data)
        assert datagram.dst_port == 123
        NTPHeader.unpack(datagram.payload)  # parses as NTP
        assert decode_packet(raw).clean


def test_bfd_generated_state_machine_matches_reference(benchmark, bfd_run):
    functions = load_functions(bfd_run.code_unit.render_python())
    generated = GeneratedBFD(functions)

    def compare_all():
        mismatches = []
        for local_state, remote_state, demand in itertools.product(
            range(4), range(4), (0, 1)
        ):
            reference = BFDSession()
            reference.state.SessionState = local_state
            reference.state.LocalDiscr = 7
            packet = BFDControlHeader(
                state=remote_state, my_discriminator=9,
                your_discriminator=7, demand=demand,
            )
            reference.receive_control(packet)
            state = BFDStateVariables(SessionState=local_state, LocalDiscr=7)
            generated.receive_control(state, packet, session_exists=True)
            if state.SessionState != reference.state.SessionState:
                mismatches.append((local_state, remote_state, demand))
        return mismatches

    mismatches = benchmark(compare_all)
    print(f"\n§6.4: BFD transitions compared: 32, mismatches: {len(mismatches)}")
    assert mismatches == []


def test_lexicon_increments(benchmark):
    """§6.1/§6.3 accounting: per-protocol lexicon increments are small."""
    lexicon = benchmark(build_lexicon)
    counts = lexicon.count_by_group()
    print_table("Lexicon entries by group (paper: 71 ICMP / 8 IGMP / 5 NTP / 15 BFD)",
                ["group", "entries"], sorted(counts.items()))
    assert counts["icmp"] >= 30
    assert counts["igmp"] <= 12
    assert counts["ntp"] <= 8
    assert counts["bfd"] <= 20
    # Increments shrink as the lexicon generalizes (IGMP/NTP << ICMP).
    assert counts["igmp"] < counts["icmp"]
    assert counts["ntp"] < counts["igmp"]
