"""Figure 6: per-check effect in isolation on RFC 792.

Each §4.2 check is applied ALONE to every ambiguous sentence's base LF set;
the bench reports the mean LFs removed per sentence and the number of
sentences each check touches.  Shape assertions mirror the paper: the type
and argument-ordering checks affect the most sentences, and argument
ordering removes the most LFs.
"""

from conftest import print_table

from repro.disambiguation import isolated_effects


def _effects(run):
    """Base LF sets (before any check ran) for every parsed sentence."""
    sentence_forms = [
        (result.spec.text, result.trace.base_forms)
        for result in run.results
        if result.trace is not None
    ]
    return isolated_effects(sentence_forms)


def test_fig6_isolated_check_effects(benchmark, icmp_run_strict):
    effects = benchmark(lambda: _effects(icmp_run_strict))
    rows = [
        (effect.check_name, f"{effect.mean_removed:.2f}", effect.affected_sentences)
        for effect in effects
    ]
    print_table("Figure 6: isolated check effects (ICMP)",
                ["Check", "mean LFs removed", "sentences affected"], rows)

    by_name = {effect.check_name: effect for effect in effects}
    # Every check fires on at least one sentence.
    for name in ("Type", "Argument Ordering", "Associativity"):
        assert by_name[name].affected_sentences > 0, name
    # Argument ordering is the heaviest single reducer (paper: "argument
    # ordering reduced the most logical forms").
    heaviest = max(effects, key=lambda effect: effect.mean_removed)
    assert heaviest.check_name in ("Argument Ordering", "Type")
    # Type checks touch many sentences (they are the most prevalent checks).
    assert by_name["Type"].affected_sentences >= 5
