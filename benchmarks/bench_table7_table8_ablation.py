"""Tables 7 & 8: noun-phrase labeling and dictionary ablations.

Table 7: the echo-address sentence under good vs poor NP labels.  Table 8:
disabling the domain dictionary (LF counts increase / parses fail) and
disabling NP labeling entirely (most sentences yield 0 LFs).
"""

from conftest import print_table

from repro.analysis import compare_np_labels, run_ablation


def test_table7_np_label_quality(benchmark):
    comparison = benchmark(compare_np_labels)
    print_table(
        "Table 7: good vs poor noun-phrase labels",
        ["Labeling", "#LFs"],
        [("good ('echo reply message' fused)", comparison.good_label_count),
         ("poor ('echo reply' + 'message' split)", comparison.poor_label_count)],
    )
    assert comparison.good_label_count >= 1
    assert comparison.labeling_helps


def test_table8_dictionary_ablation(benchmark):
    result = benchmark(lambda: run_ablation("dictionary"))
    print_table(
        "Table 8 (row 1): disable domain-specific dictionary",
        ["effect", "sentences"],
        [("increase", result.increased), ("decrease", result.decreased),
         ("zero", result.zeroed), ("unchanged", result.unchanged)],
    )
    # Paper: 17 sentences increase (and none improve).  Our lexicon shows
    # the same degradation directions: increases and parse failures only.
    assert result.increased + result.zeroed > 0
    assert result.decreased <= result.increased + result.zeroed


def test_table8_np_labeling_ablation(benchmark):
    result = benchmark(lambda: run_ablation("np-labeling"))
    print_table(
        "Table 8 (row 2): disable noun-phrase labeling",
        ["effect", "sentences"],
        [("increase", result.increased), ("decrease", result.decreased),
         ("zero", result.zeroed), ("unchanged", result.unchanged)],
    )
    total = (result.increased + result.decreased + result.zeroed
             + result.unchanged)
    # Paper: 54 of 87 sentences drop to zero LFs — the majority.  Assert the
    # same dominance of the 0-LF outcome.
    assert result.zeroed > total / 2
