"""Tables 2 & 3: the student ICMP implementation study (§2.1).

Regenerates the error-class frequency table over 39 simulated
implementations and the seven checksum-range interpretations' interop
outcomes.  Shape assertions: 24/39 (61.5%) interoperate; every Table 2 error
class occurs in at least 4 of the 14 faulty implementations; only the
correct checksum reading (and the accidentally-compatible incremental one)
interoperate.
"""

from conftest import print_table

from repro.analysis.student_study import (
    TABLE2_PAPER_FREQUENCIES,
    FaultyICMP,
    checksum_interpretation_study,
    run_study,
)


def test_table2_error_frequencies(benchmark):
    study = benchmark(run_study)
    frequencies = study.frequencies()
    rows = [
        (name, f"{frequencies.get(name, 0.0):.0%}", f"{paper:.0%}")
        for name, paper in TABLE2_PAPER_FREQUENCIES.items()
    ]
    print_table("Table 2: error types in faulty implementations",
                ["Error type", "measured", "paper"], rows)

    assert study.total == 39
    assert study.correct == 24  # the paper's 61.5% parse rate
    assert abs(study.parse_rate() - 0.615) < 0.01
    failed = [outcome for outcome in study.outcomes if not outcome.passed]
    assert len(failed) == 15 - study.non_compiling
    # Every error class occurs in at least 4 of the 14 faulty implementations.
    for name in TABLE2_PAPER_FREQUENCIES:
        count = sum(1 for outcome in failed if name in outcome.error_classes)
        assert count >= 4, name


def test_table3_checksum_interpretations(benchmark):
    results = benchmark(checksum_interpretation_study)
    rows = [
        (index, FaultyICMP.CHECKSUM_INTERPRETATIONS[index],
         "interoperates" if passed else "fails ping")
        for index, passed in sorted(results.items())
    ]
    print_table("Table 3: checksum-range interpretations",
                ["#", "Interpretation", "outcome"], rows)

    # The correct whole-message reading interoperates ...
    assert results[3] is True
    # ... fixed-range and wrong-header readings do not ...
    assert results[1] is False
    assert results[2] is False
    assert results[4] is False
    assert results[7] is False
    # ... and at most the accidental-compatibility readings also pass.
    passing = {index for index, ok in results.items() if ok}
    assert passing <= {3, 5, 6}
