"""Tables 5 & 6: sentences the human must rewrite.

Table 6 categorizes the ICMP rewrites: sentences with more than one LF
after winnowing (the "To form ..." family), sentences with zero LFs
(sentence D), and imprecise sentences discovered by unit testing (the six
identifier/sequence variants).  Table 5 shows the two BFD state-management
sentences that needed rewriting (co-reference and rephrasing).
"""

from conftest import print_table

from repro.core import (
    STATUS_AMBIGUOUS_LF,
    STATUS_AMBIGUOUS_REF,
    STATUS_UNPARSED,
)
from repro.rfc import load_rewrites


def _table6(run_strict):
    ambiguous = [
        r for r in run_strict.results
        if r.status in (STATUS_AMBIGUOUS_LF, STATUS_AMBIGUOUS_REF)
    ]
    unparsed = [r for r in run_strict.results if r.status == STATUS_UNPARSED
                and r.spec.kind == "field"]
    imprecise = [
        rewrite for rewrite in load_rewrites()
        if rewrite.category == "imprecise" and "code = 0" in rewrite.original
    ]
    return ambiguous, unparsed, imprecise


def test_table6_rewrite_categories(benchmark, icmp_run_strict):
    ambiguous, unparsed, imprecise = benchmark(lambda: _table6(icmp_run_strict))
    rows = [
        ("More than 1 LF", len(ambiguous), 4,
         ambiguous[0].spec.text[:60] if ambiguous else ""),
        ("0 LF", len(unparsed), 1,
         unparsed[0].spec.text[:60] if unparsed else ""),
        ("Imprecise sentence", len(imprecise), 6,
         imprecise[0].original[:60] if imprecise else ""),
    ]
    print_table("Table 6: categorized rewritten ICMP text",
                ["Category", "measured", "paper", "example"], rows)

    # The paper's shape: a handful of parse-ambiguous sentences (the
    # "To form ..." family), exactly one unparseable field description
    # (sentence D), and exactly six unit-test-discovered imprecise ones.
    assert 3 <= len(ambiguous) <= 5
    assert all("to form" in r.spec.text.lower() or "received" in r.spec.text.lower()
               for r in ambiguous)
    assert len(unparsed) >= 1
    assert any("Address of the gateway" in r.spec.text for r in unparsed)
    assert len(imprecise) == 6


def test_table5_bfd_rewrites(benchmark, bfd_run):
    rewrites = benchmark(load_rewrites)
    bfd_rewrites = [r for r in rewrites if "Table 5" in r.note]
    rows = [(r.original[:70], r.revised[:70]) for r in bfd_rewrites]
    print_table("Table 5: BFD state-management rewrites",
                ["Original", "Rewritten"], rows)

    # The two Table 5 cases: the nested-code co-reference and the
    # rephrasing removal.
    assert any("no session is found" in r.original for r in bfd_rewrites)
    assert any("RemoteDemandMode is 1" in r.original for r in bfd_rewrites)
    # Both rewrites produce working code in the revised run.
    assert bfd_run.by_status().get("unparsed", 0) == 0


def test_rewrites_resolve_in_revised_mode(icmp_run_revised):
    status = icmp_run_revised.by_status()
    assert status.get("ambiguous-lf", 0) == 0
    assert status.get("ambiguous-ref", 0) == 0
    assert status.get("unparsed", 0) == 0
    for result in icmp_run_revised.rewritten():
        for sub in result.sub_results:
            assert sub.status in ("ok", "non-actionable"), (
                sub.spec.text, sub.status, sub.reason
            )
