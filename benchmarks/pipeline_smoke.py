"""Pipeline smoke benchmark: the perf numbers successive PRs diff against.

Measures, with wall-clock timers:

* cold vs cached corpus load (fresh :class:`ProtocolRegistry` parsing RFC
  792 vs the memoized dict hit);
* cold vs cached ``Sage()`` construction (lexicon/parser/chunker build vs
  registry reuse);
* the parser backends head-to-head: every registered backend
  (``reference`` CKY and the category-indexed ``indexed`` forest parser)
  cold-parses all four corpora through an uncached ParseStage — measured
  *before* anything else CCG-parses, so the indexed backend's
  process-global memos are genuinely cold — with a per-sentence LF
  signature-set parity check between them; the sweep runs twice
  (round two re-cooled via ``reset_parser_state``) and each backend
  scores its best round, so a one-off burst of machine noise inside one
  backend's timers cannot flip the ratio gate;
* one full ICMP strict run from a cold parse cache, then a revised run —
  the revised number shows the cross-mode win of the shared parse cache
  (both modes parse the same sentences once);
* the staged-engine sweep: all four registered protocols through
  ``SageEngine.process_corpora`` — sequentially from a cold parse cache;
  in parallel across the fork worker pool from a cold cache (isolating
  the pool's contribution — the workers' parses merge back into the
  parent's cache, warming it); the same parallel sweep warm; and a
  warm-cache sequential re-run that must skip re-parsing entirely — with
  sentences/sec throughput and parse-cache hit/miss counters for each.
  ("Cold" throughout the sweep section means *parse- and winnow-cache*
  cold; the indexed backend's process-global structural memos were warmed
  by the head-to-head above, which is the production steady state).  The
  winnow layer rides the same sweeps: the §4.2 check-memo and
  winnow-result-cache counters for the cold sequential sweep land under
  ``winnow_profile``, and the warm re-run must add zero winnow-cache
  misses while reproducing byte-identical winnow traces (per-stage LF
  counts plus ordered survivor signatures);
* codegen + execution over the ICMP IR program: C and Python emission,
  compile-cold (every call re-execs the rendering), compile-cached (the
  registry's compiled-program cache answers on the content SHA-1), a
  direct-interpreter compile, and one generated echo-reply execution per
  executable backend;
* the service layer: SageRun serialization to the schema-versioned JSON
  contract and back (with a round-trip equality check), the ``schema:1b``
  binary envelope head-to-head against the JSON contract (size and
  round-trip time, interleaved best-of-N so machine noise lands on both
  sides), and the batch sweep endpoint against the warm cache — the
  production configuration of a repeated ``SageService.sweep`` call;
* the cross-process warm start: ``warm_start_probe.py`` runs the
  4-protocol sweep twice in *separate* Python processes sharing one
  persistent cache-store directory — the first populates it cold, the
  second must answer every parse from disk.

Writes ``BENCH_pipeline.json`` at the repository root so successive PRs can
diff the numbers — including a bounded ``history`` array (one entry per
git SHA, newest last) tracking the parser speedup across runs — and exits
non-zero when a headline speedup regresses (CI runs this via
``scripts/ci.sh``):

* cached corpus load and Sage construction must stay >10x cheaper than
  cold;
* the parser backends must agree sentence-for-sentence on every corpus
  (LF signature sets — the parity gate), and the optimized backend must
  deliver ≥5x the reference backend's cold-parse throughput on the
  4-protocol sweep (timed GC-quiesced, best of two cold rounds; the
  agenda/span-memo/deferred-
  construction counters for the sweep are recorded under
  ``parse_profile``, and the span-signature memo must answer >30% of
  combined spans — the cross-sentence reuse sanity floor);
* on a 1-CPU machine, ``parallel=True`` must degrade to the in-process
  sequential path (no pool spawned, no fork overhead);
* the warm-cache sweep re-run must stay >1.5x faster than the cold
  sequential sweep (the cached-vs-cold speedup gate — the multiple is
  modest because a "cold" sweep already reuses chart cells through the
  span-signature memo), must add zero parse-cache misses and zero
  winnow-cache misses, must clear a ≥4600 sentences/s throughput floor
  (~3x the pre-winnow-cache warm re-run), and must produce winnow traces
  byte-identical to the cold sweep's;
* ``networkx`` must never be imported: the canonical-signature rewrite
  keeps the VF2 isomorphism oracle off the production winnow path;
* the warm parallel sweep must beat the cold sequential sweep, and — on
  machines with ≥2 workers — so must the cold parallel sweep;
* a cached compile of the ICMP program must stay >10x cheaper than a cold
  compile (the compiled-program-cache regression gate);
* the serialized ICMP run must deserialize back equal to the original
  (wire-contract correctness), JSON decode must not cost more than JSON
  encode (the decode-hot-path gate), and the warm batch sweep endpoint
  must stay faster than the cold sequential engine sweep (bounded
  service overhead);
* the ``schema:1b`` binary envelope must be ≥3x smaller and ≥2x faster
  to round-trip than the JSON contract for the ICMP run, and must decode
  to an object equal to the JSON-decoded one;
* the cross-process warm start must complete the sweep ≥5x faster than
  its cold-store run, with zero parse-cache misses, zero winnow-cache
  misses, and byte-identical statuses / LF signatures / winnow traces /
  golden ICMP C.

Run:  PYTHONPATH=src python benchmarks/pipeline_smoke.py
"""

import hashlib
import json
import os
import pathlib
import sys
import time

from repro.core import Sage, SageEngine
from repro.framework.addressing import ip_to_int
from repro.framework.icmp import make_echo
from repro.framework.ip import PROTO_ICMP, make_ip_packet
from repro.nlp.terms import load_default_dictionary
from repro.rfc.registry import ProtocolRegistry, default_registry
from repro.runtime import ExecutionContext, compile_unit, load_functions

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def timed(fn, repeat: int = 1):
    start = time.perf_counter()
    result = None
    for _ in range(repeat):
        result = fn()
    return (time.perf_counter() - start) / repeat, result


def winnow_trace_digest(runs: dict) -> str:
    """SHA-1 over every sentence's winnow trace, in corpus order.

    Covers the per-stage LF counts *and* the ordered survivor signatures:
    two sweeps whose digests match produced byte-identical winnow traces,
    which is the exactness contract the winnow-result cache must honour
    (a cache that changes which forms survive, or in what order, is a
    correctness bug no speedup excuses).
    """
    from repro.ccg.semantics import signature

    digest = hashlib.sha1()
    for name in sorted(runs):
        for result in runs[name].results:
            digest.update(result.spec.text.encode())
            trace = result.trace
            if trace is not None:
                for stage, count in trace.counts.items():
                    digest.update(f"{stage}={count};".encode())
                for form in trace.survivors:
                    digest.update(signature(form).encode())
                    digest.update(b"\x01")
            digest.update(b"\x00")
    return digest.hexdigest()


def parallel_workers_report(last_parallel_workers: int | None) -> dict:
    """How a ``parallel=True`` sweep actually executed.

    The engine's degrade path (no fork support, or a pool of one would
    only add overhead) runs the sweep inline in this process — that is
    one effective worker, not zero, so report ``parallel_workers: 1``
    with an explicit ``parallel_inline`` flag rather than the misleading
    ``0`` this file used to record.  Asserted by
    ``benchmarks/bench_parallel_workers.py``.
    """
    inline = last_parallel_workers is None
    return {
        "parallel_workers": 1 if inline else last_parallel_workers,
        "parallel_inline": inline,
    }


def main() -> int:
    numbers = {}

    fresh = ProtocolRegistry()
    numbers["corpus_load_cold_s"], _ = timed(lambda: fresh.load_corpus("ICMP"))
    numbers["corpus_load_cached_s"], _ = timed(
        lambda: fresh.load_corpus("ICMP"), repeat=100
    )

    registry = default_registry()
    registry.clear()
    # Truly cold: registry caches are instance-level, but the default
    # dictionary is process-wide — force the re-read so the cold number
    # includes it.
    load_default_dictionary(refresh=True)
    numbers["sage_construct_cold_s"], _ = timed(Sage)
    numbers["sage_construct_cached_s"], _ = timed(Sage, repeat=10)

    # -- parser backends head-to-head, truly cold ---------------------------
    # This must run before anything CCG-parses: the indexed backend's
    # process-global structural memos warm as a side effect of any parse,
    # and the gate is about *cold* throughput.
    from repro.ccg.semantics import signature as lf_signature
    from repro.parsing import parser_backend_names

    all_specs = [
        spec
        for name in registry.protocols()
        for spec in registry.load_corpus(name).sentences
    ]
    # Chunk once, outside the timers: the NP chunker is identical for
    # every backend, and the gate measures the *parser*, not the token
    # pipeline in front of it.  The backends parse each sentence
    # back-to-back (interleaved, not one full sweep after the other) so
    # machine noise — CPU frequency drift, noisy neighbours — lands on
    # both sides of the ratio equally; each backend still sees every
    # sentence exactly once, cold.
    chunker = registry.chunker()
    token_streams = [chunker.chunk_text(spec.text) for spec in all_specs]
    backends = list(parser_backend_names())
    numbers["parse_backends"] = backends
    parsers = {backend: registry.parser(backend=backend)
               for backend in backends}
    backend_sigs = {backend: [] for backend in backends}
    # GC hygiene: both backends grow process-global memo graphs during
    # the sweep, and a generational collection walking those graphs lands
    # in whichever backend's timer happens to be open — pure measurement
    # noise that can swing the ratio by tens of percent run to run.
    # Collect once up front, hold GC for the timed region, re-enable
    # after.  (The indexed backend already brackets each parse this way
    # internally; this extends the same discipline to the reference side
    # of the ratio.)
    import gc

    from repro.parsing.profile import PROFILE, profile_delta

    # Best of two cold rounds: interleaving spreads *slow* drift across
    # both sides of the ratio, but a single burst of machine noise (a
    # noisy neighbour waking up for half a second) still lands entirely
    # inside one backend's timers and can swing the ratio past the gate.
    # Run the whole interleaved sweep twice — round two re-cooled via
    # reset_parser_state(), so each round pays full chart construction
    # and term production — and score each backend by its *minimum*
    # round: the minimum is the run the noise missed, which is the
    # number the cold gate is actually about.
    from repro.parsing import reset_parser_state

    rounds_by_backend = {backend: [] for backend in backends}
    profile_before = PROFILE.counts()
    for round_index in range(2):
        if round_index:
            # The profile delta covers exactly round one — the truly
            # process-cold sweep (round two is cold-by-reset, which the
            # counters would otherwise double).
            numbers["parse_profile"] = profile_delta(profile_before,
                                                     PROFILE.counts())
            reset_parser_state()
        elapsed_by_backend = {backend: 0.0 for backend in backends}
        gc.collect()
        gc.disable()
        try:
            for tokens in token_streams:
                for backend in backends:
                    parse = parsers[backend].parse
                    start = time.perf_counter()
                    result = parse(tokens)
                    elapsed_by_backend[backend] += time.perf_counter() - start
                    if round_index == 0:
                        backend_sigs[backend].append(
                            tuple(sorted(lf_signature(form)
                                         for form in result.logical_forms))
                        )
        finally:
            gc.enable()
        for backend in backends:
            rounds_by_backend[backend].append(elapsed_by_backend[backend])
    # The hot-path counter delta above covers the first sweep (the
    # reference backend touches none of these counters, so the delta is
    # the indexed backend's cold-sweep behavior: agenda pops, span
    # reuse, memo hit rates, deferred/forced term construction, budget
    # drops).
    for backend in backends:
        numbers[f"parse_cold_{backend}_s"] = min(rounds_by_backend[backend])
        numbers[f"parse_cold_{backend}_rounds_s"] = rounds_by_backend[backend]
        numbers[f"parse_cold_{backend}_sentences_per_s"] = (
            len(all_specs) / numbers[f"parse_cold_{backend}_s"]
        )
    numbers["parse_backend_parity"] = (
        len({tuple(sigs) for sigs in backend_sigs.values()}) == 1
    )
    numbers["parse_backend_speedup"] = (
        numbers["parse_cold_reference_s"] / numbers["parse_cold_indexed_s"]
    )

    corpus = registry.load_corpus("ICMP")
    cache = registry.parse_cache()
    cache.clear()
    numbers["icmp_strict_run_s"], strict = timed(
        lambda: Sage(mode="strict").process_corpus(corpus)
    )
    # The revised run reuses the strict run's parses through the shared
    # cache; before the cache both modes re-parsed everything.
    numbers["icmp_revised_run_s"], revised = timed(
        lambda: Sage(mode="revised").process_corpus(corpus)
    )

    numbers["icmp_sentences"] = len(corpus.sentences)
    numbers["strict_statuses"] = strict.by_status()
    numbers["revised_statuses"] = revised.by_status()

    # -- the staged-engine sweep: all registered protocols, one call --------
    engine = SageEngine(mode="revised", protocol_registry=registry)
    winnow_cache = registry.winnow_cache()
    total_sentences = sum(
        len(c.sentences) for c in registry.corpora()
    )
    numbers["sweep_protocols"] = registry.protocols()
    numbers["sweep_sentences"] = total_sentences

    from repro.disambiguation.profile import PROFILE as WINNOW_PROFILE
    from repro.disambiguation.profile import (
        profile_delta as winnow_profile_delta,
    )

    cache.clear()
    winnow_cache.clear()
    winnow_profile_before = WINNOW_PROFILE.counts()
    numbers["sweep_sequential_cold_s"], cold_runs = timed(
        lambda: engine.process_corpora(parallel=False)
    )
    numbers["sweep_sequential_cold_sentences_per_s"] = (
        total_sentences / numbers["sweep_sequential_cold_s"]
    )
    # The check-memo / traversal-cache / stage-cache counters for exactly
    # the cold sequential sweep: this is the window where the canonical-
    # signature and type memos do their cross-sentence work.
    numbers["winnow_profile"] = winnow_profile_delta(
        winnow_profile_before, WINNOW_PROFILE.counts()
    )

    # Parallel fan-out over the fork worker pool, from a cold cache: this
    # isolates what the pool itself buys.  On 1-CPU machines the engine
    # now degrades `parallel=True` to the in-process path (one worker is
    # the same parse work plus fork + cache-shipping overhead), so this
    # number matches sequential there; real speedup shows on multicore
    # CI.
    numbers["cpu_count"] = os.cpu_count() or 1
    cache.clear()
    winnow_cache.clear()
    numbers["sweep_parallel_cold_s"], _ = timed(
        lambda: engine.process_corpora(parallel=True)
    )
    numbers["sweep_parallel_cold_sentences_per_s"] = (
        total_sentences / numbers["sweep_parallel_cold_s"]
    )
    # The pool size the engine actually chose; the degrade path (fork
    # unavailable, or only one worker would have run) executes inline —
    # reported as one worker plus an explicit inline flag.
    numbers.update(parallel_workers_report(engine.last_parallel_workers))

    # The same parallel sweep against the now-warm shared cache — the
    # production configuration for a repeated sweep.
    numbers["sweep_parallel_warm_s"], _ = timed(
        lambda: engine.process_corpora(parallel=True)
    )
    numbers["sweep_parallel_warm_sentences_per_s"] = (
        total_sentences / numbers["sweep_parallel_warm_s"]
    )

    misses_before_rerun = cache.stats()["misses"]
    winnow_misses_before_rerun = winnow_cache.stats()["misses"]
    numbers["sweep_warm_rerun_s"], warm_runs = timed(
        lambda: engine.process_corpora(parallel=False)
    )
    numbers["sweep_warm_rerun_sentences_per_s"] = (
        total_sentences / numbers["sweep_warm_rerun_s"]
    )
    numbers["sweep_warm_rerun_new_misses"] = (
        cache.stats()["misses"] - misses_before_rerun
    )
    numbers["sweep_warm_rerun_new_winnow_misses"] = (
        winnow_cache.stats()["misses"] - winnow_misses_before_rerun
    )
    # The winnow-result cache must be *exact*: the warm re-run's traces —
    # per-stage counts and ordered survivors — must be byte-identical to
    # what the cold sweep computed from scratch.
    numbers["winnow_traces_identical"] = (
        winnow_trace_digest(cold_runs) == winnow_trace_digest(warm_runs)
    )
    numbers["parse_cache"] = cache.stats()
    numbers["winnow_cache"] = winnow_cache.stats()

    # -- codegen + execution over the ICMP IR program -----------------------
    unit = revised.code_unit
    numbers["codegen_emit_c_s"], _ = timed(unit.render_c, repeat=20)
    numbers["codegen_emit_python_s"], python_source = timed(
        unit.render_python, repeat=20
    )
    compiled_cache = registry.compiled_cache()
    compiled_cache.clear()
    # Cold: every call re-execs the rendering (no cache).
    numbers["codegen_compile_cold_s"], _ = timed(
        lambda: compile_unit(unit, cache=None), repeat=20
    )
    # Cached: the first call warms the registry's compiled-program cache,
    # repeats are a dictionary hit on the IR SHA-1.
    compile_unit(unit, cache=compiled_cache)
    numbers["codegen_compile_cached_s"], functions = timed(
        lambda: compile_unit(unit, cache=compiled_cache), repeat=200
    )
    numbers["codegen_interp_compile_s"], interp_functions = timed(
        lambda: compile_unit(unit, backend="interp", cache=None), repeat=20
    )

    echo = make_echo(0x1234, 1, b"bench-payload")
    request = make_ip_packet(
        ip_to_int("10.0.1.100"), ip_to_int("10.0.1.1"), PROTO_ICMP, echo.pack()
    )

    def run_builder(table):
        context = ExecutionContext(
            request_ip=request, responder_address=ip_to_int("10.0.1.1")
        )
        return table["icmp_echo_reply_receiver"](context).finish()

    numbers["codegen_exec_run_s"], _ = timed(
        lambda: run_builder(functions), repeat=200
    )
    numbers["codegen_interpret_s"], _ = timed(
        lambda: run_builder(interp_functions), repeat=200
    )
    # Source-keyed compile path (GeneratedImplementation.from_source);
    # warmed first so the timing measures pure cache hits.
    load_functions(python_source, cache=compiled_cache)
    numbers["codegen_load_functions_cached_s"], _ = timed(
        lambda: load_functions(python_source, cache=compiled_cache), repeat=200
    )
    numbers["compiled_cache"] = compiled_cache.stats()

    # -- the service layer: contracts + batch endpoint ----------------------
    from repro.api import (
        SageService,
        SweepRequest,
        from_bytes,
        from_json,
        to_bytes,
        to_json,
    )

    # The four wire operations (JSON encode/decode, schema:1b
    # encode/decode) are timed interleaved, best-of-N: the gates below
    # are *ratios* between them, and taking each operation's minimum
    # from alternating rounds cancels CPU-frequency drift that would
    # otherwise land on one side of a ratio only.
    run_json = to_json(revised, registry=registry)
    run_bin = to_bytes(revised, registry=registry)
    wire_times = {"json_enc": [], "json_dec": [], "bin_enc": [], "bin_dec": []}
    for _ in range(10):
        for key, fn in (
            ("json_enc", lambda: to_json(revised, registry=registry)),
            ("json_dec", lambda: from_json(run_json, registry=registry)),
            ("bin_enc", lambda: to_bytes(revised, registry=registry)),
            ("bin_dec", lambda: from_bytes(run_bin, registry=registry)),
        ):
            start = time.perf_counter()
            result = fn()
            wire_times[key].append(time.perf_counter() - start)
            if key == "json_dec":
                run_back = result
            elif key == "bin_dec":
                run_back_bin = result
    numbers["api_serialize_run_s"] = min(wire_times["json_enc"])
    numbers["api_deserialize_run_s"] = min(wire_times["json_dec"])
    # The pre-lazy encode path for comparison: build the full envelope
    # dict eagerly (per-Sem-node dict construction), then dump it.
    # ``to_json`` now defers Sem rendering into a json.dumps default
    # hook; this pair of numbers records what that bought.
    from repro.api.contracts import to_envelope

    numbers["api_serialize_eager_run_s"], _ = timed(
        lambda: json.dumps(to_envelope(revised, registry=registry)), repeat=5
    )
    numbers["api_serialize_lazy_speedup"] = (
        numbers["api_serialize_eager_run_s"] / numbers["api_serialize_run_s"]
    )
    numbers["api_run_json_bytes"] = len(run_json)
    numbers["api_roundtrip_equal"] = run_back == revised
    numbers["api_bin_encode_run_s"] = min(wire_times["bin_enc"])
    numbers["api_bin_decode_run_s"] = min(wire_times["bin_dec"])
    numbers["api_run_bin_bytes"] = len(run_bin)
    numbers["api_bin_size_ratio"] = len(run_json) / len(run_bin)
    numbers["api_bin_roundtrip_speedup"] = (
        (numbers["api_serialize_run_s"] + numbers["api_deserialize_run_s"])
        / (numbers["api_bin_encode_run_s"] + numbers["api_bin_decode_run_s"])
    )
    numbers["api_bin_equals_json_decode"] = run_back_bin == run_back

    service = SageService(registry=registry)
    sweep_request = SweepRequest(parallel=False)
    service.sweep(sweep_request)  # warm the service path once
    numbers["api_sweep_warm_s"], _ = timed(lambda: service.sweep(sweep_request))
    numbers["api_sweep_warm_sentences_per_s"] = (
        total_sentences / numbers["api_sweep_warm_s"]
    )

    # -- cross-process warm start over the persistent cache store -----------
    # Two *separate* Python processes share one store directory: the
    # first populates it cold, the second must answer every parse from
    # disk.  Nothing in-process survives between them — the speedup is
    # entirely the persistent store's.
    import subprocess
    import tempfile

    probe = REPO_ROOT / "benchmarks" / "warm_start_probe.py"
    with tempfile.TemporaryDirectory(prefix="repro-cache-") as cache_dir:
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        env.pop("REPRO_CACHE_DIR", None)
        cold_probe, warm_probe = (
            json.loads(subprocess.run(
                [sys.executable, str(probe), "--cache-dir", cache_dir],
                check=True, capture_output=True, text=True, env=env,
            ).stdout)
            for _ in range(2)
        )
    numbers["xproc_cold_sweep_s"] = cold_probe["sweep_s"]
    numbers["xproc_warm_sweep_s"] = warm_probe["sweep_s"]
    numbers["xproc_warm_speedup"] = (
        cold_probe["sweep_s"] / warm_probe["sweep_s"]
    )
    numbers["xproc_warm_parse_misses"] = warm_probe["parse"]["misses"]
    numbers["xproc_warm_disk_hits"] = warm_probe["parse"].get("disk_hits", 0)
    numbers["xproc_warm_winnow_misses"] = warm_probe["winnow"]["misses"]
    numbers["xproc_warm_winnow_disk_hits"] = (
        warm_probe["winnow"].get("disk_hits", 0)
    )
    numbers["xproc_outputs_identical"] = (
        cold_probe["statuses"] == warm_probe["statuses"]
        and cold_probe["lf_sha1"] == warm_probe["lf_sha1"]
        and cold_probe["trace_sha1"] == warm_probe["trace_sha1"]
        and cold_probe["icmp_c_sha1"] == warm_probe["icmp_c_sha1"]
    )

    # The VF2 oracle's backing library must never load in this process:
    # the canonical-signature rewrite exists so the full parse → winnow →
    # generate → serialize pipeline runs without graph isomorphism, and
    # an import anywhere above means something fell back onto it.
    numbers["networkx_imported"] = "networkx" in sys.modules

    # -- speedup history ----------------------------------------------------
    # Append this run's headline parser numbers to the `history` array
    # (keyed by git SHA, newest last, bounded) carried over from the
    # previous BENCH_pipeline.json — successive PRs see the trend, not
    # just the latest point.
    import subprocess

    out = REPO_ROOT / "BENCH_pipeline.json"
    history = []
    carried = {}
    if out.exists():
        try:
            previous = json.loads(out.read_text())
            history = previous.get("history", [])
            # The serving-layer numbers (`serve_*`, written by
            # benchmarks/load_harness.py against a live server) and the
            # fuzz-gate numbers (`fuzz_*`, written by `python -m repro
            # fuzz --record-bench`) ride in the same file; a smoke
            # re-run must not erase them.
            carried = {key: value for key, value in previous.items()
                       if key.startswith(("serve_", "fuzz_"))}
        except (json.JSONDecodeError, OSError):
            history = []
    numbers.update(carried)
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=REPO_ROOT,
            capture_output=True, text=True, check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        sha = "unknown"
    history = [entry for entry in history if entry.get("sha") != sha]
    history.append({
        "sha": sha,
        "parse_backend_speedup": numbers["parse_backend_speedup"],
        "parse_cold_indexed_s": numbers["parse_cold_indexed_s"],
        "parse_cold_reference_s": numbers["parse_cold_reference_s"],
        "span_reuse_rate": numbers["parse_profile"]["span_reuse_rate"],
        "sweep_warm_rerun_sentences_per_s":
            numbers["sweep_warm_rerun_sentences_per_s"],
        "winnow_type_memo_hit_rate":
            numbers["winnow_profile"]["type_memo_hit_rate"],
        "winnow_canon_memo_hit_rate":
            numbers["winnow_profile"]["canon_memo_hit_rate"],
        "api_serialize_run_s": numbers["api_serialize_run_s"],
    })
    numbers["history"] = history[-50:]

    out.write_text(json.dumps(numbers, indent=2) + "\n")
    print(json.dumps(numbers, indent=2))

    # The regression gates (see module docstring).
    failures = []
    if not numbers["parse_backend_parity"]:
        failures.append("parser backends disagree on some sentence's "
                        "LF signature set (parity gate)")
    if not numbers["parse_backend_speedup"] >= 5.0:
        failures.append(
            "indexed parser backend is not >=5x the reference backend's "
            f"cold-parse throughput (got {numbers['parse_backend_speedup']:.2f}x)"
        )
    if not numbers["parse_profile"]["span_reuse_rate"] > 0.30:
        failures.append(
            "span-signature memo reuse fell to "
            f"{numbers['parse_profile']['span_reuse_rate']:.1%} of combined "
            "spans on the cold sweep (sanity floor 30%: formulaic RFC "
            "phrasing must keep reusing spans, or the cross-sentence memo "
            "stopped paying for itself)"
        )
    if not numbers["corpus_load_cached_s"] < numbers["corpus_load_cold_s"] / 10:
        failures.append("cached corpus load is not >10x cheaper than cold")
    if not numbers["sage_construct_cached_s"] < numbers["sage_construct_cold_s"] / 10:
        failures.append("cached Sage construction is not >10x cheaper than cold")
    # The warm-rerun multiple shrank by design when the indexed backend's
    # span memo landed: a parse-cache-cold sweep now reuses whole chart
    # cells across sentences (the memos were warmed by the head-to-head
    # above — the production steady state), so skipping the parse
    # entirely buys ~2x, not the ~4x it bought when every cold parse
    # re-combined every span.  The floor guards the cache still paying
    # for itself; the zero-miss gate below guards its correctness.
    if not numbers["sweep_warm_rerun_s"] < numbers["sweep_sequential_cold_s"] / 1.5:
        failures.append("warm-cache sweep re-run is not >1.5x faster than cold")
    if numbers["sweep_warm_rerun_new_misses"] != 0:
        failures.append("warm-cache sweep re-run re-parsed sentences")
    if numbers["sweep_warm_rerun_new_winnow_misses"] != 0:
        failures.append(
            "warm-cache sweep re-run re-winnowed sentences "
            f"({numbers['sweep_warm_rerun_new_winnow_misses']} winnow-cache "
            "misses)"
        )
    if not numbers["sweep_warm_rerun_sentences_per_s"] >= 4600:
        failures.append(
            "warm-cache sweep re-run throughput fell below the 4600 "
            "sentences/s floor (got "
            f"{numbers['sweep_warm_rerun_sentences_per_s']:.0f}/s): the "
            "winnow-result cache stopped carrying the warm path"
        )
    if not numbers["winnow_traces_identical"]:
        failures.append(
            "warm-cache sweep re-run produced different winnow traces than "
            "the cold sweep (the winnow-result cache must be exact: same "
            "per-stage counts, same survivors, same order)"
        )
    if not numbers["sweep_parallel_warm_s"] < numbers["sweep_sequential_cold_s"]:
        failures.append("warm parallel sweep is not faster than the cold sequential sweep")
    if not numbers["sweep_parallel_warm_s"] < numbers["sweep_parallel_cold_s"]:
        # Machine-independent probe for worker cache shipping: the second
        # parallel sweep runs against the cache the first one's workers
        # merged back — if shipping broke, it re-parses and this inverts.
        failures.append("warm parallel sweep is not faster than cold parallel "
                        "(worker parse-cache merge-back may be broken)")
    if numbers["parallel_workers"] >= 2:
        # Only meaningful with real concurrency: one worker is the same
        # parse work plus fork overhead.  "Cold" here means parse-cache
        # cold; the indexed backend's process-global structural memos are
        # already warm from the head-to-head above (the production steady
        # state), which shrinks the per-sentence work the pool amortizes —
        # so require the pool's overhead to stay bounded rather than a
        # strict win, unless the sequential sweep is slow enough (>1s)
        # for fork fan-out to genuinely pay for itself.
        sequential = numbers["sweep_sequential_cold_s"]
        parallel = numbers["sweep_parallel_cold_s"]
        if sequential > 1.0 and not parallel < sequential:
            failures.append(
                "cold parallel sweep is not faster than cold sequential "
                f"with {numbers['parallel_workers']} workers"
            )
        elif not parallel < sequential * 2.0:
            failures.append(
                "cold parallel sweep overhead exceeds 2x cold sequential "
                f"with {numbers['parallel_workers']} workers"
            )
    if numbers["cpu_count"] == 1:
        # The single-CPU regression this gate exists for: the engine must
        # degrade parallel=True to the in-process path (no pool spawned)
        # rather than pay fork + cache shipping for zero concurrency.
        if not numbers["parallel_inline"]:
            failures.append(
                "engine spawned a worker pool on a 1-CPU machine "
                f"({numbers['parallel_workers']} workers) instead of "
                "degrading to the inline sequential path"
            )
        if not (numbers["sweep_parallel_cold_s"]
                < numbers["sweep_sequential_cold_s"] * 1.25):
            failures.append(
                "degraded parallel sweep is slower than sequential on a "
                "1-CPU machine "
                f"({numbers['sweep_parallel_cold_s']:.3f}s vs "
                f"{numbers['sweep_sequential_cold_s']:.3f}s): the "
                "parallel=True fallback should be the same code path"
            )
    if not numbers["codegen_compile_cached_s"] < numbers["codegen_compile_cold_s"] / 10:
        failures.append("cached program compile is not >10x cheaper than cold")
    if not numbers["api_roundtrip_equal"]:
        failures.append("serialized SageRun did not deserialize back equal")
    if not numbers["api_deserialize_run_s"] <= numbers["api_serialize_run_s"]:
        failures.append(
            "JSON decode is slower than JSON encode for the ICMP run "
            f"(decode {numbers['api_deserialize_run_s']:.4f}s vs "
            f"encode {numbers['api_serialize_run_s']:.4f}s)"
        )
    if not numbers["api_bin_equals_json_decode"]:
        failures.append("schema:1b decode of the ICMP run does not equal "
                        "the JSON-decoded object")
    if not numbers["api_bin_size_ratio"] >= 3.0:
        failures.append(
            "schema:1b envelope is not >=3x smaller than the JSON contract "
            f"(got {numbers['api_bin_size_ratio']:.2f}x)"
        )
    if not numbers["api_bin_roundtrip_speedup"] >= 2.0:
        failures.append(
            "schema:1b round-trip is not >=2x faster than the JSON contract "
            f"(got {numbers['api_bin_roundtrip_speedup']:.2f}x)"
        )
    if not numbers["api_sweep_warm_s"] < numbers["sweep_sequential_cold_s"]:
        failures.append("warm service sweep endpoint is not faster than the "
                        "cold sequential engine sweep")
    if not numbers["xproc_warm_speedup"] >= 5.0:
        failures.append(
            "cross-process warm sweep is not >=5x faster than its cold-store "
            f"run (got {numbers['xproc_warm_speedup']:.2f}x)"
        )
    if numbers["xproc_warm_parse_misses"] != 0:
        failures.append(
            "cross-process warm sweep re-parsed sentences "
            f"({numbers['xproc_warm_parse_misses']} parse-cache misses)"
        )
    if numbers["xproc_warm_winnow_misses"] != 0:
        failures.append(
            "cross-process warm sweep re-winnowed sentences "
            f"({numbers['xproc_warm_winnow_misses']} winnow-cache misses)"
        )
    if not numbers["xproc_outputs_identical"]:
        failures.append("cross-process warm sweep outputs differ from cold "
                        "(statuses / LF signatures / winnow traces / "
                        "generated ICMP C)")
    if numbers["networkx_imported"]:
        failures.append(
            "networkx was imported during the benchmark: the VF2 oracle "
            "leaked onto the production winnow path (canonical signatures "
            "must carry associativity detection alone)"
        )
    if failures:
        for failure in failures:
            print(f"SMOKE FAILURE: {failure}", file=sys.stderr)
        return 1
    print(f"\nwrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
