"""Pipeline smoke benchmark: seeds the perf trajectory for later PRs.

Measures, with wall-clock timers:

* cold corpus load — a fresh :class:`ProtocolRegistry` parsing RFC 792 from
  scratch (dictionary + text parse);
* cached corpus load — the second ``load_corpus("ICMP")`` on the same
  registry (should be orders of magnitude cheaper: it is a dict hit);
* cold vs cached ``Sage()`` construction (lexicon/parser/chunker build vs
  registry reuse);
* one full ICMP strict run and one full revised run.

Writes ``BENCH_pipeline.json`` at the repository root so successive PRs can
diff the numbers.

Run:  PYTHONPATH=src python benchmarks/pipeline_smoke.py
"""

import json
import pathlib
import sys
import time

from repro.core import Sage
from repro.nlp.terms import load_default_dictionary
from repro.rfc.registry import ProtocolRegistry, default_registry

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def timed(fn, repeat: int = 1):
    start = time.perf_counter()
    result = None
    for _ in range(repeat):
        result = fn()
    return (time.perf_counter() - start) / repeat, result


def main() -> int:
    numbers = {}

    fresh = ProtocolRegistry()
    numbers["corpus_load_cold_s"], _ = timed(lambda: fresh.load_corpus("ICMP"))
    numbers["corpus_load_cached_s"], _ = timed(
        lambda: fresh.load_corpus("ICMP"), repeat=100
    )

    registry = default_registry()
    registry.clear()
    # Truly cold: registry caches are instance-level, but the default
    # dictionary is process-wide — force the re-read so the cold number
    # includes it.
    load_default_dictionary(refresh=True)
    numbers["sage_construct_cold_s"], _ = timed(Sage)
    numbers["sage_construct_cached_s"], _ = timed(Sage, repeat=10)

    corpus = registry.load_corpus("ICMP")
    numbers["icmp_strict_run_s"], strict = timed(
        lambda: Sage(mode="strict").process_corpus(corpus)
    )
    numbers["icmp_revised_run_s"], revised = timed(
        lambda: Sage(mode="revised").process_corpus(corpus)
    )

    numbers["icmp_sentences"] = len(corpus.sentences)
    numbers["strict_statuses"] = strict.by_status()
    numbers["revised_statuses"] = revised.by_status()

    out = REPO_ROOT / "BENCH_pipeline.json"
    out.write_text(json.dumps(numbers, indent=2) + "\n")
    print(json.dumps(numbers, indent=2))

    # The point of the registry: cached paths must be much cheaper.
    ok = (
        numbers["corpus_load_cached_s"] < numbers["corpus_load_cold_s"] / 10
        and numbers["sage_construct_cached_s"] < numbers["sage_construct_cold_s"] / 10
    )
    if not ok:
        print("SMOKE FAILURE: cached load/construction is not measurably cheaper",
              file=sys.stderr)
        return 1
    print(f"\nwrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
