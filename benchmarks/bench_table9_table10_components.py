"""Tables 1, 9 & 10: specification-component coverage across protocols.

Regenerates the conceptual and syntactic component matrices, and validates
the rows for the four bundled corpora against what the detector actually
measures in their text.
"""

from conftest import print_table

from repro.analysis import (
    CONCEPTUAL_COMPONENTS,
    SAGE_CONCEPTUAL_SUPPORT,
    SAGE_SYNTACTIC_SUPPORT,
    SYNTACTIC_COMPONENTS,
    conceptual_rows,
    detect_all,
    syntactic_rows,
)
from repro.analysis.components import CONCEPTUAL_MATRIX, SYNTACTIC_MATRIX


def test_table9_conceptual_components(benchmark):
    rows = benchmark(conceptual_rows)
    protocols = list(CONCEPTUAL_MATRIX)
    print_table(
        "Table 9: conceptual components in RFCs",
        ["Component"] + protocols,
        [(name, *["x" if flag else "" for flag in flags]) for name, flags in rows],
    )
    assert [name for name, _ in rows] == list(CONCEPTUAL_COMPONENTS)
    # Every protocol describes its packet format; TCP/BGP have state mgmt.
    packet_format = dict(rows)["Packet Format"]
    assert all(packet_format)
    state = dict(zip(protocols, dict(rows)["State/Session Mngmt."]))
    assert state["TCP"] and state["BGP4"] and state["BFD"]
    # SAGE supports 3 of 6 fully, 1 partially (Table 1).
    assert sum(1 for v in SAGE_CONCEPTUAL_SUPPORT.values() if v == "full") == 3
    assert sum(1 for v in SAGE_CONCEPTUAL_SUPPORT.values() if v == "partial") == 1


def test_table10_syntactic_components(benchmark):
    rows = benchmark(syntactic_rows)
    protocols = list(SYNTACTIC_MATRIX)
    print_table(
        "Table 10: syntactic components in RFCs",
        ["Component"] + protocols,
        [(name, *["x" if flag else "" for flag in flags]) for name, flags in rows],
    )
    assert [name for name, _ in rows] == list(SYNTACTIC_COMPONENTS)
    by_name = dict(rows)
    assert all(by_name["Header Diagram"])  # every protocol draws its header
    assert all(by_name["Listing"])
    # Only TCP and BGP carry state machine diagrams.
    machine = dict(zip(protocols, by_name["State Machine Diagram"]))
    assert machine["TCP"] and machine["BGP4"]
    assert sum(machine.values()) == 2
    # SAGE parses two of the syntactic element kinds (Table 1).
    assert sum(1 for v in SAGE_SYNTACTIC_SUPPORT.values() if v == "full") == 2


def test_detector_matches_bundled_corpora(benchmark):
    detected = benchmark(detect_all)
    rows = [
        (d.protocol, d.header_diagram, d.listing, d.field_descriptions,
         d.state_management_sentences)
        for d in detected
    ]
    print_table(
        "Detected syntactic components (bundled corpora)",
        ["Protocol", "header diagram", "listing", "#field descs", "#state sentences"],
        rows,
    )
    by_protocol = {d.protocol: d for d in detected}
    for protocol in ("ICMP", "IGMP", "NTP", "BFD"):
        assert by_protocol[protocol].header_diagram
        assert by_protocol[protocol].listing
    assert by_protocol["BFD"].state_management_sentences >= 10
    assert by_protocol["ICMP"].field_descriptions >= 40
