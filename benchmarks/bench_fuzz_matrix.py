"""Differential fuzz interop matrix: cross-backend agreement under load.

One seeded campaign of the :mod:`repro.fuzz` differential fuzzer over the
four revised-mode code units: every generated episode — randomized packet
traces, peer event schedules, multi-node topologies with seeded link
faults — is replayed against the hand-written reference, the exec-Python
backend, and the IR interpreter, with per-protocol invariant oracles over
every trace.  Prints the pass/fail interop matrix (backend-pair ×
protocol × scenario family) and the emitted-C fingerprint lock, and
asserts the paper's interop claim in fuzzed form: a full green matrix,
zero oracle violations, and a byte-identical trace digest when the same
seed runs twice.
"""

import pytest
from conftest import print_table

from repro.fuzz import FAMILIES, PROTOCOLS, run_fuzz

SEED = 0
EPISODES = 60


@pytest.fixture(scope="module")
def units(revised_runs):
    return {name: run.code_unit for name, run in revised_runs.items()
            if name in PROTOCOLS}


@pytest.fixture(scope="module")
def report(units):
    return run_fuzz(units, seed=SEED, episodes=EPISODES)


def test_interop_matrix_all_green(report):
    print_table(
        f"Interop matrix ({EPISODES} episodes, seed {SEED})",
        ["backend pair", "protocol", "family", "episodes", "divergences",
         "verdict"],
        report.matrix.rows(),
    )
    assert report.episodes == EPISODES
    assert not report.divergences
    assert not report.violations
    assert report.matrix.all_green
    # Full coverage: every backend pair saw every protocol × family cell.
    expected_cells = len(report.matrix.pairs) * sum(
        len(families) for families in FAMILIES.values()
    )
    assert len(report.matrix.cells) == expected_cells
    assert report.matrix.protocols() == sorted(PROTOCOLS)


def test_c_render_lock_stable(report):
    print_table(
        "C backend render lock",
        ["protocol", "sha1", "stable"],
        [(protocol, entry["sha1"][:16], entry["stable"])
         for protocol, entry in sorted(report.c_fingerprints.items())],
    )
    assert set(report.c_fingerprints) == set(PROTOCOLS)
    assert all(entry["stable"] for entry in report.c_fingerprints.values())


def test_trace_digest_reproducible(units, report):
    again = run_fuzz(units, seed=SEED, episodes=EPISODES)
    assert again.traces_sha1 == report.traces_sha1
    assert report.clean and again.clean
