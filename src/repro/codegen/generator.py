"""Code assembly: sentence snippets → per-message builder functions (§5.2).

The generator concatenates each sentence's ops "into a packet handling
function", one per (message, role), named from the context dictionaries
("sage uses the context to generate unique names for the function, based on
the protocol, the message type, and the role").  Two reordering passes
implement the paper's discussion of code order:

* **advice** — ops tagged ``advice_before`` are moved immediately before the
  first op of the advised function (@AdvBefore, the checksum-zeroing case);
* **finalization** — checksum computations sort to the end of the function:
  the RFC lists the Checksum field before Identifier/Sequence/Data, but the
  checksum covers them, so it must be computed after they are filled.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field as dataclass_field

from .emitters import CEmitter, PyEmitter
from .ops import Comment, ComputeChecksum, Op

# Which side of the exchange constructs each ICMP message.
_SENDER_BUILT = {"echo", "timestamp", "information request"}


def builder_role(message_name: str) -> str:
    """"echo" is built by the probing sender; everything else by the
    responding node (replies and error messages)."""
    return "sender" if message_name in _SENDER_BUILT else "receiver"


def function_name(protocol: str, message_name: str, role: str) -> str:
    slug = re.sub(r"[^a-z0-9]+", "_", message_name.lower()).strip("_")
    return f"{protocol.lower()}_{slug}_{role}"


@dataclass
class SentenceCode:
    """One sentence's generated ops plus routing metadata."""

    sentence: str
    ops: list[Op] = dataclass_field(default_factory=list)
    goal_message: str = ""  # "" = applies to every message in its section
    role: str = ""  # "" = applies to both roles
    status: str = "ok"  # ok | non-actionable | ambiguous
    reason: str = ""


@dataclass
class MessageProgram:
    """The assembled builder for one message."""

    protocol: str
    message_name: str
    role: str
    ops: list[Op] = dataclass_field(default_factory=list)

    @property
    def name(self) -> str:
        return function_name(self.protocol, self.message_name, self.role)

    def render_c(self) -> str:
        return CEmitter().render_function(self.name, self.ops)

    def render_python(self) -> str:
        return PyEmitter().render_function(self.name, self.ops)


def _goal_matches(goal_message: str, message_name: str) -> bool:
    """"echo_reply_message" (an LF constant) matches "echo reply"."""
    if not goal_message:
        return True
    normalized = goal_message.replace("_", " ").removesuffix(" message").strip()
    return normalized == message_name


def reorder_advice(ops: list[Op]) -> list[Op]:
    """Move advice ops immediately before their advised function's first op.

    Currently the only advised function is the checksum computation
    (@AdvBefore in the "For computing the checksum..." sentence); advice for
    functions that never appear stays in place.
    """
    advice = [op for op in ops if op.advice_before]
    if not advice:
        return list(ops)
    plain = [op for op in ops if not op.advice_before]
    result: list[Op] = []
    placed: set[int] = set()
    for op in plain:
        if isinstance(op, ComputeChecksum):
            for index, advice_op in enumerate(advice):
                if index not in placed and advice_op.advice_before == "compute_checksum":
                    result.append(advice_op)
                    placed.add(index)
        result.append(op)
    for index, advice_op in enumerate(advice):
        if index not in placed:
            result.append(advice_op)
    return result


def _dedupe_identical_setfields(ops: list[Op]) -> list[Op]:
    """Drop exact-duplicate constant field assignments (e.g. the structural
    type value and a rewrite's explicit "type field is set to 0")."""
    from .ops import SetField

    seen: set[tuple[str, str, int]] = set()
    result: list[Op] = []
    for op in ops:
        if isinstance(op, SetField) and op.value.kind == "const":
            key = (op.protocol, op.name, op.value.const)
            if key in seen:
                continue
            seen.add(key)
        result.append(op)
    return result


def finalize_checksums_last(ops: list[Op]) -> list[Op]:
    """Stable-sort checksum computations (and their advice) to the end."""
    checksum_keys: set[int] = set()
    for index, op in enumerate(ops):
        if isinstance(op, ComputeChecksum):
            checksum_keys.add(index)
    if not checksum_keys:
        return list(ops)
    head = [op for index, op in enumerate(ops) if index not in checksum_keys]
    tail = [op for index, op in enumerate(ops) if index in checksum_keys]
    deduped_tail: list[Op] = []
    seen: set[tuple[str, str]] = set()
    for op in tail:
        key = (op.protocol, op.name)
        if key in seen:
            continue
        seen.add(key)
        deduped_tail.append(op)
    return head + deduped_tail


def assemble_message_program(
    protocol: str,
    message_name: str,
    sentence_codes: list[SentenceCode],
    type_value: int | None = None,
    code_value: int | None = None,
) -> MessageProgram:
    """Assemble one message's builder from its sentences plus the structural
    value bindings (the "0 = Echo Reply" idiom and bare field values)."""
    role = builder_role(message_name)
    ops: list[Op] = []
    if type_value is not None:
        from .ops import SetField, Value

        ops.append(SetField(protocol.lower(), "type", Value.constant(type_value)))
    if code_value is not None:
        from .ops import SetField, Value

        ops.append(SetField(protocol.lower(), "code", Value.constant(code_value)))
    for code in sentence_codes:
        if code.status == "non-actionable":
            ops.append(Comment(text=code.sentence[:70]))
            continue
        if code.status != "ok":
            continue
        if not _goal_matches(code.goal_message, message_name):
            continue
        if code.role and code.role != role:
            continue
        ops.extend(code.ops)
    # Finalization first (checksums move to the end), THEN advice placement,
    # so zero-before-compute lands directly before the moved computation.
    ops = finalize_checksums_last(ops)
    ops = reorder_advice(ops)
    ops = _dedupe_identical_setfields(ops)
    return MessageProgram(
        protocol=protocol, message_name=message_name, role=role, ops=ops
    )


@dataclass
class CodeUnit:
    """Everything generated for one protocol: structs plus builders."""

    protocol: str
    struct_c: str = ""
    programs: list[MessageProgram] = dataclass_field(default_factory=list)

    def program_named(self, name: str) -> MessageProgram | None:
        for program in self.programs:
            if program.name == name:
                return program
        return None

    def render_c(self) -> str:
        parts = [self.struct_c] if self.struct_c else []
        parts.extend(program.render_c() for program in self.programs)
        return "\n\n".join(parts)

    def render_python(self) -> str:
        return "\n\n".join(program.render_python() for program in self.programs)
