"""Code assembly: sentence snippets → per-message builder functions (§5.2).

The generator concatenates each sentence's ops "into a packet handling
function", one per (message, role), named from the context dictionaries
("sage uses the context to generate unique names for the function, based on
the protocol, the message type, and the role").  The assembly itself — op
filtering by goal/role, the reordering passes implementing the paper's
discussion of code order, and validation — lives in the typed IR
(:mod:`repro.codegen.ir`); this module keeps the historical surface
(:func:`assemble_message_program`, :class:`MessageProgram`,
:class:`CodeUnit`) and the role policy:

* **advice** — ops tagged ``advice_before`` are moved immediately before the
  first op of the advised function (@AdvBefore, the checksum-zeroing case);
* **finalization** — checksum computations sort to the end of the function:
  the RFC lists the Checksum field before Identifier/Sequence/Data, but the
  checksum covers them, so it must be computed after they are filled.
"""

from __future__ import annotations

from .ir import (
    AdvicePlacementPass,
    ChecksumFinalizationPass,
    Function,
    Program,
    SentenceCode,
    build_function,
    function_name,
)
from .ops import Op

# Historical aliases: the IR's Function/Program are the same objects the
# pre-IR generator called MessageProgram/CodeUnit.
MessageProgram = Function
CodeUnit = Program

# Which side of the exchange constructs each ICMP message.  This is the
# bundled-ICMP *fallback*: protocol-correct sender-built sets live in the
# protocol registry's metadata (``ProtocolRegistry.sender_built``) and are
# passed to :func:`builder_role` explicitly by the engine.
_SENDER_BUILT = frozenset({"echo", "timestamp", "information request"})


def builder_role(message_name: str,
                 sender_built: frozenset[str] | None = None) -> str:
    """"echo" is built by the probing sender; everything else by the
    responding node (replies and error messages).

    ``sender_built`` is the per-protocol message set from the registry's
    metadata; without one the bundled ICMP set applies.
    """
    built_by_sender = _SENDER_BUILT if sender_built is None else sender_built
    return "sender" if message_name in built_by_sender else "receiver"


def reorder_advice(ops: list[Op]) -> list[Op]:
    """The advice-placement pass, as a plain function (historical name)."""
    return AdvicePlacementPass().run(ops)


def finalize_checksums_last(ops: list[Op]) -> list[Op]:
    """The checksum-finalization pass, as a plain function (historical name)."""
    return ChecksumFinalizationPass().run(ops)


def assemble_message_program(
    protocol: str,
    message_name: str,
    sentence_codes: list[SentenceCode],
    type_value: int | None = None,
    code_value: int | None = None,
    sender_built: frozenset[str] | None = None,
) -> MessageProgram:
    """Assemble one message's builder from its sentences plus the structural
    value bindings (the "0 = Echo Reply" idiom and bare field values)."""
    return build_function(
        protocol=protocol,
        message_name=message_name,
        role=builder_role(message_name, sender_built),
        sentence_codes=sentence_codes,
        type_value=type_value,
        code_value=code_value,
    )
