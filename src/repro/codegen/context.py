"""Dynamic and static context for code generation (§5.2, Table 4).

A logical form alone cannot become code: ``@Is('type', '3')`` needs to know
*whose* type field.  SAGE builds a **dynamic context** per sentence from the
document structure (protocol, message section, field block) and keeps a
pre-defined **static context** mapping lower-layer terms ("source address" →
the IP header's source field, "one's complement sum" → a framework
function).  Resolution searches the dynamic context first, then the static
context (paper: "During code generation, sage first searches the dynamic
context, then the static context").

Unqualified terms that could denote several targets ("checksum" outside a
checksum field block — IP or ICMP checksum?; "type code" — the type field or
the code field?) resolve to an :class:`AmbiguousReference`; the pipeline
surfaces these as sentences requiring a human rewrite, the §2.2 observation
that code generation itself "may also uncover ambiguity".
"""

from __future__ import annotations

from dataclasses import dataclass, field


class ResolutionError(Exception):
    """Base class for context-resolution failures."""


class AmbiguousReference(ResolutionError):
    """A term with more than one plausible target and no qualifier."""

    def __init__(self, term: str, candidates: list["Target"]):
        self.term = term
        self.candidates = candidates
        rendered = ", ".join(str(candidate) for candidate in candidates)
        super().__init__(f"ambiguous reference {term!r}: could be {rendered}")


class UnknownReference(ResolutionError):
    """A term with no known target (routes the sentence to non-actionable)."""

    def __init__(self, term: str):
        self.term = term
        super().__init__(f"no target known for term {term!r}")


@dataclass(frozen=True)
class Target:
    """What a term denotes: a header field, a function, or a runtime value.

    ``kind`` is one of ``field`` (protocol, name), ``function`` (framework
    callable), ``param`` (a value the runtime scenario supplies), ``range``
    (a checksum coverage range), or ``object`` (a whole message/packet).
    """

    kind: str
    protocol: str = ""
    name: str = ""

    def __str__(self) -> str:
        if self.kind == "field":
            return f"{self.protocol}.{self.name}"
        return f"{self.kind}:{self.name}"


def field_target(protocol: str, name: str) -> Target:
    return Target(kind="field", protocol=protocol, name=name)


def function_target(name: str) -> Target:
    return Target(kind="function", name=name)


def param_target(name: str) -> Target:
    return Target(kind="param", name=name)


def object_target(name: str) -> Target:
    return Target(kind="object", name=name)


@dataclass
class SentenceContext:
    """The Table 4 context dictionary for one sentence."""

    protocol: str = "ICMP"
    message: str = ""
    field: str = ""
    role: str = ""  # "sender" | "receiver" | ""

    def as_dict(self) -> dict[str, str]:
        return {
            "protocol": self.protocol,
            "message": self.message,
            "field": self.field,
            "role": self.role,
        }


# Pronouns and generic nouns that refer back to the current message/field.
_SELF_REFERENCES = {"it", "they", "them", "this", "these", "message",
                    "the_message", "reply", "packet"}


class StaticContext:
    """The pre-defined term → target table plus ambiguity markings."""

    def __init__(self) -> None:
        self._targets: dict[str, Target] = {}
        self._ambiguous: dict[str, list[Target]] = {}
        self._install_defaults()

    def register(self, term: str, target: Target) -> None:
        self._targets[term] = target

    def register_ambiguous(self, term: str, candidates: list[Target]) -> None:
        self._ambiguous[term] = candidates

    def lookup(self, term: str) -> Target:
        if term in self._ambiguous:
            raise AmbiguousReference(term, self._ambiguous[term])
        if term in self._targets:
            return self._targets[term]
        raise UnknownReference(term)

    def known(self, term: str) -> bool:
        return term in self._targets or term in self._ambiguous

    # -- defaults ------------------------------------------------------------
    def _install_defaults(self) -> None:
        # Qualified IP-layer fields (what the rewrites use).
        self.register("ip_source_address", field_target("ip", "src"))
        self.register("ip_destination_address", field_target("ip", "dst"))
        self.register("source_address", field_target("ip", "src"))
        self.register("destination_address", field_target("ip", "dst"))
        self.register("time_to_live", field_target("ip", "ttl"))
        self.register("time_to_live_field", field_target("ip", "ttl"))
        self.register("total_length", field_target("ip", "total_length"))
        self.register("type_of_service", field_target("ip", "tos"))
        self.register("ip_checksum", field_target("ip", "header_checksum"))
        self.register("ip_header_checksum", field_target("ip", "header_checksum"))

        # Qualified ICMP fields.
        for name in ("type", "code", "checksum", "identifier",
                     "sequence_number", "pointer"):
            self.register(f"icmp_{name}", field_target("icmp", name))
        self.register("icmp_type_field", field_target("icmp", "type"))
        self.register("icmp_code_field", field_target("icmp", "code"))
        self.register("icmp_checksum_field", field_target("icmp", "checksum"))
        self.register("gateway_internet_address",
                      field_target("icmp", "gateway_internet_address"))

        # Framework functions (the "one's complement sum" → function map).
        self.register("ones_complement_sum", function_target("ones_complement_sum"))
        self.register("one's complement sum", function_target("ones_complement_sum"))
        self.register("16_bit_ones_complement", function_target("internet_checksum"))
        self.register("ones_complement", function_target("internet_checksum"))

        # Runtime-scenario parameters.
        self.register("current_time", param_target("current_time"))
        self.register("value", param_target("chosen_value"))
        self.register("any_value", param_target("chosen_value"))
        self.register("chosen_value", param_target("chosen_value"))
        self.register("octet", param_target("error_octet"))
        self.register("redirect_gateway_address", param_target("gateway_address"))
        self.register("gateway_address", param_target("gateway_address"))

        # IGMP / NTP / UDP targets for the generality experiments (§6.3).
        self.register("group_address", field_target("igmp", "group_address"))
        self.register("group_address_field", field_target("igmp", "group_address"))
        self.register("host_group_address", param_target("group_address"))
        self.register("all_hosts_group", param_target("all_hosts_group"))
        self.register("source_port", field_target("udp", "src_port"))
        self.register("destination_port", field_target("udp", "dst_port"))
        self.register("igmp_checksum", field_target("igmp", "checksum"))

        # Whole-message objects.
        self.register("icmp_message", object_target("icmp_message"))
        self.register("original_datagram", object_target("original_datagram"))
        self.register("original_datagrams_data", object_target("original_datagram"))
        self.register("original_data_datagram", object_target("original_datagram"))
        self.register("internet_header", object_target("internet_header"))
        self.register("first_64_bits", object_target("first_64_bits"))
        self.register("data", object_target("data"))
        self.register("request", object_target("request"))
        self.register("echo_message", object_target("request"))
        self.register("timestamp_message", object_target("request"))
        self.register("request_message", object_target("request"))
        self.register("echo_reply_message", object_target("reply"))
        self.register("timestamp_reply_message", object_target("reply"))
        self.register("information_reply_message", object_target("reply"))
        self.register("reply", object_target("reply"))
        self.register("source_network", object_target("source_network"))
        self.register("address", object_target("address"))

        # The famously confusing unqualified terms (§4.1 sentence G): these
        # are ambiguous by construction; only a qualified rewrite resolves
        # them.
        self.register_ambiguous(
            "checksum",
            [field_target("icmp", "checksum"), field_target("ip", "header_checksum")],
        )
        self.register_ambiguous(
            "checksum_field",
            [field_target("icmp", "checksum"), field_target("ip", "header_checksum")],
        )
        self.register_ambiguous(
            "type_code",
            [field_target("icmp", "type"), field_target("icmp", "code")],
        )
        self.register_ambiguous(
            "source",
            [field_target("ip", "src"), object_target("original_datagram")],
        )
        self.register_ambiguous(
            "destination",
            [field_target("ip", "dst"), object_target("original_datagram")],
        )
        self.register_ambiguous(
            "destination_addresses",
            [field_target("ip", "dst"), object_target("original_datagram")],
        )
        self.register_ambiguous(
            "source_and_destination_addresses",
            [field_target("ip", "src"), field_target("ip", "dst"),
             object_target("original_datagram")],
        )


# Field terms that appear inside a field block and denote that block's field.
_FIELD_SYNONYMS = {
    "identifier": "identifier",
    "identifier_field": "identifier",
    "sequence_number": "sequence_number",
    "sequence_number_field": "sequence_number",
    "pointer": "pointer",
    "pointer_field": "pointer",
    "checksum": "checksum",
    "checksum_field": "checksum",
    "type": "type",
    "type_field": "type",
    "code": "code",
    "code_field": "code",
    "unused": "unused",
    "unused_field": "unused",
    "gateway_internet_address": "gateway_internet_address",
    "originate_timestamp": "originate_timestamp",
    "receive_timestamp": "receive_timestamp",
    "transmit_timestamp": "transmit_timestamp",
    "internet_header": "internet_header",
    "destination_address": "destination_address",
    "addresses": "addresses",
}


class ContextResolver:
    """Resolves LF constants using dynamic context first, then static."""

    def __init__(self, static: StaticContext | None = None) -> None:
        self.static = static or StaticContext()

    def resolve(self, term: str, context: SentenceContext) -> Target:
        """Resolve a term to a target.

        Dynamic resolution: inside a field block, the block's own field (and
        recognizable field names of the current protocol) resolve without
        consulting the static table — this is how "checksum" is unambiguous
        inside the Checksum block but ambiguous in sentence G.
        """
        protocol = context.protocol.lower()
        if context.field:
            if term in (context.field, f"{context.field}_field"):
                return field_target(protocol, context.field)
            if term in _FIELD_SYNONYMS and _FIELD_SYNONYMS[term] == context.field:
                return field_target(protocol, context.field)
        if term in _SELF_REFERENCES:
            return object_target("current_message")
        if term in _FIELD_SYNONYMS and self._is_local_field(term, context):
            return field_target(protocol, _FIELD_SYNONYMS[term])
        return self.static.lookup(term)

    @staticmethod
    def _is_local_field(term: str, context: SentenceContext) -> bool:
        """Inside a message section, bare unambiguous field names like
        "identifier", "code", or "pointer" denote that message's own fields.
        "checksum" is excluded: outside its own field block it is the §4.1
        IP-vs-ICMP ambiguity (sentence G) and must resolve via the static
        table's ambiguity marking."""
        if not context.message:
            return False
        return term not in ("checksum", "checksum_field")

    def resolve_value(self, term: str) -> int | None:
        """A numeric constant, or None when the term is not a number."""
        try:
            return int(term)
        except ValueError:
            return None
