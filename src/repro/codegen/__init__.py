"""Code generation: contexts, predicate handlers, emitters, assembly."""

from .context import (
    AmbiguousReference,
    ContextResolver,
    ResolutionError,
    SentenceContext,
    StaticContext,
    Target,
    UnknownReference,
)
from .emitters import CEmitter, PyEmitter
from .generator import (
    CodeUnit,
    MessageProgram,
    SentenceCode,
    assemble_message_program,
    builder_role,
    function_name,
)
from .handlers import HandlerRegistry, HandlerResult, NonActionable

__all__ = [
    "AmbiguousReference",
    "CEmitter",
    "CodeUnit",
    "ContextResolver",
    "HandlerRegistry",
    "HandlerResult",
    "MessageProgram",
    "NonActionable",
    "PyEmitter",
    "ResolutionError",
    "SentenceCode",
    "SentenceContext",
    "StaticContext",
    "Target",
    "UnknownReference",
    "assemble_message_program",
    "builder_role",
    "function_name",
]
