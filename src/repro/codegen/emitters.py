"""Text backends: render IR as C (the paper's output) or Python (executable).

Both emitters are :class:`~repro.codegen.ir.Backend` subclasses over the
typed IR.  The C backend reproduces the paper's presentation (Table 4:
``hdr->type = 3;``) and is locked byte-for-byte by a golden test on the
ICMP corpus; the Python backend produces the body of a function over a
runtime ``ctx`` object (see `repro.runtime.harness.ExecutionContext`) that
our simulator actually executes for the end-to-end evaluation, and doubles
as an executable backend via ``compile_program`` (``exec`` of the
rendering).  The third backend — the direct IR interpreter that skips the
text stage entirely — lives in :mod:`repro.codegen.interp`.
"""

from __future__ import annotations

from .ir import Backend, Function, Program, register_backend
from .ops import (
    CallProcedure,
    CeaseTransmission,
    Comment,
    ComputeChecksum,
    Condition,
    Conditional,
    CopyData,
    Discard,
    Encapsulate,
    Op,
    PadData,
    QuoteDatagram,
    SelectSession,
    Send,
    SetField,
    SetStateVar,
    SwapFields,
    Value,
)


class Emitter(Backend):
    """Shared text-backend driver: emit a list of ops as indented lines."""

    indent_unit = "    "
    emits_text = True

    def emit_function(self, function: Function) -> str:
        return self.render_function(function.name, function.ops)

    def render_function(self, name: str, ops: list[Op]) -> str:
        raise NotImplementedError

    def emit(self, ops: list[Op], depth: int = 0) -> list[str]:
        lines: list[str] = []
        for op in ops:
            lines.extend(self.emit_op(op, depth))
        return lines

    def emit_op(self, op: Op, depth: int) -> list[str]:
        method = getattr(self, f"_emit_{type(op).__name__.lower()}", None)
        if method is None:
            raise NotImplementedError(f"no emitter for {type(op).__name__}")
        return method(op, depth)

    def _pad(self, depth: int, text: str) -> str:
        return f"{self.indent_unit * depth}{text}"


@register_backend
class CEmitter(Emitter):
    """Renders ops as C statements against a ``hdr``/``ip`` struct API."""

    name = "c"

    @staticmethod
    def _ref(protocol: str, name: str) -> str:
        owner = "ip" if protocol == "ip" else "hdr"
        return f"{owner}->{name}"

    def _value(self, value: Value) -> str:
        if value.kind == "const":
            return str(value.const)
        if value.kind == "param":
            return f"params.{value.name}"
        if value.kind == "request_field":
            owner = "req_ip" if value.protocol == "ip" else "req"
            return f"{owner}->{value.name}"
        if value.kind == "clock":
            return "clock_ms()"
        if value.kind == "statevar":
            return value.name.replace(".", "_")
        if value.kind == "packet_field":
            return f"pkt->{value.name}"
        raise NotImplementedError(value.kind)

    def _emit_setfield(self, op: SetField, depth: int) -> list[str]:
        return [self._pad(depth, f"{self._ref(op.protocol, op.name)} = {self._value(op.value)};")]

    def _emit_swapfields(self, op: SwapFields, depth: int) -> list[str]:
        a = self._ref(op.protocol_a, op.field_a)
        b = self._ref(op.protocol_b, op.field_b)
        return [self._pad(depth, f"swap(&{a}, &{b});")]

    def _emit_copydata(self, op: CopyData, depth: int) -> list[str]:
        return [self._pad(depth, "memcpy(hdr->data, req->data, req_data_len);")]

    def _emit_quotedatagram(self, op: QuoteDatagram, depth: int) -> list[str]:
        return [
            self._pad(depth, "memcpy(hdr->data, req_ip, ihl_bytes(req_ip));"),
            self._pad(depth, "memcpy(hdr->data + ihl_bytes(req_ip), req_ip_payload, 8);"),
        ]

    def _emit_computechecksum(self, op: ComputeChecksum, depth: int) -> list[str]:
        ref = self._ref(op.protocol, op.name)
        return [
            self._pad(depth, f"{ref} = 0;"),
            self._pad(
                depth,
                f"{ref} = {op.function}((uint8_t *)&hdr->{op.range_start}, "
                f"message_len_from(hdr, &hdr->{op.range_start}));",
            ),
        ]

    def _emit_paddata(self, op: PadData, depth: int) -> list[str]:
        return [self._pad(depth, "/* odd-length data padded with one zero octet for checksumming */")]

    def _emit_conditional(self, op: Conditional, depth: int) -> list[str]:
        lines = [self._pad(depth, f"if ({self._condition(op.condition)}) {{")]
        lines.extend(self.emit(op.body, depth + 1))
        lines.append(self._pad(depth, "}"))
        return lines

    def _condition(self, condition: Condition) -> str:
        if condition.kind == "field_equals":
            comparison = "!=" if condition.negated else "=="
            return f"{self._ref(condition.protocol, condition.name)} {comparison} {condition.value}"
        if condition.kind == "field_odd":
            return f"{self._ref(condition.protocol, condition.name)} % 2 == 1"
        if condition.kind == "field_ge":
            return f"{condition.name} >= {condition.other}"
        if condition.kind == "statevar_equals":
            reference = condition.name.replace(".", "_")
            comparison = "!=" if condition.negated else "=="
            value = condition.other or condition.value
            return f"{reference} {comparison} {value}"
        if condition.kind == "mode_in":
            return " || ".join(condition.modes)
        if condition.kind == "not_found":
            return "session == NULL"
        if condition.kind == "packet_field_is":
            comparison = "!=" if condition.negated else "=="
            value = condition.other.upper() if condition.other else condition.value
            return f"pkt->{condition.name} {comparison} {value}"
        if condition.kind == "packet_field_nonzero":
            return f"pkt->{condition.name} != 0"
        raise NotImplementedError(condition.kind)

    def _emit_setstatevar(self, op: SetStateVar, depth: int) -> list[str]:
        return [self._pad(depth, f"{op.name.replace('.', '_')} = {self._value(op.value)};")]

    def _emit_callprocedure(self, op: CallProcedure, depth: int) -> list[str]:
        return [self._pad(depth, f"{op.name}();")]

    def _emit_send(self, op: Send, depth: int) -> list[str]:
        destination = op.destination or "destination"
        return [self._pad(depth, f"send_message({op.message}, {destination});")]

    def _emit_encapsulate(self, op: Encapsulate, depth: int) -> list[str]:
        return [self._pad(depth, f"encapsulate_{op.outer}(hdr);")]

    def _emit_selectsession(self, op: SelectSession, depth: int) -> list[str]:
        return [self._pad(depth, f"session = select_session(pkt->{op.discriminator_field});")]

    def _emit_discard(self, op: Discard, depth: int) -> list[str]:
        return [self._pad(depth, "discard_packet(); return;")]

    def _emit_ceasetransmission(self, op: CeaseTransmission, depth: int) -> list[str]:
        return [self._pad(depth, "cease_periodic_transmission();")]

    def _emit_comment(self, op: Comment, depth: int) -> list[str]:
        return [self._pad(depth, f"/* {op.text} */")]

    def render_function(self, name: str, ops: list[Op]) -> str:
        lines = [f"void {name}(struct icmp_hdr *hdr, struct ip_hdr *ip) {{"]
        lines.extend(self.emit(ops, 1))
        lines.append("}")
        return "\n".join(lines)

    def emit_program(self, program: Program) -> str:
        parts = [program.struct_c] if program.struct_c else []
        parts.extend(self.emit_function(function) for function in program.programs)
        return "\n\n".join(parts)


@register_backend
class PyEmitter(Emitter):
    """Renders ops as Python statements over a runtime ``ctx`` object."""

    name = "python"
    executable = True

    @staticmethod
    def compile_source(python_source: str) -> dict[str, object]:
        """``exec`` generated source; returns the defined builder functions.

        The single home of the exec-and-filter rule — the runtime's
        ``load_functions`` delegates here so the program path and the bare
        source path can never diverge."""
        namespace: dict[str, object] = {}
        exec(compile(python_source, "<sage-generated>", "exec"), namespace)
        return {
            name: value
            for name, value in namespace.items()
            if callable(value) and not name.startswith("__")
        }

    def compile_program(self, program: Program) -> dict[str, object]:
        return self.compile_source(self.emit_program(program))

    def _value(self, value: Value) -> str:
        if value.kind == "const":
            return str(value.const)
        if value.kind == "param":
            return f"ctx.param({value.name!r})"
        if value.kind == "request_field":
            return f"ctx.request_field({value.protocol!r}, {value.name!r})"
        if value.kind == "clock":
            return "ctx.clock_ms()"
        if value.kind == "statevar":
            return f"ctx.state_get({value.name!r})"
        if value.kind == "packet_field":
            return f"ctx.packet_field({value.name!r})"
        raise NotImplementedError(value.kind)

    def _emit_setfield(self, op: SetField, depth: int) -> list[str]:
        return [self._pad(
            depth,
            f"ctx.set_field({op.protocol!r}, {op.name!r}, {self._value(op.value)})",
        )]

    def _emit_swapfields(self, op: SwapFields, depth: int) -> list[str]:
        return [self._pad(
            depth,
            f"ctx.swap_fields({op.protocol_a!r}, {op.field_a!r}, "
            f"{op.protocol_b!r}, {op.field_b!r})",
        )]

    def _emit_copydata(self, op: CopyData, depth: int) -> list[str]:
        return [self._pad(depth, "ctx.copy_data()")]

    def _emit_quotedatagram(self, op: QuoteDatagram, depth: int) -> list[str]:
        return [self._pad(depth, "ctx.quote_datagram()")]

    def _emit_computechecksum(self, op: ComputeChecksum, depth: int) -> list[str]:
        return [self._pad(
            depth,
            f"ctx.compute_checksum({op.protocol!r}, {op.name!r}, "
            f"start={op.range_start!r})",
        )]

    def _emit_paddata(self, op: PadData, depth: int) -> list[str]:
        return [self._pad(depth, "ctx.pad_for_checksum()")]

    def _emit_conditional(self, op: Conditional, depth: int) -> list[str]:
        lines = [self._pad(depth, f"if {self._condition(op.condition)}:")]
        body = self.emit(op.body, depth + 1)
        lines.extend(body or [self._pad(depth + 1, "pass")])
        return lines

    def _condition(self, condition: Condition) -> str:
        if condition.kind == "field_equals":
            comparison = "!=" if condition.negated else "=="
            return (f"ctx.get_field({condition.protocol!r}, {condition.name!r}) "
                    f"{comparison} {condition.value}")
        if condition.kind == "field_odd":
            return f"ctx.get_field({condition.protocol!r}, {condition.name!r}) % 2 == 1"
        if condition.kind == "field_ge":
            return f"ctx.variable({condition.name!r}) >= ctx.variable({condition.other!r})"
        if condition.kind == "statevar_equals":
            comparison = "!=" if condition.negated else "=="
            value = repr(condition.other) if condition.other else condition.value
            return f"ctx.state_get({condition.name!r}) {comparison} {value}"
        if condition.kind == "mode_in":
            return f"ctx.mode_in({condition.modes!r})"
        if condition.kind == "not_found":
            return "not ctx.session_found()"
        if condition.kind == "packet_field_is":
            value = repr(condition.other) if condition.other else condition.value
            comparison = "!=" if condition.negated else "=="
            return f"ctx.packet_field({condition.name!r}) {comparison} {value}"
        if condition.kind == "packet_field_nonzero":
            return f"ctx.packet_field({condition.name!r}) != 0"
        raise NotImplementedError(condition.kind)

    def _emit_setstatevar(self, op: SetStateVar, depth: int) -> list[str]:
        return [self._pad(depth, f"ctx.state_set({op.name!r}, {self._value(op.value)})")]

    def _emit_callprocedure(self, op: CallProcedure, depth: int) -> list[str]:
        return [self._pad(depth, f"ctx.call_procedure({op.name!r})")]

    def _emit_send(self, op: Send, depth: int) -> list[str]:
        return [self._pad(depth, f"ctx.send({op.message!r}, {op.destination!r})")]

    def _emit_encapsulate(self, op: Encapsulate, depth: int) -> list[str]:
        return [self._pad(depth, f"ctx.encapsulate({op.outer!r})")]

    def _emit_selectsession(self, op: SelectSession, depth: int) -> list[str]:
        return [self._pad(depth, "ctx.select_session()")]

    def _emit_discard(self, op: Discard, depth: int) -> list[str]:
        return [
            self._pad(depth, f"ctx.discard({op.reason!r})"),
            self._pad(depth, "return ctx"),
        ]

    def _emit_ceasetransmission(self, op: CeaseTransmission, depth: int) -> list[str]:
        return [self._pad(depth, "ctx.cease_transmission()")]

    def _emit_comment(self, op: Comment, depth: int) -> list[str]:
        return [self._pad(depth, f"# {op.text}")]

    def render_function(self, name: str, ops: list[Op]) -> str:
        lines = [f"def {name}(ctx):"]
        body = self.emit(ops, 1)
        lines.extend(body or [self._pad(1, "pass")])
        lines.append(self._pad(1, "return ctx"))
        return "\n".join(lines)
