"""The direct IR interpreter backend: execute programs without ``exec()``.

The Python emitter turns IR into source text that the harness compiles with
``exec`` — fine for inspection, but the text round-trip costs a compile per
program and puts arbitrary generated strings through the Python compiler.
:class:`IRInterpreter` skips the text stage: ``compile_program`` returns
closures that walk the typed op tree directly against the same ``ctx``
objects the exec'd code uses (:class:`~repro.runtime.harness.
ExecutionContext` and the state-runtime contexts).  Semantics are locked to
the Python backend by the property tests in ``tests/test_backend_parity.py``
— every op and condition kind dispatches to exactly the ``ctx`` call the
emitted statement would make, including the early ``return ctx`` a
:class:`~repro.codegen.ops.Discard` statement performs.
"""

from __future__ import annotations

from .ir import Backend, Function, Program, register_backend
from .ops import (
    CallProcedure,
    CeaseTransmission,
    Comment,
    ComputeChecksum,
    Condition,
    Conditional,
    CopyData,
    Discard,
    Encapsulate,
    Op,
    PadData,
    QuoteDatagram,
    SelectSession,
    Send,
    SetField,
    SetStateVar,
    SwapFields,
    Value,
)


class _Return(Exception):
    """Unwinds nested conditionals on Discard (the emitted ``return ctx``)."""


def _eval_value(value: Value, ctx) -> object:
    if value.kind == "const":
        return value.const
    if value.kind == "param":
        return ctx.param(value.name)
    if value.kind == "request_field":
        return ctx.request_field(value.protocol, value.name)
    if value.kind == "clock":
        return ctx.clock_ms()
    if value.kind == "statevar":
        return ctx.state_get(value.name)
    if value.kind == "packet_field":
        return ctx.packet_field(value.name)
    raise NotImplementedError(value.kind)


def _eval_condition(condition: Condition, ctx) -> bool:
    if condition.kind == "field_equals":
        equal = ctx.get_field(condition.protocol, condition.name) == condition.value
        return not equal if condition.negated else equal
    if condition.kind == "field_odd":
        return ctx.get_field(condition.protocol, condition.name) % 2 == 1
    if condition.kind == "field_ge":
        return ctx.variable(condition.name) >= ctx.variable(condition.other)
    if condition.kind == "statevar_equals":
        value = condition.other if condition.other else condition.value
        equal = ctx.state_get(condition.name) == value
        return not equal if condition.negated else equal
    if condition.kind == "mode_in":
        return ctx.mode_in(condition.modes)
    if condition.kind == "not_found":
        return not ctx.session_found()
    if condition.kind == "packet_field_is":
        value = condition.other if condition.other else condition.value
        equal = ctx.packet_field(condition.name) == value
        return not equal if condition.negated else equal
    if condition.kind == "packet_field_nonzero":
        return ctx.packet_field(condition.name) != 0
    raise NotImplementedError(condition.kind)


def _execute(op: Op, ctx) -> None:
    if isinstance(op, SetField):
        ctx.set_field(op.protocol, op.name, _eval_value(op.value, ctx))
    elif isinstance(op, SwapFields):
        ctx.swap_fields(op.protocol_a, op.field_a, op.protocol_b, op.field_b)
    elif isinstance(op, CopyData):
        ctx.copy_data()
    elif isinstance(op, QuoteDatagram):
        ctx.quote_datagram()
    elif isinstance(op, ComputeChecksum):
        ctx.compute_checksum(op.protocol, op.name, start=op.range_start)
    elif isinstance(op, PadData):
        ctx.pad_for_checksum()
    elif isinstance(op, Conditional):
        if _eval_condition(op.condition, ctx):
            for inner in op.body:
                _execute(inner, ctx)
    elif isinstance(op, SetStateVar):
        ctx.state_set(op.name, _eval_value(op.value, ctx))
    elif isinstance(op, CallProcedure):
        ctx.call_procedure(op.name)
    elif isinstance(op, Send):
        ctx.send(op.message, op.destination)
    elif isinstance(op, Encapsulate):
        ctx.encapsulate(op.outer)
    elif isinstance(op, SelectSession):
        ctx.select_session()
    elif isinstance(op, Discard):
        ctx.discard(op.reason)
        raise _Return
    elif isinstance(op, CeaseTransmission):
        ctx.cease_transmission()
    elif isinstance(op, Comment):
        pass
    else:
        raise NotImplementedError(f"no interpretation for {type(op).__name__}")


@register_backend
class IRInterpreter(Backend):
    """Executable backend walking the IR directly — no source, no exec."""

    name = "interp"
    emits_text = False
    executable = True

    def compile_function(self, function: Function):
        """A callable with the same ``ctx -> ctx`` contract as exec'd code."""
        ops = list(function.ops)

        def run(ctx):
            try:
                for op in ops:
                    _execute(op, ctx)
            except _Return:
                pass
            return ctx

        run.__name__ = function.name
        run.__qualname__ = function.name
        return run

    def compile_program(self, program: Program) -> dict[str, object]:
        return {
            function.name: self.compile_function(function)
            for function in program.programs
        }
