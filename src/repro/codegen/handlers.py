"""Predicate handler functions: logical forms → operations (§5.2).

The paper: "we defined 25 predicate handler functions to convert LFs to code
snippets" and "sage generates code for a logical form using a post-order
traversal".  Each handler covers one predicate (or one @Action function) and
may recurse into sub-forms.  Failures split two ways:

* :class:`NonActionable` — no handler / unknown term: the sentence carries
  no executable content and is tagged ``@AdvComment`` (iterative discovery,
  §5.2);
* :class:`~repro.codegen.context.AmbiguousReference` — a term with several
  plausible targets: the sentence needs a human rewrite (§2.2: code
  generation "may also uncover ambiguity").
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

from ..ccg.semantics import Call, Const, Sem
from ..lf.predicates import CLAUSE, ConstantClasses
from .context import (
    AmbiguousReference,
    ContextResolver,
    SentenceContext,
    Target,
    UnknownReference,
)
from .ops import (
    CallProcedure,
    CeaseTransmission,
    Comment,
    ComputeChecksum,
    Condition,
    Conditional,
    CopyData,
    Discard,
    Encapsulate,
    Op,
    PadData,
    QuoteDatagram,
    SelectSession,
    Send,
    SetField,
    SetStateVar,
    SwapFields,
    Value,
)


class NonActionable(Exception):
    """The sentence does not describe executable behaviour."""

    def __init__(self, reason: str):
        self.reason = reason
        super().__init__(reason)


@dataclass
class HandlerResult:
    """Ops plus routing metadata accumulated during traversal."""

    ops: list[Op] = dataclass_field(default_factory=list)
    goal_message: str = ""  # from @Goal: route ops to this message's builder

    def symbols(self):
        """The IR symbol table over this sentence's ops (fields, params,
        state variables, procedures the generated snippet references)."""
        from .ir import collect_symbols

        return collect_symbols(self.ops)


class HandlerRegistry:
    """Dispatch table from predicate (and @Action function) to handler."""

    def __init__(self, resolver: ContextResolver | None = None) -> None:
        self.resolver = resolver or ContextResolver()
        self._classes = ConstantClasses()
        self._predicate_handlers = {
            "Is": self._handle_is,
            "May": self._handle_may,
            "If": self._handle_if,
            "And": self._handle_and,
            "Action": self._handle_action,
            "AdvBefore": self._handle_adv_before,
            "Goal": self._handle_goal,
            "StartsWith": self._handle_starts_with_stmt,
            "Reach": self._handle_condition_only,
            "CalledIn": self._handle_called_in,
            "EncapsulatedIn": self._handle_encapsulated_in,
            "Not": self._handle_condition_only,
            "AdvComment": self._handle_comment,
            "ActiveOn": self._handle_nonactionable,
            "Where": self._handle_nonactionable,
        }
        self._action_handlers = {
            "reverse": self._action_reverse,
            "recompute": self._action_compute,
            "compute": self._action_compute,
            "return": self._action_return,
            "zero": self._action_zero,
            "pad": self._action_pad,
            "discard": self._action_discard,
            "send": self._action_send,
            "select": self._action_select,
            "cease": self._action_cease,
            "form": self._action_form,
        }

    def handler_count(self) -> int:
        """The §6.1 accounting: number of registered handler functions."""
        return len(self._predicate_handlers) + len(self._action_handlers)

    # -- entry point ----------------------------------------------------------
    def generate(self, form: Sem, context: SentenceContext) -> HandlerResult:
        if not isinstance(form, Call):
            # A bare NP fragment (field description): "<field> is <expr>".
            if isinstance(form, Const):
                return self._field_fragment(form, context)
            raise NonActionable("logical form is not a predicate application")
        if (
            form.pred in ("Of", "And", "From", "In", "With")
            and context.field
            and self._classes.class_of(form) != CLAUSE
        ):
            return self._field_fragment(form, context)
        handler = self._predicate_handlers.get(form.pred)
        if handler is None:
            raise NonActionable(f"no handler for predicate @{form.pred}")
        return handler(form, context)

    # -- fragments ---------------------------------------------------------------
    def _field_fragment(self, form: Sem, context: SentenceContext) -> HandlerResult:
        """A subject-less field description: treat as field := expression."""
        if self.resolver.static.known(context.field):
            target = self.resolver.static.lookup(context.field)
        else:
            target = Target(kind="field", protocol=context.protocol.lower(),
                            name=context.field)
        ops = self._assign(target, form, context, optional=False)
        return HandlerResult(ops=ops)

    # -- statement handlers ---------------------------------------------------
    def _handle_is(self, call: Call, context: SentenceContext,
                   optional: bool = False) -> HandlerResult:
        target = self._resolve_target(call.args[0], context)
        ops = self._assign(target, call.args[1], context, optional=optional)
        return HandlerResult(ops=ops)

    def _handle_may(self, call: Call, context: SentenceContext) -> HandlerResult:
        inner = call.args[0]
        if isinstance(inner, Call) and inner.pred == "Is":
            # The naive reading of "may be zero": emit the assignment.  The
            # §6.5 under-specification surfaces when unit tests run this on
            # the receiver side.
            return self._handle_is(inner, context, optional=True)
        if isinstance(inner, Call):
            return self.generate(inner, context)
        raise NonActionable("modal clause with no executable body")

    def _handle_if(self, call: Call, context: SentenceContext) -> HandlerResult:
        body = self.generate(call.args[1], context)
        ops = body.ops
        # Conjunctive conditions ("If A, B, and C, ...") nest inside-out.
        for condition_form in reversed(self._condition_list(call.args[0], context)):
            ops = [Conditional(condition=condition_form, body=ops)]
        return HandlerResult(ops=ops, goal_message=body.goal_message)

    def _condition_list(self, form: Sem, context: SentenceContext) -> list[Condition]:
        if isinstance(form, Call) and form.pred == "And":
            conditions: list[Condition] = []
            for arg in form.args:
                conditions.extend(self._condition_list(arg, context))
            return conditions
        return [self._condition(form, context)]

    def _handle_and(self, call: Call, context: SentenceContext) -> HandlerResult:
        result = HandlerResult()
        for arg in call.args:
            if not isinstance(arg, Call):
                raise NonActionable("coordinated non-clause at statement level")
            sub = self.generate(arg, context)
            result.ops.extend(sub.ops)
            result.goal_message = result.goal_message or sub.goal_message
        return result

    def _handle_adv_before(self, call: Call, context: SentenceContext) -> HandlerResult:
        """Advice: main-clause ops must precede the advised function."""
        advice, main = call.args[0], call.args[1]
        advised_function = self._advised_function(advice, context)
        result = self.generate(main, context)
        for op in result.ops:
            op.advice_before = advised_function
        return result

    def _advised_function(self, advice: Sem, context: SentenceContext) -> str:
        if isinstance(advice, Call) and advice.pred == "Action":
            name = advice.args[0]
            if isinstance(name, Const) and name.value in ("compute", "recompute"):
                return "compute_checksum"
            if isinstance(name, Const):
                return name.value
        raise NonActionable("advice does not name a known function")

    def _handle_goal(self, call: Call, context: SentenceContext) -> HandlerResult:
        goal, body = call.args[0], call.args[1]
        message = ""
        if isinstance(goal, Call) and goal.pred == "Action":
            if len(goal.args) >= 2 and isinstance(goal.args[1], Const):
                message = goal.args[1].value
        result = self.generate(body, context)
        result.goal_message = message
        return result

    def _handle_starts_with_stmt(self, call: Call, context: SentenceContext) -> HandlerResult:
        """@StartsWith at statement level: a checksum-range statement."""
        inner, anchor = call.args[0], call.args[1]
        if isinstance(inner, Call) and inner.pred == "Is":
            target = self._resolve_target(inner.args[0], context)
            anchor_name = self._anchor_field(anchor)
            op = ComputeChecksum(
                protocol=target.protocol, name=target.name,
                function="internet_checksum", range_start=anchor_name,
            )
            return HandlerResult(ops=[op])
        raise NonActionable("range anchor on a non-assignment")

    def _handle_called_in(self, call: Call, context: SentenceContext) -> HandlerResult:
        procedure, modes_form = call.args[0], call.args[1]
        if not isinstance(procedure, Const):
            raise NonActionable("procedure reference is not a constant")
        modes = tuple(
            const.value for const in _iter_const_leaves(modes_form)
        )
        body = [CallProcedure(name=procedure.value)]
        # RFC 1059 clarifies elsewhere that the mode conjunction is an OR
        # (Table 11 discussion).
        op = Conditional(condition=Condition(kind="mode_in", modes=modes), body=body)
        return HandlerResult(ops=[op])

    def _handle_encapsulated_in(self, call: Call, context: SentenceContext) -> HandlerResult:
        outer = call.args[1]
        outer_name = outer.value if isinstance(outer, Const) else "udp"
        if "udp" in outer_name:
            outer_name = "udp"
        return HandlerResult(ops=[Encapsulate(outer=outer_name)])

    def _handle_condition_only(self, call: Call, context: SentenceContext) -> HandlerResult:
        raise NonActionable(f"@{call.pred} outside a conditional")

    def _handle_comment(self, call: Call, context: SentenceContext) -> HandlerResult:
        text = call.args[0].value if call.args and isinstance(call.args[0], Const) else ""
        return HandlerResult(ops=[Comment(text=text)])

    def _handle_nonactionable(self, call: Call, context: SentenceContext) -> HandlerResult:
        raise NonActionable(f"@{call.pred} has no executable interpretation")

    # -- action handlers --------------------------------------------------------
    def _handle_action(self, call: Call, context: SentenceContext) -> HandlerResult:
        name_arg = call.args[0]
        if not isinstance(name_arg, Const):
            raise NonActionable("action name is not a constant")
        handler = self._action_handlers.get(name_arg.value)
        if handler is None:
            raise NonActionable(f"no handler for action {name_arg.value!r}")
        return handler(call, context)

    def _action_reverse(self, call: Call, context: SentenceContext) -> HandlerResult:
        operand = call.args[1] if len(call.args) > 1 else None
        if isinstance(operand, Call) and operand.pred == "And" and len(operand.args) == 2:
            target_a = self._resolve_target(operand.args[0], context)
            target_b = self._resolve_target(operand.args[1], context)
            if target_a.kind == target_b.kind == "field":
                return HandlerResult(ops=[SwapFields(
                    target_a.protocol, target_a.name,
                    target_b.protocol, target_b.name,
                )])
        if operand is not None:
            target = self._resolve_target(operand, context)
            if target.kind == "field":
                raise NonActionable("cannot reverse a single field")
        raise NonActionable("reverse with unrecognized operands")

    def _action_compute(self, call: Call, context: SentenceContext) -> HandlerResult:
        operand = call.args[1] if len(call.args) > 1 else None
        if operand is None:
            raise NonActionable("compute with no operand")
        target = self._resolve_target(operand, context)
        if target.kind != "field":
            raise NonActionable(f"cannot compute {target}")
        return HandlerResult(ops=[ComputeChecksum(
            protocol=target.protocol, name=target.name,
            function="internet_checksum",
        )])

    def _action_return(self, call: Call, context: SentenceContext) -> HandlerResult:
        operand = call.args[1] if len(call.args) > 1 else None
        # "The data received in the echo message must be returned in the
        # echo reply message" → copy the request payload.
        if isinstance(operand, Call) and operand.pred in ("From", "In"):
            head = operand.args[0]
            if isinstance(head, Const) and head.value in ("data", "echo_message_data"):
                return HandlerResult(ops=[CopyData()])
        # "returns the <field> of the request" → echo a header field.
        if isinstance(operand, Call) and operand.pred == "Of":
            target = self._resolve_target(operand.args[0], context)
            if target.kind == "field":
                value = Value.request_field(target.protocol, target.name)
                return HandlerResult(ops=[SetField(target.protocol, target.name, value)])
        if isinstance(operand, Const) and operand.value == "data":
            return HandlerResult(ops=[CopyData()])
        raise NonActionable("return with unrecognized operand")

    def _action_zero(self, call: Call, context: SentenceContext) -> HandlerResult:
        operand = call.args[1] if len(call.args) > 1 else None
        if operand is None:
            raise NonActionable("zero with no operand")
        target = self._resolve_target(operand, context)
        if target.kind != "field":
            raise NonActionable(f"cannot zero {target}")
        return HandlerResult(ops=[SetField(target.protocol, target.name, Value.constant(0))])

    def _action_pad(self, call: Call, context: SentenceContext) -> HandlerResult:
        return HandlerResult(ops=[PadData()])

    def _action_discard(self, call: Call, context: SentenceContext) -> HandlerResult:
        operand = call.args[1] if len(call.args) > 1 else None
        reason = operand.value if isinstance(operand, Const) else ""
        return HandlerResult(ops=[Discard(reason=reason)])

    def _action_send(self, call: Call, context: SentenceContext) -> HandlerResult:
        operand = call.args[1] if len(call.args) > 1 else None
        destination = call.args[2] if len(call.args) > 2 else None
        if not isinstance(operand, Const):
            raise NonActionable("send with a non-constant message")
        message = operand.value
        dest_name = ""
        if destination is not None:
            dest_target = self._resolve_target(destination, context)
            dest_name = dest_target.name
        if context.protocol.upper() in ("IGMP", "NTP") or dest_name:
            return HandlerResult(ops=[Send(message=message, destination=dest_name)])
        raise NonActionable("send described behaviour, not construction")

    def _action_select(self, call: Call, context: SentenceContext) -> HandlerResult:
        return HandlerResult(ops=[SelectSession()])

    def _action_cease(self, call: Call, context: SentenceContext) -> HandlerResult:
        return HandlerResult(ops=[CeaseTransmission()])

    def _action_form(self, call: Call, context: SentenceContext) -> HandlerResult:
        # "form a message" on its own carries no field operations.
        raise NonActionable("form without a body clause")

    # -- shared pieces ---------------------------------------------------------
    def _assign(self, target: Target, value_form: Sem,
                context: SentenceContext, optional: bool) -> list[Op]:
        # "internet header plus first 64 bits of original datagram's data":
        # the quoted-datagram idiom (checked before target-kind gating, the
        # target here is the payload-carrying pseudo-field).
        if isinstance(value_form, Call) and value_form.pred == "And":
            names = {c.value for c in _iter_const_leaves(value_form)}
            if "internet_header" in names and any("64" in n for n in names):
                return [QuoteDatagram()]
        if target.kind == "statevar":
            return [SetStateVar(name=target.name, value=self._value(value_form, context))]
        if target.kind == "object" and target.name == "data":
            # "the data [is set to] the data of the request": the echo copy.
            if isinstance(value_form, Call) and value_form.pred == "Of":
                leaves = [c.value for c in _iter_const_leaves(value_form)]
                if "data" in leaves:
                    return [CopyData()]
            raise NonActionable("unrecognized data assignment")
        if target.kind == "object" and target.name in ("reply", "current_message"):
            raise NonActionable("assignment to a whole message")
        if target.kind != "field":
            raise NonActionable(f"cannot assign to {target}")
        # Checksum-range expression on the RHS (sentence H).
        if isinstance(value_form, Call) and value_form.pred == "StartsWith":
            anchor_name = self._anchor_field(value_form.args[1])
            return [ComputeChecksum(
                protocol=target.protocol, name=target.name,
                function="internet_checksum", range_start=anchor_name,
            )]
        value = self._value(value_form, context)
        return [SetField(target.protocol, target.name, value, optional=optional)]

    def _value(self, form: Sem, context: SentenceContext) -> Value:
        if isinstance(form, Const):
            numeric = self.resolver.resolve_value(form.value)
            if numeric is not None:
                return Value.constant(numeric)
            if form.value in _PACKET_FIELD_TERMS:
                return Value.packet_field(_PACKET_FIELD_TERMS[form.value])
            if form.value in _STATE_NAME_VALUES:
                return Value.constant(_STATE_NAME_VALUES[form.value])
            target = self.resolver.resolve(form.value, context)
            return self._value_from_target(target, form.value)
        if isinstance(form, Call) and form.pred == "Of":
            head, owner = form.args[0], form.args[-1]
            # "the value of X" wraps X without changing it.
            if isinstance(head, Const) and head.value in ("value", "values"):
                return self._value(form.args[-1], context)
            if isinstance(head, Const):
                head_target = self._try_resolve(head.value, context)
                if head_target is not None and head_target.kind == "field":
                    owner_name = owner.value if isinstance(owner, Const) else ""
                    if owner_name in ("request", "echo_message", "request_message",
                                      "original_datagram", "timestamp_message"):
                        return Value.request_field(head_target.protocol, head_target.name)
                if head_target is not None and head_target.kind == "param":
                    return Value.param(head_target.name)
            # "the value of My Discriminator" (BFD packet field).
            names = [c.value for c in _iter_const_leaves(form)]
            for name in names:
                if name.startswith("my_discriminator"):
                    return Value.packet_field("my_discriminator")
        if isinstance(form, Call) and form.pred == "Where":
            head = form.args[0]
            if isinstance(head, Const):
                target = self.resolver.resolve(head.value, context)
                if target.kind == "param":
                    return Value.param(target.name)
        if isinstance(form, Call) and form.pred in ("From", "In"):
            # "the source network and address from the original datagram's
            # data": an error message is addressed back to the offender's
            # source address.
            owner = form.args[-1]
            owner_name = owner.value if isinstance(owner, Const) else ""
            heads = " ".join(c.value for c in _iter_const_leaves(form.args[0]))
            if "original" in owner_name and (
                "address" in heads or "source_network" in heads
            ):
                return Value.request_field("ip", "src")
        raise NonActionable(f"cannot evaluate value expression {form}")

    @staticmethod
    def _value_from_target(target: Target, term: str) -> Value:
        if target.kind == "param":
            return Value.param(target.name)
        if target.kind == "field":
            return Value.request_field(target.protocol, target.name)
        if target.kind == "object" and target.name == "current_message":
            raise NonActionable("self-reference has no value")
        if target.kind == "function" and target.name == "clock":
            return Value.clock()
        raise NonActionable(f"term {term!r} is not a value")

    def _resolve_target(self, form: Sem, context: SentenceContext) -> Target:
        if isinstance(form, Const):
            if "." in form.value and not form.value.replace(".", "").isdigit():
                return Target(kind="statevar", name=form.value)
            return self.resolver.resolve(form.value, context)
        if isinstance(form, Call) and form.pred == "Of":
            # "<field> of <message>": the field is the assignment target.
            head = form.args[0]
            if isinstance(head, Const):
                return self._resolve_target(head, context)
        if isinstance(form, Call) and form.pred in ("In", "From", "With"):
            return self._resolve_target(form.args[0], context)
        raise NonActionable(f"cannot resolve assignment target {form}")

    def _try_resolve(self, term: str, context: SentenceContext) -> Target | None:
        try:
            return self.resolver.resolve(term, context)
        except AmbiguousReference:
            raise
        except UnknownReference:
            return None

    @staticmethod
    def _anchor_field(anchor: Sem) -> str:
        if isinstance(anchor, Const):
            name = anchor.value
            return name.removeprefix("icmp_").removesuffix("_field") or "type"
        return "type"

    # -- conditions ------------------------------------------------------------
    def _condition(self, form: Sem, context: SentenceContext) -> Condition:
        if not isinstance(form, Call):
            raise NonActionable("condition is not a clause")
        if form.pred == "Is":
            lhs = form.args[0]
            # Received-packet field tests: "the received state is Down".
            if isinstance(lhs, Const) and lhs.value in _PACKET_FIELD_TERMS:
                rhs = form.args[1]
                rhs_value = rhs.value if isinstance(rhs, Const) else ""
                if rhs_value == "nonzero":
                    return Condition(kind="packet_field_nonzero",
                                     name=_PACKET_FIELD_TERMS[lhs.value])
                numeric = self.resolver.resolve_value(rhs_value)
                if numeric is not None:
                    return Condition(kind="packet_field_is",
                                     name=_PACKET_FIELD_TERMS[lhs.value],
                                     value=numeric)
                return Condition(kind="packet_field_is",
                                 name=_PACKET_FIELD_TERMS[lhs.value],
                                 other=rhs_value)
            target = self._resolve_target(form.args[0], context)
            rhs = form.args[1]
            if isinstance(rhs, Const):
                if rhs.value == "odd":
                    return Condition(kind="field_odd", protocol=target.protocol,
                                     name=target.name)
                if rhs.value == "nonzero":
                    if target.kind == "statevar":
                        return Condition(kind="statevar_equals", name=target.name,
                                         value=0, negated=True)
                    return Condition(kind="field_equals", protocol=target.protocol,
                                     name=target.name, value=0, negated=True)
                numeric = self.resolver.resolve_value(rhs.value)
                if numeric is not None:
                    if target.kind == "statevar":
                        return Condition(kind="statevar_equals", name=target.name,
                                         value=numeric)
                    return Condition(kind="field_equals", protocol=target.protocol,
                                     name=target.name, value=numeric)
                if target.kind == "statevar":
                    return Condition(kind="statevar_equals", name=target.name,
                                     other=rhs.value)
            raise NonActionable("unrecognized equality condition")
        if form.pred == "Reach":
            lhs, rhs = form.args[0], form.args[1]
            lhs_name = lhs.value if isinstance(lhs, Const) else ""
            rhs_names = [c.value for c in _iter_const_leaves(rhs)]
            rhs_name = rhs_names[-1] if rhs_names else ""
            return Condition(kind="field_ge", name=lhs_name, other=rhs_name)
        if form.pred == "Action":
            # "no session is found" parses as find(@Not(session)); only the
            # session-lookup reading is a testable condition.
            action = form.args[0]
            if isinstance(action, Const) and action.value == "find":
                leaves = [c.value for c in _iter_const_leaves(form)]
                negated_operand = any(
                    isinstance(arg, Call) and arg.pred == "Not" for arg in form.args[1:]
                )
                if negated_operand and "session" in leaves:
                    return Condition(kind="not_found")
            raise NonActionable("action used as a condition")
        if form.pred == "Not":
            inner = form.args[0]
            if isinstance(inner, Call) and inner.pred == "Action":
                action = inner.args[0]
                if isinstance(action, Const) and action.value == "find":
                    return Condition(kind="not_found")
            inner_condition = self._condition(inner, context)
            return Condition(**{**inner_condition.__dict__,
                                "negated": not inner_condition.negated})
        if form.pred == "And":
            # Conjunctive conditions are handled by nesting at the caller;
            # here we only support the BFD two-term pattern via the first.
            raise NonActionable("conjunctive condition not supported here")
        raise NonActionable(f"@{form.pred} is not a condition")


def _iter_const_leaves(form: Sem):
    if isinstance(form, Const):
        yield form
    elif isinstance(form, Call):
        for arg in form.args:
            yield from _iter_const_leaves(arg)


# RFC 5880 session-state names → State field values.
_STATE_NAME_VALUES = {"admindown": 0, "down": 1, "init": 2, "up": 3}


# BFD terms denoting fields of the packet under reception (§6.8.6).
_PACKET_FIELD_TERMS = {
    "my_discriminator": "my_discriminator",
    "my_discriminator_field": "my_discriminator",
    "your_discriminator": "your_discriminator",
    "your_discriminator_field": "your_discriminator",
    "received_state": "state",
    "state_field": "state",
    "demand_bit": "demand",
    "detect_mult": "detect_mult",
    "detect_mult_field": "detect_mult",
    "multipoint_bit": "multipoint",
    "version_number": "version",
    "length_field": "length",
    "required_min_rx_interval": "required_min_rx_interval",
}
