"""The primitive operations generated code is assembled from.

Predicate handlers translate logical forms into these ops; the C and Python
emitters render them; the runtime executes the Python rendering against the
static framework.  Keeping an op layer between LFs and text is what lets one
handler registry serve both the display backend (the paper shows C) and the
executable backend (our simulator runs Python).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field


# -- value expressions ---------------------------------------------------------

@dataclass(frozen=True)
class Value:
    """Right-hand sides: constants, scenario params, request fields, etc."""

    kind: str  # const | param | request_field | clock | statevar | packet_field
    const: int = 0
    name: str = ""
    protocol: str = ""

    @staticmethod
    def constant(value: int) -> "Value":
        return Value(kind="const", const=value)

    @staticmethod
    def param(name: str) -> "Value":
        return Value(kind="param", name=name)

    @staticmethod
    def request_field(protocol: str, name: str) -> "Value":
        return Value(kind="request_field", protocol=protocol, name=name)

    @staticmethod
    def clock() -> "Value":
        return Value(kind="clock")

    @staticmethod
    def statevar(name: str) -> "Value":
        return Value(kind="statevar", name=name)

    @staticmethod
    def packet_field(name: str) -> "Value":
        return Value(kind="packet_field", name=name)


# -- conditions ------------------------------------------------------------------

@dataclass(frozen=True)
class Condition:
    """Guards for conditional ops."""

    kind: str  # field_equals | field_ge | statevar_equals | mode_in | not_found | packet_field_nonzero
    protocol: str = ""
    name: str = ""
    value: int = 0
    other: str = ""
    modes: tuple[str, ...] = ()
    negated: bool = False


# -- operations -------------------------------------------------------------------

class Op:
    """Base class; concrete ops below are plain data."""

    advice_before: str | None = None  # function tag this op must precede


@dataclass
class SetField(Op):
    protocol: str
    name: str
    value: Value
    optional: bool = False  # from @May: the spec says "may"
    advice_before: str | None = None


@dataclass
class SwapFields(Op):
    protocol_a: str
    field_a: str
    protocol_b: str
    field_b: str
    advice_before: str | None = None


@dataclass
class CopyData(Op):
    """Copy the request's payload into the reply (echo semantics)."""

    advice_before: str | None = None


@dataclass
class QuoteDatagram(Op):
    """Internet header + 64 bits of the original datagram into the payload."""

    advice_before: str | None = None


@dataclass
class ComputeChecksum(Op):
    protocol: str
    name: str
    function: str  # framework function, e.g. internet_checksum
    range_start: str = "type"  # field the coverage starts at
    range_end: str = "end"  # "end" = end of message (the correct reading)
    advice_before: str | None = None


@dataclass
class PadData(Op):
    """Checksum padding note: coverage pads odd-length data with a zero
    octet; the framework checksum already does this, so execution is a
    no-op, but the op stays in the listing (and the C rendering)."""

    advice_before: str | None = None


@dataclass
class Conditional(Op):
    condition: Condition
    body: list[Op] = dataclass_field(default_factory=list)
    advice_before: str | None = None


@dataclass
class SetStateVar(Op):
    name: str  # e.g. bfd.RemoteDiscr
    value: Value
    advice_before: str | None = None


@dataclass
class CallProcedure(Op):
    name: str  # e.g. timeout_procedure
    advice_before: str | None = None


@dataclass
class Send(Op):
    message: str
    destination: str = ""
    advice_before: str | None = None


@dataclass
class Encapsulate(Op):
    """Wrap the message in a lower-layer datagram (NTP-in-UDP)."""

    outer: str = "udp"
    advice_before: str | None = None


@dataclass
class SelectSession(Op):
    discriminator_field: str = "your_discriminator"
    advice_before: str | None = None


@dataclass
class Discard(Op):
    reason: str = ""
    advice_before: str | None = None


@dataclass
class CeaseTransmission(Op):
    what: str = "periodic_transmission"
    advice_before: str | None = None


@dataclass
class Comment(Op):
    """A non-actionable sentence carried as a comment (@AdvComment)."""

    text: str
    advice_before: str | None = None
