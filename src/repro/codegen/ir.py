"""The typed codegen IR: programs, functions, passes, and backends (§5.2).

Between the predicate handlers (logical forms → ops) and the rendered code
sits a typed intermediate representation:

* :class:`Program` — everything generated for one protocol: the struct
  declaration plus one :class:`Function` per (message, role) builder, with a
  collision guard on function names;
* :class:`Function` — one builder: ops plus the routing metadata (protocol,
  message, role) that names it, a derived :class:`SymbolTable`, and a
  content fingerprint for compiled-program caching;
* :class:`SentenceCode` — one sentence's ops plus the goal-message/role
  routing that decides which builders receive them;
* **passes** — the small optimizing/normalizing pipeline every function
  runs through during assembly (:data:`DEFAULT_PASSES`): checksum
  finalization, advice placement, and set-field dedupe — the paper's code
  order discussion (§5.2) as explicit, testable objects;
* :class:`Backend` — the pluggable rendering/execution interface.  The C
  and Python emitters subclass it (``repro.codegen.emitters``), as does the
  direct IR interpreter (``repro.codegen.interp``); :func:`register_backend`
  / :func:`get_backend` make adding a fourth a self-contained module.

Keeping the IR typed (dataclass ops, enumerated value/condition kinds) is
what lets :func:`validate_function` reject malformed programs *before* a
backend sees them, and what makes the interpreter backend possible at all —
it executes the ops directly against an execution context, no ``exec()``.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field as dataclass_field

from .ops import (
    CallProcedure,
    CeaseTransmission,
    Comment,
    ComputeChecksum,
    Condition,
    Conditional,
    CopyData,
    Discard,
    Encapsulate,
    Op,
    PadData,
    QuoteDatagram,
    SelectSession,
    Send,
    SetField,
    SetStateVar,
    SwapFields,
    Value,
)

#: Every op node type a well-formed function may contain.
OP_TYPES: tuple[type, ...] = (
    SetField, SwapFields, CopyData, QuoteDatagram, ComputeChecksum, PadData,
    Conditional, SetStateVar, CallProcedure, Send, Encapsulate,
    SelectSession, Discard, CeaseTransmission, Comment,
)

#: The value-expression kinds backends must understand.
VALUE_KINDS = frozenset(
    {"const", "param", "request_field", "clock", "statevar", "packet_field"}
)

#: The condition kinds backends must understand.
CONDITION_KINDS = frozenset({
    "field_equals", "field_odd", "field_ge", "statevar_equals", "mode_in",
    "not_found", "packet_field_is", "packet_field_nonzero",
})


class IRError(Exception):
    """Base class for IR-layer failures."""


class IRValidationError(IRError):
    """A function contains an op, value, or condition no backend knows."""


class FingerprintMismatch(IRError):
    """A deserialized function/program's recorded content SHA-1 does not
    match the rebuilt IR — the artifact was corrupted or hand-edited."""

    def __init__(self, where: str, recorded: str, computed: str):
        self.where = where
        self.recorded = recorded
        self.computed = computed
        super().__init__(
            f"{where}: recorded fingerprint {recorded} does not match the "
            f"deserialized IR ({computed})"
        )


class FunctionNameCollision(IRError):
    """Two messages slug to the same builder name (they would silently
    merge into one function; the spec author must rename one)."""

    def __init__(self, name: str, existing_message: str, new_message: str):
        self.name = name
        self.existing_message = existing_message
        self.new_message = new_message
        super().__init__(
            f"function name {name!r} generated for both message "
            f"{existing_message!r} and message {new_message!r}; "
            "rename one message (slugs collide)"
        )


def function_name(protocol: str, message_name: str, role: str) -> str:
    """The unique builder name (paper: "based on the protocol, the message
    type, and the role")."""
    slug = re.sub(r"[^a-z0-9]+", "_", message_name.lower()).strip("_")
    return f"{protocol.lower()}_{slug}_{role}"


# -- routing metadata ----------------------------------------------------------

@dataclass
class SentenceCode:
    """One sentence's generated ops plus routing metadata."""

    sentence: str
    ops: list[Op] = dataclass_field(default_factory=list)
    goal_message: str = ""  # "" = applies to every message in its section
    role: str = ""  # "" = applies to both roles
    status: str = "ok"  # ok | non-actionable | ambiguous
    reason: str = ""


def goal_matches(goal_message: str, message_name: str) -> bool:
    """"echo_reply_message" (an LF constant) matches "echo reply"."""
    if not goal_message:
        return True
    normalized = goal_message.replace("_", " ").removesuffix(" message").strip()
    return normalized == message_name


# -- symbol tables -------------------------------------------------------------

@dataclass(frozen=True)
class SymbolTable:
    """Everything a function references, by category.

    Backends use this to know what a builder touches without walking ops
    (the C backend could emit declarations from it; the harness uses it in
    tests to assert generated BFD code only touches BFD state).
    """

    fields: frozenset[tuple[str, str]] = frozenset()  # (protocol, name)
    params: frozenset[str] = frozenset()
    state_vars: frozenset[str] = frozenset()
    packet_fields: frozenset[str] = frozenset()
    procedures: frozenset[str] = frozenset()
    messages: frozenset[str] = frozenset()  # @Send targets


def collect_symbols(ops: list[Op]) -> SymbolTable:
    """Walk ``ops`` (recursing into conditionals) and build the table."""
    fields: set[tuple[str, str]] = set()
    params: set[str] = set()
    state_vars: set[str] = set()
    packet_fields: set[str] = set()
    procedures: set[str] = set()
    messages: set[str] = set()

    def visit_value(value: Value) -> None:
        if value.kind == "param":
            params.add(value.name)
        elif value.kind == "request_field":
            fields.add((value.protocol, value.name))
        elif value.kind == "statevar":
            state_vars.add(value.name)
        elif value.kind == "packet_field":
            packet_fields.add(value.name)

    def visit_condition(condition: Condition) -> None:
        if condition.kind in ("field_equals", "field_odd"):
            fields.add((condition.protocol, condition.name))
        elif condition.kind == "statevar_equals":
            state_vars.add(condition.name)
        elif condition.kind in ("packet_field_is", "packet_field_nonzero"):
            packet_fields.add(condition.name)

    def visit(op: Op) -> None:
        if isinstance(op, SetField):
            fields.add((op.protocol, op.name))
            visit_value(op.value)
        elif isinstance(op, SwapFields):
            fields.add((op.protocol_a, op.field_a))
            fields.add((op.protocol_b, op.field_b))
        elif isinstance(op, ComputeChecksum):
            fields.add((op.protocol, op.name))
        elif isinstance(op, SetStateVar):
            state_vars.add(op.name)
            visit_value(op.value)
        elif isinstance(op, CallProcedure):
            procedures.add(op.name)
        elif isinstance(op, Send):
            messages.add(op.message)
        elif isinstance(op, SelectSession):
            packet_fields.add(op.discriminator_field)
        elif isinstance(op, Conditional):
            visit_condition(op.condition)
            for inner in op.body:
                visit(inner)

    for op in ops:
        visit(op)
    return SymbolTable(
        fields=frozenset(fields), params=frozenset(params),
        state_vars=frozenset(state_vars), packet_fields=frozenset(packet_fields),
        procedures=frozenset(procedures), messages=frozenset(messages),
    )


# -- validation ----------------------------------------------------------------

def validate_ops(ops: list[Op], where: str = "") -> None:
    """Raise :class:`IRValidationError` on any node no backend understands."""
    prefix = f"{where}: " if where else ""
    for op in ops:
        if not isinstance(op, OP_TYPES):
            raise IRValidationError(f"{prefix}unknown op type {type(op).__name__}")
        if op.advice_before is not None and not isinstance(op.advice_before, str):
            raise IRValidationError(f"{prefix}advice tag must be a string")
        if isinstance(op, SetField):
            if not op.name:
                raise IRValidationError(f"{prefix}SetField with an empty field name")
            _validate_value(op.value, prefix)
        elif isinstance(op, SetStateVar):
            if not op.name:
                raise IRValidationError(f"{prefix}SetStateVar with an empty name")
            _validate_value(op.value, prefix)
        elif isinstance(op, Conditional):
            if op.condition.kind not in CONDITION_KINDS:
                raise IRValidationError(
                    f"{prefix}unknown condition kind {op.condition.kind!r}"
                )
            validate_ops(op.body, where)


def _validate_value(value: Value, prefix: str) -> None:
    if value.kind not in VALUE_KINDS:
        raise IRValidationError(f"{prefix}unknown value kind {value.kind!r}")


def validate_function(function: "Function") -> None:
    """Structural validation of one builder before any backend runs."""
    if not function.name:
        raise IRValidationError("function has no name")
    validate_ops(function.ops, function.name)


# -- passes --------------------------------------------------------------------

class IRPass:
    """One rewrite over a function's op list (order-preserving unless the
    pass's whole point is reordering)."""

    name = ""

    def run(self, ops: list[Op]) -> list[Op]:
        raise NotImplementedError


class ChecksumFinalizationPass(IRPass):
    """Stable-sort checksum computations (and their advice) to the end.

    The RFC lists the Checksum field before Identifier/Sequence/Data, but
    the checksum covers them, so it must be computed after they are filled.
    Duplicate computations of the same (protocol, field) collapse to one.
    """

    name = "finalize-checksums"

    def run(self, ops: list[Op]) -> list[Op]:
        checksum_keys: set[int] = set()
        for index, op in enumerate(ops):
            if isinstance(op, ComputeChecksum):
                checksum_keys.add(index)
        if not checksum_keys:
            return list(ops)
        head = [op for index, op in enumerate(ops) if index not in checksum_keys]
        tail = [op for index, op in enumerate(ops) if index in checksum_keys]
        deduped_tail: list[Op] = []
        seen: set[tuple[str, str]] = set()
        for op in tail:
            key = (op.protocol, op.name)
            if key in seen:
                continue
            seen.add(key)
            deduped_tail.append(op)
        return head + deduped_tail


class AdvicePlacementPass(IRPass):
    """Move advice ops immediately before their advised function's first op.

    Currently the only advised function is the checksum computation
    (@AdvBefore in the "For computing the checksum..." sentence); advice for
    functions that never appear stays in place.
    """

    name = "place-advice"

    def run(self, ops: list[Op]) -> list[Op]:
        advice = [op for op in ops if op.advice_before]
        if not advice:
            return list(ops)
        plain = [op for op in ops if not op.advice_before]
        result: list[Op] = []
        placed: set[int] = set()
        for op in plain:
            if isinstance(op, ComputeChecksum):
                for index, advice_op in enumerate(advice):
                    if index not in placed and advice_op.advice_before == "compute_checksum":
                        result.append(advice_op)
                        placed.add(index)
            result.append(op)
        for index, advice_op in enumerate(advice):
            if index not in placed:
                result.append(advice_op)
        return result


class SetFieldDedupePass(IRPass):
    """Drop exact-duplicate constant field assignments (e.g. the structural
    type value and a rewrite's explicit "type field is set to 0")."""

    name = "dedupe-setfields"

    def run(self, ops: list[Op]) -> list[Op]:
        seen: set[tuple[str, str, int]] = set()
        result: list[Op] = []
        for op in ops:
            if isinstance(op, SetField) and op.value.kind == "const":
                key = (op.protocol, op.name, op.value.const)
                if key in seen:
                    continue
                seen.add(key)
            result.append(op)
        return result


#: The assembly pipeline: finalization first (checksums move to the end),
#: THEN advice placement, so zero-before-compute lands directly before the
#: moved computation; dedupe runs last over the settled order.
DEFAULT_PASSES: tuple[IRPass, ...] = (
    ChecksumFinalizationPass(),
    AdvicePlacementPass(),
    SetFieldDedupePass(),
)


def run_passes(ops: list[Op],
               passes: tuple[IRPass, ...] = DEFAULT_PASSES) -> list[Op]:
    for ir_pass in passes:
        ops = ir_pass.run(ops)
    return ops


# -- functions and programs ----------------------------------------------------

@dataclass
class Function:
    """One assembled builder: ops plus the metadata that names and routes it."""

    protocol: str
    message_name: str
    role: str
    ops: list[Op] = dataclass_field(default_factory=list)
    name_override: str = ""  # set only when deduping a slug collision
    _fingerprint: str | None = dataclass_field(
        default=None, repr=False, compare=False
    )

    @property
    def name(self) -> str:
        return self.name_override or function_name(
            self.protocol, self.message_name, self.role
        )

    def symbols(self) -> SymbolTable:
        return collect_symbols(self.ops)

    def fingerprint(self) -> str:
        """Content SHA-1: the compiled-program cache key component.

        Ops are dataclasses, so ``repr`` is a complete, deterministic
        serialization of the tree (Value and Condition are frozen
        dataclasses and render all fields).  The hash is computed once:
        like every shared pipeline artifact, a function is treated as
        frozen after assembly — call :meth:`invalidate_fingerprint` after
        mutating ``ops``."""
        if self._fingerprint is None:
            digest = hashlib.sha1()
            digest.update(
                f"{self.name}|{self.protocol}|{self.message_name}|{self.role}".encode()
            )
            for op in self.ops:
                digest.update(repr(op).encode())
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def invalidate_fingerprint(self) -> None:
        self._fingerprint = None

    # -- convenience renderings (the historical MessageProgram surface) -------
    def render_c(self) -> str:
        return _backend("c")().emit_function(self)

    def render_python(self) -> str:
        return _backend("python")().emit_function(self)


@dataclass
class Program:
    """Everything generated for one protocol: structs plus builders.

    ``add`` is the collision-guarded way in; builders whose names collide
    raise :class:`FunctionNameCollision` instead of silently merging.
    """

    protocol: str
    struct_c: str = ""
    programs: list[Function] = dataclass_field(default_factory=list)
    _fingerprint: str | None = dataclass_field(
        default=None, repr=False, compare=False
    )

    @property
    def functions(self) -> list[Function]:
        """The IR-layer name for the builder list."""
        return self.programs

    def add(self, function: Function) -> Function:
        existing = self.program_named(function.name)
        if existing is not None:
            raise FunctionNameCollision(
                function.name, existing.message_name, function.message_name
            )
        self.programs.append(function)
        return function

    def program_named(self, name: str) -> Function | None:
        for program in self.programs:
            if program.name == name:
                return program
        return None

    def validate(self) -> None:
        names: dict[str, str] = {}
        for function in self.programs:
            validate_function(function)
            if function.name in names:
                raise FunctionNameCollision(
                    function.name, names[function.name], function.message_name
                )
            names[function.name] = function.message_name

    def fingerprint(self) -> str:
        """Content SHA-1 over the struct and every function (memoized; a
        program is treated as frozen after assembly — call
        :meth:`invalidate_fingerprint` after mutating it)."""
        if self._fingerprint is None:
            digest = hashlib.sha1()
            digest.update(f"{self.protocol}|{self.struct_c}".encode())
            for function in self.programs:
                digest.update(function.fingerprint().encode())
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def invalidate_fingerprint(self) -> None:
        self._fingerprint = None
        for function in self.programs:
            function.invalidate_fingerprint()

    def render_c(self) -> str:
        return _backend("c")().emit_program(self)

    def render_python(self) -> str:
        return _backend("python")().emit_program(self)

    def compile(self, backend: str = "python") -> dict[str, object]:
        """Callable builders via an executable backend ("python" or "interp")."""
        return _backend(backend)().compile_program(self)


def build_function(
    protocol: str,
    message_name: str,
    role: str,
    sentence_codes: list[SentenceCode],
    type_value: int | None = None,
    code_value: int | None = None,
    passes: tuple[IRPass, ...] = DEFAULT_PASSES,
) -> Function:
    """Assemble one message's builder from its sentences plus the structural
    value bindings (the "0 = Echo Reply" idiom and bare field values), then
    run the pass pipeline and validate the result."""
    ops: list[Op] = []
    if type_value is not None:
        ops.append(SetField(protocol.lower(), "type", Value.constant(type_value)))
    if code_value is not None:
        ops.append(SetField(protocol.lower(), "code", Value.constant(code_value)))
    for code in sentence_codes:
        if code.status == "non-actionable":
            ops.append(Comment(text=code.sentence[:70]))
            continue
        if code.status != "ok":
            continue
        if not goal_matches(code.goal_message, message_name):
            continue
        if code.role and code.role != role:
            continue
        ops.extend(code.ops)
    function = Function(
        protocol=protocol, message_name=message_name, role=role,
        ops=run_passes(ops, passes),
    )
    validate_function(function)
    return function


# -- serialization -------------------------------------------------------------
#
# Ops, Value, and Condition are plain dataclasses over JSON-safe scalars
# (plus nested Value/Condition/list[Op]), so serialization is generic over
# dataclasses.fields.  Functions and programs additionally carry their
# content SHA-1: `function_from_dict`/`program_from_dict` recompute it over
# the rebuilt IR and raise :class:`FingerprintMismatch` on drift, making a
# serialized artifact tamper-evident end to end.

import dataclasses as _dataclasses

_OP_BY_NAME: dict[str, type] = {op_type.__name__: op_type for op_type in OP_TYPES}

#: Per-op-type (field name, default) pairs, precomputed once —
#: dataclasses.fields() is surprisingly expensive to re-resolve per node on
#: the serialization hot path.
_OP_FIELDS: dict[type, tuple] = {
    op_type: tuple((field_info.name, field_info.default)
                   for field_info in _dataclasses.fields(op_type))
    for op_type in OP_TYPES
}


def value_to_dict(value: Value) -> dict:
    record = {"kind": value.kind}
    if value.const:
        record["const"] = value.const
    if value.name:
        record["name"] = value.name
    if value.protocol:
        record["protocol"] = value.protocol
    return record


def value_from_dict(record: dict) -> Value:
    return Value(kind=record["kind"], const=record.get("const", 0),
                 name=record.get("name", ""),
                 protocol=record.get("protocol", ""))


def condition_to_dict(condition: Condition) -> dict:
    record = {"kind": condition.kind}
    if condition.protocol:
        record["protocol"] = condition.protocol
    if condition.name:
        record["name"] = condition.name
    if condition.value:
        record["value"] = condition.value
    if condition.other:
        record["other"] = condition.other
    if condition.modes:
        record["modes"] = list(condition.modes)
    if condition.negated:
        record["negated"] = True
    return record


def condition_from_dict(record: dict) -> Condition:
    return Condition(
        kind=record["kind"], protocol=record.get("protocol", ""),
        name=record.get("name", ""), value=record.get("value", 0),
        other=record.get("other", ""),
        modes=tuple(record.get("modes", ())),
        negated=record.get("negated", False),
    )


def op_to_dict(op: Op) -> dict:
    """One op as a JSON-safe dict, tagged with its type name."""
    fields_spec = _OP_FIELDS.get(type(op))
    if fields_spec is None:
        raise IRValidationError(f"cannot serialize op type {type(op).__name__}")
    record: dict = {"op": type(op).__name__}
    for name, default in fields_spec:
        value = getattr(op, name)
        if value == default and name != "condition":
            continue  # defaults stay implicit (compact, stable JSON)
        if isinstance(value, Value):
            value = value_to_dict(value)
        elif isinstance(value, Condition):
            value = condition_to_dict(value)
        elif isinstance(value, list):
            value = [op_to_dict(inner) for inner in value]
        record[name] = value
    return record


def op_from_dict(record: dict) -> Op:
    op_type = _OP_BY_NAME.get(record.get("op", ""))
    if op_type is None:
        raise IRValidationError(f"unknown serialized op {record.get('op')!r}")
    kwargs: dict = {}
    for name, _default in _OP_FIELDS[op_type]:
        if name not in record:
            continue
        value = record[name]
        if name == "value" and isinstance(value, dict):
            value = value_from_dict(value)
        elif name == "condition" and isinstance(value, dict):
            value = condition_from_dict(value)
        elif name == "body" and isinstance(value, list):
            value = [op_from_dict(inner) for inner in value]
        kwargs[name] = value
    return op_type(**kwargs)


def sentence_code_to_dict(code: SentenceCode) -> dict:
    record: dict = {"sentence": code.sentence}
    if code.ops:
        record["ops"] = [op_to_dict(op) for op in code.ops]
    if code.goal_message:
        record["goal_message"] = code.goal_message
    if code.role:
        record["role"] = code.role
    if code.status != "ok":
        record["status"] = code.status
    if code.reason:
        record["reason"] = code.reason
    return record


def sentence_code_from_dict(record: dict) -> SentenceCode:
    return SentenceCode(
        sentence=record["sentence"],
        ops=[op_from_dict(op) for op in record.get("ops", [])],
        goal_message=record.get("goal_message", ""),
        role=record.get("role", ""),
        status=record.get("status", "ok"),
        reason=record.get("reason", ""),
    )


def function_to_dict(function: Function) -> dict:
    record: dict = {
        "protocol": function.protocol,
        "message_name": function.message_name,
        "role": function.role,
        "ops": [op_to_dict(op) for op in function.ops],
        "fingerprint": function.fingerprint(),
    }
    if function.name_override:
        record["name_override"] = function.name_override
    return record


def function_from_dict(record: dict, verify: bool = True) -> Function:
    function = Function(
        protocol=record["protocol"],
        message_name=record["message_name"],
        role=record["role"],
        ops=[op_from_dict(op) for op in record.get("ops", [])],
        name_override=record.get("name_override", ""),
    )
    recorded = record.get("fingerprint", "")
    if verify and recorded and recorded != function.fingerprint():
        raise FingerprintMismatch(
            f"function {function.name}", recorded, function.fingerprint()
        )
    return function


def program_to_dict(program: Program) -> dict:
    return {
        "protocol": program.protocol,
        "struct_c": program.struct_c,
        "functions": [function_to_dict(fn) for fn in program.programs],
        "fingerprint": program.fingerprint(),
    }


def program_from_dict(record: dict, verify: bool = True) -> Program:
    program = Program(protocol=record["protocol"],
                      struct_c=record.get("struct_c", ""))
    for entry in record.get("functions", []):
        program.add(function_from_dict(entry, verify=verify))
    recorded = record.get("fingerprint", "")
    if verify and recorded and recorded != program.fingerprint():
        raise FingerprintMismatch(
            f"program {program.protocol}", recorded, program.fingerprint()
        )
    return program


# -- the backend registry ------------------------------------------------------

class Backend:
    """The pluggable rendering/execution interface over the IR.

    Text backends (C, Python) implement ``emit_function``; executable
    backends (Python, the interpreter) implement ``compile_program``.  See
    DESIGN.md §6 for the contract and the how-to-add-a-backend walkthrough.
    """

    #: Registry key ("c", "python", "interp", ...).
    name = ""
    #: True when emit_function/emit_program produce source text.
    emits_text = True
    #: True when compile_program produces callable builders.
    executable = False

    def emit_function(self, function: Function) -> str:
        raise NotImplementedError(f"backend {self.name!r} does not emit text")

    def emit_program(self, program: Program) -> str:
        return "\n\n".join(
            self.emit_function(function) for function in program.programs
        )

    def compile_program(self, program: Program) -> dict[str, object]:
        raise NotImplementedError(f"backend {self.name!r} is not executable")


_BACKENDS: dict[str, type[Backend]] = {}


def register_backend(backend_class: type[Backend]) -> type[Backend]:
    """Register a backend class under its ``name`` (usable as a decorator)."""
    if not backend_class.name:
        raise ValueError("backend classes need a non-empty name")
    _BACKENDS[backend_class.name] = backend_class
    return backend_class


def get_backend(name: str) -> type[Backend]:
    try:
        return _BACKENDS[name]
    except KeyError:
        raise KeyError(
            f"unknown backend {name!r}: registered backends are "
            f"{', '.join(sorted(_BACKENDS)) or '(none)'}"
        ) from None


def backend_names() -> list[str]:
    return sorted(_BACKENDS)


def _ensure_default_backends() -> None:
    """Import the bundled backend modules so the registry is populated even
    when ``repro.codegen.ir`` is imported directly (not via the package)."""
    from . import emitters, interp  # noqa: F401  (import side effect)


def _backend(name: str) -> type[Backend]:
    """`get_backend` with the bundled backends lazily registered."""
    if name not in _BACKENDS:
        _ensure_default_backends()
    return get_backend(name)
