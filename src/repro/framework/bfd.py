"""BFD control-packet codec and state variables (RFC 5880 §4.1 and §6.8.1).

The paper parses RFC 5880's packet header (§4.1) and the reception-of-control-
packet state-management sentences (§6.8.6).  This module supplies the wire
format plus the ``bfd.*`` state variables those sentences read and write;
`repro.netsim.bfd_session` runs the resulting state machine between nodes.
"""

from __future__ import annotations

from dataclasses import dataclass

from .packet import FieldSpec, Header

# Session states (RFC 5880 §4.1: the State (Sta) field).
STATE_ADMIN_DOWN = 0
STATE_DOWN = 1
STATE_INIT = 2
STATE_UP = 3

STATE_NAMES = {
    STATE_ADMIN_DOWN: "AdminDown",
    STATE_DOWN: "Down",
    STATE_INIT: "Init",
    STATE_UP: "Up",
}

# Diagnostic codes (subset).
DIAG_NONE = 0
DIAG_TIME_EXPIRED = 1
DIAG_ECHO_FAILED = 2
DIAG_NEIGHBOR_DOWN = 3


class BFDControlHeader(Header):
    """Mandatory section of a BFD control packet (RFC 5880 §4.1)."""

    FIELDS = (
        FieldSpec("version", 3, default=1),
        FieldSpec("diag", 5),
        FieldSpec("state", 2),
        FieldSpec("poll", 1),
        FieldSpec("final", 1),
        FieldSpec("control_plane_independent", 1),
        FieldSpec("authentication_present", 1),
        FieldSpec("demand", 1),
        FieldSpec("multipoint", 1),
        FieldSpec("detect_mult", 8, default=3),
        FieldSpec("length", 8, default=24),
        FieldSpec("my_discriminator", 32),
        FieldSpec("your_discriminator", 32),
        FieldSpec("desired_min_tx_interval", 32),
        FieldSpec("required_min_rx_interval", 32),
        FieldSpec("required_min_echo_rx_interval", 32),
    )

    def state_name(self) -> str:
        return STATE_NAMES.get(self.state, f"state {self.state}")


@dataclass
class BFDStateVariables:
    """The ``bfd.*`` state variables of RFC 5880 §6.8.1.

    Attribute names keep the RFC's camel-case so the static context can map
    the noun phrases in §6.8.6 (e.g. "bfd.RemoteDiscr") straight onto them.
    """

    SessionState: int = STATE_DOWN
    RemoteSessionState: int = STATE_DOWN
    LocalDiscr: int = 0
    RemoteDiscr: int = 0
    LocalDiag: int = DIAG_NONE
    DesiredMinTxInterval: int = 1_000_000
    RequiredMinRxInterval: int = 1_000_000
    RemoteMinRxInterval: int = 1
    DemandMode: int = 0
    RemoteDemandMode: int = 0
    DetectMult: int = 3
    AuthType: int = 0

    def session_state_name(self) -> str:
        return STATE_NAMES.get(self.SessionState, str(self.SessionState))

    def snapshot(self) -> dict[str, int]:
        """The current variable values (used by tests to diff transitions)."""
        return dict(self.__dict__)


def make_control_packet(state: BFDStateVariables, poll: bool = False,
                        final: bool = False) -> BFDControlHeader:
    """Build a control packet from the session's state variables.

    RFC 5880 §6.8.7 specifies the mandatory-section contents in terms of the
    state variables; this is the reference transmit path.
    """
    return BFDControlHeader(
        diag=state.LocalDiag,
        state=state.SessionState,
        poll=int(poll),
        final=int(final),
        demand=state.DemandMode,
        detect_mult=state.DetectMult,
        my_discriminator=state.LocalDiscr,
        your_discriminator=state.RemoteDiscr,
        desired_min_tx_interval=state.DesiredMinTxInterval,
        required_min_rx_interval=state.RequiredMinRxInterval,
    )
