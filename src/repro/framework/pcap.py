"""Minimal pcap (libpcap classic format) writer and reader.

The paper's packet-capture verification (§6.2) stores sender- and
receiver-side packets in pcap files and checks them with tcpdump.  We write
standard little-endian pcap with LINKTYPE_RAW (packets begin with the IPv4
header), which keeps captures loadable by real tcpdump/wireshark while
avoiding a synthetic Ethernet layer the simulator does not model.
"""

from __future__ import annotations

import io
import struct
from dataclasses import dataclass
from typing import BinaryIO, Iterable, Iterator

PCAP_MAGIC = 0xA1B2C3D4
PCAP_VERSION = (2, 4)
LINKTYPE_RAW = 101  # packets start at the IP header
SNAPLEN = 65535


@dataclass(frozen=True)
class CapturedPacket:
    """One record from a pcap file."""

    timestamp_sec: int
    timestamp_usec: int
    data: bytes
    original_length: int

    @property
    def truncated(self) -> bool:
        return len(self.data) < self.original_length


def write_pcap(stream: BinaryIO, packets: Iterable[bytes],
               timestamps: Iterable[tuple[int, int]] | None = None) -> int:
    """Write ``packets`` (raw IP datagrams) to ``stream``; returns count."""
    stream.write(
        struct.pack(
            "<IHHiIII",
            PCAP_MAGIC,
            PCAP_VERSION[0],
            PCAP_VERSION[1],
            0,  # timezone offset
            0,  # timestamp accuracy
            SNAPLEN,
            LINKTYPE_RAW,
        )
    )
    count = 0
    stamps = iter(timestamps) if timestamps is not None else None
    for index, packet in enumerate(packets):
        if stamps is not None:
            sec, usec = next(stamps)
        else:
            sec, usec = index, 0
        captured = packet[:SNAPLEN]
        stream.write(struct.pack("<IIII", sec, usec, len(captured), len(packet)))
        stream.write(captured)
        count += 1
    return count


def write_pcap_file(path: str, packets: Iterable[bytes]) -> int:
    with open(path, "wb") as stream:
        return write_pcap(stream, packets)


def read_pcap(stream: BinaryIO) -> Iterator[CapturedPacket]:
    """Parse a pcap stream; handles both byte orders of the magic number."""
    header = stream.read(24)
    if len(header) < 24:
        raise ValueError("truncated pcap global header")
    magic = struct.unpack("<I", header[:4])[0]
    if magic == PCAP_MAGIC:
        endian = "<"
    elif magic == struct.unpack(">I", struct.pack("<I", PCAP_MAGIC))[0]:
        endian = ">"
    else:
        raise ValueError(f"not a pcap file (magic {magic:#x})")
    linktype = struct.unpack(endian + "I", header[20:24])[0]
    if linktype != LINKTYPE_RAW:
        raise ValueError(f"unsupported linktype {linktype}; expected raw IP")
    while True:
        record = stream.read(16)
        if not record:
            return
        if len(record) < 16:
            raise ValueError("truncated pcap record header")
        sec, usec, caplen, origlen = struct.unpack(endian + "IIII", record)
        data = stream.read(caplen)
        if len(data) < caplen:
            raise ValueError("truncated pcap record body")
        yield CapturedPacket(sec, usec, data, origlen)


def read_pcap_file(path: str) -> list[CapturedPacket]:
    with open(path, "rb") as stream:
        return list(read_pcap(stream))


def packets_to_pcap_bytes(packets: Iterable[bytes]) -> bytes:
    buffer = io.BytesIO()
    write_pcap(buffer, packets)
    return buffer.getvalue()
