"""IGMP version 1 codec (RFC 1112, Appendix I).

The paper parses the packet-header description in RFC 1112's Appendix I and
generates host-membership query/report senders; the netsim IGMP switch model
consumes these messages to verify interoperability (§6.3).
"""

from __future__ import annotations

from .checksum import internet_checksum, verify_checksum
from .packet import FieldSpec, Header

HOST_MEMBERSHIP_QUERY = 1
HOST_MEMBERSHIP_REPORT = 2

TYPE_NAMES = {
    HOST_MEMBERSHIP_QUERY: "host membership query",
    HOST_MEMBERSHIP_REPORT: "host membership report",
}

ALL_HOSTS_GROUP = 0xE0000001  # 224.0.0.1


class IGMPHeader(Header):
    """IGMP v1: version/type nibbles, unused byte, checksum, group address."""

    FIELDS = (
        FieldSpec("version", 4, default=1),
        FieldSpec("type", 4),
        FieldSpec("unused", 8),
        FieldSpec("checksum", 16),
        FieldSpec("group_address", 32),
    )

    def finalize(self) -> "IGMPHeader":
        """Checksum is "the 16-bit one's complement of the one's complement
        sum of the 8-octet IGMP message" (RFC 1112)."""
        self.checksum = 0
        self.checksum = internet_checksum(self.pack())
        return self

    def checksum_ok(self) -> bool:
        return verify_checksum(self.pack())

    def type_name(self) -> str:
        return TYPE_NAMES.get(self.type, f"type {self.type}")


def make_query() -> IGMPHeader:
    """Host membership query: sent to the all-hosts group, group field 0."""
    return IGMPHeader(type=HOST_MEMBERSHIP_QUERY, group_address=0).finalize()


def make_report(group_address: int) -> IGMPHeader:
    """Host membership report for ``group_address``."""
    return IGMPHeader(type=HOST_MEMBERSHIP_REPORT, group_address=group_address).finalize()
