"""ICMP message codecs (RFC 792), covering all eight message types.

The reference builders here serve three roles: (1) they are the ground truth
the student-study fault injectors perturb (Table 2/3); (2) the netsim `ping`
and `traceroute` tools use them to *consume* messages exactly the way Linux
does; (3) end-to-end tests compare SAGE-generated code against them
byte-for-byte.
"""

from __future__ import annotations

from .checksum import internet_checksum, verify_checksum
from .ip import IPv4Header
from .packet import FieldSpec, Header

# Message types (RFC 792).
ECHO_REPLY = 0
DEST_UNREACHABLE = 3
SOURCE_QUENCH = 4
REDIRECT = 5
ECHO = 8
TIME_EXCEEDED = 11
PARAMETER_PROBLEM = 12
TIMESTAMP = 13
TIMESTAMP_REPLY = 14
INFO_REQUEST = 15
INFO_REPLY = 16

TYPE_NAMES = {
    ECHO_REPLY: "echo reply",
    DEST_UNREACHABLE: "destination unreachable",
    SOURCE_QUENCH: "source quench",
    REDIRECT: "redirect",
    ECHO: "echo request",
    TIME_EXCEEDED: "time exceeded",
    PARAMETER_PROBLEM: "parameter problem",
    TIMESTAMP: "timestamp request",
    TIMESTAMP_REPLY: "timestamp reply",
    INFO_REQUEST: "information request",
    INFO_REPLY: "information reply",
}

# Destination-unreachable codes.
NET_UNREACHABLE = 0
HOST_UNREACHABLE = 1
PROTOCOL_UNREACHABLE = 2
PORT_UNREACHABLE = 3

# Time-exceeded codes.
TTL_EXCEEDED = 0
FRAGMENT_REASSEMBLY_EXCEEDED = 1


class ICMPHeader(Header):
    """The common 4-byte ICMP prefix plus a type-specific ``rest`` word.

    RFC 792 gives every message type / code / checksum followed by a 4-byte
    type-specific field (unused, gateway address, identifier+sequence, or
    pointer+unused); we model that as ``rest`` and provide typed accessors.
    """

    FIELDS = (
        FieldSpec("type", 8),
        FieldSpec("code", 8),
        FieldSpec("checksum", 16),
        FieldSpec("rest", 32),
    )

    # -- typed accessors onto the "rest of header" word ------------------
    @property
    def identifier(self) -> int:
        return (self.rest >> 16) & 0xFFFF

    @identifier.setter
    def identifier(self, value: int) -> None:
        self.rest = ((value & 0xFFFF) << 16) | (self.rest & 0xFFFF)

    @property
    def sequence(self) -> int:
        return self.rest & 0xFFFF

    @sequence.setter
    def sequence(self, value: int) -> None:
        self.rest = (self.rest & 0xFFFF0000) | (value & 0xFFFF)

    @property
    def gateway(self) -> int:
        return self.rest

    @gateway.setter
    def gateway(self, value: int) -> None:
        self.rest = value & 0xFFFFFFFF

    @property
    def pointer(self) -> int:
        return (self.rest >> 24) & 0xFF

    @pointer.setter
    def pointer(self, value: int) -> None:
        self.rest = ((value & 0xFF) << 24) | (self.rest & 0x00FFFFFF)

    # -- checksum ----------------------------------------------------------
    def finalize(self) -> "ICMPHeader":
        """Compute the checksum over the whole message, starting at Type.

        This is the disambiguated reading of the RFC sentence (the checksum
        covers the ICMP header *and* payload, ending at the end of the
        message) — the reading that interoperates with Linux.
        """
        self.checksum = 0
        self.checksum = internet_checksum(self.pack())
        return self

    def checksum_ok(self) -> bool:
        return verify_checksum(self.pack())

    def type_name(self) -> str:
        return TYPE_NAMES.get(self.type, f"type {self.type}")


def quoted_datagram(original: IPv4Header) -> bytes:
    """The "internet header + 64 bits of original data" quotation.

    Error messages (destination unreachable, time exceeded, source quench,
    redirect, parameter problem) carry the offending datagram's IP header
    plus its first 8 data bytes so the sender can match the error to a
    socket; this is one of the spots students got wrong (Table 2, "Incorrect
    ICMP payload content").
    """
    return original.header_bytes() + original.data[:8]


# -- reference message builders (ground truth for the evaluation) ----------

def make_echo(identifier: int, sequence: int, data: bytes = b"") -> ICMPHeader:
    header = ICMPHeader(type=ECHO, code=0, payload=data)
    header.identifier = identifier
    header.sequence = sequence
    return header.finalize()


def make_echo_reply(request: ICMPHeader) -> ICMPHeader:
    """Echo reply per RFC 792: data, identifier and sequence are echoed.

    "The data received in the echo message must be returned in the echo
    reply message" and the identifier/sequence "may be used ... to match
    echos and replies" — Linux ping enforces all three.
    """
    reply = ICMPHeader(type=ECHO_REPLY, code=0, payload=request.payload)
    reply.rest = request.rest
    return reply.finalize()


def make_dest_unreachable(code: int, original: IPv4Header) -> ICMPHeader:
    return ICMPHeader(
        type=DEST_UNREACHABLE, code=code, payload=quoted_datagram(original)
    ).finalize()


def make_time_exceeded(code: int, original: IPv4Header) -> ICMPHeader:
    return ICMPHeader(
        type=TIME_EXCEEDED, code=code, payload=quoted_datagram(original)
    ).finalize()


def make_source_quench(original: IPv4Header) -> ICMPHeader:
    return ICMPHeader(
        type=SOURCE_QUENCH, code=0, payload=quoted_datagram(original)
    ).finalize()


def make_parameter_problem(pointer: int, original: IPv4Header) -> ICMPHeader:
    header = ICMPHeader(
        type=PARAMETER_PROBLEM, code=0, payload=quoted_datagram(original)
    )
    header.pointer = pointer
    return header.finalize()


def make_redirect(code: int, gateway: int, original: IPv4Header) -> ICMPHeader:
    header = ICMPHeader(type=REDIRECT, code=code, payload=quoted_datagram(original))
    header.gateway = gateway
    return header.finalize()


class ICMPTimestampHeader(Header):
    """Timestamp / timestamp-reply message: three 32-bit timestamps."""

    FIELDS = (
        FieldSpec("type", 8),
        FieldSpec("code", 8),
        FieldSpec("checksum", 16),
        FieldSpec("identifier", 16),
        FieldSpec("sequence", 16),
        FieldSpec("originate", 32),
        FieldSpec("receive", 32),
        FieldSpec("transmit", 32),
    )

    def finalize(self) -> "ICMPTimestampHeader":
        self.checksum = 0
        self.checksum = internet_checksum(self.pack())
        return self

    def checksum_ok(self) -> bool:
        return verify_checksum(self.pack())


def make_timestamp(identifier: int, sequence: int, originate: int) -> ICMPTimestampHeader:
    return ICMPTimestampHeader(
        type=TIMESTAMP,
        identifier=identifier,
        sequence=sequence,
        originate=originate,
    ).finalize()


def make_timestamp_reply(
    request: ICMPTimestampHeader, receive: int, transmit: int
) -> ICMPTimestampHeader:
    """Reply: originate echoed, receive/transmit stamped by the responder."""
    return ICMPTimestampHeader(
        type=TIMESTAMP_REPLY,
        identifier=request.identifier,
        sequence=request.sequence,
        originate=request.originate,
        receive=receive,
        transmit=transmit,
    ).finalize()


def make_info_request(identifier: int, sequence: int) -> ICMPHeader:
    header = ICMPHeader(type=INFO_REQUEST, code=0)
    header.identifier = identifier
    header.sequence = sequence
    return header.finalize()


def make_info_reply(request: ICMPHeader) -> ICMPHeader:
    reply = ICMPHeader(type=INFO_REPLY, code=0)
    reply.rest = request.rest
    return reply.finalize()
