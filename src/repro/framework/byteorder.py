"""Network/host byte-order conversion helpers.

The static framework exposes these to generated code.  They also let the
student-study fault injector (Table 2: "Network byte order and host byte
order conversion", 29% of faulty implementations) express the byte-order bug
class precisely: a buggy implementation simply *omits* these conversions, and
on a little-endian host the wire bytes come out swapped.
"""

from __future__ import annotations

import struct
import sys

HOST_IS_LITTLE_ENDIAN = sys.byteorder == "little"


def htons(value: int) -> int:
    """Host-to-network conversion of a 16-bit value."""
    return struct.unpack("=H", struct.pack("!H", value & 0xFFFF))[0]


def htonl(value: int) -> int:
    """Host-to-network conversion of a 32-bit value."""
    return struct.unpack("=I", struct.pack("!I", value & 0xFFFFFFFF))[0]


def ntohs(value: int) -> int:
    """Network-to-host conversion of a 16-bit value (involution of htons)."""
    return htons(value)


def ntohl(value: int) -> int:
    """Network-to-host conversion of a 32-bit value (involution of htonl)."""
    return htonl(value)


def swap16(value: int) -> int:
    """Unconditionally byte-swap a 16-bit value.

    This is what a missing htons *looks like on the wire* when packing with
    host order on a little-endian machine; the fault injector uses it to
    produce byte-order bugs deterministically regardless of host endianness.
    """
    value &= 0xFFFF
    return ((value & 0xFF) << 8) | (value >> 8)


def swap32(value: int) -> int:
    """Unconditionally byte-swap a 32-bit value (see :func:`swap16`)."""
    value &= 0xFFFFFFFF
    return (
        ((value & 0x000000FF) << 24)
        | ((value & 0x0000FF00) << 8)
        | ((value & 0x00FF0000) >> 8)
        | ((value & 0xFF000000) >> 24)
    )
