"""IPv4 address parsing, formatting, and subnet arithmetic.

Implemented from scratch (rather than via :mod:`ipaddress`) so that the
static framework presented to generated code is self-contained and so the
network simulator can do longest-prefix matching on plain integers.
"""

from __future__ import annotations

from dataclasses import dataclass


def ip_to_int(dotted: str) -> int:
    """Parse a dotted-quad IPv4 address into a 32-bit integer.

    Raises ValueError for anything that is not exactly four octets in range.
    """
    parts = dotted.split(".")
    if len(parts) != 4:
        raise ValueError(f"not a dotted-quad IPv4 address: {dotted!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise ValueError(f"non-numeric octet in {dotted!r}")
        octet = int(part)
        if octet > 255:
            raise ValueError(f"octet out of range in {dotted!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """Format a 32-bit integer as a dotted-quad IPv4 address."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError(f"not a 32-bit value: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


@dataclass(frozen=True)
class Subnet:
    """An IPv4 subnet in CIDR form, e.g. ``Subnet.parse("10.0.1.0/24")``."""

    network: int
    prefix_len: int

    @classmethod
    def parse(cls, cidr: str) -> "Subnet":
        address, _, prefix = cidr.partition("/")
        if not prefix:
            raise ValueError(f"missing prefix length in {cidr!r}")
        prefix_len = int(prefix)
        if not 0 <= prefix_len <= 32:
            raise ValueError(f"prefix length out of range in {cidr!r}")
        mask = cls._mask(prefix_len)
        return cls(network=ip_to_int(address) & mask, prefix_len=prefix_len)

    @staticmethod
    def _mask(prefix_len: int) -> int:
        if prefix_len == 0:
            return 0
        return (0xFFFFFFFF << (32 - prefix_len)) & 0xFFFFFFFF

    @property
    def mask(self) -> int:
        return self._mask(self.prefix_len)

    def contains(self, address: int | str) -> bool:
        if isinstance(address, str):
            address = ip_to_int(address)
        return (address & self.mask) == self.network

    def __str__(self) -> str:
        return f"{int_to_ip(self.network)}/{self.prefix_len}"
