"""NTP version 1 codec (RFC 1059, Appendix B) and peer state variables.

The paper parses RFC 1059's appendices: Appendix A (encapsulation of NTP in
UDP) and Appendix B (packet format and field descriptions), and §6.3/Table 11
parse the peer-variable timeout sentence into nested conditional code.  This
module supplies the packet format plus the peer-variable record the generated
timeout procedure manipulates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .packet import FieldSpec, Header
from .udp import UDPHeader, make_udp

NTP_PORT = 123

# Association modes (RFC 1059).
MODE_SYMMETRIC_ACTIVE = 1
MODE_SYMMETRIC_PASSIVE = 2
MODE_CLIENT = 3
MODE_SERVER = 4
MODE_BROADCAST = 5

MODE_NAMES = {
    MODE_SYMMETRIC_ACTIVE: "symmetric active",
    MODE_SYMMETRIC_PASSIVE: "symmetric passive",
    MODE_CLIENT: "client",
    MODE_SERVER: "server",
    MODE_BROADCAST: "broadcast",
}


class NTPHeader(Header):
    """NTP v1 48-byte header with 64-bit fixed-point timestamps."""

    FIELDS = (
        FieldSpec("leap_indicator", 2),
        FieldSpec("version", 3, default=1),
        FieldSpec("mode", 3),
        FieldSpec("stratum", 8),
        FieldSpec("poll", 8),
        FieldSpec("precision", 8),
        FieldSpec("root_delay", 32),
        FieldSpec("root_dispersion", 32),
        FieldSpec("reference_id", 32),
        FieldSpec("reference_timestamp", 64),
        FieldSpec("originate_timestamp", 64),
        FieldSpec("receive_timestamp", 64),
        FieldSpec("transmit_timestamp", 64),
    )

    def mode_name(self) -> str:
        return MODE_NAMES.get(self.mode, f"mode {self.mode}")


def encapsulate(message: NTPHeader, src_ip: int, dst_ip: int,
                src_port: int = NTP_PORT, dst_port: int = NTP_PORT) -> UDPHeader:
    """Wrap an NTP message in UDP per RFC 1059 Appendix A.

    "NTP data are transmitted as UDP datagrams with source and destination
    port fields of 123" — the well-known NTP port is used on both ends.
    """
    return make_udp(src_ip, dst_ip, src_port, dst_port, message.pack())


@dataclass
class PeerVariables:
    """The per-peer state RFC 1059 §3.2.2 calls the "peer variables".

    The Table 11 sentence — "The timeout procedure is called in client mode
    and symmetric mode when the peer timer reaches the value of the timer
    threshold variable" — reads and compares ``timer`` and ``threshold``
    and dispatches on ``mode``.
    """

    mode: int = MODE_CLIENT
    timer: int = 0
    threshold: int = 64
    stratum: int = 0
    poll_interval: int = 6
    timeouts_fired: int = field(default=0)

    def in_client_mode(self) -> bool:
        return self.mode == MODE_CLIENT

    def in_symmetric_mode(self) -> bool:
        return self.mode in (MODE_SYMMETRIC_ACTIVE, MODE_SYMMETRIC_PASSIVE)

    def tick(self, seconds: int = 1) -> None:
        self.timer += seconds

    def timeout_procedure(self) -> NTPHeader:
        """Reference timeout: reset the timer and emit a fresh NTP poll."""
        self.timer = 0
        self.timeouts_fired += 1
        return NTPHeader(mode=self.mode, stratum=self.stratum, poll=self.poll_interval)
