"""One's-complement arithmetic used by IP-family checksums.

The ICMP RFC specifies: "The checksum is the 16-bit one's complement of the
one's complement sum of the ICMP message starting with the ICMP Type."  This
module provides the primitives that the static framework exposes to generated
code: the folded one's-complement sum, the final checksum, verification, and
the incremental update described in RFC 1624 (which one of the student
checksum misinterpretations in Table 3 uses).
"""

from __future__ import annotations


def ones_complement_sum(data: bytes) -> int:
    """Return the 16-bit one's-complement sum of ``data``.

    Odd-length input is padded on the right with a zero byte, per RFC 1071.
    The result is folded so it always fits in 16 bits.
    """
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return total


def internet_checksum(data: bytes) -> int:
    """Return the Internet checksum: the complement of the folded sum."""
    return (~ones_complement_sum(data)) & 0xFFFF


def verify_checksum(data: bytes) -> bool:
    """Return True when ``data`` (checksum field included) sums to 0xFFFF.

    A message whose checksum field holds the correct Internet checksum has a
    one's-complement sum over the whole message of 0xFFFF (i.e. -0).
    """
    return ones_complement_sum(data) == 0xFFFF


def incremental_update(old_checksum: int, old_word: int, new_word: int) -> int:
    """RFC 1624 incremental checksum update for a single 16-bit word.

    Computes ``HC' = ~(~HC + ~m + m')`` in one's-complement arithmetic.  Used
    by routers that rewrite a field (e.g. TTL) without recomputing the whole
    checksum, and by one of the faulty student interpretations (Table 3,
    index 6) that incrementally patches a reply checksum from the request.

    Caveat (RFC 1624 §3): when the updated message sums to zero, the formula
    yields the negative-zero representation (checksum 0x0000) where a full
    recompute yields 0xFFFF.  Real IP headers never sum to zero (the version
    field is nonzero), so the case does not arise in the datapath.
    """
    total = (~old_checksum & 0xFFFF) + (~old_word & 0xFFFF) + (new_word & 0xFFFF)
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF
