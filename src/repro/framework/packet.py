"""Declarative wire-format header codec.

Each protocol header is described as an ordered sequence of bit-aligned
fields; :class:`Header` subclasses pack and unpack themselves to network
byte order.  This plays the role of the C structs that SAGE's header-struct
extraction stage generates from RFC ASCII art; `repro.rfc.header_diagram`
produces :class:`HeaderLayout` objects compatible with this module, so the
struct used on the wire is literally derived from the RFC drawing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator


@dataclass(frozen=True)
class FieldSpec:
    """One fixed-width header field.

    ``bits`` is the width on the wire; fields need not be byte aligned
    (e.g. IPv4 version/IHL are two 4-bit fields) but every header's total
    width must be a whole number of bytes.
    """

    name: str
    bits: int
    default: int = 0

    def __post_init__(self) -> None:
        if self.bits <= 0 or self.bits > 128:
            raise ValueError(f"field {self.name!r} has unsupported width {self.bits}")

    @property
    def max_value(self) -> int:
        return (1 << self.bits) - 1


class Header:
    """Base class for fixed-layout protocol headers with a byte payload.

    Subclasses define ``FIELDS`` (a tuple of :class:`FieldSpec`).  Instances
    carry one attribute per field plus ``payload`` (bytes following the fixed
    header).  Packing is big-endian bit-by-bit, so arbitrary sub-byte fields
    compose correctly.
    """

    FIELDS: tuple[FieldSpec, ...] = ()

    def __init__(self, payload: bytes = b"", **fields: int) -> None:
        known = {spec.name for spec in self.FIELDS}
        unknown = set(fields) - known
        if unknown:
            raise TypeError(f"unknown fields for {type(self).__name__}: {sorted(unknown)}")
        for spec in self.FIELDS:
            value = fields.get(spec.name, spec.default)
            self._check_range(spec, value)
            setattr(self, spec.name, value)
        self.payload = bytes(payload)

    @staticmethod
    def _check_range(spec: FieldSpec, value: int) -> None:
        if not isinstance(value, int):
            raise TypeError(f"field {spec.name!r} must be an int, got {type(value).__name__}")
        if not 0 <= value <= spec.max_value:
            raise ValueError(
                f"field {spec.name!r} value {value} does not fit in {spec.bits} bits"
            )

    @classmethod
    def header_bits(cls) -> int:
        return sum(spec.bits for spec in cls.FIELDS)

    @classmethod
    def header_len(cls) -> int:
        bits = cls.header_bits()
        if bits % 8:
            raise ValueError(f"{cls.__name__} is not byte aligned ({bits} bits)")
        return bits // 8

    def field_values(self) -> dict[str, int]:
        return {spec.name: getattr(self, spec.name) for spec in self.FIELDS}

    def pack(self) -> bytes:
        """Serialize the header fields followed by the payload."""
        accumulator = 0
        bit_count = 0
        for spec in self.FIELDS:
            value = getattr(self, spec.name)
            self._check_range(spec, value)
            accumulator = (accumulator << spec.bits) | value
            bit_count += spec.bits
        if bit_count % 8:
            raise ValueError(f"{type(self).__name__} is not byte aligned ({bit_count} bits)")
        header = accumulator.to_bytes(bit_count // 8, "big") if bit_count else b""
        return header + self.payload

    @classmethod
    def unpack(cls, data: bytes) -> "Header":
        """Parse ``data`` into a header instance; trailing bytes form payload."""
        length = cls.header_len()
        if len(data) < length:
            raise ValueError(
                f"truncated {cls.__name__}: need {length} bytes, got {len(data)}"
            )
        accumulator = int.from_bytes(data[:length], "big")
        values: dict[str, int] = {}
        remaining = cls.header_bits()
        for spec in cls.FIELDS:
            remaining -= spec.bits
            values[spec.name] = (accumulator >> remaining) & spec.max_value
        return cls(payload=data[length:], **values)

    def copy(self) -> "Header":
        return type(self)(payload=self.payload, **self.field_values())

    def __len__(self) -> int:
        return self.header_len() + len(self.payload)

    def __eq__(self, other: Any) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return self.field_values() == other.field_values() and self.payload == other.payload

    def __repr__(self) -> str:
        fields = ", ".join(f"{name}={value}" for name, value in self.field_values().items())
        return f"{type(self).__name__}({fields}, payload={len(self.payload)}B)"


@dataclass(frozen=True)
class LayoutField:
    """A field recovered from an RFC ASCII-art header diagram."""

    name: str
    bits: int


@dataclass
class HeaderLayout:
    """A header layout extracted from an RFC drawing.

    ``to_header_class`` materializes a :class:`Header` subclass, which is the
    Python analogue of the C struct SAGE emits for each packet format.
    """

    protocol: str
    fields: list[LayoutField]

    def total_bits(self) -> int:
        return sum(field.bits for field in self.fields)

    def field_names(self) -> list[str]:
        return [field.name for field in self.fields]

    def iter_offsets(self) -> Iterator[tuple[LayoutField, int]]:
        """Yield (field, bit offset from header start) pairs."""
        offset = 0
        for field in self.fields:
            yield field, offset
            offset += field.bits

    def to_header_class(self) -> type[Header]:
        specs = tuple(FieldSpec(field.name, field.bits) for field in self.fields)
        name = "".join(part.capitalize() for part in self.protocol.split("_")) + "Header"
        return type(name, (Header,), {"FIELDS": specs})

    def to_c_struct(self) -> str:
        """Render the layout as the C struct SAGE's paper pipeline emits."""
        lines = [f"struct {self.protocol.lower()}_hdr {{"]
        for field in self.fields:
            c_name = field.name.lower().replace(" ", "_")
            if field.bits in (8, 16, 32, 64):
                lines.append(f"    uint{field.bits}_t {c_name};")
            else:
                base = 8 if field.bits < 8 else 16 if field.bits < 16 else 32
                lines.append(f"    uint{base}_t {c_name} : {field.bits};")
        lines.append("};")
        return "\n".join(lines)
