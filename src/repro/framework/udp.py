"""UDP header codec (RFC 768) with the IPv4 pseudo-header checksum.

NTP messages are "transmitted as UDP datagrams" (RFC 1059 Appendix A), and
traceroute probes are UDP datagrams to improbable ports; both substrates
need a real UDP layer.
"""

from __future__ import annotations

import struct

from .checksum import internet_checksum, ones_complement_sum
from .ip import PROTO_UDP
from .packet import FieldSpec, Header


class UDPHeader(Header):
    FIELDS = (
        FieldSpec("src_port", 16),
        FieldSpec("dst_port", 16),
        FieldSpec("length", 16),
        FieldSpec("checksum", 16),
    )

    def pseudo_header(self, src_ip: int, dst_ip: int) -> bytes:
        """RFC 768 pseudo-header: addresses, zero, protocol, UDP length."""
        return struct.pack("!IIBBH", src_ip, dst_ip, 0, PROTO_UDP, self.length)

    def finalize(self, src_ip: int, dst_ip: int) -> "UDPHeader":
        """Fill length and the pseudo-header checksum; returns self.

        Per RFC 768 a computed checksum of zero is transmitted as 0xFFFF
        (zero means "no checksum").
        """
        self.length = 8 + len(self.payload)
        self.checksum = 0
        value = internet_checksum(self.pseudo_header(src_ip, dst_ip) + self.pack())
        self.checksum = value if value != 0 else 0xFFFF
        return self

    def checksum_ok(self, src_ip: int, dst_ip: int) -> bool:
        if self.checksum == 0:  # checksum not used by sender
            return True
        covered = self.pseudo_header(src_ip, dst_ip) + self.pack()
        return ones_complement_sum(covered) == 0xFFFF


def make_udp(
    src_ip: int, dst_ip: int, src_port: int, dst_port: int, data: bytes
) -> UDPHeader:
    header = UDPHeader(src_port=src_port, dst_port=dst_port, payload=data)
    return header.finalize(src_ip, dst_ip)
