"""OS-facing services of the static framework.

The paper (§5.1): "standards descriptions do not explicitly specify what
abstract functionality they require of the underlying operating system
(e.g., the ability to read interface addresses)."  Generated code gets those
abilities through this module: interface/address enumeration, a monotonic
clock, buffer pools (for the source-quench scenario), and timestamping in
ICMP's milliseconds-since-midnight-UT format.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .addressing import Subnet, int_to_ip, ip_to_int

MS_PER_DAY = 24 * 60 * 60 * 1000


@dataclass
class Interface:
    """One network interface: a name, an address, and its subnet."""

    name: str
    address: int
    subnet: Subnet

    @classmethod
    def from_cidr(cls, name: str, cidr: str) -> "Interface":
        address, _, prefix = cidr.partition("/")
        return cls(name=name, address=ip_to_int(address),
                   subnet=Subnet.parse(cidr))

    def __str__(self) -> str:
        return f"{self.name}: {int_to_ip(self.address)}/{self.subnet.prefix_len}"


class Clock:
    """A deterministic simulated clock (milliseconds since midnight UT).

    ICMP timestamp messages want "the time in milliseconds since midnight
    UT"; a controllable clock keeps tests reproducible.
    """

    def __init__(self, start_ms: int = 0) -> None:
        self._now_ms = start_ms % MS_PER_DAY

    def now_ms(self) -> int:
        return self._now_ms

    def advance(self, ms: int) -> None:
        if ms < 0:
            raise ValueError("clock cannot run backwards")
        self._now_ms = (self._now_ms + ms) % MS_PER_DAY


@dataclass
class BufferPool:
    """A bounded outbound buffer; exhaustion triggers source quench."""

    capacity: int
    queued: list[bytes] = field(default_factory=list)

    @property
    def full(self) -> bool:
        return len(self.queued) >= self.capacity

    def enqueue(self, packet: bytes) -> bool:
        """Queue a packet; returns False (drop) when the buffer is full."""
        if self.full:
            return False
        self.queued.append(packet)
        return True

    def drain(self) -> list[bytes]:
        drained, self.queued = self.queued, []
        return drained


@dataclass
class OSServices:
    """The bundle of OS facilities handed to generated protocol code."""

    interfaces: list[Interface] = field(default_factory=list)
    clock: Clock = field(default_factory=Clock)
    buffers: dict[str, BufferPool] = field(default_factory=dict)

    def interface_for(self, address: int) -> Interface | None:
        """The interface whose subnet contains ``address``, if any."""
        for interface in self.interfaces:
            if interface.subnet.contains(address):
                return interface
        return None

    def own_addresses(self) -> set[int]:
        return {interface.address for interface in self.interfaces}

    def buffer_for(self, name: str, capacity: int = 8) -> BufferPool:
        if name not in self.buffers:
            self.buffers[name] = BufferPool(capacity=capacity)
        return self.buffers[name]
