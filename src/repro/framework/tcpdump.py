"""A tcpdump-like decoder used to verify generated packets (§6.2).

The paper's first end-to-end experiment feeds every generated packet through
tcpdump and requires the output to "list packet types ... with no warnings
or errors" — warnings fire for truncated packets, bad checksums, and
inconsistent lengths.  This module reproduces that checking discipline: it
decodes raw IP datagrams (or pcap captures) into one summary line per packet
and collects the same classes of warnings tcpdump prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import icmp
from .addressing import int_to_ip
from .ip import PROTO_ICMP, PROTO_IGMP, PROTO_UDP, IPv4Header
from .igmp import IGMPHeader
from .ntp import NTP_PORT, NTPHeader
from .pcap import CapturedPacket
from .udp import UDPHeader

_ICMP_SUMMARY = {
    icmp.ECHO: "ICMP echo request",
    icmp.ECHO_REPLY: "ICMP echo reply",
    icmp.DEST_UNREACHABLE: "ICMP destination unreachable",
    icmp.SOURCE_QUENCH: "ICMP source quench",
    icmp.REDIRECT: "ICMP redirect",
    icmp.TIME_EXCEEDED: "ICMP time exceeded",
    icmp.PARAMETER_PROBLEM: "ICMP parameter problem",
    icmp.TIMESTAMP: "ICMP timestamp request",
    icmp.TIMESTAMP_REPLY: "ICMP timestamp reply",
    icmp.INFO_REQUEST: "ICMP information request",
    icmp.INFO_REPLY: "ICMP information reply",
}

# ICMP types whose payload quotes the offending datagram.
_QUOTING_TYPES = {
    icmp.DEST_UNREACHABLE,
    icmp.SOURCE_QUENCH,
    icmp.REDIRECT,
    icmp.TIME_EXCEEDED,
    icmp.PARAMETER_PROBLEM,
}


@dataclass
class DecodedPacket:
    """One packet's decode: a human-readable line plus any warnings."""

    summary: str
    warnings: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.warnings


def decode_packet(data: bytes) -> DecodedPacket:
    """Decode one raw IP datagram, mimicking ``tcpdump -v`` checking."""
    warnings: list[str] = []
    try:
        ip_header = IPv4Header.unpack(data)
    except ValueError as exc:
        return DecodedPacket(summary="[malformed IP packet]", warnings=[str(exc)])

    if ip_header.version != 4:
        warnings.append(f"bad IP version {ip_header.version}")
    if ip_header.ihl < 5:
        warnings.append(f"bad header length {ip_header.ihl}")
    if not ip_header.checksum_ok():
        warnings.append("bad IP header checksum")
    if ip_header.total_length != len(data):
        warnings.append(
            f"IP total length {ip_header.total_length} != capture length {len(data)}"
        )
    if ip_header.ttl == 0:
        warnings.append("TTL is zero")

    src = int_to_ip(ip_header.src)
    dst = int_to_ip(ip_header.dst)
    prefix = f"IP {src} > {dst}:"

    if ip_header.protocol == PROTO_ICMP:
        body, extra = _decode_icmp(ip_header.data)
        warnings.extend(extra)
    elif ip_header.protocol == PROTO_UDP:
        body, extra = _decode_udp(ip_header)
        warnings.extend(extra)
    elif ip_header.protocol == PROTO_IGMP:
        body, extra = _decode_igmp(ip_header.data)
        warnings.extend(extra)
    else:
        body = f"proto {ip_header.protocol}, length {len(ip_header.data)}"

    return DecodedPacket(summary=f"{prefix} {body}", warnings=warnings)


def _decode_icmp(data: bytes) -> tuple[str, list[str]]:
    warnings: list[str] = []
    try:
        header = icmp.ICMPHeader.unpack(data)
    except ValueError as exc:
        return "[truncated ICMP]", [str(exc)]
    summary = _ICMP_SUMMARY.get(header.type, f"ICMP type {header.type}")
    if not header.checksum_ok():
        warnings.append("bad ICMP checksum")
    if header.type in (icmp.ECHO, icmp.ECHO_REPLY):
        summary += f", id {header.identifier}, seq {header.sequence}"
    if header.type in _QUOTING_TYPES:
        if len(header.payload) < 20:
            warnings.append("ICMP error payload too short to hold inner IP header")
        else:
            try:
                inner = IPv4Header.unpack(header.payload)
                summary += f" (inner proto {inner.protocol_name()})"
                expected = 20 + inner.options_len + 8
                if len(header.payload) < expected:
                    warnings.append(
                        "ICMP error payload shorter than inner header + 64 bits"
                    )
            except ValueError:
                warnings.append("ICMP error payload does not parse as IP")
    summary += f", length {len(data)}"
    return summary, warnings


def _decode_udp(ip_header: IPv4Header) -> tuple[str, list[str]]:
    warnings: list[str] = []
    try:
        header = UDPHeader.unpack(ip_header.data)
    except ValueError as exc:
        return "[truncated UDP]", [str(exc)]
    if header.length != len(ip_header.data):
        warnings.append(
            f"UDP length {header.length} != IP payload length {len(ip_header.data)}"
        )
    if not header.checksum_ok(ip_header.src, ip_header.dst):
        warnings.append("bad UDP checksum")
    summary = f"UDP {header.src_port} > {header.dst_port}, length {len(header.payload)}"
    if NTP_PORT in (header.src_port, header.dst_port):
        try:
            ntp = NTPHeader.unpack(header.payload)
            summary += f" NTPv{ntp.version} {ntp.mode_name()}, stratum {ntp.stratum}"
        except ValueError:
            warnings.append("NTP port but payload shorter than an NTP header")
    return summary, warnings


def _decode_igmp(data: bytes) -> tuple[str, list[str]]:
    warnings: list[str] = []
    try:
        header = IGMPHeader.unpack(data)
    except ValueError as exc:
        return "[truncated IGMP]", [str(exc)]
    if not header.checksum_ok():
        warnings.append("bad IGMP checksum")
    summary = f"IGMP {header.type_name()}, group {int_to_ip(header.group_address)}"
    return summary, warnings


def decode_capture(packets: list[CapturedPacket]) -> list[DecodedPacket]:
    """Decode a pcap capture, adding truncation warnings like tcpdump."""
    decoded = []
    for captured in packets:
        result = decode_packet(captured.data)
        if captured.truncated:
            result.warnings.append(
                f"packet truncated in capture ({len(captured.data)} of "
                f"{captured.original_length} bytes)"
            )
        decoded.append(result)
    return decoded


def verify_clean(packets: list[bytes]) -> tuple[bool, list[str]]:
    """The §6.2 acceptance check: every packet decodes warning-free."""
    all_warnings: list[str] = []
    for index, packet in enumerate(packets):
        decoded = decode_packet(packet)
        all_warnings.extend(f"packet {index}: {w}" for w in decoded.warnings)
    return not all_warnings, all_warnings
