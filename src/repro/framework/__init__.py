"""The SAGE *static framework*: protocol codecs and OS services.

Paper §5.1: "sage requires a pre-defined static framework that provides such
functionality along with an API to access and manipulate headers of other
protocols, and to interface with the OS."  Everything generated code calls
lives here: one's-complement arithmetic, byte-order conversion, IPv4/ICMP/
UDP/IGMP/NTP/BFD codecs, interface/clock/buffer services, and the pcap +
tcpdump tooling used to verify emitted packets.
"""

from .addressing import Subnet, int_to_ip, ip_to_int
from .byteorder import htonl, htons, ntohl, ntohs, swap16, swap32
from .checksum import (
    incremental_update,
    internet_checksum,
    ones_complement_sum,
    verify_checksum,
)
from .netdev import BufferPool, Clock, Interface, OSServices
from .packet import FieldSpec, Header, HeaderLayout, LayoutField
from .pcap import (
    CapturedPacket,
    packets_to_pcap_bytes,
    read_pcap,
    read_pcap_file,
    write_pcap,
    write_pcap_file,
)
from .tcpdump import DecodedPacket, decode_capture, decode_packet, verify_clean

__all__ = [
    "BufferPool",
    "CapturedPacket",
    "Clock",
    "DecodedPacket",
    "FieldSpec",
    "Header",
    "HeaderLayout",
    "Interface",
    "LayoutField",
    "OSServices",
    "Subnet",
    "decode_capture",
    "decode_packet",
    "htonl",
    "htons",
    "incremental_update",
    "int_to_ip",
    "internet_checksum",
    "ip_to_int",
    "ntohl",
    "ntohs",
    "ones_complement_sum",
    "packets_to_pcap_bytes",
    "read_pcap",
    "read_pcap_file",
    "swap16",
    "swap32",
    "verify_checksum",
    "verify_clean",
    "write_pcap",
    "write_pcap_file",
]
