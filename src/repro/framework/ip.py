"""IPv4 header codec and helpers (RFC 791 subset used by the evaluation).

The static framework's job (paper §5.1) is to give generated protocol code an
API onto the protocols *below* it: ICMP code reads and writes IP source and
destination addresses, TTL, and total length, and relies on the IP layer for
header checksumming.  Options are carried verbatim so the checksum-range
interpretation "header + payload + any IP options" (Table 3, index 5) can be
exercised.
"""

from __future__ import annotations

from .checksum import internet_checksum, verify_checksum
from .packet import FieldSpec, Header

PROTO_ICMP = 1
PROTO_IGMP = 2
PROTO_TCP = 6
PROTO_UDP = 17

PROTOCOL_NAMES = {
    PROTO_ICMP: "ICMP",
    PROTO_IGMP: "IGMP",
    PROTO_TCP: "TCP",
    PROTO_UDP: "UDP",
}


class IPv4Header(Header):
    """Fixed 20-byte IPv4 header; options live at the front of ``payload``.

    ``ihl`` is in 32-bit words.  ``options_len`` bytes at the start of the
    payload are IP options (``ihl`` > 5); the rest is the upper-layer data.
    """

    FIELDS = (
        FieldSpec("version", 4, default=4),
        FieldSpec("ihl", 4, default=5),
        FieldSpec("tos", 8),
        FieldSpec("total_length", 16),
        FieldSpec("identification", 16),
        FieldSpec("flags", 3),
        FieldSpec("fragment_offset", 13),
        FieldSpec("ttl", 8, default=64),
        FieldSpec("protocol", 8),
        FieldSpec("header_checksum", 16),
        FieldSpec("src", 32),
        FieldSpec("dst", 32),
    )

    @property
    def options_len(self) -> int:
        return max(0, (self.ihl - 5) * 4)

    @property
    def options(self) -> bytes:
        return self.payload[: self.options_len]

    @property
    def data(self) -> bytes:
        """Upper-layer data (payload minus IP options)."""
        return self.payload[self.options_len:]

    def header_bytes(self) -> bytes:
        """The bytes covered by the IP header checksum: 20 fixed + options."""
        return self.pack()[: 20 + self.options_len]

    def finalize(self) -> "IPv4Header":
        """Fill in total_length and header_checksum; returns self."""
        self.total_length = 20 + len(self.payload)
        self.header_checksum = 0
        self.header_checksum = internet_checksum(self.header_bytes())
        return self

    def checksum_ok(self) -> bool:
        return verify_checksum(self.header_bytes())

    def protocol_name(self) -> str:
        return PROTOCOL_NAMES.get(self.protocol, str(self.protocol))


def make_ip_packet(
    src: int,
    dst: int,
    protocol: int,
    data: bytes,
    ttl: int = 64,
    tos: int = 0,
    identification: int = 0,
    options: bytes = b"",
) -> IPv4Header:
    """Build a finalized IPv4 packet carrying ``data``."""
    if len(options) % 4:
        raise ValueError("IP options must be padded to a 32-bit boundary")
    packet = IPv4Header(
        ihl=5 + len(options) // 4,
        tos=tos,
        ttl=ttl,
        protocol=protocol,
        identification=identification,
        src=src,
        dst=dst,
        payload=options + data,
    )
    return packet.finalize()


def reply_skeleton(request: IPv4Header, protocol: int | None = None) -> IPv4Header:
    """Start a reply to ``request``: addresses reversed, fresh TTL.

    This is the framework hook behind the RFC sentence "the source and
    destination addresses are simply reversed" — the static context maps
    that phrase to an exchange of ``ip->src`` and ``ip->dst``.
    """
    return IPv4Header(
        tos=request.tos,
        ttl=64,
        protocol=request.protocol if protocol is None else protocol,
        src=request.dst,
        dst=request.src,
    )
