"""Lightweight instrumentation counters for the winnow hot path.

One process-global :class:`WinnowProfile` accumulates what the memoized
§4.2 checks (:mod:`.checks`) and the cached :class:`WinnowStage` actually
did: winnow calls and form flow, per-memo hit/miss counts for the
sid-keyed canonical-signature / type / nesting tables, the per-node
span/calls traversal caches, the stage-level winnow result cache, and how
often the VF2 oracle (debug flag) was consulted.  Counting is always on —
plain integer attribute increments, noise next to the traversals they
describe — so a snapshot is always truthful for the process and a *delta*
between two snapshots is truthful for any bracketed region (one
``WinnowStage.run``, one benchmark sweep).

Consumers:

* ``SageService.winnow_diagnostics`` wraps a corpus winnow in a delta and
  reports it under the ``"profile"`` key;
* ``python -m repro winnow --profile`` renders the same delta;
* ``benchmarks/pipeline_smoke.py`` records the warm sweep's counters into
  ``BENCH_pipeline.json`` under ``winnow_profile``.

Hit *rates* are derived at snapshot time, never stored: a rate is only
meaningful relative to the window it was measured over.
"""

from __future__ import annotations

__all__ = ["WinnowProfile", "PROFILE", "profile_snapshot", "reset_profile",
           "profile_delta"]

#: The raw counter names, in reporting order.  Each is a monotonically
#: increasing int on :data:`PROFILE`.
COUNTER_NAMES = (
    "winnows",              # winnow() calls (cache misses at the stage level)
    "forms_in",             # base logical forms entering winnow()
    "forms_survived",       # survivors leaving winnow()
    "canon_memo_hits",      # sid → canonical-form probes answered
    "canon_memo_misses",
    "type_memo_hits",       # sid → well-typed probes answered
    "type_memo_misses",
    "nesting_memo_hits",    # sid → nesting-ordered probes answered
    "nesting_memo_misses",
    "span_cache_hits",      # per-node span_of results answered
    "span_cache_misses",
    "calls_cache_hits",     # per-node iter_calls tuples answered
    "calls_cache_misses",
    "form_cache_hits",      # per-form provenance check results answered
    "form_cache_misses",    # (argument ordering + distributivity)
    "stage_cache_hits",     # WinnowStage result-cache probes answered
    "stage_cache_misses",
    "oracle_calls",         # VF2 isomorphism runs (debug oracle only)
)

#: hit/miss counter pairs → the derived rate key reported in snapshots.
_RATES = (
    ("canon_memo_hits", "canon_memo_misses", "canon_memo_hit_rate"),
    ("type_memo_hits", "type_memo_misses", "type_memo_hit_rate"),
    ("nesting_memo_hits", "nesting_memo_misses", "nesting_memo_hit_rate"),
    ("span_cache_hits", "span_cache_misses", "span_cache_hit_rate"),
    ("calls_cache_hits", "calls_cache_misses", "calls_cache_hit_rate"),
    ("form_cache_hits", "form_cache_misses", "form_cache_hit_rate"),
    ("stage_cache_hits", "stage_cache_misses", "stage_cache_hit_rate"),
)


class WinnowProfile:
    """A bundle of monotonic counters (see module docstring)."""

    __slots__ = COUNTER_NAMES

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        for name in COUNTER_NAMES:
            setattr(self, name, 0)

    def counts(self) -> dict:
        """The raw counters as a plain dict (JSON-safe)."""
        return {name: getattr(self, name) for name in COUNTER_NAMES}

    def snapshot(self) -> dict:
        """Raw counters plus the derived hit rates (JSON-safe)."""
        return _with_rates(self.counts())


def _with_rates(counts: dict) -> dict:
    out = dict(counts)
    for hits, misses, rate in _RATES:
        total = counts[hits] + counts[misses]
        out[rate] = (counts[hits] / total) if total else 0.0
    return out


#: The process-global profile every winnow in this process reports into.
PROFILE = WinnowProfile()


def profile_snapshot() -> dict:
    """Counters-plus-rates for everything winnowed so far in this process."""
    return PROFILE.snapshot()


def reset_profile() -> None:
    """Zero the process-global counters (test/benchmark bracketing)."""
    PROFILE.reset()


def profile_delta(before: dict, after: dict) -> dict:
    """The counter delta ``after - before``, with rates recomputed over the
    delta window.  Both arguments are ``counts()``/``snapshot()`` dicts."""
    delta = {name: after[name] - before[name] for name in COUNTER_NAMES}
    return _with_rates(delta)
