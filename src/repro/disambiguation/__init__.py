"""The §4.2 disambiguation stage: five checks plus the winnowing driver."""

from .checks import (
    ArgumentOrderingCheck,
    AssociativityCheck,
    Check,
    CheckSuite,
    DistributivityCheck,
    PredicateOrderingCheck,
    TypeCheck,
)
from .winnow import (
    IsolatedEffect,
    WinnowSummary,
    WinnowTrace,
    isolated_effects,
    summarize,
    winnow,
)

__all__ = [
    "ArgumentOrderingCheck",
    "AssociativityCheck",
    "Check",
    "CheckSuite",
    "DistributivityCheck",
    "IsolatedEffect",
    "PredicateOrderingCheck",
    "TypeCheck",
    "WinnowSummary",
    "WinnowTrace",
    "isolated_effects",
    "summarize",
    "winnow",
]
