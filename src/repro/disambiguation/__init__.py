"""The §4.2 disambiguation stage: checks, winnowing, and human resolutions."""

from .checks import (
    ArgumentOrderingCheck,
    AssociativityCheck,
    Check,
    CheckSuite,
    DistributivityCheck,
    NestingRule,
    PredicateOrderingCheck,
    TypeCheck,
    reset_winnow_state,
)
from .profile import (
    WinnowProfile,
    profile_delta,
    profile_snapshot,
    reset_profile,
)
from .resolution import (
    RESOLUTION_KINDS,
    DecisionJournal,
    Resolution,
    ResolutionError,
    resolution_for_rewrite,
)
from .winnow import (
    IsolatedEffect,
    WinnowSummary,
    WinnowTrace,
    isolated_effects,
    summarize,
    winnow,
)

__all__ = [
    "ArgumentOrderingCheck",
    "AssociativityCheck",
    "Check",
    "CheckSuite",
    "DecisionJournal",
    "DistributivityCheck",
    "IsolatedEffect",
    "NestingRule",
    "PredicateOrderingCheck",
    "RESOLUTION_KINDS",
    "Resolution",
    "ResolutionError",
    "TypeCheck",
    "WinnowProfile",
    "WinnowSummary",
    "WinnowTrace",
    "isolated_effects",
    "profile_delta",
    "profile_snapshot",
    "reset_profile",
    "reset_winnow_state",
    "resolution_for_rewrite",
    "summarize",
    "winnow",
]
