"""The §4.2 disambiguation stage: checks, winnowing, and human resolutions."""

from .checks import (
    ArgumentOrderingCheck,
    AssociativityCheck,
    Check,
    CheckSuite,
    DistributivityCheck,
    PredicateOrderingCheck,
    TypeCheck,
)
from .resolution import (
    RESOLUTION_KINDS,
    DecisionJournal,
    Resolution,
    ResolutionError,
    resolution_for_rewrite,
)
from .winnow import (
    IsolatedEffect,
    WinnowSummary,
    WinnowTrace,
    isolated_effects,
    summarize,
    winnow,
)

__all__ = [
    "ArgumentOrderingCheck",
    "AssociativityCheck",
    "Check",
    "CheckSuite",
    "DecisionJournal",
    "DistributivityCheck",
    "IsolatedEffect",
    "PredicateOrderingCheck",
    "RESOLUTION_KINDS",
    "Resolution",
    "ResolutionError",
    "TypeCheck",
    "WinnowSummary",
    "WinnowTrace",
    "isolated_effects",
    "resolution_for_rewrite",
    "summarize",
    "winnow",
]
