"""Operator resolutions and the decision journal (Figure 4's feedback loop).

The paper's defining claim is *semi*-automation: when winnowing leaves a
sentence ambiguous (or parsing fails outright), SAGE escalates to a human
whose decision is recorded and replayed.  ``rewrites.json`` froze that loop
into a static table of sentence rewrites; this module generalizes it into
first-class provenance:

* :class:`Resolution` — one recorded human decision about one sentence.
  Three kinds cover the paper's interventions:

  - ``rewrite`` — replace the sentence with revised text before parsing
    (Table 6's ambiguous / unparsed / imprecise rewrites);
  - ``annotate`` — mark the sentence non-actionable (the @AdvComment
    annotation for descriptive prose);
  - ``select_lf`` — keep the sentence as written but force one surviving
    logical form, named by its stable structural signature (the "check
    choice" the paper's operators make when the checks cannot).

* :class:`DecisionJournal` — an append-only, JSON-persisted record of
  resolutions.  A :class:`~repro.rfc.registry.ProtocolRegistry` with a
  journal attached replays it on every later run: rewrite/annotate
  resolutions overlay the bundled ``rewrites.json`` table, select_lf
  resolutions feed the engine's selection map.  The journal therefore
  *subsumes* ``rewrites.json`` — a registry constructed with
  ``bundled_rewrites=False`` plus a journal holding the same decisions
  reproduces the bundled revised-mode output byte-for-byte (locked by
  ``tests/test_session.py``).
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field as dataclass_field, replace

from ..rfc.corpus import Rewrite, sentence_key

JOURNAL_SCHEMA_VERSION = 1

KIND_REWRITE = "rewrite"
KIND_ANNOTATE = "annotate"
KIND_SELECT_LF = "select_lf"

RESOLUTION_KINDS = (KIND_REWRITE, KIND_ANNOTATE, KIND_SELECT_LF)

#: Rewrite categories an operator may record (mirrors ``rewrites.json``).
REWRITE_CATEGORIES = ("ambiguous", "unparsed", "imprecise")


class ResolutionError(ValueError):
    """A structurally invalid resolution (unknown kind, missing payload)."""


@dataclass(frozen=True)
class Resolution:
    """One recorded human decision about one specification sentence."""

    kind: str
    original: str
    protocol: str = ""
    revised: str = ""  # rewrite: the replacement sentence(s)
    category: str = ""  # rewrite: ambiguous | unparsed | imprecise
    lf_signature: str = ""  # select_lf: the chosen survivor's signature
    note: str = ""
    status_before: str = ""  # provenance: the status that escalated it

    def __post_init__(self) -> None:
        if self.kind not in RESOLUTION_KINDS:
            raise ResolutionError(
                f"unknown resolution kind {self.kind!r}: expected one of "
                f"{', '.join(RESOLUTION_KINDS)}"
            )
        if not self.original.strip():
            raise ResolutionError("a resolution needs the original sentence")
        if self.kind == KIND_REWRITE:
            if not self.revised.strip():
                raise ResolutionError("a rewrite resolution needs revised text")
            if self.category and self.category not in REWRITE_CATEGORIES:
                raise ResolutionError(
                    f"unknown rewrite category {self.category!r}: expected one "
                    f"of {', '.join(REWRITE_CATEGORIES)}"
                )
        if self.kind == KIND_SELECT_LF and not self.lf_signature:
            raise ResolutionError(
                "a select_lf resolution needs the chosen LF signature"
            )

    # -- constructors ---------------------------------------------------------
    @staticmethod
    def rewrite(original: str, revised: str, category: str = "ambiguous",
                **kwargs) -> "Resolution":
        return Resolution(kind=KIND_REWRITE, original=original,
                          revised=revised, category=category, **kwargs)

    @staticmethod
    def annotate(original: str, note: str = "", **kwargs) -> "Resolution":
        return Resolution(kind=KIND_ANNOTATE, original=original, note=note,
                          **kwargs)

    @staticmethod
    def select_lf(original: str, lf_signature: str, **kwargs) -> "Resolution":
        return Resolution(kind=KIND_SELECT_LF, original=original,
                          lf_signature=lf_signature, **kwargs)

    # -- views ----------------------------------------------------------------
    @property
    def key(self) -> str:
        """Whitespace-insensitive identity of the resolved sentence."""
        return sentence_key(self.original)

    @property
    def scope_key(self):
        """The replay-index key: protocol-scoped when the resolution
        records one, else the bare sentence key.

        Identical sentences appear in more than one RFC (the
        checksum-zeroing sentence is in both ICMP and IGMP); a decision an
        operator made inside one protocol's session must not silently
        rewrite the other corpus.  Scoped entries only match their own
        protocol; only deliberately protocol-less resolutions (like the
        lifted legacy ``rewrites.json`` table) apply everywhere.
        """
        if self.protocol:
            return (self.protocol.upper(), self.key)
        return self.key

    def as_rewrite(self) -> Rewrite | None:
        """This resolution as a pipeline :class:`Rewrite` entry, or None.

        ``rewrite`` maps to its category; ``annotate`` maps to the
        non-actionable category (same replay machinery as the bundled
        table); ``select_lf`` is not a rewrite at all — it feeds the
        engine's selection map instead.
        """
        if self.kind == KIND_REWRITE:
            return Rewrite(original=self.original, revised=self.revised,
                           category=self.category or "ambiguous",
                           note=self.note)
        if self.kind == KIND_ANNOTATE:
            return Rewrite(original=self.original, revised=self.revised,
                           category="non-actionable", note=self.note)
        return None

    # -- serialization --------------------------------------------------------
    def to_dict(self) -> dict:
        record = {"kind": self.kind, "original": self.original}
        for name in ("protocol", "revised", "category", "lf_signature",
                     "note", "status_before"):
            value = getattr(self, name)
            if value:
                record[name] = value
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "Resolution":
        known = {"kind", "original", "protocol", "revised", "category",
                 "lf_signature", "note", "status_before"}
        unknown = set(record) - known
        if unknown:
            raise ResolutionError(
                f"unknown resolution fields: {', '.join(sorted(unknown))}"
            )
        return cls(**record)


class DecisionJournal:
    """An append-only, persistable record of operator resolutions.

    The journal is the governance artifact: every human decision the
    pipeline replays is explicit, ordered, and serializable.  When several
    resolutions target the same sentence, the latest wins (an operator can
    revise an earlier decision by appending a new one).

    With a ``path`` bound (at construction or via :meth:`save`), every
    :meth:`record` persists immediately — the journal on disk is always
    current.
    """

    def __init__(self, resolutions: list[Resolution] | None = None,
                 path: str | pathlib.Path | None = None) -> None:
        self.resolutions: list[Resolution] = list(resolutions or [])
        self.path = pathlib.Path(path) if path is not None else None

    def __len__(self) -> int:
        return len(self.resolutions)

    def __iter__(self):
        return iter(self.resolutions)

    # -- recording ------------------------------------------------------------
    def record(self, resolution: Resolution) -> Resolution:
        """Append one resolution (and persist, when a path is bound)."""
        if not isinstance(resolution, Resolution):
            raise ResolutionError(
                f"expected a Resolution, got {type(resolution).__name__}"
            )
        self.resolutions.append(resolution)
        if self.path is not None:
            self.save()
        return resolution

    # -- replay views ---------------------------------------------------------
    def by_key(self) -> dict:
        """Latest resolution per :attr:`Resolution.scope_key` (append
        order, latest wins).  Keys are ``(PROTOCOL, sentence_key)`` tuples
        for protocol-scoped resolutions, bare sentence keys otherwise."""
        index: dict = {}
        for resolution in self.resolutions:
            index[resolution.scope_key] = resolution
        return index

    def rewrites(self) -> dict:
        """The rewrite/annotate overlay for ``ProtocolRegistry.rewrites``
        (scope-keyed; see :meth:`by_key`)."""
        overlay: dict = {}
        for key, resolution in self.by_key().items():
            rewrite = resolution.as_rewrite()
            if rewrite is not None:
                overlay[key] = rewrite
        return overlay

    def selections(self) -> dict:
        """The force-select map (scope key → LF signature) the engine
        consults when winnowing leaves several survivors."""
        return {
            key: resolution.lf_signature
            for key, resolution in self.by_key().items()
            if resolution.kind == KIND_SELECT_LF
        }

    # -- persistence ----------------------------------------------------------
    def to_json(self, indent: int | None = 2) -> str:
        payload = {
            "schema": JOURNAL_SCHEMA_VERSION,
            "resolutions": [r.to_dict() for r in self.resolutions],
        }
        return json.dumps(payload, indent=indent) + "\n"

    @classmethod
    def from_json(cls, text: str,
                  path: str | pathlib.Path | None = None) -> "DecisionJournal":
        payload = json.loads(text)
        schema = payload.get("schema")
        if schema != JOURNAL_SCHEMA_VERSION:
            raise ResolutionError(
                f"unsupported journal schema {schema!r} "
                f"(this build reads schema {JOURNAL_SCHEMA_VERSION})"
            )
        resolutions = [Resolution.from_dict(r)
                       for r in payload.get("resolutions", [])]
        return cls(resolutions, path=path)

    def save(self, path: str | pathlib.Path | None = None) -> pathlib.Path:
        """Write the journal as JSON; remembers ``path`` for later saves."""
        if path is not None:
            self.path = pathlib.Path(path)
        if self.path is None:
            raise ResolutionError("no journal path bound: pass save(path)")
        self.path.write_text(self.to_json(), encoding="utf-8")
        return self.path

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "DecisionJournal":
        """Read a journal from ``path`` (a missing file is an empty journal
        bound to that path — sessions start journals lazily)."""
        path = pathlib.Path(path)
        if not path.exists():
            return cls(path=path)
        return cls.from_json(path.read_text(encoding="utf-8"), path=path)


def resolution_for_rewrite(rewrite: Rewrite, protocol: str = "",
                           status_before: str = "") -> Resolution:
    """Lift a legacy :class:`Rewrite` entry into a :class:`Resolution` —
    the migration path from ``rewrites.json`` to the journal."""
    if rewrite.category == "non-actionable":
        return Resolution(kind=KIND_ANNOTATE, original=rewrite.original,
                          revised=rewrite.revised, note=rewrite.note,
                          protocol=protocol, status_before=status_before)
    return Resolution(kind=KIND_REWRITE, original=rewrite.original,
                      revised=rewrite.revised, category=rewrite.category,
                      note=rewrite.note, protocol=protocol,
                      status_before=status_before)
