"""The winnowing driver: sequential and isolated check application.

Produces the data behind Figure 5 (LF counts after each sequential check)
and Figure 6 (per-check effect in isolation: how many LFs each check removes
on its own, and how many sentences it touches).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ccg.semantics import Sem, consts_of
from .checks import Check, CheckSuite
from .profile import PROFILE

STAGE_BASE = "Base"
STAGE_FINAL = "Final Selection"


@dataclass
class WinnowTrace:
    """Per-sentence record of LF counts after each sequential stage."""

    sentence: str
    counts: dict[str, int] = field(default_factory=dict)
    survivors: list[Sem] = field(default_factory=list)
    base_forms: list[Sem] = field(default_factory=list)

    @property
    def base_count(self) -> int:
        return self.counts.get(STAGE_BASE, 0)

    @property
    def final_count(self) -> int:
        return len(self.survivors)

    @property
    def ambiguous_after_winnowing(self) -> bool:
        return self.final_count > 1


def winnow(sentence: str, forms: list[Sem], suite: CheckSuite | None = None) -> WinnowTrace:
    """Apply the §4.2 checks in order, recording the count after each."""
    suite = suite or CheckSuite.default()
    PROFILE.winnows += 1
    PROFILE.forms_in += len(forms)
    trace = WinnowTrace(sentence=sentence, base_forms=list(forms))
    trace.counts[STAGE_BASE] = len(forms)
    current = list(forms)
    for check in suite.in_order():
        filtered = check.filter(current)
        # A check must never wipe out every reading: if it would, the check
        # does not apply to this sentence (mirrors the paper's blocklist
        # semantics, which only ever *narrows* ambiguity).
        if filtered or not current:
            current = filtered
        trace.counts[check.name] = len(current)
    current = final_selection(current)
    trace.counts[STAGE_FINAL] = len(current)
    trace.survivors = current
    PROFILE.forms_survived += len(current)
    return trace


def final_selection(forms: list[Sem]) -> list[Sem]:
    """Figure 1's "Final LF Selection": prefer content-maximal readings.

    When vacuous-modifier lexical entries let a reading drop a constituent
    (e.g. "returned in X" parsed without binding X), the reading that grounds
    *more* of the sentence's constants is the faithful one.  Keep only the
    LFs with the maximal number of constants, sorted by their stable
    :meth:`~repro.ccg.semantics.Sem.sort_key` so survivor order (and every
    session diff or JSON snapshot derived from it) is reproducible.
    """
    if len(forms) <= 1:
        return list(forms)
    counts = [len(consts_of(form)) for form in forms]
    best = max(counts)
    kept = [form for form, count in zip(forms, counts) if count == best]
    return sorted(kept, key=Sem.sort_key)


@dataclass
class IsolatedEffect:
    """Figure 6 data: one check applied alone to the base LF sets."""

    check_name: str
    removed_per_sentence: list[int] = field(default_factory=list)
    affected_sentences: int = 0

    @property
    def mean_removed(self) -> float:
        if not self.removed_per_sentence:
            return 0.0
        return sum(self.removed_per_sentence) / len(self.removed_per_sentence)


def isolated_effects(
    sentences: list[tuple[str, list[Sem]]], suite: CheckSuite | None = None
) -> list[IsolatedEffect]:
    """Apply each check alone to every sentence's base LF set (Figure 6)."""
    suite = suite or CheckSuite.default()
    effects = []
    for check in suite.in_order():
        effect = IsolatedEffect(check_name=check.name)
        for _sentence, forms in sentences:
            if len(forms) <= 1:
                continue
            removed = len(forms) - len(check.filter(list(forms)))
            effect.removed_per_sentence.append(removed)
            if removed > 0:
                effect.affected_sentences += 1
        effects.append(effect)
    return effects


@dataclass
class WinnowSummary:
    """Figure 5 data over a corpus: per-stage max/avg/min LF counts."""

    stages: list[str]
    max_counts: list[int]
    avg_counts: list[float]
    min_counts: list[int]
    sentence_count: int

    def rows(self) -> list[tuple[str, int, float, int]]:
        return list(
            zip(self.stages, self.max_counts, self.avg_counts, self.min_counts)
        )


def summarize(traces: list[WinnowTrace], ambiguous_only: bool = True) -> WinnowSummary:
    """Aggregate winnow traces into the Figure 5 max/avg/min series.

    The paper plots "text fragments that could lead to multiple logical
    forms", so by default only sentences with a base count > 1 contribute.
    """
    relevant = [
        trace
        for trace in traces
        if trace.base_count > (1 if ambiguous_only else 0)
    ]
    if not relevant:
        return WinnowSummary([], [], [], [], 0)
    stages = [STAGE_BASE] + [
        check.name for check in CheckSuite.default().in_order()
    ] + [STAGE_FINAL]
    max_counts, avg_counts, min_counts = [], [], []
    for stage in stages:
        values = [trace.counts.get(stage, 0) for trace in relevant]
        max_counts.append(max(values))
        avg_counts.append(sum(values) / len(values))
        min_counts.append(min(values))
    return WinnowSummary(
        stages=stages,
        max_counts=max_counts,
        avg_counts=avg_counts,
        min_counts=min_counts,
        sentence_count=len(relevant),
    )
