"""The five winnowing checks of §4.2.

Each check filters a sentence's logical-form set:

* **Type** — predicate argument types (allowlist; e.g. @Action's first
  argument must be a function name, @Is cannot assign to a constant).
* **Argument ordering** — order-sensitive predicates must take their
  arguments in source order (@If's condition must be the clause adjacent to
  the "if" token; @Is's target precedes its value).
* **Predicate ordering** — blocklisted nestings are removed (@Is may not
  appear beneath @Of: the "(A of B) is C" vs "A of (B is C)" case).
* **Distributivity** — when both the grouped "(A and B) is C" and the
  distributed "(A is C) and (B is C)" survive, keep the grouped form.
* **Associativity** — logical forms equal up to associative regrouping
  (graph-isomorphic after flattening, Figure 3) collapse to one.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ccg.semantics import Call, Sem, iter_calls, span_of
from ..lf.graph import canonical_signature, isomorphic
from ..lf.predicates import (
    LEFT_TO_RIGHT_PREDICATES,
    TRIGGER_ADJACENT_PREDICATES,
    ConstantClasses,
    TypeRule,
    default_type_rules,
    rules_by_predicate,
)


class Check:
    """Base winnowing check: filters a list of LFs."""

    name = "check"

    def filter(self, forms: list[Sem]) -> list[Sem]:
        raise NotImplementedError


class TypeCheck(Check):
    """Remove LFs with ill-typed predicate arguments."""

    name = "Type"

    def __init__(self, rules: list[TypeRule] | None = None,
                 classes: ConstantClasses | None = None) -> None:
        self.rules = rules if rules is not None else default_type_rules()
        self.classes = classes or ConstantClasses()
        self._by_predicate = rules_by_predicate(self.rules)

    def well_typed(self, form: Sem) -> bool:
        for call in iter_calls(form):
            for rule in self._by_predicate.get(call.pred, []):
                if not rule.check(call, self.classes):
                    return False
        return True

    def filter(self, forms: list[Sem]) -> list[Sem]:
        return [form for form in forms if self.well_typed(form)]


class ArgumentOrderingCheck(Check):
    """Remove LFs whose order-sensitive arguments violate source order.

    For trigger-adjacent predicates (@If, @AdvBefore, @Goal) the first
    argument must be the clause that immediately follows the trigger word.
    For left-to-right predicates (@Is, @Reach) the target's source span must
    begin before the value's.
    """

    name = "Argument Ordering"

    def ordered(self, form: Sem) -> bool:
        for call in iter_calls(form):
            if call.pred in TRIGGER_ADJACENT_PREDICATES:
                if not self._trigger_adjacent(call):
                    return False
            if call.pred in LEFT_TO_RIGHT_PREDICATES:
                if not self._left_to_right(call):
                    return False
        return True

    @staticmethod
    def _trigger_adjacent(call: Call) -> bool:
        """The first argument owns the tokens right of the trigger word.

        For "If A, B" (trigger sentence-initial) the condition A must start
        after the trigger and the consequent B must follow A.  For "B if A"
        (trailing trigger) A still follows the trigger while B sits wholly
        before it.  A violating LF has B's material between the trigger and
        A — the swapped-argument over-generation.
        """
        if call.trigger is None or len(call.args) < 2:
            return True
        first_span = span_of(call.args[0])
        second_span = span_of(call.args[1])
        if first_span is None or second_span is None:
            return True
        if first_span[0] <= call.trigger:
            return False  # the trigger's clause must follow the trigger
        return second_span[1] <= call.trigger or second_span[0] >= first_span[0]

    @staticmethod
    def _left_to_right(call: Call) -> bool:
        if len(call.args) < 2:
            return True
        left_span = span_of(call.args[0])
        right_span = span_of(call.args[1])
        if left_span is None or right_span is None:
            return True
        return left_span[0] < right_span[0]

    def filter(self, forms: list[Sem]) -> list[Sem]:
        return [form for form in forms if self.ordered(form)]


@dataclass(frozen=True)
class NestingRule:
    """``inner`` may not appear as a direct argument of ``outer``.

    ``position`` restricts the rule to one argument slot (None = any slot).
    ``transitive`` widens it to "anywhere beneath ``outer``".
    """

    outer: str
    inner: str
    position: int | None = None
    transitive: bool = False


# The blocklist: structural nestings RFC prose never means.
DEFAULT_ORDERING_BLOCKLIST: tuple[NestingRule, ...] = (
    # "(A of B) is C" is the only reading of "A of B is C" (§4.1).
    NestingRule("Of", "Is", transitive=True),
    # The checksum-range anchor scopes over the whole @Of chain (sentence H).
    NestingRule("Of", "StartsWith"),
    # ... and an assignment never nests inside the range expression.
    NestingRule("StartsWith", "Is", transitive=True),
    # A conditional cannot live inside a field path.
    NestingRule("Of", "If", transitive=True),
    # "A and B of C": of-attachment binds low ("A and (B of C)").
    NestingRule("Of", "And", position=0),
    # "A of B in C" / "A in B of C": prepositional attachment binds low.
    NestingRule("In", "Of", position=0),
    NestingRule("Of", "In", position=0),
    # "A and B from C": the source modifier scopes over the conjunction.
    NestingRule("And", "From"),
    # Advice attaches to its nearest clause, not over a whole conditional.
    NestingRule("AdvBefore", "If", position=1),
)


class PredicateOrderingCheck(Check):
    """Remove LFs containing blocklisted predicate nestings."""

    name = "Predicate Ordering"

    def __init__(self, blocklist: tuple[NestingRule, ...] = DEFAULT_ORDERING_BLOCKLIST):
        self.blocklist = blocklist

    def ordered(self, form: Sem) -> bool:
        return not any(self._violates(call) for call in iter_calls(form))

    def _violates(self, call: Call) -> bool:
        for rule in self.blocklist:
            if call.pred != rule.outer:
                continue
            for position, arg in enumerate(call.args):
                if rule.position is not None and position != rule.position:
                    continue
                if rule.transitive:
                    if any(sub.pred == rule.inner for sub in iter_calls(arg)):
                        return True
                elif isinstance(arg, Call) and arg.pred == rule.inner:
                    return True
        return False

    def filter(self, forms: list[Sem]) -> list[Sem]:
        return [form for form in forms if self.ordered(form)]


class DistributivityCheck(Check):
    """Prefer the non-distributed coordination reading.

    The chart flags LFs built from the distributed coordination rule; when
    any unflagged LF survives, all flagged ones are dropped (§4.2: "sage
    always selects the non-distributive logical form version").
    """

    name = "Distributivity"

    @staticmethod
    def _is_distributed(form: Sem) -> bool:
        return any("distributed" in call.flags for call in iter_calls(form))

    def filter(self, forms: list[Sem]) -> list[Sem]:
        non_distributed = [form for form in forms if not self._is_distributed(form)]
        return non_distributed if non_distributed else forms


class AssociativityCheck(Check):
    """Collapse LFs that differ only by associative regrouping.

    LFs are bucketed by a regrouping-invariant signature and each bucket is
    confirmed with VF2 graph isomorphism over the flattened trees, keeping
    one representative per equivalence class.
    """

    name = "Associativity"

    def filter(self, forms: list[Sem]) -> list[Sem]:
        buckets: dict[str, list[Sem]] = {}
        order: list[str] = []
        for form in forms:
            key = canonical_signature(form)
            if key not in buckets:
                buckets[key] = []
                order.append(key)
            buckets[key].append(form)
        representatives: list[Sem] = []
        for key in order:
            bucket = buckets[key]
            kept: list[Sem] = []
            for form in bucket:
                if any(isomorphic(form, existing) for existing in kept):
                    continue
                kept.append(form)
            representatives.extend(kept)
        return representatives


@dataclass
class CheckSuite:
    """The ordered battery of §4.2 checks (Figure 5's x-axis)."""

    type_check: TypeCheck
    argument_ordering: ArgumentOrderingCheck
    predicate_ordering: PredicateOrderingCheck
    distributivity: DistributivityCheck
    associativity: AssociativityCheck

    @classmethod
    def default(cls) -> "CheckSuite":
        return cls(
            type_check=TypeCheck(),
            argument_ordering=ArgumentOrderingCheck(),
            predicate_ordering=PredicateOrderingCheck(),
            distributivity=DistributivityCheck(),
            associativity=AssociativityCheck(),
        )

    def in_order(self) -> list[Check]:
        return [
            self.type_check,
            self.argument_ordering,
            self.predicate_ordering,
            self.distributivity,
            self.associativity,
        ]
