"""The five winnowing checks of §4.2, memoized over interned structure.

Each check filters a sentence's logical-form set:

* **Type** — predicate argument types (allowlist; e.g. @Action's first
  argument must be a function name, @Is cannot assign to a constant).
* **Argument ordering** — order-sensitive predicates must take their
  arguments in source order (@If's condition must be the clause adjacent to
  the "if" token; @Is's target precedes its value).
* **Predicate ordering** — blocklisted nestings are removed (@Is may not
  appear beneath @Of: the "(A of B) is C" vs "A of (B is C)" case).
* **Distributivity** — when both the grouped "(A and B) is C" and the
  distributed "(A is C) and (B is C)" survive, keep the grouped form.
* **Associativity** — logical forms equal up to associative regrouping
  (Figure 3) collapse to one, by canonical-form membership.

Memoization discipline — what may key on what:

* **Sid-pure checks** (Type, Predicate Ordering, Associativity) depend
  only on provenance-free structure, so their per-node results live in
  process-global tables keyed on the interned sids from
  :mod:`repro.parsing.values`, shared across every parse that produces the
  same shape.  Each table is addressed by the owning check's content
  *fingerprint* (rule set + constant classes / blocklist), so two
  differently-configured checks never alias, and an edited configuration
  self-invalidates by landing in a fresh table.
* **Provenance-dependent checks** (Argument Ordering reads Const spans and
  Call triggers; Distributivity reads Call flags — none of which are part
  of a sid) must NOT key on sids.  Their per-form results cache on the
  node objects themselves (``__dict__``, the ``_norm`` idiom), exact by
  object identity.

To add a memo-safe check: pure functions of structure may use
``sid_for_term`` + a ``_memo_table(fingerprint)`` table; anything reading
``span``/``trigger``/``flags`` caches on the node or not at all.  Custom
:class:`~repro.lf.predicates.TypeRule` sets must give behaviorally
distinct rules distinct names — rule closures cannot be content-hashed,
so the fingerprint identifies them by ``(name, predicate)``.

``reset_winnow_state()`` drops every global table (cold-benchmark
bracketing, mirroring ``reset_parser_state``); per-node caches die with
their nodes.  Set ``REPRO_WINNOW_ORACLE=1`` to cross-check the
associativity canonical form against the legacy VF2 matcher on every
sentence (slow; imports networkx).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from hashlib import sha1

from ..ccg.semantics import Call, Sem, calls_of, span_of
from ..lf.graph import (
    _CANON_SID,
    canon_of_sid,
    canonical_signature,
    isomorphic,
    reset_canonical_memos,
    sid_for_term,
)
from ..lf.predicates import (
    LEFT_TO_RIGHT_PREDICATES,
    TRIGGER_ADJACENT_PREDICATES,
    ConstantClasses,
    TypeRule,
    default_type_rules,
    rules_by_predicate,
)
from ..parsing.values import _KEY_OF
from .profile import PROFILE

#: Environment flag: verify the canonical form against VF2 per sentence.
ORACLE_ENV = "REPRO_WINNOW_ORACLE"

#: check fingerprint → its process-global sid-keyed memo table.  Tables are
#: cleared in place by :func:`reset_winnow_state` so checks holding a
#: reference keep it across resets.
_CHECK_MEMOS: dict[str, dict[int, bool]] = {}


def _memo_table(fingerprint: str) -> dict[int, bool]:
    table = _CHECK_MEMOS.get(fingerprint)
    if table is None:
        table = _CHECK_MEMOS[fingerprint] = {}
    return table


def reset_winnow_state() -> None:
    """Drop every process-global winnow memo (honest cold benchmarks).

    Clears the per-check sid tables and the canonicalization memos; the
    intern tables themselves survive (sids stay valid), mirroring
    :func:`repro.parsing.values.reset_derived_memos`.
    """
    for table in _CHECK_MEMOS.values():
        table.clear()
    reset_canonical_memos()


def _calls(term: Sem) -> tuple[Call, ...]:
    """Profiled access to the per-node cached call list."""
    if "_calls" in term.__dict__:
        PROFILE.calls_cache_hits += 1
    else:
        PROFILE.calls_cache_misses += 1
    return calls_of(term)


def _span(term: Sem):
    """Profiled access to the per-node cached span."""
    if "_span" in term.__dict__:
        PROFILE.span_cache_hits += 1
    else:
        PROFILE.span_cache_misses += 1
    return span_of(term)


class Check:
    """Base winnowing check: filters a list of LFs."""

    name = "check"

    def filter(self, forms: list[Sem]) -> list[Sem]:
        raise NotImplementedError

    def fingerprint(self) -> str:
        """Content identity for memo tables and winnow-cache keys.

        Configuration-free checks are identified by their class; checks
        with tunable rules override this with a content digest.
        """
        return type(self).__name__


class TypeCheck(Check):
    """Remove LFs with ill-typed predicate arguments."""

    name = "Type"

    def __init__(self, rules: list[TypeRule] | None = None,
                 classes: ConstantClasses | None = None) -> None:
        self.rules = rules if rules is not None else default_type_rules()
        self.classes = classes or ConstantClasses()
        self._by_predicate = rules_by_predicate(self.rules)
        self._memo: dict[int, bool] | None = None
        self._fp: str | None = None
        self._fp_generation = -1

    def fingerprint(self) -> str:
        self._refresh()
        return self._fp

    def _refresh(self) -> dict[int, bool]:
        """The memo table for the *current* configuration.

        ``ConstantClasses`` is mutable (``register``); its generation
        counter rides in the fingerprint, so registering a class moves
        this check to a fresh table instead of serving stale verdicts.
        """
        generation = self.classes.generation
        if self._memo is None or self._fp_generation != generation:
            payload = repr((
                "Type",
                tuple((rule.name, rule.predicate) for rule in self.rules),
                self.classes.fingerprint(),
            ))
            self._fp = sha1(payload.encode("utf-8")).hexdigest()
            self._fp_generation = generation
            self._memo = _memo_table(self._fp)
        return self._memo

    def well_typed(self, form: Sem) -> bool:
        memo = self._refresh()
        sid, grounded = sid_for_term(form)
        if not grounded:
            return self._well_typed_uncached(form)
        if type(form) is not Call:
            return True  # a bare constant has no calls to violate
        return self._typed_sid(form, sid, memo)

    def _typed_sid(self, node: Call, sid: int, memo: dict[int, bool]) -> bool:
        hit = memo.get(sid)
        if hit is not None:
            PROFILE.type_memo_hits += 1
            return hit
        PROFILE.type_memo_misses += 1
        result = True
        rules = self._by_predicate.get(node.pred)
        if rules:
            for rule in rules:
                if not rule.check(node, self.classes):
                    result = False
                    break
        if result:
            # The sid's intern key decomposes in lockstep with the node's
            # argument tuple, handing every child its sid for free.
            arg_sids = _KEY_OF[sid][2]
            for arg, arg_sid in zip(node.args, arg_sids):
                if type(arg) is Call and not self._typed_sid(arg, arg_sid,
                                                            memo):
                    result = False
                    break
        memo[sid] = result
        return result

    def _well_typed_uncached(self, form: Sem) -> bool:
        for call in _calls(form):
            for rule in self._by_predicate.get(call.pred, ()):
                if not rule.check(call, self.classes):
                    return False
        return True

    def filter(self, forms: list[Sem]) -> list[Sem]:
        return [form for form in forms if self.well_typed(form)]


class ArgumentOrderingCheck(Check):
    """Remove LFs whose order-sensitive arguments violate source order.

    For trigger-adjacent predicates (@If, @AdvBefore, @Goal) the first
    argument must be the clause that immediately follows the trigger word.
    For left-to-right predicates (@Is, @Reach) the target's source span must
    begin before the value's.

    Spans and triggers are provenance — not part of a sid — so the verdict
    caches on the form object itself, never in a sid table.
    """

    name = "Argument Ordering"

    def ordered(self, form: Sem) -> bool:
        d = form.__dict__
        hit = d.get("_arg_ordered")
        if hit is not None:
            PROFILE.form_cache_hits += 1
            return hit
        PROFILE.form_cache_misses += 1
        result = True
        for call in _calls(form):
            if call.pred in TRIGGER_ADJACENT_PREDICATES:
                if not self._trigger_adjacent(call):
                    result = False
                    break
            if call.pred in LEFT_TO_RIGHT_PREDICATES:
                if not self._left_to_right(call):
                    result = False
                    break
        d["_arg_ordered"] = result
        return result

    @staticmethod
    def _trigger_adjacent(call: Call) -> bool:
        """The first argument owns the tokens right of the trigger word.

        For "If A, B" (trigger sentence-initial) the condition A must start
        after the trigger and the consequent B must follow A.  For "B if A"
        (trailing trigger) A still follows the trigger while B sits wholly
        before it.  A violating LF has B's material between the trigger and
        A — the swapped-argument over-generation.
        """
        if call.trigger is None or len(call.args) < 2:
            return True
        first_span = _span(call.args[0])
        second_span = _span(call.args[1])
        if first_span is None or second_span is None:
            return True
        if first_span[0] <= call.trigger:
            return False  # the trigger's clause must follow the trigger
        return second_span[1] <= call.trigger or second_span[0] >= first_span[0]

    @staticmethod
    def _left_to_right(call: Call) -> bool:
        if len(call.args) < 2:
            return True
        left_span = _span(call.args[0])
        right_span = _span(call.args[1])
        if left_span is None or right_span is None:
            return True
        return left_span[0] < right_span[0]

    def filter(self, forms: list[Sem]) -> list[Sem]:
        return [form for form in forms if self.ordered(form)]


@dataclass(frozen=True)
class NestingRule:
    """``inner`` may not appear as a direct argument of ``outer``.

    ``position`` restricts the rule to one argument slot (None = any slot).
    ``transitive`` widens it to "anywhere beneath ``outer``".
    """

    outer: str
    inner: str
    position: int | None = None
    transitive: bool = False


# The blocklist: structural nestings RFC prose never means.
DEFAULT_ORDERING_BLOCKLIST: tuple[NestingRule, ...] = (
    # "(A of B) is C" is the only reading of "A of B is C" (§4.1).
    NestingRule("Of", "Is", transitive=True),
    # The checksum-range anchor scopes over the whole @Of chain (sentence H).
    NestingRule("Of", "StartsWith"),
    # ... and an assignment never nests inside the range expression.
    NestingRule("StartsWith", "Is", transitive=True),
    # A conditional cannot live inside a field path.
    NestingRule("Of", "If", transitive=True),
    # "A and B of C": of-attachment binds low ("A and (B of C)").
    NestingRule("Of", "And", position=0),
    # "A of B in C" / "A in B of C": prepositional attachment binds low.
    NestingRule("In", "Of", position=0),
    NestingRule("Of", "In", position=0),
    # "A and B from C": the source modifier scopes over the conjunction.
    NestingRule("And", "From"),
    # Advice attaches to its nearest clause, not over a whole conditional.
    NestingRule("AdvBefore", "If", position=1),
)


class PredicateOrderingCheck(Check):
    """Remove LFs containing blocklisted predicate nestings.

    Nesting is pure structure, and :class:`NestingRule` is frozen content,
    so verdicts memoize per node in a sid table addressed by the
    blocklist's digest.
    """

    name = "Predicate Ordering"

    def __init__(self, blocklist: tuple[NestingRule, ...] = DEFAULT_ORDERING_BLOCKLIST):
        self.blocklist = blocklist
        payload = repr(("Nesting",) + tuple(
            (rule.outer, rule.inner, rule.position, rule.transitive)
            for rule in blocklist
        ))
        self._fp = sha1(payload.encode("utf-8")).hexdigest()
        self._memo = _memo_table(self._fp)

    def fingerprint(self) -> str:
        return self._fp

    def ordered(self, form: Sem) -> bool:
        sid, grounded = sid_for_term(form)
        if not grounded:
            return not any(self._violates(call) for call in _calls(form))
        if type(form) is not Call:
            return True
        return self._ordered_sid(form, sid)

    def _ordered_sid(self, node: Call, sid: int) -> bool:
        memo = self._memo
        hit = memo.get(sid)
        if hit is not None:
            PROFILE.nesting_memo_hits += 1
            return hit
        PROFILE.nesting_memo_misses += 1
        result = not self._violates(node)
        if result:
            arg_sids = _KEY_OF[sid][2]
            for arg, arg_sid in zip(node.args, arg_sids):
                if type(arg) is Call and not self._ordered_sid(arg, arg_sid):
                    result = False
                    break
        memo[sid] = result
        return result

    def _violates(self, call: Call) -> bool:
        for rule in self.blocklist:
            if call.pred != rule.outer:
                continue
            for position, arg in enumerate(call.args):
                if rule.position is not None and position != rule.position:
                    continue
                if rule.transitive:
                    if any(sub.pred == rule.inner for sub in _calls(arg)):
                        return True
                elif isinstance(arg, Call) and arg.pred == rule.inner:
                    return True
        return False

    def filter(self, forms: list[Sem]) -> list[Sem]:
        return [form for form in forms if self.ordered(form)]


class DistributivityCheck(Check):
    """Prefer the non-distributed coordination reading.

    The chart flags LFs built from the distributed coordination rule; when
    any unflagged LF survives, all flagged ones are dropped (§4.2: "sage
    always selects the non-distributive logical form version").  Flags are
    provenance, so the verdict caches on the node, never on a sid.
    """

    name = "Distributivity"

    @staticmethod
    def _is_distributed(form: Sem) -> bool:
        d = form.__dict__
        hit = d.get("_distributed")
        if hit is not None:
            PROFILE.form_cache_hits += 1
            return hit
        PROFILE.form_cache_misses += 1
        hit = d["_distributed"] = any(
            "distributed" in call.flags for call in _calls(form)
        )
        return hit

    def filter(self, forms: list[Sem]) -> list[Sem]:
        non_distributed = [form for form in forms if not self._is_distributed(form)]
        return non_distributed if non_distributed else forms


class AssociativityCheck(Check):
    """Collapse LFs that differ only by associative regrouping.

    Equivalence-class membership is one canonical sid per form
    (:func:`repro.lf.graph.canonical_sid` — exact for these rooted trees),
    so the filter is a set probe per form instead of the O(n²) VF2 runs it
    replaced.  ``REPRO_WINNOW_ORACLE=1`` re-runs the legacy
    bucket-then-VF2 path per sentence and asserts agreement.
    """

    name = "Associativity"

    def filter(self, forms: list[Sem]) -> list[Sem]:
        if len(forms) <= 1:
            return list(forms)
        kept: list[Sem] = []
        seen: set = set()
        for form in forms:
            key = self._class_key(form)
            if key in seen:
                continue
            seen.add(key)
            kept.append(form)
        if os.environ.get(ORACLE_ENV):
            self._check_oracle(forms, kept)
        return kept

    @staticmethod
    def _class_key(form: Sem):
        sid, grounded = sid_for_term(form)
        if grounded:
            hit = _CANON_SID.get(sid)
            if hit is not None:
                PROFILE.canon_memo_hits += 1
                return hit
            PROFILE.canon_memo_misses += 1
            return canon_of_sid(sid)
        # Binder-bearing forms never reach the winnow pipeline; for them
        # the regrouping-invariant string is the same equivalence (non-Call
        # subtrees compare as leaf labels either way).
        return canonical_signature(form)

    def _check_oracle(self, forms: list[Sem], kept: list[Sem]) -> None:
        """Replay the legacy VF2 path and assert it kept the same forms."""
        legacy = self._filter_vf2(forms)
        if [id(form) for form in legacy] != [id(form) for form in kept]:
            raise AssertionError(
                "associativity canonical form disagrees with the VF2 "
                f"oracle: kept {[canonical_signature(f) for f in kept]} "
                f"vs oracle {[canonical_signature(f) for f in legacy]}"
            )

    @staticmethod
    def _filter_vf2(forms: list[Sem]) -> list[Sem]:
        """The pre-canonical implementation: signature buckets confirmed
        pairwise with VF2, candidates ordered cheapest-signature-first so
        the ``any`` scan short-circuits on the smallest graphs."""
        buckets: dict[str, list[Sem]] = {}
        order: list[str] = []
        for form in forms:
            key = canonical_signature(form)
            if key not in buckets:
                buckets[key] = []
                order.append(key)
            buckets[key].append(form)
        representatives: list[Sem] = []
        for key in order:
            kept: list[Sem] = []
            for form in buckets[key]:
                candidates = sorted(
                    kept, key=lambda f: len(canonical_signature(f))
                )
                matched = False
                for existing in candidates:
                    PROFILE.oracle_calls += 1
                    if isomorphic(form, existing):
                        matched = True
                        break
                if matched:
                    continue
                kept.append(form)
            representatives.extend(kept)
        return representatives


@dataclass
class CheckSuite:
    """The ordered battery of §4.2 checks (Figure 5's x-axis)."""

    type_check: TypeCheck
    argument_ordering: ArgumentOrderingCheck
    predicate_ordering: PredicateOrderingCheck
    distributivity: DistributivityCheck
    associativity: AssociativityCheck

    @classmethod
    def default(cls) -> "CheckSuite":
        return cls(
            type_check=TypeCheck(),
            argument_ordering=ArgumentOrderingCheck(),
            predicate_ordering=PredicateOrderingCheck(),
            distributivity=DistributivityCheck(),
            associativity=AssociativityCheck(),
        )

    def in_order(self) -> list[Check]:
        return [
            self.type_check,
            self.argument_ordering,
            self.predicate_ordering,
            self.distributivity,
            self.associativity,
        ]

    def fingerprint(self) -> str:
        """Content digest over every check's configuration, in order.

        Keys the :class:`~repro.core.stages.WinnowStage` result cache:
        editing any check's rules moves every sentence to a fresh slot.
        """
        payload = "|".join(check.fingerprint() for check in self.in_order())
        return sha1(payload.encode("utf-8")).hexdigest()
