"""``python -m repro`` — the pipeline service CLI (see repro.api.cli)."""

import sys

from .api.cli import main

if __name__ == "__main__":
    sys.exit(main())
