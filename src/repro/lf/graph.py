"""Logical forms as graphs: canonicalization and isomorphism.

§4.2 Associativity: "If predicates are associative, their logical form trees
(Figure 3) will be isomorphic.  sage detects associativity using a standard
graph isomorphism algorithm."  We flatten chains of associative predicates
(@Of, @And, @Or) into n-ary nodes and compare the results up to permutation
of commutative arguments.

Two equivalent implementations live here:

* the **canonical form** — grounded logical forms (Call/Const trees, the
  only kind the winnow stage ever sees) canonicalize in one pass over
  their interned structural ids (:mod:`repro.parsing.values`): flatten
  associative chains and sort commutative argument lists at the sid level,
  interning the canonical shape as a sid of its own.  Two forms are
  isomorphic **iff** their canonical sids are equal — for rooted trees,
  hereditary canonical labeling is exact, no hashing heuristics — and the
  memoized tables make repeat forms (formulaic RFC prose) a dict probe.
  This is the hot path; it never imports networkx.
* the **VF2 oracle** — :func:`to_graph` + :func:`isomorphic` convert to
  labeled networkx DiGraphs and run the VF2 matcher, exactly as before.
  networkx is imported lazily inside these functions only, so the warm
  pipeline never pays the import; the oracle survives for property tests
  and the ``REPRO_WINNOW_ORACLE`` debug flag in
  :class:`repro.disambiguation.checks.AssociativityCheck`.

The string :func:`canonical_signature` (regrouping-invariant render) is
unchanged in output; for grounded forms it renders from the canonical sid
through a memo table instead of rebuilding flattened terms.
"""

from __future__ import annotations

from ..ccg.semantics import Call, Const, Sem
from ..parsing.values import _KEY_OF, normalize, sid_of_key
from .predicates import ASSOCIATIVE_PREDICATES

# Associative AND commutative: argument order is semantically irrelevant.
COMMUTATIVE_PREDICATES = {"And", "Or"}


def flatten_associative(term: Sem) -> Sem:
    """Collapse nested chains of associative predicates into n-ary calls.

    ``@Of(@Of(a,b),c)`` and ``@Of(a,@Of(b,c))`` both become ``@Of(a,b,c)``,
    making the two Figure 3 readings identical.
    """
    if not isinstance(term, Call):
        return term
    flattened_args = [flatten_associative(arg) for arg in term.args]
    if term.pred in ASSOCIATIVE_PREDICATES:
        merged: list[Sem] = []
        for arg in flattened_args:
            if isinstance(arg, Call) and arg.pred == term.pred:
                merged.extend(arg.args)
            else:
                merged.append(arg)
        flattened_args = merged
    return Call(
        term.pred, tuple(flattened_args), trigger=term.trigger, flags=term.flags
    )


def to_graph(term: Sem):
    """Convert a logical form into a labeled DiGraph (Figure 3's trees).

    Internal nodes are predicates, leaves are constants; edges carry the
    argument position (dropped for associative predicates, where order does
    not matter).  networkx loads lazily — only oracle/test callers pay it.
    """
    import networkx as nx

    graph = nx.DiGraph()
    counter = [0]

    def add(node: Sem) -> int:
        node_id = counter[0]
        counter[0] += 1
        if isinstance(node, Call):
            graph.add_node(node_id, label=f"@{node.pred}")
            ordered = node.pred not in COMMUTATIVE_PREDICATES
            for position, arg in enumerate(node.args):
                child = add(arg)
                graph.add_edge(node_id, child, position=position if ordered else -1)
        elif isinstance(node, Const):
            graph.add_node(node_id, label=node.value)
        else:
            graph.add_node(node_id, label=str(node))
        return node_id

    add(term)
    return graph


def isomorphic(a: Sem, b: Sem) -> bool:
    """True when two LFs are equal up to associative regrouping.

    Flattens associative chains, then runs VF2 isomorphism over the labeled
    graphs (matching both node labels and argument positions).  This is the
    oracle the canonical form is property-tested against — the hot path
    uses :func:`canonical_sid` instead and never imports networkx.
    """
    import networkx as nx

    graph_a = to_graph(flatten_associative(a))
    graph_b = to_graph(flatten_associative(b))
    return nx.is_isomorphic(
        graph_a,
        graph_b,
        node_match=lambda n1, n2: n1["label"] == n2["label"],
        edge_match=lambda e1, e2: e1["position"] == e2["position"],
    )


# -- the canonical form over interned sids -------------------------------------
#
# Every grounded LF carries (or cheaply acquires) an interned structural id
# from the parser's hash-consing tables; its key decomposes the whole tree
# as nested ("@", pred, arg-sids) / ("c", value) tuples.  Canonicalization
# rewrites that key bottom-up — flatten same-predicate associative chains,
# sort commutative argument lists — and interns the result, so equality up
# to regrouping becomes integer equality.  Both tables are process-global
# and content-addressed like the intern tables they shadow; they grow with
# the number of distinct LF shapes ever canonicalized and are dropped by
# :func:`reset_canonical_memos` for honest cold benchmarks.

#: sid → canonical sid (the exact regrouping-equivalence class id).
_CANON_SID: dict[int, int] = {}

#: canonical sid → its rendered signature string.
_CANON_STR: dict[int, str] = {}


def sid_for_term(term: Sem) -> tuple[int, bool]:
    """The interned ``(sid, grounded)`` of ``term``, normalizing on demand.

    Parser-produced forms carry their triple already (``_norm`` stamped by
    the fused normalizer); disk-decoded or hand-built forms pay one
    normalize walk, cached on the node for every later probe.
    """
    cached = term.__dict__.get("_norm")
    if cached is None:
        cached = normalize(term, {})
    return cached[1], cached[2]


def _canon_str(canon_sid: int) -> str:
    """Render a canonical sid as the legacy signature string (memoized)."""
    hit = _CANON_STR.get(canon_sid)
    if hit is not None:
        return hit
    key = _KEY_OF[canon_sid]
    tag = key[0]
    if tag == "c":
        rendered = f"'{key[1]}'"
    elif tag == "@":
        rendered = f"@{key[1]}({','.join(_canon_str(a) for a in key[2])})"
    else:  # "v" — ungrounded structures never canonicalize (guarded below)
        rendered = key[1]
    _CANON_STR[canon_sid] = rendered
    return rendered


def canon_of_sid(sid: int) -> int:
    """The canonical sid for ``sid`` (grounded structures only)."""
    hit = _CANON_SID.get(sid)
    if hit is not None:
        return hit
    key = _KEY_OF[sid]
    if key[0] != "@":
        result = sid  # constants are their own canonical form
    else:
        pred = key[1]
        canon_args = [canon_of_sid(arg) for arg in key[2]]
        if pred in ASSOCIATIVE_PREDICATES:
            flat: list[int] = []
            for arg in canon_args:
                arg_key = _KEY_OF[arg]
                if arg_key[0] == "@" and arg_key[1] == pred:
                    flat.extend(arg_key[2])
                else:
                    flat.append(arg)
            canon_args = flat
        if pred in COMMUTATIVE_PREDICATES:
            # Sort by rendered string — the legacy commutative order — with
            # the sid as tiebreak so equal renders of distinct structures
            # still canonicalize permutation-invariantly.
            canon_args = sorted(canon_args, key=lambda a: (_canon_str(a), a))
        result = sid_of_key(("@", pred, tuple(canon_args)))
    _CANON_SID[sid] = result
    return result


def canonical_sid(term: Sem) -> int | None:
    """The canonical sid of ``term``, or None when it is not grounded.

    Two grounded forms have equal canonical sids **iff** they are
    :func:`isomorphic` — the equivalence the associativity check collapses.
    (Exactness assumes constant values with faithful string renders, true
    of every token-derived constant; the property suite locks agreement
    with the VF2 oracle.)
    """
    sid, grounded = sid_for_term(term)
    if not grounded:
        return None
    return canon_of_sid(sid)


def reset_canonical_memos() -> None:
    """Drop the canonicalization memo tables (cold-benchmark bracketing).

    The underlying intern tables survive, mirroring
    :func:`repro.parsing.values.reset_derived_memos`.
    """
    _CANON_SID.clear()
    _CANON_STR.clear()


def canonical_signature(term: Sem) -> str:
    """A string invariant under associative regrouping (exact for trees).

    Associative predicates' argument lists are flattened and commutative
    predicates' arguments sorted by their own canonical signatures, so any
    regrouping/reordering of an @And/@Of chain produces the same string.
    Grounded forms render from the memoized canonical sid; anything with
    binders falls back to the term-level walk (same output either way).
    """
    sid, grounded = sid_for_term(term)
    if grounded:
        return _canon_str(canon_of_sid(sid))
    flat = flatten_associative(term)

    def render(node: Sem) -> str:
        if isinstance(node, Call):
            parts = [render(arg) for arg in node.args]
            if node.pred in COMMUTATIVE_PREDICATES:
                parts = sorted(parts)  # commutative: order irrelevant
            return f"@{node.pred}({','.join(parts)})"
        if isinstance(node, Const):
            return f"'{node.value}'"
        return str(node)

    return render(flat)
