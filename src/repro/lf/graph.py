"""Logical forms as graphs: conversion, canonicalization, isomorphism.

§4.2 Associativity: "If predicates are associative, their logical form trees
(Figure 3) will be isomorphic.  sage detects associativity using a standard
graph isomorphism algorithm."  We flatten chains of associative predicates
(@Of, @And, @Or) into n-ary nodes, convert to labeled networkx DiGraphs, and
test isomorphism with the VF2 matcher.
"""

from __future__ import annotations

import networkx as nx

from ..ccg.semantics import Call, Const, Sem
from .predicates import ASSOCIATIVE_PREDICATES

# Associative AND commutative: argument order is semantically irrelevant.
COMMUTATIVE_PREDICATES = {"And", "Or"}


def flatten_associative(term: Sem) -> Sem:
    """Collapse nested chains of associative predicates into n-ary calls.

    ``@Of(@Of(a,b),c)`` and ``@Of(a,@Of(b,c))`` both become ``@Of(a,b,c)``,
    making the two Figure 3 readings identical.
    """
    if not isinstance(term, Call):
        return term
    flattened_args = [flatten_associative(arg) for arg in term.args]
    if term.pred in ASSOCIATIVE_PREDICATES:
        merged: list[Sem] = []
        for arg in flattened_args:
            if isinstance(arg, Call) and arg.pred == term.pred:
                merged.extend(arg.args)
            else:
                merged.append(arg)
        flattened_args = merged
    return Call(
        term.pred, tuple(flattened_args), trigger=term.trigger, flags=term.flags
    )


def to_graph(term: Sem) -> nx.DiGraph:
    """Convert a logical form into a labeled DiGraph (Figure 3's trees).

    Internal nodes are predicates, leaves are constants; edges carry the
    argument position (dropped for associative predicates, where order does
    not matter).
    """
    graph = nx.DiGraph()
    counter = [0]

    def add(node: Sem) -> int:
        node_id = counter[0]
        counter[0] += 1
        if isinstance(node, Call):
            graph.add_node(node_id, label=f"@{node.pred}")
            ordered = node.pred not in COMMUTATIVE_PREDICATES
            for position, arg in enumerate(node.args):
                child = add(arg)
                graph.add_edge(node_id, child, position=position if ordered else -1)
        elif isinstance(node, Const):
            graph.add_node(node_id, label=node.value)
        else:
            graph.add_node(node_id, label=str(node))
        return node_id

    add(term)
    return graph


def isomorphic(a: Sem, b: Sem) -> bool:
    """True when two LFs are equal up to associative regrouping.

    Flattens associative chains, then runs VF2 isomorphism over the labeled
    graphs (matching both node labels and argument positions).
    """
    graph_a = to_graph(flatten_associative(a))
    graph_b = to_graph(flatten_associative(b))
    return nx.is_isomorphic(
        graph_a,
        graph_b,
        node_match=lambda n1, n2: n1["label"] == n2["label"],
        edge_match=lambda e1, e2: e1["position"] == e2["position"],
    )


def canonical_signature(term: Sem) -> str:
    """A string invariant under associative regrouping (fast iso bucketing).

    Associative predicates' argument lists are sorted by their own canonical
    signatures, so any regrouping/reordering of an @And/@Of chain produces
    the same string.  Used to bucket LFs before the (exact) VF2 check.
    """
    flat = flatten_associative(term)

    def render(node: Sem) -> str:
        if isinstance(node, Call):
            parts = [render(arg) for arg in node.args]
            if node.pred in COMMUTATIVE_PREDICATES:
                parts = sorted(parts)  # commutative: order irrelevant
            return f"@{node.pred}({','.join(parts)})"
        if isinstance(node, Const):
            return f"'{node.value}'"
        return str(node)

    return render(flat)
