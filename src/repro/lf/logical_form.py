"""Convenience wrapper over semantic terms as sentence logical forms."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ccg.semantics import Call, Const, Sem, iter_calls, signature


@dataclass
class LogicalForm:
    """One logical form plus derived views (tree rendering, predicates)."""

    sem: Sem

    def __str__(self) -> str:
        return signature(self.sem)

    def predicates(self) -> list[str]:
        return [call.pred for call in iter_calls(self.sem)]

    def has_flag(self, flag: str) -> bool:
        return any(flag in call.flags for call in iter_calls(self.sem))

    def pretty(self, indent: int = 0) -> str:
        """Render the LF as the tree drawing of Figure 2."""
        return _pretty(self.sem, indent)


def _pretty(term: Sem, indent: int) -> str:
    pad = "  " * indent
    if isinstance(term, Call):
        lines = [f"{pad}@{term.pred}"]
        for arg in term.args:
            lines.append(_pretty(arg, indent + 1))
        return "\n".join(lines)
    if isinstance(term, Const):
        return f"{pad}'{term.value}'"
    return f"{pad}{term}"


@dataclass
class SentenceLFs:
    """All logical forms for one sentence at one pipeline stage."""

    sentence: str
    forms: list[Sem] = field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.forms)

    @property
    def ambiguous(self) -> bool:
        return self.count > 1

    @property
    def unparsed(self) -> bool:
        return self.count == 0
