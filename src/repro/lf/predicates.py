"""Predicate registry, constant classes, and the type system.

The disambiguation type check (§4.2: "Type. For each predicate, sage defines
one or more type checks: action predicates have function name arguments,
assignments cannot have constants on the left hand side, conditionals must
be well-formed, and so on") needs to know what kind of thing every constant
is.  Constants are classed (FIELD, VALUE, MESSAGE, FUNCTION, OPERATION,
STATEVAR, CONCEPT) and each predicate registers argument-type rules; the
paper reports 32 such checks for ICMP and we keep a comparable, enumerable
registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..ccg.semantics import Call, Const, Sem

# -- constant classes ---------------------------------------------------------

VALUE = "value"
FIELD = "field"
MESSAGE = "message"
FUNCTION = "function"
OPERATION = "operation"
STATEVAR = "statevar"
CONCEPT = "concept"
CLAUSE = "clause"  # class of statement-level Calls
EXPR = "expr"  # class of expression-level Calls

_FIELD_CONSTANTS = {
    "checksum", "checksum_field", "code", "code_field", "type", "type_field",
    "type_code", "identifier", "identifier_field", "sequence_number",
    "sequence number", "pointer", "pointer_field", "gateway_address",
    "gateway_internet_address", "source_address", "destination_address",
    "source", "destination", "destination_addresses", "source_addresses",
    "address", "addresses", "type_of_service", "time_to_live", "ttl",
    "internet_header", "total_length", "unused", "unused_field",
    "originate_timestamp", "receive_timestamp", "transmit_timestamp",
    "timestamp", "group_address", "version", "version_field", "stratum",
    "poll", "precision", "leap_indicator", "mode", "mode_field",
    "my_discriminator", "your_discriminator", "your_discriminator_field",
    "my_discriminator_field", "detect_mult", "ip_header", "icmp_header",
    "icmp_checksum", "ip_checksum", "header_checksum", "data", "data_field",
    "icmp_type", "parameter", "peer_timer", "timer", "timer_threshold",
    "timer_threshold_variable", "peer_timer_threshold", "source_network",
    "internet_destination_network_field", "address_mask",
}

_MESSAGE_CONSTANTS = {
    "echo", "echos", "echo_message", "echo_reply", "echo_reply_message",
    "reply", "replies", "reply_message", "request", "request_message",
    "message", "icmp_message", "igmp_message", "ntp_message",
    "destination_unreachable_message", "time_exceeded_message",
    "parameter_problem_message", "source_quench_message", "redirect_message",
    "timestamp_message", "timestamp_reply_message", "information_reply",
    "information_reply_message", "information_request",
    "information_request_message", "timestamps", "timestamp_reply",
    "datagram", "original_datagram", "packet", "bfd_packet",
    "control_packet", "bfd_control_packet", "host_membership_query",
    "host_membership_report", "query", "query_message", "report",
    "udp_datagram", "segment", "bfd_control_packets",
}

_FUNCTION_CONSTANTS = {
    "compute", "recompute", "reverse", "return", "send", "discard", "form",
    "detect", "zero", "select", "find", "cease", "join", "report", "respond",
    "ignore", "update", "take", "increment", "decrement", "match", "copy",
    "pad",
}

_OPERATION_CONSTANTS = {
    "16_bit_ones_complement", "ones_complement", "ones_complement_sum",
    "one's complement", "one's complement sum", "incremental_update",
}

# Statement-level predicates (full clauses) vs expression-level predicates.
STATEMENT_PREDICATES = {
    "Is", "Action", "If", "May", "Goal", "AdvBefore", "Reach", "CalledIn",
    "ActiveOn", "EncapsulatedIn", "AdvComment",
}
EXPRESSION_PREDICATES = {
    "Of", "In", "From", "For", "With", "StartsWith", "And", "Or", "Not",
    "Where",
}

ASSOCIATIVE_PREDICATES = {"Of", "And", "Or"}

# Predicates whose argument order is meaningful and checkable from spans.
TRIGGER_ADJACENT_PREDICATES = {"If", "AdvBefore", "Goal"}
LEFT_TO_RIGHT_PREDICATES = {"Is", "Reach"}


class ConstantClasses:
    """Maps LF constants onto semantic classes; unknowns default to CONCEPT."""

    def __init__(self) -> None:
        self._classes: dict[str, str] = {}
        #: Bumped on every mutation so content fingerprints (and the memo
        #: tables keyed on them) self-invalidate when a class registers.
        self.generation = 0
        for name in _FIELD_CONSTANTS:
            self._classes[name] = FIELD
        for name in _MESSAGE_CONSTANTS:
            self._classes[name] = MESSAGE
        for name in _FUNCTION_CONSTANTS:
            self._classes[name] = FUNCTION
        for name in _OPERATION_CONSTANTS:
            self._classes[name] = OPERATION

    def register(self, name: str, klass: str) -> None:
        self._classes[name] = klass
        self.generation += 1

    def fingerprint(self) -> str:
        """Content digest of the class map (memo/cache key material)."""
        import hashlib

        payload = repr(sorted(self._classes.items()))
        return hashlib.sha1(payload.encode("utf-8")).hexdigest()

    def class_of(self, term: Sem) -> str:
        if isinstance(term, Const):
            value = term.value
            if value.replace(".", "").isdigit():
                return VALUE
            if value == "nonzero":
                return VALUE
            if "." in value:
                return STATEVAR
            return self._classes.get(value, CONCEPT)
        if isinstance(term, Call):
            if term.pred in STATEMENT_PREDICATES:
                return CLAUSE
            if term.pred in ("And", "Or") and term.args:
                inner = self.class_of(term.args[0])
                return inner if inner == CLAUSE else EXPR
            return EXPR
        return CONCEPT

    def group_of(self, term: Sem) -> str:
        """Coarse compatibility group used by the @And conjunct rule."""
        klass = self.class_of(term)
        if klass in (FIELD, CONCEPT, STATEVAR, OPERATION, EXPR):
            return "entity"
        if klass == MESSAGE:
            return "message"
        if klass == VALUE:
            return "value"
        if klass == CLAUSE:
            return "clause"
        return klass


# -- type rules ----------------------------------------------------------------


@dataclass(frozen=True)
class TypeRule:
    """One named type check over a predicate's arguments."""

    name: str
    predicate: str
    check: Callable[[Call, ConstantClasses], bool]  # True = well-typed


def _arg_class_in(position: int, allowed: frozenset[str]):
    def check(call: Call, classes: ConstantClasses) -> bool:
        if position >= len(call.args):
            return True
        return classes.class_of(call.args[position]) in allowed

    return check


def _arg_class_not_in(position: int, banned: frozenset[str]):
    def check(call: Call, classes: ConstantClasses) -> bool:
        if position >= len(call.args):
            return True
        return classes.class_of(call.args[position]) not in banned

    return check


def _arg_is_call(position: int):
    def check(call: Call, classes: ConstantClasses) -> bool:
        if position >= len(call.args):
            return True
        return isinstance(call.args[position], Call)

    return check


def _arity_between(low: int, high: int):
    def check(call: Call, classes: ConstantClasses) -> bool:
        return low <= len(call.args) <= high

    return check


def _and_groups_compatible(call: Call, classes: ConstantClasses) -> bool:
    groups = {classes.group_of(arg) for arg in call.args}
    return len(groups) <= 1


def default_type_rules() -> list[TypeRule]:
    """The type-check registry (the paper counts 32 for ICMP)."""
    rules: list[TypeRule] = []

    def rule(name: str, predicate: str, check) -> None:
        rules.append(TypeRule(name, predicate, check))

    # @Action: first argument is a function name; others are not functions.
    # Unknown verbs (CONCEPT class) are tolerated — they surface in
    # descriptive prose and are routed to the non-actionable bin by codegen;
    # what the check rejects is a *known non-function* (a field or value)
    # in function position, the Figure 2 LF1 error.
    rule("action-arg0-function", "Action",
         _arg_class_in(0, frozenset({FUNCTION, CONCEPT})))
    rule("action-arg1-not-function", "Action",
         _arg_class_not_in(1, frozenset({FUNCTION})))
    rule("action-arg2-not-function", "Action",
         _arg_class_not_in(2, frozenset({FUNCTION})))
    rule("action-arity", "Action", _arity_between(1, 3))

    # @Is: assignments cannot have constants (values) on the left-hand side,
    # nor bare function names on either side.
    rule("is-lhs-not-value", "Is", _arg_class_not_in(0, frozenset({VALUE})))
    rule("is-lhs-not-function", "Is", _arg_class_not_in(0, frozenset({FUNCTION})))
    rule("is-rhs-not-function", "Is", _arg_class_not_in(1, frozenset({FUNCTION})))
    rule("is-lhs-not-clause", "Is", _arg_class_not_in(0, frozenset({CLAUSE})))
    rule("is-rhs-not-clause", "Is", _arg_class_not_in(1, frozenset({CLAUSE})))
    rule("is-arity", "Is", _arity_between(2, 2))

    # @If: both branches must be well-formed clauses.
    rule("if-condition-is-clause", "If", _arg_is_call(0))
    rule("if-consequent-is-clause", "If", _arg_is_call(1))
    rule("if-arity", "If", _arity_between(2, 2))

    # @May wraps a clause.
    rule("may-wraps-clause", "May", _arg_is_call(0))

    # @Goal / @AdvBefore: both sides are clauses; the advice/goal side is an
    # action.
    rule("goal-goal-is-clause", "Goal", _arg_is_call(0))
    rule("goal-main-is-clause", "Goal", _arg_is_call(1))
    rule("advbefore-advice-is-clause", "AdvBefore", _arg_is_call(0))
    rule("advbefore-main-is-clause", "AdvBefore", _arg_is_call(1))

    # @Of: left side is a field/concept/operation, never a bare value or a
    # full clause.
    rule("of-lhs-not-value", "Of", _arg_class_not_in(0, frozenset({VALUE})))
    rule("of-lhs-not-clause", "Of", _arg_class_not_in(0, frozenset({CLAUSE})))
    rule("of-rhs-not-clause", "Of", _arg_class_not_in(1, frozenset({CLAUSE})))
    rule("of-rhs-not-function", "Of", _arg_class_not_in(1, frozenset({FUNCTION})))

    # @StartsWith: the range anchor is a field/concept, not a value.
    rule("startswith-anchor-not-value", "StartsWith",
         _arg_class_not_in(1, frozenset({VALUE, FUNCTION})))
    rule("startswith-subject-not-value", "StartsWith",
         _arg_class_not_in(0, frozenset({VALUE, FUNCTION})))

    # @And/@Or: conjuncts must be group-compatible (kills e.g. a field
    # coordinated with a message, or a clause coordinated with a constant).
    rule("and-groups-compatible", "And", _and_groups_compatible)
    rule("or-groups-compatible", "Or", _and_groups_compatible)

    # Prepositions: modifier sides are entities, not clauses or functions.
    for pred in ("In", "From", "For", "With"):
        rule(f"{pred.lower()}-lhs-not-function", pred,
             _arg_class_not_in(0, frozenset({FUNCTION})))
        rule(f"{pred.lower()}-rhs-not-function", pred,
             _arg_class_not_in(1, frozenset({FUNCTION})))

    # @Reach (NTP comparison): both sides are fields/state, not functions.
    rule("reach-lhs-entity", "Reach",
         _arg_class_not_in(0, frozenset({VALUE, FUNCTION})))
    rule("reach-rhs-not-function", "Reach",
         _arg_class_not_in(1, frozenset({FUNCTION})))

    # @Where: the relative clause is a clause.
    rule("where-clause-is-call", "Where", _arg_is_call(1))

    return rules


def rules_by_predicate(rules: list[TypeRule]) -> dict[str, list[TypeRule]]:
    grouped: dict[str, list[TypeRule]] = {}
    for type_rule in rules:
        grouped.setdefault(type_rule.predicate, []).append(type_rule)
    return grouped
