"""Logical forms: predicate registry, type system, graphs, isomorphism."""

from .graph import (
    canonical_signature,
    flatten_associative,
    isomorphic,
    to_graph,
)
from .logical_form import LogicalForm, SentenceLFs
from .predicates import (
    ASSOCIATIVE_PREDICATES,
    CLAUSE,
    CONCEPT,
    EXPR,
    FIELD,
    FUNCTION,
    LEFT_TO_RIGHT_PREDICATES,
    MESSAGE,
    OPERATION,
    STATEMENT_PREDICATES,
    STATEVAR,
    TRIGGER_ADJACENT_PREDICATES,
    VALUE,
    ConstantClasses,
    TypeRule,
    default_type_rules,
    rules_by_predicate,
)

__all__ = [
    "ASSOCIATIVE_PREDICATES",
    "CLAUSE",
    "CONCEPT",
    "ConstantClasses",
    "EXPR",
    "FIELD",
    "FUNCTION",
    "LEFT_TO_RIGHT_PREDICATES",
    "LogicalForm",
    "MESSAGE",
    "OPERATION",
    "STATEMENT_PREDICATES",
    "STATEVAR",
    "SentenceLFs",
    "TRIGGER_ADJACENT_PREDICATES",
    "TypeRule",
    "VALUE",
    "canonical_signature",
    "default_type_rules",
    "flatten_associative",
    "isomorphic",
    "rules_by_predicate",
    "to_graph",
]
