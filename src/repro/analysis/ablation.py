"""Ablations: NP labeling and the domain dictionary (Tables 7 and 8).

Table 7 contrasts good and poor noun-phrase labels on one sentence (the
poorly-labeled version yields far more logical forms).  Table 8 disables
the domain dictionary (LF counts increase for some sentences) and noun-
phrase labeling entirely (most sentences stop parsing).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

from ..core.stages import ParseStage
from ..nlp.chunker import ChunkerConfig, NounPhraseChunker
from ..nlp.terms import TermDictionary
from ..rfc.registry import default_registry

TABLE7_SENTENCE = (
    "The address of the source in an echo message will be the destination "
    "of the echo reply message."
)


@dataclass
class LabelComparison:
    """Table 7: LF counts under good vs poor NP labeling."""

    good_label_count: int
    poor_label_count: int

    @property
    def labeling_helps(self) -> bool:
        """Good labeling yields exactly one resolvable parse where poor
        labeling degrades — either LF blow-up (the paper's 16-vs-6) or
        outright parse failure (the paper's 0-LF limit case, which is how
        the degradation manifests in this grammar)."""
        if self.good_label_count == 0:
            return False
        return (self.poor_label_count == 0
                or self.poor_label_count > self.good_label_count)


def compare_np_labels(sentence: str = TABLE7_SENTENCE,
                      parser_backend: str | None = None) -> LabelComparison:
    """Parse one sentence with the full dictionary vs a degraded one.

    The poor labeling splits "echo reply message" by removing the multiword
    terms from the dictionary, mirroring Table 7's 'echo reply' + 'message'
    split.  ``parser_backend`` selects the parsing backend (None → the
    process default); the parity gate makes the table backend-independent.
    """
    registry = default_registry()
    # Both labelings run as parse stages over the shared registry cache:
    # their backend/lexicon/chunker fingerprints differ, so the cache keeps
    # the two experiments (and the main pipeline's parses) strictly
    # separate while letting repeated table regenerations skip re-parsing.
    good_stage = ParseStage(registry.parser(backend=parser_backend),
                            registry.chunker(),
                            cache=registry.parse_cache())
    good = good_stage.parse_text(sentence).count

    degraded_terms = [
        term for term in good_stage.chunker.dictionary.all_terms()
        if term not in ("echo reply message", "echo message", "timestamp message")
    ]
    # Poor labeling also loses the compound-merging pass, so "echo reply" and
    # "message" stay separate NPs, exactly Table 7's poor-label row.
    poor_chunker = NounPhraseChunker(
        dictionary=TermDictionary(degraded_terms),
        config=ChunkerConfig(merge_adjacent=False),
    )
    poor_stage = ParseStage(registry.parser(backend=parser_backend),
                            poor_chunker, cache=registry.parse_cache())
    poor = poor_stage.parse_text(sentence).count
    return LabelComparison(good_label_count=good, poor_label_count=poor)


@dataclass
class AblationResult:
    """Table 8 rows for one disabled component."""

    component: str
    increased: int = 0
    decreased: int = 0
    zeroed: int = 0
    unchanged: int = 0
    details: list[tuple[str, int, int]] = dataclass_field(default_factory=list)


def run_ablation(component: str, limit: int | None = None,
                 parser_backend: str | None = None) -> AblationResult:
    """Disable ``component`` ("dictionary" or "np-labeling") over the ICMP
    corpus; compare per-sentence base LF counts against the full pipeline.
    ``parser_backend`` selects the parsing backend (None → default)."""
    if component == "dictionary":
        config = ChunkerConfig(use_dictionary=False)
    elif component == "np-labeling":
        config = ChunkerConfig(use_np_labeling=False)
    else:
        raise ValueError(f"unknown component {component!r}")

    registry = default_registry()
    parser = registry.parser(backend=parser_backend)
    baseline_stage = ParseStage(parser, registry.chunker(),
                                cache=registry.parse_cache())
    ablated_chunker = NounPhraseChunker(
        dictionary=registry.dictionary(), config=config
    )
    ablated_stage = ParseStage(parser, ablated_chunker,
                               cache=registry.parse_cache())
    result = AblationResult(component=component)

    sentences = [record.text for record in registry.load_corpus("ICMP").sentences]
    if limit is not None:
        sentences = sentences[:limit]
    for text in sentences:
        baseline = baseline_stage.parse_text(text).count
        ablated = ablated_stage.parse_text(text).count
        result.details.append((text, baseline, ablated))
        if ablated == 0 and baseline > 0:
            result.zeroed += 1
        elif ablated > baseline:
            result.increased += 1
        elif ablated < baseline:
            result.decreased += 1
        else:
            result.unchanged += 1
    return result
