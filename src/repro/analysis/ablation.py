"""Ablations: NP labeling and the domain dictionary (Tables 7 and 8).

Table 7 contrasts good and poor noun-phrase labels on one sentence (the
poorly-labeled version yields far more logical forms).  Table 8 disables
the domain dictionary (LF counts increase for some sentences) and noun-
phrase labeling entirely (most sentences stop parsing).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

from ..ccg.chart import CCGChartParser
from ..nlp.chunker import ChunkerConfig, NounPhraseChunker
from ..nlp.terms import TermDictionary
from ..rfc.registry import default_registry

TABLE7_SENTENCE = (
    "The address of the source in an echo message will be the destination "
    "of the echo reply message."
)


@dataclass
class LabelComparison:
    """Table 7: LF counts under good vs poor NP labeling."""

    good_label_count: int
    poor_label_count: int

    @property
    def labeling_helps(self) -> bool:
        """Good labeling yields exactly one resolvable parse where poor
        labeling degrades — either LF blow-up (the paper's 16-vs-6) or
        outright parse failure (the paper's 0-LF limit case, which is how
        the degradation manifests in this grammar)."""
        if self.good_label_count == 0:
            return False
        return (self.poor_label_count == 0
                or self.poor_label_count > self.good_label_count)


def compare_np_labels(sentence: str = TABLE7_SENTENCE) -> LabelComparison:
    """Parse one sentence with the full dictionary vs a degraded one.

    The poor labeling splits "echo reply message" by removing the multiword
    terms from the dictionary, mirroring Table 7's 'echo reply' + 'message'
    split.
    """
    registry = default_registry()
    parser = registry.parser()
    good_chunker = registry.chunker()
    good = parser.parse(good_chunker.chunk_text(sentence)).count

    degraded_terms = [
        term for term in good_chunker.dictionary.all_terms()
        if term not in ("echo reply message", "echo message", "timestamp message")
    ]
    # Poor labeling also loses the compound-merging pass, so "echo reply" and
    # "message" stay separate NPs, exactly Table 7's poor-label row.
    poor_chunker = NounPhraseChunker(
        dictionary=TermDictionary(degraded_terms),
        config=ChunkerConfig(merge_adjacent=False),
    )
    poor = parser.parse(poor_chunker.chunk_text(sentence)).count
    return LabelComparison(good_label_count=good, poor_label_count=poor)


@dataclass
class AblationResult:
    """Table 8 rows for one disabled component."""

    component: str
    increased: int = 0
    decreased: int = 0
    zeroed: int = 0
    unchanged: int = 0
    details: list[tuple[str, int, int]] = dataclass_field(default_factory=list)


def _count_lfs(parser: CCGChartParser, chunker: NounPhraseChunker,
               text: str) -> int:
    return parser.parse(chunker.chunk_text(text)).count


def run_ablation(component: str, limit: int | None = None) -> AblationResult:
    """Disable ``component`` ("dictionary" or "np-labeling") over the ICMP
    corpus; compare per-sentence base LF counts against the full pipeline."""
    if component == "dictionary":
        config = ChunkerConfig(use_dictionary=False)
    elif component == "np-labeling":
        config = ChunkerConfig(use_np_labeling=False)
    else:
        raise ValueError(f"unknown component {component!r}")

    registry = default_registry()
    parser = registry.parser()
    baseline_chunker = registry.chunker()
    ablated_chunker = NounPhraseChunker(
        dictionary=registry.dictionary(), config=config
    )
    result = AblationResult(component=component)

    sentences = [record.text for record in registry.load_corpus("ICMP").sentences]
    if limit is not None:
        sentences = sentences[:limit]
    for text in sentences:
        baseline = _count_lfs(parser, baseline_chunker, text)
        ablated = _count_lfs(parser, ablated_chunker, text)
        result.details.append((text, baseline, ablated))
        if ablated == 0 and baseline > 0:
            result.zeroed += 1
        elif ablated > baseline:
            result.increased += 1
        elif ablated < baseline:
            result.decreased += 1
        else:
            result.unchanged += 1
    return result
