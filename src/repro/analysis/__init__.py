"""Evaluation studies: student faults, component coverage, ablations."""

from .ablation import AblationResult, LabelComparison, compare_np_labels, run_ablation
from .components import (
    CONCEPTUAL_COMPONENTS,
    SAGE_CONCEPTUAL_SUPPORT,
    SAGE_SYNTACTIC_SUPPORT,
    SYNTACTIC_COMPONENTS,
    DetectedComponents,
    conceptual_rows,
    detect_all,
    detect_components,
    syntactic_rows,
)
from .student_study import (
    FaultyICMP,
    StudentOutcome,
    StudyResult,
    checksum_interpretation_study,
    classify,
    evaluate_implementation,
    faulty_cohort,
    run_study,
)

__all__ = [
    "AblationResult",
    "CONCEPTUAL_COMPONENTS",
    "DetectedComponents",
    "FaultyICMP",
    "LabelComparison",
    "SAGE_CONCEPTUAL_SUPPORT",
    "SAGE_SYNTACTIC_SUPPORT",
    "SYNTACTIC_COMPONENTS",
    "StudentOutcome",
    "StudyResult",
    "checksum_interpretation_study",
    "classify",
    "compare_np_labels",
    "conceptual_rows",
    "detect_all",
    "detect_components",
    "evaluate_implementation",
    "faulty_cohort",
    "run_study",
    "syntactic_rows",
]
