"""Protocol specification component coverage (Tables 1, 9, and 10).

Table 9 catalogues *conceptual* components per RFC (packet format,
interoperation, pseudo code, state management, communication patterns,
architecture); Table 10 catalogues *syntactic* components (header diagrams,
listings, tables, algorithm descriptions, figures, sequence and state
machine diagrams).  SAGE supports a subset of each (Table 1).

For the four corpora bundled here, the syntactic detector *measures* the
components from the text; the remaining five protocols carry the paper's
catalogue entries so the full matrices regenerate.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.engine import (
    FLAGGED_STATUSES,
    STATUS_OK,
    STATUS_REWRITTEN,
    SageEngine,
)
from ..rfc.corpus import Corpus
from ..rfc.registry import default_registry

# -- conceptual components (Table 9) -------------------------------------------

CONCEPTUAL_COMPONENTS = (
    "Packet Format",
    "Interoperation",
    "Pseudo Code",
    "State/Session Mngmt.",
    "Comm. Patterns",
    "Architecture",
)

SAGE_CONCEPTUAL_SUPPORT = {
    "Packet Format": "full",
    "Interoperation": "full",
    "Pseudo Code": "full",
    "State/Session Mngmt.": "partial",
    "Comm. Patterns": "none",
    "Architecture": "none",
}

# Table 9 matrix, paper row order; True = component present in the RFC.
CONCEPTUAL_MATRIX: dict[str, dict[str, bool]] = {
    "IPv4": {"Packet Format": True, "Interoperation": True, "Pseudo Code": True,
             "State/Session Mngmt.": False, "Comm. Patterns": False,
             "Architecture": False},
    "TCP": {"Packet Format": True, "Interoperation": True, "Pseudo Code": True,
            "State/Session Mngmt.": True, "Comm. Patterns": True,
            "Architecture": False},
    "UDP": {"Packet Format": True, "Interoperation": True, "Pseudo Code": True,
            "State/Session Mngmt.": False, "Comm. Patterns": False,
            "Architecture": False},
    "ICMP": {"Packet Format": True, "Interoperation": True, "Pseudo Code": True,
             "State/Session Mngmt.": False, "Comm. Patterns": False,
             "Architecture": False},
    "NTP": {"Packet Format": True, "Interoperation": True, "Pseudo Code": True,
            "State/Session Mngmt.": True, "Comm. Patterns": True,
            "Architecture": True},
    "OSPF2": {"Packet Format": True, "Interoperation": True, "Pseudo Code": True,
              "State/Session Mngmt.": True, "Comm. Patterns": True,
              "Architecture": True},
    "BGP4": {"Packet Format": True, "Interoperation": True, "Pseudo Code": True,
             "State/Session Mngmt.": True, "Comm. Patterns": True,
             "Architecture": True},
    "RTP": {"Packet Format": True, "Interoperation": False, "Pseudo Code": True,
            "State/Session Mngmt.": False, "Comm. Patterns": True,
            "Architecture": False},
    "BFD": {"Packet Format": True, "Interoperation": True, "Pseudo Code": True,
            "State/Session Mngmt.": True, "Comm. Patterns": True,
            "Architecture": False},
}

# -- syntactic components (Table 10) --------------------------------------------

SYNTACTIC_COMPONENTS = (
    "Header Diagram",
    "Listing",
    "Table",
    "Algorithm Description",
    "Other Figures",
    "Seq./Comm. Diagram",
    "State Machine Diagram",
)

SAGE_SYNTACTIC_SUPPORT = {
    "Header Diagram": "full",
    "Listing": "full",
    "Table": "none",
    "Algorithm Description": "none",
    "Other Figures": "none",
    "Seq./Comm. Diagram": "none",
    "State Machine Diagram": "none",
}

SYNTACTIC_MATRIX: dict[str, dict[str, bool]] = {
    "IPv4": {"Header Diagram": True, "Listing": True, "Table": True,
             "Algorithm Description": True, "Other Figures": False,
             "Seq./Comm. Diagram": False, "State Machine Diagram": False},
    "TCP": {"Header Diagram": True, "Listing": True, "Table": False,
            "Algorithm Description": True, "Other Figures": True,
            "Seq./Comm. Diagram": True, "State Machine Diagram": True},
    "UDP": {"Header Diagram": True, "Listing": True, "Table": False,
            "Algorithm Description": False, "Other Figures": False,
            "Seq./Comm. Diagram": False, "State Machine Diagram": False},
    "ICMP": {"Header Diagram": True, "Listing": True, "Table": False,
             "Algorithm Description": False, "Other Figures": False,
             "Seq./Comm. Diagram": False, "State Machine Diagram": False},
    "NTP": {"Header Diagram": True, "Listing": True, "Table": True,
            "Algorithm Description": True, "Other Figures": True,
            "Seq./Comm. Diagram": False, "State Machine Diagram": False},
    "OSPF2": {"Header Diagram": True, "Listing": True, "Table": True,
              "Algorithm Description": True, "Other Figures": True,
              "Seq./Comm. Diagram": True, "State Machine Diagram": False},
    "BGP4": {"Header Diagram": True, "Listing": True, "Table": True,
             "Algorithm Description": True, "Other Figures": False,
             "Seq./Comm. Diagram": True, "State Machine Diagram": True},
    "RTP": {"Header Diagram": True, "Listing": True, "Table": True,
            "Algorithm Description": True, "Other Figures": True,
            "Seq./Comm. Diagram": True, "State Machine Diagram": False},
    "BFD": {"Header Diagram": True, "Listing": True, "Table": False,
            "Algorithm Description": False, "Other Figures": False,
            "Seq./Comm. Diagram": False, "State Machine Diagram": False},
}


@dataclass
class DetectedComponents:
    """Syntactic components measured from a bundled corpus."""

    protocol: str
    header_diagram: bool
    listing: bool
    field_descriptions: int
    state_management_sentences: int


def detect_components(corpus: Corpus) -> DetectedComponents:
    """Measure the detectable syntactic components in a corpus."""
    document = corpus.document
    has_diagram = any(
        section.diagram is not None and section.diagram.layout.fields
        for section in document.message_sections
    )
    has_listing = any(
        field.values for section in document.message_sections
        for field in section.fields
    )
    field_count = sum(len(section.fields) for section in document.message_sections)
    state_sentences = sum(
        1 for sentence in corpus.sentences if "bfd." in sentence.text.lower()
    )
    return DetectedComponents(
        protocol=corpus.protocol,
        header_diagram=has_diagram,
        listing=has_listing,
        field_descriptions=field_count,
        state_management_sentences=state_sentences,
    )


def detect_all() -> list[DetectedComponents]:
    """Measure every protocol registered in the default registry.

    Registry-driven: a fifth protocol registered via
    :func:`repro.rfc.registry.register_protocol` shows up here with no code
    change."""
    return [
        detect_components(corpus) for corpus in default_registry().corpora()
    ]


@dataclass
class PipelineCoverage:
    """How much of one corpus the pipeline turns into code (Table 1's
    "SAGE supports" claim, measured rather than catalogued)."""

    protocol: str
    sentences: int
    by_status: dict[str, int]

    @property
    def actionable(self) -> int:
        """Sentences that produced code (directly or through a rewrite)."""
        return (self.by_status.get(STATUS_OK, 0)
                + self.by_status.get(STATUS_REWRITTEN, 0))

    @property
    def flagged(self) -> int:
        return sum(self.by_status.get(status, 0)
                   for status in FLAGGED_STATUSES)


def pipeline_coverage(mode: str | None = None, *, parallel: bool = False,
                      engine: SageEngine | None = None,
                      parser_backend: str | None = None) -> list[PipelineCoverage]:
    """Run every registered protocol through one engine and measure coverage.

    Registry-driven like :func:`detect_all` — a fifth registered protocol is
    swept automatically.  ``parallel=True`` fans the sweep out across the
    engine's process pool.  Pass ``mode`` (default "revised") or a
    pre-built ``engine``, not a conflicting pair; ``parser_backend``
    selects the parsing backend for a freshly built engine."""
    if engine is not None:
        if mode is not None and mode != engine.mode:
            raise ValueError(
                f"mode {mode!r} conflicts with the supplied engine's "
                f"mode {engine.mode!r}"
            )
        if parser_backend is not None:
            raise ValueError(
                "pass parser_backend only when pipeline_coverage builds "
                "the engine itself"
            )
    else:
        engine = SageEngine(mode=mode or "revised",
                            parser_backend=parser_backend)
    runs = engine.process_corpora(parallel=parallel)
    return [
        PipelineCoverage(
            protocol=name,
            sentences=len(run.results),
            by_status=run.by_status(),
        )
        for name, run in runs.items()
    ]


def conceptual_rows() -> list[tuple[str, list[bool]]]:
    """Table 9 rows: component → presence across the nine protocols."""
    protocols = list(CONCEPTUAL_MATRIX)
    return [
        (component, [CONCEPTUAL_MATRIX[p][component] for p in protocols])
        for component in CONCEPTUAL_COMPONENTS
    ]


def syntactic_rows() -> list[tuple[str, list[bool]]]:
    """Table 10 rows."""
    protocols = list(SYNTACTIC_MATRIX)
    return [
        (component, [SYNTACTIC_MATRIX[p][component] for p in protocols])
        for component in SYNTACTIC_COMPONENTS
    ]
