"""The §2.1 student-implementation study as a fault-injection experiment.

The paper examined 39 student ICMP implementations: 24 interoperated with
Linux ping, 1 failed to compile, and 14 exhibited six (non-exclusive) error
classes (Table 2) including seven distinct misreadings of the checksum-range
sentence (Table 3).  We reproduce the study by *injecting* each misreading
into the reference implementation and measuring the identical failure
signals — ping's rejection reasons and tcpdump warnings.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

from ..framework import icmp
from ..framework.byteorder import swap16
from ..framework.checksum import incremental_update, internet_checksum
from ..framework.ip import PROTO_ICMP, IPv4Header, make_ip_packet
from ..netsim.icmp_impl import ReferenceICMP
from ..netsim.ping import Ping
from ..netsim.topologies import course_topology

# Table 2 error classes.
ERROR_IP_HEADER = "IP header related"
ERROR_ICMP_HEADER = "ICMP header related"
ERROR_BYTE_ORDER = "Network byte order and host byte order conversion"
ERROR_PAYLOAD = "Incorrect ICMP payload content"
ERROR_LENGTH = "Incorrect echo reply packet length"
ERROR_CHECKSUM = "Incorrect checksum or dropped by kernel"

TABLE2_PAPER_FREQUENCIES = {
    ERROR_IP_HEADER: 0.57,
    ERROR_ICMP_HEADER: 0.57,
    ERROR_BYTE_ORDER: 0.29,
    ERROR_PAYLOAD: 0.43,
    ERROR_LENGTH: 0.29,
    ERROR_CHECKSUM: 0.36,
}


class FaultyICMP(ReferenceICMP):
    """The reference implementation with injected misreadings.

    ``faults`` is a set of fault names; each perturbs the echo-reply path
    the way a specific student misreading would.
    """

    CHECKSUM_INTERPRETATIONS = {
        # Table 3: students' readings of "the one's complement sum of the
        # ICMP message starting with the ICMP Type".
        1: "size of a specific type of ICMP header",  # 8 fixed bytes
        2: "size of a partial ICMP header",  # first 4 bytes only
        3: "size of the ICMP header and payload",  # the correct reading
        4: "size of the IP header",  # checksums the wrong header entirely
        5: "header and payload plus any IP options",
        6: "incremental update from the request checksum",
        7: "magic constant length",
    }

    def __init__(self, faults: set[str] | None = None,
                 checksum_interpretation: int = 3) -> None:
        super().__init__()
        self.faults = faults or set()
        self.checksum_interpretation = checksum_interpretation

    def echo_reply(self, request: IPv4Header, responder_address: int) -> bytes | None:
        try:
            echo = icmp.ICMPHeader.unpack(request.data)
        except ValueError:
            return None
        if echo.type != icmp.ECHO or not echo.checksum_ok():
            return None

        payload = echo.payload
        if "payload_content" in self.faults:
            payload = bytes(reversed(payload))  # echoed the wrong bytes
        if "payload_length" in self.faults:
            payload = payload[: len(payload) // 2]  # wrong reply length

        reply = icmp.ICMPHeader(type=icmp.ECHO_REPLY, code=0, payload=payload)
        reply.rest = echo.rest
        if "icmp_header" in self.faults:
            reply.identifier = 0  # mangled the identifier field
        if "byte_order" in self.faults:
            reply.identifier = swap16(reply.identifier)
            reply.sequence = swap16(reply.sequence)

        raw = bytearray(reply.pack())
        checksum = self._checksum_for(raw, request, echo)
        raw[2:4] = checksum.to_bytes(2, "big")

        destination = request.src
        if "ip_header" in self.faults:
            destination = request.dst  # replied to itself: IP fields confused
        packet = make_ip_packet(
            src=responder_address, dst=destination,
            protocol=PROTO_ICMP, data=bytes(raw),
        )
        return packet.pack()

    def _checksum_for(self, message: bytearray, request: IPv4Header,
                      echo: icmp.ICMPHeader) -> int:
        """Apply the selected Table 3 checksum-range interpretation."""
        message[2:4] = b"\x00\x00"
        interpretation = self.checksum_interpretation
        if "checksum" in self.faults and interpretation == 3:
            interpretation = 2  # a checksum fault defaults to a partial range
        if interpretation == 1:
            return internet_checksum(bytes(message[:8]))
        if interpretation == 2:
            return internet_checksum(bytes(message[:4]))
        if interpretation == 3:
            return internet_checksum(bytes(message))
        if interpretation == 4:
            return internet_checksum(request.header_bytes())
        if interpretation == 5:
            return internet_checksum(request.options + bytes(message))
        if interpretation == 6:
            # Incremental update of the request checksum for the type change
            # (0x0800 -> 0x0000); correct ONLY if the sender checksummed the
            # full message — interoperates by accident, which is why some
            # students "passed" with it.
            return incremental_update(echo.checksum, 0x0800, 0x0000)
        if interpretation == 7:
            return internet_checksum(bytes(message[:36]))
        raise ValueError(f"unknown interpretation {interpretation}")


@dataclass
class StudentOutcome:
    """One simulated implementation's result against ping."""

    label: str
    faults: set[str]
    checksum_interpretation: int
    passed: bool
    rejection_reasons: list[str] = dataclass_field(default_factory=list)
    error_classes: set[str] = dataclass_field(default_factory=set)


def evaluate_implementation(implementation: FaultyICMP, label: str = "") -> StudentOutcome:
    """Run simulated Linux ping against one implementation."""
    topology = course_topology(implementation=implementation)
    prober = Ping(topology.client, payload_len=56)
    result = prober.run(topology.router.interface("eth0").address, count=3)
    outcome = StudentOutcome(
        label=label,
        faults=set(implementation.faults),
        checksum_interpretation=implementation.checksum_interpretation,
        passed=result.success,
        rejection_reasons=list(result.rejections),
    )
    outcome.error_classes = classify(outcome)
    return outcome


def classify(outcome: StudentOutcome) -> set[str]:
    """Map observed failures back onto the Table 2 error classes."""
    classes: set[str] = set()
    if outcome.passed:
        return classes
    reasons = " ".join(outcome.rejection_reasons)
    if "ip_header" in outcome.faults:
        classes.add(ERROR_IP_HEADER)
    if "icmp_header" in outcome.faults or "identifier mismatch" in reasons:
        classes.add(ERROR_ICMP_HEADER)
    if "byte_order" in outcome.faults:
        classes.add(ERROR_BYTE_ORDER)
    if "payload_content" in outcome.faults or "corrupted" in reasons:
        classes.add(ERROR_PAYLOAD)
    if "payload_length" in outcome.faults or "length" in reasons:
        classes.add(ERROR_LENGTH)
    if "bad ICMP checksum" in reasons or outcome.checksum_interpretation not in (3, 6):
        classes.add(ERROR_CHECKSUM)
    return classes


def faulty_cohort() -> list[FaultyICMP]:
    """The 14 faulty implementations, mixing Table 2 fault classes at the
    paper's frequencies (each class appears in ≥4 of the 14)."""
    specs: list[tuple[set[str], int]] = [
        ({"ip_header", "icmp_header"}, 3),
        ({"ip_header", "checksum"}, 2),
        ({"ip_header", "payload_content"}, 3),
        ({"ip_header", "byte_order"}, 3),
        ({"ip_header", "icmp_header", "payload_length"}, 3),
        ({"ip_header", "icmp_header"}, 1),
        ({"ip_header", "icmp_header", "payload_content"}, 3),
        ({"ip_header", "icmp_header", "payload_content", "payload_length"}, 3),
        ({"icmp_header", "byte_order"}, 3),
        ({"icmp_header", "checksum"}, 7),
        ({"byte_order", "payload_length", "payload_content"}, 3),
        ({"payload_content"}, 4),
        ({"payload_content", "payload_length"}, 7),
        ({"byte_order", "checksum", "icmp_header"}, 2),
    ]
    return [FaultyICMP(faults=faults, checksum_interpretation=ci)
            for faults, ci in specs]


@dataclass
class StudyResult:
    """The full Table 2 reproduction."""

    total: int
    correct: int
    non_compiling: int
    outcomes: list[StudentOutcome]

    def frequencies(self) -> dict[str, float]:
        failed = [o for o in self.outcomes if not o.passed]
        if not failed:
            return {}
        counts: dict[str, int] = {}
        for outcome in failed:
            for error_class in outcome.error_classes:
                counts[error_class] = counts.get(error_class, 0) + 1
        return {name: count / len(failed) for name, count in counts.items()}

    def parse_rate(self) -> float:
        return self.correct / self.total


def run_study() -> StudyResult:
    """Simulate the class of 39: 24 correct, 1 non-compiling, 14 faulty."""
    outcomes: list[StudentOutcome] = []
    for index in range(24):
        outcome = evaluate_implementation(FaultyICMP(), label=f"correct-{index}")
        outcomes.append(outcome)
    for index, implementation in enumerate(faulty_cohort()):
        outcomes.append(
            evaluate_implementation(implementation, label=f"faulty-{index}")
        )
    correct = sum(1 for o in outcomes if o.passed)
    return StudyResult(
        total=39, correct=correct, non_compiling=1, outcomes=outcomes
    )


def checksum_interpretation_study() -> dict[int, bool]:
    """Table 3: does each checksum-range interpretation interoperate?"""
    results: dict[int, bool] = {}
    for interpretation in FaultyICMP.CHECKSUM_INTERPRETATIONS:
        implementation = FaultyICMP(checksum_interpretation=interpretation)
        outcome = evaluate_implementation(implementation)
        results[interpretation] = outcome.passed
    return results
