"""The bundled data layer: curated RFC excerpts, the term dictionary, and
the human-in-the-loop rewrite record.

Files here are loaded through :mod:`repro.rfc.registry` (and, for the
dictionary, :func:`repro.nlp.terms.load_default_dictionary`) via
``importlib.resources``, so they work both from a source checkout and from
an installed wheel (see ``[tool.setuptools.package-data]`` in
pyproject.toml).  DESIGN.md at the repository root documents the file
formats.
"""
