"""SAGE: semi-automated protocol disambiguation and code generation.

A reproduction of the SIGCOMM 2021 paper, grown into a service.  Public
entry points:

* :mod:`repro.api` — the versioned service layer: :class:`~repro.api.
  SageService` (``process`` / ``sweep`` / ``artifact`` endpoints over
  JSON-round-trippable request/response contracts), the interactive
  :class:`~repro.api.DisambiguationSession` (iterate flagged sentences,
  journal :class:`~repro.api.Resolution` decisions the registry replays),
  and the ``python -m repro`` CLI (``process``, ``sweep``, ``resolve``,
  ``emit``);
* :class:`repro.core.Sage` — the pipeline facade (parse → disambiguate →
  codegen) over the staged :class:`~repro.core.SageEngine`;
* :mod:`repro.rfc` — bundled RFC corpora (ICMP, IGMP, NTP, BFD) behind the
  cached protocol registry;
* :mod:`repro.codegen` — the typed IR with C / Python / interpreter
  backends;
* :mod:`repro.runtime` — executes generated code (including serialized
  :class:`~repro.api.GeneratedArtifact` payloads);
* :mod:`repro.netsim` — the Mininet-like simulator with ping/traceroute;
* :mod:`repro.framework` — the static framework (codecs, checksums, pcap).
"""

from .api import (
    DisambiguationSession,
    ProcessRequest,
    ProcessResponse,
    Resolution,
    SageService,
)
from .core import Sage, SageRun, SentenceStatus

__version__ = "1.1.0"
__all__ = [
    "DisambiguationSession",
    "ProcessRequest",
    "ProcessResponse",
    "Resolution",
    "Sage",
    "SageRun",
    "SageService",
    "SentenceStatus",
    "__version__",
]
