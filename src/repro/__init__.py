"""SAGE: semi-automated protocol disambiguation and code generation.

A reproduction of the SIGCOMM 2021 paper.  Public entry points:

* :class:`repro.core.Sage` — the pipeline (parse → disambiguate → codegen);
* :mod:`repro.rfc` — bundled RFC corpora (ICMP, IGMP, NTP, BFD);
* :mod:`repro.runtime` — executes generated code;
* :mod:`repro.netsim` — the Mininet-like simulator with ping/traceroute;
* :mod:`repro.framework` — the static framework (codecs, checksums, pcap).
"""

from .core import Sage, SageRun

__version__ = "1.0.0"
__all__ = ["Sage", "SageRun", "__version__"]
