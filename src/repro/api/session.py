"""The interactive human-in-the-loop surface (Figure 4, as an object).

A :class:`DisambiguationSession` is one operator working one protocol:

1. **open** — run the pipeline; every sentence becomes a
   :class:`~repro.api.contracts.SentenceReport` carrying its status, the LF
   count after each winnow check, and the surviving readings by stable
   signature;
2. **iterate** — :meth:`flagged` / :meth:`pending` enumerate the sentences
   still needing a decision;
3. **resolve** — :meth:`resolve` records a
   :class:`~repro.disambiguation.resolution.Resolution` (rewrite, annotate,
   or force-select an LF by signature) into the session's
   :class:`~repro.disambiguation.resolution.DecisionJournal`, which the
   registry replays on every later run;
4. **replay** — the next :attr:`run`/:meth:`response` access re-processes
   the corpus with all journaled decisions applied; a *fresh* session over
   the same journal reproduces the same output (the governance property the
   end-to-end test locks against the golden C files).

Sessions mutate their registry (they attach the journal to it).  Pass a
private :class:`~repro.rfc.registry.ProtocolRegistry` when the process-wide
default must stay pristine.
"""

from __future__ import annotations

import pathlib

from ..ccg.semantics import signature
from ..core.engine import SageEngine, SageRun
from ..disambiguation.resolution import DecisionJournal, Resolution
from ..rfc.corpus import sentence_key
from .contracts import ProcessResponse, SentenceReport, _check_mode
from .errors import ProtocolNotFound, RequestError, SentenceNotFound


class DisambiguationSession:
    """One operator, one protocol, one decision journal."""

    def __init__(self, protocol: str, mode: str = "revised",
                 registry=None, journal: DecisionJournal | None = None,
                 journal_path: str | pathlib.Path | None = None) -> None:
        if registry is None:
            from ..rfc.registry import default_registry

            registry = default_registry()
        self.registry = registry
        self.mode = _check_mode(mode)
        try:
            self.protocol = registry.spec(protocol).name
        except KeyError:
            raise ProtocolNotFound(protocol, registry.protocols()) from None
        if journal is not None and journal_path is not None:
            raise RequestError("pass either a journal or a journal_path")
        if journal is None:
            if journal_path is not None:
                journal = DecisionJournal.load(journal_path)
            elif getattr(registry, "journal", None) is not None:
                # The registry already has a journal (e.g. a SageService
                # constructed over one): the session continues it.
                journal = registry.journal
            else:
                journal = DecisionJournal()
        self.journal = journal
        self.registry.attach_journal(journal)
        self._engine: SageEngine | None = None
        self._run: SageRun | None = None

    # -- running ----------------------------------------------------------------
    @property
    def engine(self) -> SageEngine:
        """The session's engine (kept across reruns for its warm caches)."""
        if self._engine is None:
            self._engine = SageEngine(mode=self.mode,
                                      protocol_registry=self.registry)
        return self._engine

    @property
    def run(self) -> SageRun:
        """The current pipeline run (lazy; invalidated by each resolve)."""
        if self._run is None:
            engine = self.engine
            engine.refresh_decisions()
            self._run = engine.process_corpus(self.protocol)
        return self._run

    def rerun(self) -> SageRun:
        """Force a fresh run with every journaled decision applied."""
        self._run = None
        return self.run

    def response(self, include_sentences: bool = True,
                 artifacts: tuple[str, ...] = ()) -> ProcessResponse:
        """The current run as a serializable :class:`ProcessResponse`."""
        return ProcessResponse.from_run(self.run, self.mode,
                                        include_sentences=include_sentences,
                                        artifacts=artifacts)

    # -- inspection -------------------------------------------------------------
    def reports(self) -> list[SentenceReport]:
        """Every sentence of the current run, in corpus order."""
        return [SentenceReport.from_result(result, index)
                for index, result in enumerate(self.run.results)]

    def flagged(self) -> list[SentenceReport]:
        """Sentences the pipeline escalated (Figure 4's feedback arrows)."""
        return [report for report in self.reports() if report.flagged]

    def pending(self) -> list[SentenceReport]:
        """Flagged sentences still needing an effective decision.

        The queue is computed on the *replayed* run: a resolution that
        worked removes its sentence by changing the status, while a
        journaled resolution that had no effect — a select_lf whose
        signature no longer matches any survivor, or a revised-mode-only
        decision in a strict session — leaves its sentence in the queue
        rather than silently hiding still-flagged work.
        """
        return self.flagged()

    def report(self, selector) -> SentenceReport:
        """One sentence's report, by corpus index or by (partial) text."""
        result, index = self._locate(selector)
        return SentenceReport.from_result(result, index)

    def survivors(self, selector) -> list[str]:
        """The surviving LF signatures of one sentence (stable order) —
        what a force-select resolution chooses among."""
        result, _index = self._locate(selector)
        if result.trace is None:
            return []
        return [signature(form) for form in result.trace.survivors]

    def _locate(self, selector):
        results = self.run.results
        if isinstance(selector, int):
            if not 0 <= selector < len(results):
                raise SentenceNotFound(
                    f"sentence index {selector} out of range "
                    f"(corpus has {len(results)} sentences)"
                )
            return results[selector], selector
        wanted = sentence_key(str(selector))
        for index, result in enumerate(results):
            if sentence_key(result.spec.text) == wanted:
                return result, index
        # Partial match fallback: unique substring of the normalized text.
        matches = [
            (result, index) for index, result in enumerate(results)
            if wanted and wanted in sentence_key(result.spec.text)
        ]
        if len(matches) == 1:
            return matches[0]
        if len(matches) > 1:
            raise SentenceNotFound(
                f"selector {selector!r} matches {len(matches)} sentences; "
                "be more specific"
            )
        raise SentenceNotFound(
            f"no sentence of {self.protocol} matches {selector!r}"
        )

    # -- resolving --------------------------------------------------------------
    def resolve(self, selector=None, *, rewrite: str | None = None,
                category: str = "", annotate: bool = False,
                select_lf: str | None = None, note: str = "",
                resolution: Resolution | None = None) -> Resolution:
        """Record one decision and schedule the replay.

        Either pass a ready-made ``resolution`` (its ``original`` addresses
        the sentence), or address a sentence with ``selector`` (index or
        text) and exactly one of:

        * ``rewrite="..."`` (+ optional ``category``) — replace the text;
        * ``annotate=True`` — mark it non-actionable;
        * ``select_lf="@Is(...)"`` — force one surviving reading by its
          stable signature (also accepts the survivor's index as an int).

        The resolution is appended to the journal (persisting immediately
        when the journal has a path) and the cached run is invalidated, so
        the next :attr:`run`/:meth:`response` access replays everything.
        """
        if resolution is None:
            if selector is None:
                raise RequestError(
                    "resolve needs a selector (or a ready-made resolution)"
                )
            result, _index = self._locate(selector)
            chosen = [option for option in (rewrite, select_lf) if option is not None]
            if annotate:
                chosen.append("annotate")
            if len(chosen) != 1:
                raise RequestError(
                    "pass exactly one of rewrite=, annotate=True, select_lf="
                )
            common = {
                "protocol": self.protocol,
                "status_before": str(result.status),
                "note": note,
            }
            if rewrite is not None:
                resolution = Resolution.rewrite(
                    result.spec.text, rewrite,
                    category=category or self._default_category(result),
                    **common,
                )
            elif annotate:
                resolution = Resolution.annotate(result.spec.text, **common)
            else:
                if isinstance(select_lf, int):
                    options = self.survivors(_index)
                    if not 0 <= select_lf < len(options):
                        raise RequestError(
                            f"survivor index {select_lf} out of range "
                            f"({len(options)} survivors)"
                        )
                    select_lf = options[select_lf]
                resolution = Resolution.select_lf(result.spec.text, select_lf,
                                                  **common)
        self.journal.record(resolution)
        self.registry.attach_journal(self.journal)  # drop the rewrite memo
        self._run = None
        return resolution

    @staticmethod
    def _default_category(result) -> str:
        """The Table 6 category a rewrite of ``result`` falls under."""
        status = str(result.status)
        if status == "unparsed":
            return "unparsed"
        if status in ("ambiguous-lf", "ambiguous-ref"):
            return "ambiguous"
        return "imprecise"  # parsed fine; the operator knows better (§6.5)

    def resolutions(self) -> list[Resolution]:
        return list(self.journal)

    def save_journal(self, path=None) -> pathlib.Path:
        return self.journal.save(path)


def open_session(protocol: str, mode: str = "revised",
                 **kwargs) -> DisambiguationSession:
    """Module-level convenience constructor."""
    return DisambiguationSession(protocol, mode=mode, **kwargs)
