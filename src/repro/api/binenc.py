"""The compact binary wire envelope (``schema:1b``).

``schema:1`` (:mod:`repro.api.contracts`) is JSON: self-describing,
greppable, and the right default for small payloads.  Bulk payloads — a
full :class:`~repro.core.engine.SageRun`, a sweep response, the persistent
parse-cache entries — pay JSON twice: the bytes (every ``"t": "call"`` key
repeated tens of thousands of times) and the time (every semantic term
built through an intermediate dict).  ``schema:1b`` is the binary sibling:

* **length-prefixed** — every string, list, and argument vector carries a
  LEB128 count up front; no scanning, no delimiters, no escaping;
* **string-interned** — the first occurrence of a string is written once,
  every repeat is a small back-reference (predicate names, field names,
  and status strings dominate pipeline payloads);
* **structure-shared** — semantic terms are encoded by object identity:
  a term the producer shares (winnow survivors are literally members of
  the base-form list; the indexed parser hash-conses repeated sub-terms)
  is written once and back-referenced, which is both the size and the
  speed win — the codec visits each distinct node once;
* **direct** — the hot contract types (SageRun, SentenceResult,
  WinnowTrace, logical forms) encode straight from their objects and
  decode straight back, skipping the dict round-trip entirely.  Cooler
  types (requests, reports, artifacts, the IR program) reuse their JSON
  ``to_dict`` forms under a generic value codec, so *every* ``schema:1``
  kind round-trips through ``schema:1b`` losslessly.

:func:`to_bytes` / :func:`from_bytes` mirror ``to_json`` / ``from_json``
exactly — same kinds, same registry resolution, same structured errors —
and ``from_bytes(to_bytes(x)) == from_json(to_json(x))`` is gated in
``benchmarks/pipeline_smoke.py`` and property-locked in
``tests/test_binenc.py``.  The persistent cache layer
(:mod:`repro.cache.persistent`) reuses the same primitives for on-disk
parse entries via :func:`parse_entry_to_bytes` /
:func:`parse_entry_from_bytes`.
"""

from __future__ import annotations

import struct

from ..ccg.chart import ParseResult
from ..ccg.semantics import App, Call, Const, Lam, Sem, Var
from ..codegen.ir import op_from_dict, op_to_dict, program_from_dict, program_to_dict
from ..codegen.generator import SentenceCode
from ..core.engine import SageRun, SentenceResult, SentenceStatus
from ..disambiguation.winnow import WinnowTrace
from ..rfc.corpus import Rewrite, SpecSentence
from .contracts import _CONTRACTS, kind_of
from .errors import ContractError, EnvelopeDecodeError, ProtocolNotFound

#: The wire schema tag this module writes and reads (JSON's ``schema:1``
#: sibling; the magic below is its byte-level spelling).
SCHEMA_1B = "1b"

#: Every payload starts with these four bytes: "R" "1" "B" + format 0x01.
MAGIC = b"R1B\x01"

# -- value tags ----------------------------------------------------------------
_T_NONE = 0
_T_TRUE = 1
_T_FALSE = 2
_T_INT = 3       # zigzag varint
_T_FLOAT = 4     # 8-byte IEEE double
_T_SNEW = 5      # varint byte-length + utf-8, assigned the next intern index
_T_SREF = 6      # varint intern index
_T_LIST = 7      # varint count + values
_T_DICT = 8      # varint count + (string key, value) pairs
# semantic terms
_T_CONST = 16
_T_CONST_SPAN = 17
_T_VAR = 18
_T_LAM = 19
_T_APP = 20
_T_CALL = 21     # aux byte: bit0 trigger, bit1 flags
_T_SEM_REF = 22  # varint node index (preorder assignment)
# direct-coded structures
_T_RUN = 32
_T_RESULT = 33   # aux byte: bit0 trace, bit1 lf, bit2 rewrite,
                 #           bit3 subject_supplied, bit4 pruned
_T_TRACE = 34
_T_SPEC = 35
_T_REWRITE = 36
_T_SCODE = 37
_T_PARSE_ENTRY = 48

_pack_double = struct.Struct(">d").pack
_unpack_double = struct.Struct(">d").unpack_from

_EMPTY_FLAGS = frozenset()


# -- fast constructors ---------------------------------------------------------
# The semantic term classes are frozen dataclasses: their __init__ routes
# every field through object.__setattr__, which the decode hot loop pays
# tens of thousands of times per payload.  They have no __post_init__ and
# no slots, so building via __new__ + direct __dict__ fill is
# behavior-identical (__eq__/__hash__ read attributes) and much cheaper.

def _new_const(value, span):
    term = Const.__new__(Const)
    d = term.__dict__
    d["value"] = value
    d["span"] = span
    return term


def _new_var(name):
    term = Var.__new__(Var)
    term.__dict__["name"] = name
    return term


def _new_lam(param, body):
    term = Lam.__new__(Lam)
    d = term.__dict__
    d["param"] = param
    d["body"] = body
    return term


def _new_app(fn, arg):
    term = App.__new__(App)
    d = term.__dict__
    d["fn"] = fn
    d["arg"] = arg
    return term


def _new_call(pred, args, trigger, flags):
    term = Call.__new__(Call)
    d = term.__dict__
    d["pred"] = pred
    d["args"] = args
    d["trigger"] = trigger
    d["flags"] = flags
    return term


# -- the writer ----------------------------------------------------------------

class _Writer:
    def __init__(self) -> None:
        self.buf = bytearray(MAGIC)
        self._strings: dict[str, int] = {}
        self._sems: dict[int, int] = {}
        #: Keeps every encoded term alive for the writer's lifetime so the
        #: id()-keyed memo can never collide with a recycled address.
        self._sem_refs: list[Sem] = []

    def varint(self, n: int) -> None:
        buf = self.buf
        while n > 0x7F:
            buf.append((n & 0x7F) | 0x80)
            n >>= 7
        buf.append(n)

    def string(self, s: str) -> None:
        index = self._strings.get(s)
        if index is None:
            self._strings[s] = len(self._strings)
            raw = s.encode("utf-8")
            self.buf.append(_T_SNEW)
            self.varint(len(raw))
            self.buf += raw
        else:
            self.buf.append(_T_SREF)
            self.varint(index)

    def integer(self, n: int) -> None:
        self.buf.append(_T_INT)
        self.varint((n << 1) ^ (n >> 63) if n >= -(1 << 62) else -(n << 1) - 1)

    def sem(self, term: Sem) -> None:
        memo = self._sems
        index = memo.get(id(term))
        if index is not None:
            self.buf.append(_T_SEM_REF)
            self.varint(index)
            return
        # Preorder index assignment (children get subsequent indices); the
        # reader reserves slots in the same order.  Terms are acyclic, so a
        # back-reference always names a completed node.
        memo[id(term)] = len(memo)
        self._sem_refs.append(term)
        kind = type(term)
        if kind is Call:
            trigger = term.trigger
            flags = term.flags
            self.buf.append(_T_CALL)
            self.buf.append((1 if trigger is not None else 0)
                            | (2 if flags else 0))
            self.string(term.pred)
            args = term.args
            self.varint(len(args))
            for arg in args:
                self.sem(arg)
            if trigger is not None:
                self.varint((trigger << 1) ^ (trigger >> 63))
            if flags:
                ordered = sorted(flags)
                self.varint(len(ordered))
                for flag in ordered:
                    self.string(flag)
        elif kind is Const:
            span = term.span
            if span is None:
                self.buf.append(_T_CONST)
                self.string(term.value)
            else:
                self.buf.append(_T_CONST_SPAN)
                self.string(term.value)
                self.varint(span[0])
                self.varint(span[1])
        elif kind is Var:
            self.buf.append(_T_VAR)
            self.string(term.name)
        elif kind is Lam:
            self.buf.append(_T_LAM)
            self.string(term.param)
            self.sem(term.body)
        elif kind is App:
            self.buf.append(_T_APP)
            self.sem(term.fn)
            self.sem(term.arg)
        else:
            raise ContractError(
                f"cannot serialize semantic term {kind.__name__}"
            )

    def value(self, obj) -> None:
        """The generic codec: any JSON-safe value, plus embedded Sem terms."""
        if obj is None:
            self.buf.append(_T_NONE)
        elif obj is True:
            self.buf.append(_T_TRUE)
        elif obj is False:
            self.buf.append(_T_FALSE)
        elif type(obj) is str:
            self.string(obj)
        elif type(obj) is int:
            self.integer(obj)
        elif type(obj) is float:
            self.buf.append(_T_FLOAT)
            self.buf += _pack_double(obj)
        elif type(obj) is list or type(obj) is tuple:
            self.buf.append(_T_LIST)
            self.varint(len(obj))
            for item in obj:
                self.value(item)
        elif type(obj) is dict:
            self.buf.append(_T_DICT)
            self.varint(len(obj))
            for key, item in obj.items():
                self.string(key)
                self.value(item)
        elif isinstance(obj, Sem):
            self.sem(obj)
        elif isinstance(obj, bool):
            self.buf.append(_T_TRUE if obj else _T_FALSE)
        elif isinstance(obj, int):
            self.integer(obj)
        elif isinstance(obj, str):
            self.string(obj)
        else:
            raise ContractError(
                f"schema:1b cannot encode {type(obj).__name__} values"
            )


# -- the reader ----------------------------------------------------------------

class _Reader:
    """Decodes what :class:`_Writer` wrote — without ever trusting it.

    Every length prefix and element count comes off the wire, so each one
    is bounds-checked against the bytes that could possibly back it before
    it sizes a read or drives a loop: a malformed (or malicious) frame
    raises :class:`~repro.api.errors.EnvelopeDecodeError` instead of
    producing an oversized allocation or a silently-truncated value.
    """

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = len(MAGIC)
        self.strings: list[str] = []
        self.sems: list = []

    def varint(self) -> int:
        data = self.data
        pos = self.pos
        result = 0
        shift = 0
        while True:
            try:
                byte = data[pos]
            except IndexError:
                raise EnvelopeDecodeError(
                    "varint runs past the end of the payload"
                ) from None
            pos += 1
            result |= (byte & 0x7F) << shift
            if byte < 0x80:
                break
            shift += 7
            if shift > 63:
                # The writer never emits more than 64 bits; continuation
                # bytes past that are garbage and would otherwise build an
                # arbitrarily large int from wire input.
                raise EnvelopeDecodeError("varint exceeds 64 bits")
        self.pos = pos
        return result

    def _bounded(self, what: str) -> int:
        """A varint length/count that must fit the remaining payload.

        Strings need exactly this many bytes; list/arg/field counts cost
        at least one byte per element.  Either way a prefix larger than
        what remains can only come from a corrupt or hostile frame, and
        must fail *before* it sizes an allocation or a loop.
        """
        n = self.varint()
        remaining = len(self.data) - self.pos
        if n > remaining:
            raise EnvelopeDecodeError(
                f"{what} {n} exceeds the {remaining} bytes remaining"
            )
        return n

    def _zigzag(self) -> int:
        raw = self.varint()
        return (raw >> 1) ^ -(raw & 1)

    def string(self) -> str:
        tag = self.data[self.pos]
        self.pos += 1
        if tag == _T_SREF:
            index = self.varint()
            try:
                return self.strings[index]
            except IndexError:
                raise EnvelopeDecodeError(
                    f"string back-reference {index} names an intern slot "
                    f"that does not exist yet ({len(self.strings)} interned)"
                ) from None
        if tag != _T_SNEW:
            raise ContractError(f"expected a string, found tag {tag}")
        length = self._bounded("string length")
        raw = self.data[self.pos:self.pos + length]
        self.pos += length
        text = raw.decode("utf-8")
        self.strings.append(text)
        return text

    def sem(self) -> Sem:
        data = self.data
        tag = data[self.pos]
        self.pos += 1
        if tag == _T_SEM_REF:
            index = self.varint()
            try:
                return self.sems[index]
            except IndexError:
                raise EnvelopeDecodeError(
                    f"term back-reference {index} names a node that does "
                    f"not exist yet ({len(self.sems)} decoded)"
                ) from None
        nodes = self.sems
        index = len(nodes)
        nodes.append(None)  # reserve the preorder slot before the children
        if tag == _T_CALL:
            aux = data[self.pos]
            self.pos += 1
            pred = self.string()
            count = self._bounded("argument count")
            args = tuple([self.sem() for _ in range(count)])
            trigger = self._zigzag() if aux & 1 else None
            if aux & 2:
                flags = frozenset(self.string()
                                  for _ in range(self._bounded("flag count")))
            else:
                flags = _EMPTY_FLAGS
            term = _new_call(pred, args, trigger, flags)
        elif tag == _T_CONST:
            term = _new_const(self.string(), None)
        elif tag == _T_CONST_SPAN:
            value = self.string()
            term = _new_const(value, (self.varint(), self.varint()))
        elif tag == _T_VAR:
            term = _new_var(self.string())
        elif tag == _T_LAM:
            term = _new_lam(self.string(), self.sem())
        elif tag == _T_APP:
            term = _new_app(self.sem(), self.sem())
        else:
            raise ContractError(f"unknown semantic term tag {tag}")
        nodes[index] = term
        return term

    def value(self):
        data = self.data
        tag = data[self.pos]
        self.pos += 1
        if tag == _T_SNEW or tag == _T_SREF:
            self.pos -= 1
            return self.string()
        if tag == _T_INT:
            return self._zigzag()
        if tag == _T_LIST:
            return [self.value() for _ in range(self._bounded("list count"))]
        if tag == _T_DICT:
            return {self.string(): self.value()
                    for _ in range(self._bounded("dict count"))}
        if tag == _T_NONE:
            return None
        if tag == _T_TRUE:
            return True
        if tag == _T_FALSE:
            return False
        if tag == _T_FLOAT:
            if len(data) - self.pos < 8:
                raise EnvelopeDecodeError("float runs past the payload end")
            result = _unpack_double(data, self.pos)[0]
            self.pos += 8
            return result
        self.pos -= 1
        return self.sem()


# -- direct structure codecs ---------------------------------------------------

def _enc_spec(w: _Writer, spec: SpecSentence) -> None:
    w.buf.append(_T_SPEC)
    w.string(spec.text)
    w.string(spec.protocol)
    w.string(spec.message)
    w.string(spec.field)
    w.string(spec.kind)
    w.string(spec.field_group)


def _dec_spec(r: _Reader) -> SpecSentence:
    if r.data[r.pos] != _T_SPEC:
        raise ContractError("expected a spec_sentence record")
    r.pos += 1
    return SpecSentence(
        text=r.string(), protocol=r.string(), message=r.string(),
        field=r.string(), kind=r.string(), field_group=r.string(),
    )


def _enc_rewrite(w: _Writer, rewrite: Rewrite) -> None:
    w.buf.append(_T_REWRITE)
    w.string(rewrite.original)
    w.string(rewrite.revised)
    w.string(rewrite.category)
    w.string(rewrite.note)


def _dec_rewrite(r: _Reader) -> Rewrite:
    if r.data[r.pos] != _T_REWRITE:
        raise ContractError("expected a rewrite record")
    r.pos += 1
    return Rewrite(original=r.string(), revised=r.string(),
                   category=r.string(), note=r.string())


def _enc_trace(w: _Writer, trace: WinnowTrace) -> None:
    w.buf.append(_T_TRACE)
    w.string(trace.sentence)
    counts = trace.counts
    w.varint(len(counts))
    for stage, count in counts.items():
        w.string(stage)
        w.varint(count)
    base_forms = trace.base_forms
    w.varint(len(base_forms))
    for form in base_forms:
        w.sem(form)
    # Survivors are (by construction) members of the base-form list, so
    # this is usually a run of back-references.
    survivors = trace.survivors
    w.varint(len(survivors))
    for form in survivors:
        w.sem(form)


def _dec_trace(r: _Reader) -> WinnowTrace:
    if r.data[r.pos] != _T_TRACE:
        raise ContractError("expected a winnow_trace record")
    r.pos += 1
    sentence = r.string()
    counts = {}
    for _ in range(r._bounded("stage count")):
        stage = r.string()
        counts[stage] = r.varint()
    base_forms = [r.sem() for _ in range(r._bounded("base-form count"))]
    survivors = [r.sem() for _ in range(r._bounded("survivor count"))]
    return WinnowTrace(sentence=sentence, counts=counts,
                       survivors=survivors, base_forms=base_forms)


def _enc_scode(w: _Writer, code: SentenceCode) -> None:
    w.buf.append(_T_SCODE)
    w.string(code.sentence)
    w.string(code.status)
    w.string(code.goal_message)
    w.string(code.role)
    w.string(code.reason)
    w.value([op_to_dict(op) for op in code.ops])


def _dec_scode(r: _Reader) -> SentenceCode:
    if r.data[r.pos] != _T_SCODE:
        raise ContractError("expected a sentence-code record")
    r.pos += 1
    sentence = r.string()
    status = r.string()
    goal_message = r.string()
    role = r.string()
    reason = r.string()
    ops = [op_from_dict(record) for record in r.value()]
    return SentenceCode(sentence=sentence, ops=ops,
                        goal_message=goal_message, role=role,
                        status=status, reason=reason)


def _enc_result(w: _Writer, result: SentenceResult) -> None:
    w.buf.append(_T_RESULT)
    trace = result.trace
    form = result.logical_form
    rewrite = result.rewrite
    w.buf.append(
        (1 if trace is not None else 0)
        | (2 if form is not None else 0)
        | (4 if rewrite is not None else 0)
        | (8 if result.subject_supplied else 0)
        | (16 if result.pruned else 0)
    )
    _enc_spec(w, result.spec)
    w.string(str(result.status))
    w.string(result.reason)
    if trace is not None:
        _enc_trace(w, trace)
    if form is not None:
        w.sem(form)
    if rewrite is not None:
        _enc_rewrite(w, rewrite)
    codes = result.codes
    w.varint(len(codes))
    for code in codes:
        _enc_scode(w, code)
    subs = result.sub_results
    w.varint(len(subs))
    for sub in subs:
        _enc_result(w, sub)


def _dec_result(r: _Reader) -> SentenceResult:
    if r.data[r.pos] != _T_RESULT:
        raise ContractError("expected a sentence_result record")
    r.pos += 1
    aux = r.data[r.pos]
    r.pos += 1
    spec = _dec_spec(r)
    status = SentenceStatus.coerce(r.string())
    reason = r.string()
    trace = _dec_trace(r) if aux & 1 else None
    form = r.sem() if aux & 2 else None
    rewrite = _dec_rewrite(r) if aux & 4 else None
    codes = [_dec_scode(r) for _ in range(r._bounded("code count"))]
    subs = [_dec_result(r) for _ in range(r._bounded("sub-result count"))]
    return SentenceResult(
        spec=spec, status=status, trace=trace, logical_form=form,
        codes=codes, rewrite=rewrite, sub_results=subs,
        subject_supplied=bool(aux & 8), reason=reason,
        pruned=bool(aux & 16),
    )


def _enc_run(w: _Writer, run: SageRun, registry) -> None:
    try:
        registry.spec(run.corpus.protocol)
    except KeyError:
        raise ContractError(
            f"corpus {run.corpus.protocol!r} is not registered: SageRun "
            "serialization references corpora by registered protocol name"
        ) from None
    w.buf.append(_T_RUN)
    w.string(run.corpus.protocol)
    results = run.results
    w.varint(len(results))
    for result in results:
        _enc_result(w, result)
    w.value(program_to_dict(run.code_unit))


def _dec_run(r: _Reader, registry) -> SageRun:
    if r.data[r.pos] != _T_RUN:
        raise ContractError("expected a sage_run record")
    r.pos += 1
    name = r.string()
    try:
        corpus = registry.load_corpus(name)
    except KeyError:
        raise ProtocolNotFound(name, registry.protocols()) from None
    results = [_dec_result(r) for _ in range(r._bounded("result count"))]
    code_unit = program_from_dict(r.value())
    return SageRun(corpus=corpus, results=results, code_unit=code_unit)


def _resolve_registry(registry):
    if registry is None:
        from ..rfc.registry import default_registry

        return default_registry()
    return registry


#: Kinds with a direct object<->bytes path; everything else goes through
#: its schema:1 dict form under the generic value codec.
_DIRECT_ENCODERS = {
    "sage_run": lambda w, obj, registry: _enc_run(w, obj, registry),
    "sentence_result": lambda w, obj, registry: _enc_result(w, obj),
    "winnow_trace": lambda w, obj, registry: _enc_trace(w, obj),
    "spec_sentence": lambda w, obj, registry: _enc_spec(w, obj),
    "rewrite": lambda w, obj, registry: _enc_rewrite(w, obj),
}

_DIRECT_DECODERS = {
    "sage_run": lambda r, registry: _dec_run(r, registry),
    "sentence_result": lambda r, registry: _dec_result(r),
    "winnow_trace": lambda r, registry: _dec_trace(r),
    "spec_sentence": lambda r, registry: _dec_spec(r),
    "rewrite": lambda r, registry: _dec_rewrite(r),
}


# -- the entry points ----------------------------------------------------------

def to_bytes(obj, registry=None) -> bytes:
    """Serialize any wire-contract object under the ``schema:1b`` envelope.

    Mirrors :func:`repro.api.contracts.to_json`: same kinds, same registry
    resolution, same :class:`ContractError` on unserializable objects.
    """
    kind = kind_of(obj)
    registry = _resolve_registry(registry)
    writer = _Writer()
    writer.string(kind)
    direct = _DIRECT_ENCODERS.get(kind)
    if direct is not None:
        direct(writer, obj, registry)
    else:
        _type, encode, _decode = _CONTRACTS[kind]
        writer.value(encode(obj, registry))
    return bytes(writer.buf)


def from_bytes(data: bytes, registry=None):
    """Deserialize any payload produced by :func:`to_bytes`."""
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise ContractError(
            f"expected a schema:1b byte payload, got {type(data).__name__}"
        )
    data = bytes(data)
    if data[:len(MAGIC)] != MAGIC:
        raise ContractError(
            "payload does not start with the schema:1b magic "
            f"{MAGIC!r} (is this a schema:1 JSON payload?)"
        )
    registry = _resolve_registry(registry)
    reader = _Reader(data)
    try:
        kind = reader.string()
        direct = _DIRECT_DECODERS.get(kind)
        if direct is not None:
            return direct(reader, registry)
        if kind not in _CONTRACTS:
            raise ContractError(
                f"unknown payload kind {kind!r}; readable kinds are "
                f"{', '.join(sorted(_CONTRACTS))}"
            )
        _type, _encode, decode = _CONTRACTS[kind]
        return decode(reader.value(), registry)
    except ContractError:
        raise
    except (IndexError, KeyError, TypeError, ValueError,
            UnicodeDecodeError, struct.error) as exc:
        raise EnvelopeDecodeError(
            f"malformed schema:1b payload: {exc!r}"
        ) from exc


# -- parse-cache entries -------------------------------------------------------

def parse_entry_to_bytes(result: ParseResult, subject_supplied: bool) -> bytes:
    """One persistent parse-cache value: the ``(ParseResult, bool)`` pair
    the parse stage stores, with full provenance (spans, triggers, flags)
    so a disk-warmed pipeline run is byte-identical to a cold one."""
    writer = _Writer()
    writer.buf.append(_T_PARSE_ENTRY)
    writer.buf.append(1 if subject_supplied else 0)
    writer.string(result.backend)
    writer.varint(result.token_count)
    writer.varint(result.cells_filled)
    writer.varint(result.dropped_items)
    unknown = result.unknown_words
    writer.varint(len(unknown))
    for word in unknown:
        writer.string(word)
    forms = result.logical_forms
    writer.varint(len(forms))
    for form in forms:
        writer.sem(form)
    return bytes(writer.buf)


def parse_entry_from_bytes(data: bytes) -> tuple[ParseResult, bool]:
    if bytes(data[:len(MAGIC)]) != MAGIC:
        raise ContractError("not a schema:1b parse entry (bad magic)")
    reader = _Reader(bytes(data))
    try:
        if reader.data[reader.pos] != _T_PARSE_ENTRY:
            raise ContractError("not a parse-entry payload")
        reader.pos += 1
        subject_supplied = bool(reader.data[reader.pos])
        reader.pos += 1
        backend = reader.string()
        token_count = reader.varint()
        cells_filled = reader.varint()
        dropped_items = reader.varint()
        unknown_words = [reader.string()
                         for _ in range(reader._bounded("word count"))]
        logical_forms = [reader.sem()
                         for _ in range(reader._bounded("form count"))]
    except (IndexError, UnicodeDecodeError, struct.error) as exc:
        raise EnvelopeDecodeError(f"malformed parse entry: {exc!r}") from exc
    result = ParseResult(
        logical_forms=logical_forms,
        unknown_words=unknown_words,
        token_count=token_count,
        cells_filled=cells_filled,
        dropped_items=dropped_items,
        backend=backend,
    )
    return result, subject_supplied


# -- winnow-cache entries ------------------------------------------------------

def winnow_entry_to_bytes(trace: WinnowTrace) -> bytes:
    """One persistent winnow-cache value: the whole :class:`WinnowTrace`
    (per-stage counts, base forms, survivors) with full provenance, so a
    disk-warmed winnow stage replays byte-identical traces."""
    writer = _Writer()
    _enc_trace(writer, trace)
    return bytes(writer.buf)


def winnow_entry_from_bytes(data: bytes) -> WinnowTrace:
    if bytes(data[:len(MAGIC)]) != MAGIC:
        raise ContractError("not a schema:1b winnow entry (bad magic)")
    reader = _Reader(bytes(data))
    try:
        return _dec_trace(reader)
    except (IndexError, UnicodeDecodeError, struct.error) as exc:
        raise EnvelopeDecodeError(f"malformed winnow entry: {exc!r}") from exc
