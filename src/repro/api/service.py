"""The service front door: one object, every pipeline entry point.

:class:`SageService` wraps a :class:`~repro.core.engine.SageEngine` pair
(one per mode, sharing the registry's memoized substrate and parse cache)
behind request/response contracts:

* :meth:`process` — one protocol, one :class:`~repro.api.contracts.
  ProcessRequest` in (object, dict, or JSON envelope), one
  :class:`~repro.api.contracts.ProcessResponse` out;
* :meth:`sweep` — the batch endpoint: every requested protocol in one
  call, fanned out across the engine's fork worker pool under
  ``max_workers``;
* :meth:`artifact` — compiled-artifact retrieval by backend, fingerprinted
  and self-contained (see :class:`~repro.api.contracts.GeneratedArtifact`);
* :meth:`session` — open the interactive
  :class:`~repro.api.session.DisambiguationSession` on a protocol.

Failures surface as structured :class:`~repro.api.errors.ApiError`
subclasses, never registry ``KeyError`` leaks — the transport layer (the
``python -m repro`` CLI today, an HTTP shim tomorrow) maps them 1:1 onto
error payloads.
"""

from __future__ import annotations

from ..codegen.ir import backend_names
from ..core.engine import SageEngine, SageRun
from ..rfc.registry import ProtocolRegistry, UnknownProtocolError
from .contracts import (
    GeneratedArtifact,
    ProcessRequest,
    ProcessResponse,
    SweepRequest,
    SweepResponse,
    _check_mode,
    from_json,
)
from .errors import ApiError, ProtocolNotFound, RequestError
from .session import DisambiguationSession


def _coerce_request(request, request_type, **kwargs):
    """Accept a request object, a plain dict, a JSON envelope, or kwargs."""
    if request is None:
        return request_type.from_dict(kwargs) if kwargs else request_type.from_dict({})
    if kwargs:
        raise RequestError(
            f"pass either a {request_type.__name__} or keyword arguments, "
            "not both"
        )
    if isinstance(request, request_type):
        return request
    if isinstance(request, str):
        decoded = from_json(request)
        if not isinstance(decoded, request_type):
            raise RequestError(
                f"expected a {request_type.__name__} payload, got "
                f"{type(decoded).__name__}"
            )
        return decoded
    if isinstance(request, dict):
        return request_type.from_dict(request)
    raise RequestError(
        f"cannot interpret {type(request).__name__} as a "
        f"{request_type.__name__}"
    )


class SageService:
    """The versioned public pipeline service over one protocol registry."""

    def __init__(self, registry: ProtocolRegistry | None = None,
                 journal=None) -> None:
        if registry is None:
            from ..rfc.registry import default_registry

            registry = default_registry()
        self.registry = registry
        if journal is not None:
            registry.attach_journal(journal)
        self._engines: dict[tuple[str, str], SageEngine] = {}

    # -- engines ----------------------------------------------------------------
    def engine(self, mode: str = "revised",
               parser_backend: str = "") -> SageEngine:
        """The service's engine for ``(mode, parser_backend)`` (built
        once, decisions refreshed on every request so journal updates
        always apply).  An empty ``parser_backend`` defers to each
        protocol's registered preference; engines share the registry's
        parse cache either way, whose keys carry the backend id."""
        mode = _check_mode(mode)
        if parser_backend:
            self._check_parser_backend(parser_backend)
        key = (mode, parser_backend)
        engine = self._engines.get(key)
        if engine is None:
            engine = SageEngine(mode=mode, protocol_registry=self.registry,
                                parser_backend=parser_backend or None)
            self._engines[key] = engine
        engine.refresh_decisions()
        return engine

    def _load_corpus(self, protocol: str):
        try:
            return self.registry.load_corpus(protocol)
        except KeyError:
            raise ProtocolNotFound(protocol, self.registry.protocols()) from None

    # -- endpoints --------------------------------------------------------------
    def run(self, protocol: str, mode: str = "revised",
            parser_backend: str = "") -> SageRun:
        """The raw pipeline run (power users; everything else wraps this)."""
        return self.engine(mode, parser_backend).process_corpus(
            self._load_corpus(protocol)
        )

    def process(self, request: ProcessRequest | dict | str | None = None,
                **kwargs) -> ProcessResponse:
        """One protocol through the pipeline, as a wire response."""
        request = _coerce_request(request, ProcessRequest, **kwargs)
        self._check_artifacts(request.artifacts)
        run = self.run(request.protocol, request.mode, request.parser_backend)
        return ProcessResponse.from_run(
            run, request.mode,
            include_sentences=request.include_sentences,
            artifacts=request.artifacts,
        )

    def sweep(self, request: SweepRequest | dict | str | None = None,
              **kwargs) -> SweepResponse:
        """The batch endpoint: many protocols, optionally fanned out over
        the engine's fork worker pool."""
        request = _coerce_request(request, SweepRequest, **kwargs)
        self._check_artifacts(request.artifacts)
        engine = self.engine(request.mode, request.parser_backend)
        names = [name.upper() for name in request.protocols] or None
        if names:
            for name in names:
                self._load_corpus(name)  # fail structured before the sweep
        try:
            runs = engine.process_corpora(
                names, parallel=request.parallel,
                max_workers=request.max_workers,
            )
        except UnknownProtocolError as exc:
            raise ProtocolNotFound(exc.name, exc.known) from None
        responses = {
            name: ProcessResponse.from_run(
                run, request.mode,
                include_sentences=request.include_sentences,
                artifacts=request.artifacts,
            )
            for name, run in runs.items()
        }
        return SweepResponse(
            mode=request.mode,
            protocols=list(runs),
            responses=responses,
            parallel_workers=engine.last_parallel_workers or 0,
        )

    def artifact(self, protocol: str, backend: str = "c",
                 mode: str = "revised") -> GeneratedArtifact:
        """The compiled artifact for one protocol under one backend."""
        self._check_artifacts((backend,))  # fail fast, before the run
        run = self.run(protocol, mode)
        return GeneratedArtifact.from_program(run.code_unit, backend=backend,
                                              mode=mode)

    def session(self, protocol: str, mode: str = "revised",
                **kwargs) -> DisambiguationSession:
        """Open the interactive disambiguation surface on ``protocol``."""
        return DisambiguationSession(protocol, mode=mode,
                                     registry=self.registry, **kwargs)

    def parse_diagnostics(self, protocol: str, parser_backend: str = "",
                          mode: str = "revised") -> dict:
        """Batch-parse one corpus through one backend and report per-
        sentence diagnostics (the ``python -m repro parse`` payload).

        Returns a JSON-safe dict: backend identity, wall-clock timing and
        throughput, parse-cache hit counts, per-sentence LF counts /
        unknown words / pruned flags, and — under ``"profile"`` — the
        :mod:`repro.parsing.profile` counter delta for exactly this batch
        (agenda pops, span/production/apply memo hit rates, deferred-item
        counts, budget drops).  No winnowing or code generation runs —
        this is the parsing subsystem in isolation.
        """
        import hashlib
        import time

        from ..ccg.semantics import signature
        from ..parsing.profile import PROFILE, profile_delta

        if parser_backend:
            self._check_parser_backend(parser_backend)
        corpus = self._load_corpus(protocol)
        engine = self.engine(mode, parser_backend)
        counters_before = PROFILE.counts()
        started = time.perf_counter()
        parsed = engine.parse_batch(corpus,
                                    parser_backend=parser_backend or None)
        elapsed = time.perf_counter() - started
        profile = profile_delta(counters_before, PROFILE.counts())
        backend = (parser_backend
                   or self.registry.parser_backend_for(corpus.protocol))
        sentences = []
        for index, item in enumerate(parsed):
            sigs = sorted(signature(form)
                          for form in item.result.logical_forms)
            sentences.append({
                "index": index,
                "text": item.spec.text,
                "lf_count": item.result.count,
                # Content hash of the sorted LF signature set: two
                # backends parse identically iff these match sentence
                # for sentence (what `parse --compare` checks).
                "lf_set_sha1": hashlib.sha1(
                    "\n".join(sigs).encode("utf-8")
                ).hexdigest(),
                "unknown_words": list(item.result.unknown_words),
                "subject_supplied": item.subject_supplied,
                "pruned": item.pruned,
                "dropped_items": item.result.dropped_items,
                "from_cache": item.from_cache,
            })
        return {
            "protocol": corpus.protocol,
            "parser_backend": backend,
            "sentence_count": len(parsed),
            "elapsed_s": elapsed,
            "sentences_per_s": (len(parsed) / elapsed) if elapsed else 0.0,
            "parsed_from_cache": sum(1 for item in parsed if item.from_cache),
            "unparsed": sum(1 for item in parsed if item.result.count == 0),
            "pruned_sentences": sum(1 for item in parsed if item.pruned),
            "profile": profile,
            "sentences": sentences,
        }

    def winnow_diagnostics(self, protocol: str, parser_backend: str = "",
                           mode: str = "revised") -> dict:
        """Parse + winnow one corpus and report per-sentence winnow
        diagnostics (the ``python -m repro winnow`` payload).

        Parsing runs first (cache-served when warm) and is *excluded* from
        the timing: ``elapsed_s`` brackets exactly the winnow stage, so
        this is the §4.2 check suite in isolation.  Returns a JSON-safe
        dict: per-sentence stage counts and survivor digests, wall-clock
        throughput, the winnow-result cache stats, and — under
        ``"profile"`` — the :mod:`repro.disambiguation.profile` counter
        delta for exactly this batch (canonical-sid and check-memo hit
        rates, per-form cache hits, stage-cache hits, oracle calls).  No
        code generation runs.
        """
        import hashlib
        import time

        from ..ccg.semantics import signature
        from ..disambiguation.profile import PROFILE, profile_delta

        if parser_backend:
            self._check_parser_backend(parser_backend)
        corpus = self._load_corpus(protocol)
        engine = self.engine(mode, parser_backend)
        parsed = engine.parse_batch(corpus,
                                    parser_backend=parser_backend or None)
        counters_before = PROFILE.counts()
        started = time.perf_counter()
        traces = [engine.winnow_stage.run(item) for item in parsed]
        elapsed = time.perf_counter() - started
        profile = profile_delta(counters_before, PROFILE.counts())
        sentences = []
        for index, (item, trace) in enumerate(zip(parsed, traces)):
            survivor_sigs = [signature(form) for form in trace.survivors]
            sentences.append({
                "index": index,
                "text": item.spec.text,
                "counts": dict(trace.counts),
                "base_count": trace.base_count,
                "final_count": trace.final_count,
                "ambiguous": trace.ambiguous_after_winnowing,
                # Content hash of the ordered survivor signatures: two
                # winnow paths (cold checks vs warm cache, any backend)
                # agree iff these match sentence for sentence.
                "survivors_sha1": hashlib.sha1(
                    "\n".join(survivor_sigs).encode("utf-8")
                ).hexdigest(),
            })
        cache = engine.winnow_stage.cache
        return {
            "protocol": corpus.protocol,
            "sentence_count": len(parsed),
            "elapsed_s": elapsed,
            "sentences_per_s": (len(parsed) / elapsed) if elapsed else 0.0,
            "ambiguous_after_winnowing": sum(
                1 for trace in traces if trace.ambiguous_after_winnowing
            ),
            "winnow_cache": cache.stats() if cache is not None else None,
            "profile": profile,
            "sentences": sentences,
        }

    def fuzz(self, seed: int = 0, episodes: int = 50,
             protocols: tuple[str, ...] = (),
             families: tuple[str, ...] = (),
             backends: tuple[str, ...] = (),
             mode: str = "revised") -> dict:
        """Run one seeded differential-fuzz campaign and report the matrix.

        Generates ``episodes`` deterministic scenarios (see
        :mod:`repro.fuzz.generator`), replays each against every
        executable backend — the hand-written reference plus the
        generated exec-Python and interpreter implementations — and
        returns the :class:`~repro.fuzz.runner.FuzzReport` as a JSON-safe
        dict: divergences, oracle violations, the interop matrix, the
        emitted-C fingerprint lock, and the run's trace digest
        (byte-identical for identical seeds).
        """
        from ..fuzz import EXECUTABLE_BACKENDS, PROTOCOLS, run_fuzz

        mode = _check_mode(mode)
        fuzzed = tuple(name.upper() for name in protocols) or PROTOCOLS
        for name in fuzzed:
            if name not in PROTOCOLS:
                raise RequestError(
                    f"unknown fuzz protocol {name!r}: fuzzed protocols are "
                    f"{', '.join(PROTOCOLS)}"
                )
        engine = self.engine(mode)
        runs = engine.process_corpora(list(fuzzed), parallel=False)
        units = {name: run.code_unit for name, run in runs.items()}
        try:
            report = run_fuzz(
                units, seed=seed, episodes=episodes, protocols=fuzzed,
                families=tuple(families),
                backends=tuple(backends) or EXECUTABLE_BACKENDS,
            )
        except (KeyError, ValueError) as exc:
            # TraceGenerator/DifferentialRunner validate family and
            # backend names with KeyError/ValueError; surface those as
            # structured request failures, not tracebacks.
            raise RequestError(str(exc).strip("'\"")) from exc
        return report.to_dict()

    # -- validation -------------------------------------------------------------
    @staticmethod
    def _check_parser_backend(name: str) -> None:
        from ..parsing import parser_backend_names

        if name not in parser_backend_names():
            from .errors import ParserBackendNotFound

            raise ParserBackendNotFound(name, parser_backend_names())

    @staticmethod
    def _check_artifacts(backends: tuple[str, ...]) -> None:
        from .errors import BackendNotFound

        known = backend_names()
        # The registry lazily imports the bundled backends on first use;
        # resolve through the ir helper so "c"/"python"/"interp" always
        # validate even before anything rendered.
        if not known:
            from ..codegen.ir import _ensure_default_backends

            _ensure_default_backends()
            known = backend_names()
        for backend in backends:
            if backend not in known:
                raise BackendNotFound(backend, known)


__all__ = ["SageService", "ApiError"]
