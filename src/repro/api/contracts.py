"""The serializable wire contracts of the service layer.

Every pipeline result — :class:`~repro.core.engine.SageRun`,
:class:`~repro.disambiguation.winnow.WinnowTrace`, the codegen
:class:`~repro.codegen.ir.Program` (``CodeUnit``), per-sentence results,
operator :class:`~repro.disambiguation.resolution.Resolution` records — and
every request/response dataclass here round-trips through JSON under one
schema-versioned envelope::

    {"schema": 1, "kind": "sage_run", "data": {...}}

:func:`to_json` / :func:`from_json` are the two entry points; both are
total over the contract types and raise structured
:class:`~repro.api.errors.ContractError`/:class:`~repro.api.errors.
SchemaVersionError` instead of tracebacks on bad payloads.  Round-tripping
is lossless (``from_json(to_json(x)) == x``, property-locked in
``tests/test_api_contracts.py``); corpora inside a ``SageRun`` serialize by
registry reference (the protocol name), so deserialization rehydrates the
same memoized :class:`~repro.rfc.corpus.Corpus` object.

Codegen artifacts additionally carry the IR content SHA-1; rebuilding them
verifies the fingerprint, so a stored artifact is tamper-evident
(:class:`~repro.codegen.ir.FingerprintMismatch`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field as dataclass_field

from ..ccg.semantics import App, Call, Const, Lam, Sem, Var, signature
from ..codegen.ir import (
    FingerprintMismatch,
    IRError,
    Program,
    backend_names,
    program_from_dict,
    program_to_dict,
    sentence_code_from_dict,
    sentence_code_to_dict,
)
from ..core.engine import (
    FLAGGED_STATUSES,
    SageRun,
    SentenceResult,
    SentenceStatus,
)
from ..disambiguation.resolution import (
    DecisionJournal,
    Resolution,
    ResolutionError,
)
from ..disambiguation.winnow import WinnowTrace
from ..rfc.corpus import Rewrite, SpecSentence, sentence_key
from .errors import ContractError, ProtocolNotFound, SchemaVersionError

#: The wire schema this build writes and reads.
SCHEMA_VERSION = 1


# -- logical forms -------------------------------------------------------------

def sem_to_dict(term: Sem) -> dict:
    """One semantic term as a JSON-safe dict (provenance included)."""
    if isinstance(term, Const):
        record: dict = {"t": "const", "value": term.value}
        if term.span is not None:
            record["span"] = list(term.span)
        return record
    if isinstance(term, Var):
        return {"t": "var", "name": term.name}
    if isinstance(term, Lam):
        return {"t": "lam", "param": term.param, "body": sem_to_dict(term.body)}
    if isinstance(term, App):
        return {"t": "app", "fn": sem_to_dict(term.fn),
                "arg": sem_to_dict(term.arg)}
    if isinstance(term, Call):
        record = {"t": "call", "pred": term.pred,
                  "args": [sem_to_dict(arg) for arg in term.args]}
        if term.trigger is not None:
            record["trigger"] = term.trigger
        if term.flags:
            record["flags"] = sorted(term.flags)
        return record
    raise ContractError(f"cannot serialize semantic term {type(term).__name__}")


_EMPTY_FLAGS = frozenset()


def sem_from_dict(record: dict) -> Sem:
    # Decode hot path: a bulk payload carries tens of thousands of term
    # nodes, and the frozen dataclasses' __init__ routes every field
    # through object.__setattr__.  The classes have no __post_init__ and
    # no slots, so __new__ + direct __dict__ fill builds the identical
    # object at a fraction of the cost.  Required keys use direct
    # subscripts (the enclosing try turns a missing one into the
    # structured error); "call" leads because it dominates real payloads.
    if type(record) is not dict:
        if isinstance(record, Sem):
            return record  # already decoded by the from_json parse hook
        raise ContractError(
            f"expected a semantic term record, got {type(record).__name__}"
        )
    try:
        tag = record["t"]
        if tag == "call":
            term = Call.__new__(Call)
            data = term.__dict__
            data["pred"] = record["pred"]
            raw_args = record.get("args")
            if raw_args:
                # Call arguments are overwhelmingly Const/Var leaves;
                # decoding them inline skips a recursive call per argument.
                args = []
                for arg in raw_args:
                    arg_tag = arg["t"]
                    if arg_tag == "const":
                        sub = Const.__new__(Const)
                        sub_data = sub.__dict__
                        sub_data["value"] = arg["value"]
                        span = arg.get("span")
                        sub_data["span"] = tuple(span) if span else None
                    elif arg_tag == "var":
                        sub = Var.__new__(Var)
                        sub.__dict__["name"] = arg["name"]
                    else:
                        sub = sem_from_dict(arg)
                    args.append(sub)
                data["args"] = tuple(args)
            else:
                data["args"] = ()
            data["trigger"] = record.get("trigger")
            flags = record.get("flags")
            data["flags"] = frozenset(flags) if flags else _EMPTY_FLAGS
            return term
        if tag == "const":
            term = Const.__new__(Const)
            data = term.__dict__
            data["value"] = record["value"]
            span = record.get("span")
            data["span"] = tuple(span) if span else None
            return term
        if tag == "var":
            term = Var.__new__(Var)
            term.__dict__["name"] = record["name"]
            return term
        if tag == "lam":
            term = Lam.__new__(Lam)
            data = term.__dict__
            data["param"] = record["param"]
            data["body"] = sem_from_dict(record["body"])
            return term
        if tag == "app":
            term = App.__new__(App)
            data = term.__dict__
            data["fn"] = sem_from_dict(record["fn"])
            data["arg"] = sem_from_dict(record["arg"])
            return term
    except (KeyError, TypeError) as exc:
        raise ContractError(
            f"malformed semantic term record: {exc!r}"
        ) from exc
    raise ContractError(f"unknown semantic term tag {tag!r}")


def _sem_parse_hook(record: dict):
    """``json.loads`` object_hook converting semantic-term records to
    :class:`Sem` objects *during* the C-level parse.

    The hook fires bottom-up — by the time a ``call`` record reaches it,
    its ``args`` entries are already Sem objects — so :func:`from_json`
    skips the recursive dict walk entirely, which is what makes decode
    faster than encode for LF-heavy payloads.  Anything that is not a
    well-formed term record passes through unchanged and the ordinary
    decoders reject it with their structured errors; a stray non-term
    dict that happens to carry a ``"t"`` key is left alone unless it also
    carries the full field set of a term.
    """
    tag = record.get("t")
    if tag == "call":
        pred = record.get("pred")
        if type(pred) is not str:
            return record
        args = record.get("args")
        if args:
            for item in args:
                if not isinstance(item, Sem):
                    return record
            args = tuple(args)
        else:
            args = ()
        trigger = record.get("trigger")
        if trigger is not None and type(trigger) is not int:
            return record
        term = Call.__new__(Call)
        data = term.__dict__
        data["pred"] = pred
        data["args"] = args
        data["trigger"] = trigger
        flags = record.get("flags")
        data["flags"] = frozenset(flags) if flags else _EMPTY_FLAGS
        return term
    if tag == "const":
        if "value" not in record:
            return record
        span = record.get("span")
        if span is not None and type(span) is not list:
            return record
        term = Const.__new__(Const)
        data = term.__dict__
        data["value"] = record["value"]
        data["span"] = tuple(span) if span else None
        return term
    if tag == "var":
        name = record.get("name")
        if type(name) is not str:
            return record
        term = Var.__new__(Var)
        term.__dict__["name"] = name
        return term
    if tag == "lam":
        param = record.get("param")
        body = record.get("body")
        if type(param) is not str or not isinstance(body, Sem):
            return record
        term = Lam.__new__(Lam)
        data = term.__dict__
        data["param"] = param
        data["body"] = body
        return term
    if tag == "app":
        fn = record.get("fn")
        arg = record.get("arg")
        if not isinstance(fn, Sem) or not isinstance(arg, Sem):
            return record
        term = App.__new__(App)
        data = term.__dict__
        data["fn"] = fn
        data["arg"] = arg
        return term
    return record


# -- winnow traces -------------------------------------------------------------

def trace_to_dict(trace: WinnowTrace, sem_encode=sem_to_dict) -> dict:
    return {
        "sentence": trace.sentence,
        "counts": dict(trace.counts),
        "survivors": [sem_encode(form) for form in trace.survivors],
        "base_forms": [sem_encode(form) for form in trace.base_forms],
    }


def trace_from_dict(record: dict) -> WinnowTrace:
    # JSON already delivers the counts as ints; a plain dict copy beats
    # the per-stage int() churn this used to pay.
    return WinnowTrace(
        sentence=record["sentence"],
        counts=dict(record.get("counts", {})),
        survivors=[sem_from_dict(form) for form in record.get("survivors", [])],
        base_forms=[sem_from_dict(form) for form in record.get("base_forms", [])],
    )


# -- corpus records ------------------------------------------------------------

def spec_to_dict(spec: SpecSentence) -> dict:
    record: dict = {"text": spec.text, "protocol": spec.protocol,
                    "message": spec.message, "kind": spec.kind}
    if spec.field:
        record["field"] = spec.field
    if spec.field_group:
        record["field_group"] = spec.field_group
    return record


def spec_from_dict(record: dict) -> SpecSentence:
    return SpecSentence(
        text=record["text"], protocol=record.get("protocol", ""),
        message=record.get("message", ""), field=record.get("field", ""),
        kind=record.get("kind", "intro"),
        field_group=record.get("field_group", ""),
    )


def rewrite_to_dict(rewrite: Rewrite) -> dict:
    record: dict = {"original": rewrite.original, "revised": rewrite.revised,
                    "category": rewrite.category}
    if rewrite.note:
        record["note"] = rewrite.note
    return record


def rewrite_from_dict(record: dict) -> Rewrite:
    return Rewrite(original=record["original"],
                   revised=record.get("revised", ""),
                   category=record["category"], note=record.get("note", ""))


# -- sentence results and runs -------------------------------------------------

def result_to_dict(result: SentenceResult, sem_encode=sem_to_dict) -> dict:
    record: dict = {
        "spec": spec_to_dict(result.spec),
        "status": str(result.status),
    }
    if result.trace is not None:
        record["trace"] = trace_to_dict(result.trace, sem_encode)
    if result.logical_form is not None:
        record["logical_form"] = sem_encode(result.logical_form)
    if result.codes:
        record["codes"] = [sentence_code_to_dict(code) for code in result.codes]
    if result.rewrite is not None:
        record["rewrite"] = rewrite_to_dict(result.rewrite)
    if result.sub_results:
        record["sub_results"] = [result_to_dict(sub, sem_encode)
                                 for sub in result.sub_results]
    if result.subject_supplied:
        record["subject_supplied"] = True
    if result.pruned:
        record["pruned"] = True
    if result.reason:
        record["reason"] = result.reason
    return record


def result_from_dict(record: dict) -> SentenceResult:
    trace = record.get("trace")
    logical_form = record.get("logical_form")
    rewrite = record.get("rewrite")
    return SentenceResult(
        spec=spec_from_dict(record["spec"]),
        status=SentenceStatus.coerce(record["status"]),
        trace=trace_from_dict(trace) if trace is not None else None,
        logical_form=(sem_from_dict(logical_form)
                      if logical_form is not None else None),
        codes=[sentence_code_from_dict(code)
               for code in record.get("codes", [])],
        rewrite=rewrite_from_dict(rewrite) if rewrite is not None else None,
        sub_results=[result_from_dict(sub)
                     for sub in record.get("sub_results", [])],
        subject_supplied=record.get("subject_supplied", False),
        pruned=record.get("pruned", False),
        reason=record.get("reason", ""),
    )


def _registry(registry):
    if registry is None:
        from ..rfc.registry import default_registry

        return default_registry()
    return registry


def run_to_dict(run: SageRun, registry=None, sem_encode=sem_to_dict) -> dict:
    """A full run.  The corpus serializes by registry reference — the
    protocol name — so the payload stays compact and deserialization
    rehydrates the same memoized corpus object."""
    registry = _registry(registry)
    try:
        registry.spec(run.corpus.protocol)
    except KeyError:
        raise ContractError(
            f"corpus {run.corpus.protocol!r} is not registered: SageRun "
            "serialization references corpora by registered protocol name"
        ) from None
    return {
        "protocol": run.corpus.protocol,
        "results": [result_to_dict(result, sem_encode)
                    for result in run.results],
        "code_unit": program_to_dict(run.code_unit),
    }


def run_from_dict(record: dict, registry=None) -> SageRun:
    registry = _registry(registry)
    name = record["protocol"]
    try:
        corpus = registry.load_corpus(name)
    except KeyError:
        raise ProtocolNotFound(name, registry.protocols()) from None
    try:
        code_unit = program_from_dict(record["code_unit"])
    except FingerprintMismatch:
        raise
    except IRError as exc:
        raise ContractError(f"bad code_unit payload: {exc}") from exc
    return SageRun(
        corpus=corpus,
        results=[result_from_dict(result)
                 for result in record.get("results", [])],
        code_unit=code_unit,
    )


# -- request / response dataclasses --------------------------------------------

_MODES = ("strict", "revised")


def _check_mode(mode: str) -> str:
    if mode not in _MODES:
        from .errors import RequestError

        raise RequestError(f"unknown mode {mode!r}: expected one of "
                           f"{', '.join(_MODES)}")
    return mode


@dataclass(frozen=True)
class ProcessRequest:
    """Run one protocol through the pipeline."""

    protocol: str
    mode: str = "revised"
    #: Include the per-sentence reports in the response.
    include_sentences: bool = True
    #: Text backends to render into response artifacts (e.g. ("c",)).
    artifacts: tuple[str, ...] = ()
    #: Parser backend override ("" = the protocol's registered preference,
    #: falling back to the process default).
    parser_backend: str = ""

    def to_dict(self) -> dict:
        record: dict = {"protocol": self.protocol, "mode": self.mode}
        if not self.include_sentences:
            record["include_sentences"] = False
        if self.artifacts:
            record["artifacts"] = list(self.artifacts)
        if self.parser_backend:
            record["parser_backend"] = self.parser_backend
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "ProcessRequest":
        if "protocol" not in record:
            from .errors import RequestError

            raise RequestError("process request needs a protocol")
        return cls(
            protocol=record["protocol"],
            mode=_check_mode(record.get("mode", "revised")),
            include_sentences=record.get("include_sentences", True),
            artifacts=tuple(record.get("artifacts", ())),
            parser_backend=record.get("parser_backend", ""),
        )


@dataclass(frozen=True)
class SweepRequest:
    """Run many protocols (default: every registered one) in one batch."""

    protocols: tuple[str, ...] = ()  # () = all registered
    mode: str = "revised"
    parallel: bool = True
    max_workers: int | None = None
    include_sentences: bool = False
    artifacts: tuple[str, ...] = ()
    #: Parser backend override ("" = per-protocol registered preference).
    parser_backend: str = ""

    def to_dict(self) -> dict:
        record: dict = {"mode": self.mode}
        if self.protocols:
            record["protocols"] = list(self.protocols)
        if not self.parallel:
            record["parallel"] = False
        if self.max_workers is not None:
            record["max_workers"] = self.max_workers
        if self.include_sentences:
            record["include_sentences"] = True
        if self.artifacts:
            record["artifacts"] = list(self.artifacts)
        if self.parser_backend:
            record["parser_backend"] = self.parser_backend
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "SweepRequest":
        return cls(
            protocols=tuple(record.get("protocols", ())),
            mode=_check_mode(record.get("mode", "revised")),
            parallel=record.get("parallel", True),
            max_workers=record.get("max_workers"),
            include_sentences=record.get("include_sentences", False),
            artifacts=tuple(record.get("artifacts", ())),
            parser_backend=record.get("parser_backend", ""),
        )


@dataclass
class SentenceReport:
    """One sentence, as the operator sees it in a disambiguation session:
    status, winnow provenance (the LF count after every check), and the
    surviving readings by stable signature."""

    index: int
    text: str
    protocol: str
    message: str
    field: str
    kind: str
    status: str
    reason: str = ""
    subject_supplied: bool = False
    #: True when the parser's cell budget truncated the sentence's chart:
    #: the winnow provenance below may be incomplete.
    pruned: bool = False
    base_lf_count: int = 0
    final_lf_count: int = 0
    #: LF count after each winnow stage, in check order (Figure 5's x-axis).
    check_counts: dict = dataclass_field(default_factory=dict)
    #: Surviving readings: ``{"signature": ...}`` in stable sort order.
    survivors: list = dataclass_field(default_factory=list)
    rewrite: dict | None = None
    sub_statuses: list = dataclass_field(default_factory=list)

    @property
    def key(self) -> str:
        """Whitespace-insensitive sentence identity (resolve addressing)."""
        return sentence_key(self.text)

    @property
    def flagged(self) -> bool:
        return SentenceStatus.coerce(self.status) in FLAGGED_STATUSES

    @classmethod
    def from_result(cls, result: SentenceResult, index: int) -> "SentenceReport":
        trace = result.trace
        return cls(
            index=index,
            text=result.spec.text,
            protocol=result.spec.protocol,
            message=result.spec.message,
            field=result.spec.field,
            kind=result.spec.kind,
            status=str(result.status),
            reason=result.reason,
            subject_supplied=result.subject_supplied,
            pruned=result.pruned,
            base_lf_count=result.base_lf_count,
            final_lf_count=result.final_lf_count,
            check_counts=dict(trace.counts) if trace is not None else {},
            survivors=[{"signature": signature(form)}
                       for form in (trace.survivors if trace else [])],
            rewrite=(rewrite_to_dict(result.rewrite)
                     if result.rewrite is not None else None),
            sub_statuses=[str(sub.status) for sub in result.sub_results],
        )

    def to_dict(self) -> dict:
        record: dict = {
            "index": self.index, "text": self.text,
            "protocol": self.protocol, "message": self.message,
            "field": self.field, "kind": self.kind, "status": self.status,
        }
        if self.reason:
            record["reason"] = self.reason
        if self.subject_supplied:
            record["subject_supplied"] = True
        if self.pruned:
            record["pruned"] = True
        record["base_lf_count"] = self.base_lf_count
        record["final_lf_count"] = self.final_lf_count
        if self.check_counts:
            record["check_counts"] = dict(self.check_counts)
        if self.survivors:
            record["survivors"] = list(self.survivors)
        if self.rewrite is not None:
            record["rewrite"] = self.rewrite
        if self.sub_statuses:
            record["sub_statuses"] = list(self.sub_statuses)
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "SentenceReport":
        return cls(
            index=record["index"], text=record["text"],
            protocol=record.get("protocol", ""),
            message=record.get("message", ""),
            field=record.get("field", ""), kind=record.get("kind", ""),
            status=record["status"], reason=record.get("reason", ""),
            subject_supplied=record.get("subject_supplied", False),
            pruned=record.get("pruned", False),
            base_lf_count=record.get("base_lf_count", 0),
            final_lf_count=record.get("final_lf_count", 0),
            check_counts=dict(record.get("check_counts", {})),
            survivors=list(record.get("survivors", [])),
            rewrite=record.get("rewrite"),
            sub_statuses=list(record.get("sub_statuses", [])),
        )


@dataclass
class GeneratedArtifact:
    """A compiled-artifact record: the rendered source of one backend plus
    the self-contained IR and its content SHA-1.

    The IR makes the artifact executable anywhere (rebuild the program,
    compile under any executable backend); the fingerprint makes it
    tamper-evident (rebuilding verifies the recorded SHA-1 against the
    reconstructed IR).
    """

    protocol: str
    backend: str
    mode: str
    fingerprint: str
    functions: list = dataclass_field(default_factory=list)
    source: str = ""  # the named backend's text rendering ("" if non-text)
    program: dict = dataclass_field(default_factory=dict)  # serialized IR

    @classmethod
    def from_program(cls, program: Program, backend: str = "c",
                     mode: str = "revised") -> "GeneratedArtifact":
        from ..codegen.ir import _backend as resolve_backend

        try:
            backend_class = resolve_backend(backend)
        except KeyError:
            from .errors import BackendNotFound

            raise BackendNotFound(backend, backend_names()) from None
        source = ""
        if backend_class.emits_text:
            if backend == "c":
                source = program.render_c()
            elif backend == "python":
                source = program.render_python()
            else:
                source = backend_class().emit_program(program)
        return cls(
            protocol=program.protocol, backend=backend, mode=mode,
            fingerprint=program.fingerprint(),
            functions=[fn.name for fn in program.programs],
            source=source, program=program_to_dict(program),
        )

    def to_program(self, verify: bool = True) -> Program:
        """Rebuild the typed IR (fingerprint-verified by default)."""
        if not self.program:
            raise ContractError("artifact carries no IR payload")
        rebuilt = program_from_dict(self.program, verify=verify)
        if verify and self.fingerprint and rebuilt.fingerprint() != self.fingerprint:
            raise FingerprintMismatch(
                f"artifact {self.protocol}/{self.backend}",
                self.fingerprint, rebuilt.fingerprint(),
            )
        return rebuilt

    def to_dict(self) -> dict:
        record: dict = {
            "protocol": self.protocol, "backend": self.backend,
            "mode": self.mode, "fingerprint": self.fingerprint,
            "functions": list(self.functions),
        }
        if self.source:
            record["source"] = self.source
        if self.program:
            record["program"] = self.program
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "GeneratedArtifact":
        return cls(
            protocol=record["protocol"], backend=record["backend"],
            mode=record.get("mode", "revised"),
            fingerprint=record.get("fingerprint", ""),
            functions=list(record.get("functions", [])),
            source=record.get("source", ""),
            program=record.get("program", {}),
        )


@dataclass
class ProcessResponse:
    """Everything one pipeline run produced, as a wire payload."""

    protocol: str
    mode: str
    sentence_count: int
    status_counts: dict = dataclass_field(default_factory=dict)
    flagged_count: int = 0
    sentences: list = dataclass_field(default_factory=list)  # SentenceReport
    artifacts: list = dataclass_field(default_factory=list)  # GeneratedArtifact

    @classmethod
    def from_run(cls, run: SageRun, mode: str,
                 include_sentences: bool = True,
                 artifacts: tuple[str, ...] = ()) -> "ProcessResponse":
        reports = [SentenceReport.from_result(result, index)
                   for index, result in enumerate(run.results)]
        return cls(
            protocol=run.corpus.protocol,
            mode=mode,
            sentence_count=len(run.results),
            status_counts={str(status): count
                           for status, count in run.by_status().items()},
            flagged_count=len(run.flagged()),
            sentences=reports if include_sentences else [],
            artifacts=[GeneratedArtifact.from_program(run.code_unit, backend,
                                                      mode=mode)
                       for backend in artifacts],
        )

    def flagged(self) -> list[SentenceReport]:
        return [report for report in self.sentences if report.flagged]

    def to_dict(self) -> dict:
        return {
            "protocol": self.protocol, "mode": self.mode,
            "sentence_count": self.sentence_count,
            "status_counts": dict(self.status_counts),
            "flagged_count": self.flagged_count,
            "sentences": [report.to_dict() for report in self.sentences],
            "artifacts": [artifact.to_dict() for artifact in self.artifacts],
        }

    @classmethod
    def from_dict(cls, record: dict) -> "ProcessResponse":
        return cls(
            protocol=record["protocol"], mode=record["mode"],
            sentence_count=record.get("sentence_count", 0),
            status_counts=dict(record.get("status_counts", {})),
            flagged_count=record.get("flagged_count", 0),
            sentences=[SentenceReport.from_dict(report)
                       for report in record.get("sentences", [])],
            artifacts=[GeneratedArtifact.from_dict(artifact)
                       for artifact in record.get("artifacts", [])],
        )


@dataclass
class SweepResponse:
    """One batch run over many protocols."""

    mode: str
    protocols: list = dataclass_field(default_factory=list)
    responses: dict = dataclass_field(default_factory=dict)  # name → ProcessResponse
    #: Worker-pool size of the fan-out (0 = sequential execution).
    parallel_workers: int = 0

    def to_dict(self) -> dict:
        return {
            "mode": self.mode, "protocols": list(self.protocols),
            "parallel_workers": self.parallel_workers,
            "responses": {name: response.to_dict()
                          for name, response in self.responses.items()},
        }

    @classmethod
    def from_dict(cls, record: dict) -> "SweepResponse":
        return cls(
            mode=record["mode"], protocols=list(record.get("protocols", [])),
            parallel_workers=record.get("parallel_workers", 0),
            responses={name: ProcessResponse.from_dict(response)
                       for name, response in record.get("responses", {}).items()},
        )


# -- the envelope --------------------------------------------------------------

#: kind tag → (type, encode, decode).  Decode callables take (data, registry).
_CONTRACTS: dict[str, tuple] = {}


def _register(kind: str, type_, encode, decode) -> None:
    _CONTRACTS[kind] = (type_, encode, decode)


_register("sage_run", SageRun,
          lambda run, registry: run_to_dict(run, registry),
          lambda data, registry: run_from_dict(data, registry))
_register("sentence_result", SentenceResult,
          lambda result, registry: result_to_dict(result),
          lambda data, registry: result_from_dict(data))
_register("winnow_trace", WinnowTrace,
          lambda trace, registry: trace_to_dict(trace),
          lambda data, registry: trace_from_dict(data))
_register("code_unit", Program,
          lambda program, registry: program_to_dict(program),
          lambda data, registry: program_from_dict(data))
_register("resolution", Resolution,
          lambda resolution, registry: resolution.to_dict(),
          lambda data, registry: Resolution.from_dict(data))
_register("spec_sentence", SpecSentence,
          lambda spec, registry: spec_to_dict(spec),
          lambda data, registry: spec_from_dict(data))
_register("rewrite", Rewrite,
          lambda rewrite, registry: rewrite_to_dict(rewrite),
          lambda data, registry: rewrite_from_dict(data))
_register("process_request", ProcessRequest,
          lambda request, registry: request.to_dict(),
          lambda data, registry: ProcessRequest.from_dict(data))
_register("sweep_request", SweepRequest,
          lambda request, registry: request.to_dict(),
          lambda data, registry: SweepRequest.from_dict(data))
_register("process_response", ProcessResponse,
          lambda response, registry: response.to_dict(),
          lambda data, registry: ProcessResponse.from_dict(data))
_register("sweep_response", SweepResponse,
          lambda response, registry: response.to_dict(),
          lambda data, registry: SweepResponse.from_dict(data))
_register("sentence_report", SentenceReport,
          lambda report, registry: report.to_dict(),
          lambda data, registry: SentenceReport.from_dict(data))
_register("generated_artifact", GeneratedArtifact,
          lambda artifact, registry: artifact.to_dict(),
          lambda data, registry: GeneratedArtifact.from_dict(data))


def kind_of(obj) -> str:
    """The envelope kind tag for a contract object."""
    for kind, (type_, _encode, _decode) in _CONTRACTS.items():
        if type(obj) is type_:
            return kind
    # Subclass fallback (e.g. a Program alias like CodeUnit).
    for kind, (type_, _encode, _decode) in _CONTRACTS.items():
        if isinstance(obj, type_):
            return kind
    raise ContractError(
        f"no wire contract for {type(obj).__name__}; serializable kinds are "
        f"{', '.join(sorted(_CONTRACTS))}"
    )


def to_envelope(obj, registry=None) -> dict:
    kind = kind_of(obj)
    _type, encode, _decode = _CONTRACTS[kind]
    return {"schema": SCHEMA_VERSION, "kind": kind,
            "data": encode(obj, registry)}


def _sem_raw(term: Sem) -> Sem:
    """Identity sem encoder: leave terms raw for the JSON default hook."""
    return term


def _sem_json_default(obj):
    """``json.dumps`` default hook: one Sem node as its wire dict, children
    left raw for the serializer itself to recurse into.

    Encoding this way — instead of pre-building the whole nested dict tree
    with :func:`sem_to_dict` and having ``dumps`` re-walk it — visits every
    term node once, which roughly halves serialization time on LF-heavy
    payloads (a bulk run carries tens of thousands of term nodes).  Key
    order matches :func:`sem_to_dict` exactly, so the output bytes are
    identical to the eager path's.
    """
    if isinstance(obj, Const):
        if obj.span is not None:
            return {"t": "const", "value": obj.value, "span": list(obj.span)}
        return {"t": "const", "value": obj.value}
    if isinstance(obj, Call):
        record = {"t": "call", "pred": obj.pred, "args": list(obj.args)}
        if obj.trigger is not None:
            record["trigger"] = obj.trigger
        if obj.flags:
            record["flags"] = sorted(obj.flags)
        return record
    if isinstance(obj, Var):
        return {"t": "var", "name": obj.name}
    if isinstance(obj, Lam):
        return {"t": "lam", "param": obj.param, "body": obj.body}
    if isinstance(obj, App):
        return {"t": "app", "fn": obj.fn, "arg": obj.arg}
    raise TypeError(
        f"Object of type {type(obj).__name__} is not JSON serializable"
    )


#: Kinds that embed logical forms get a lazy encoder for :func:`to_json`:
#: Sems stay raw in the envelope and serialize through the default hook.
_LAZY_ENCODERS = {
    "sage_run": lambda run, registry: run_to_dict(run, registry,
                                                  sem_encode=_sem_raw),
    "sentence_result": lambda result, registry: result_to_dict(
        result, sem_encode=_sem_raw),
    "winnow_trace": lambda trace, registry: trace_to_dict(
        trace, sem_encode=_sem_raw),
}


def to_json(obj, registry=None, indent: int | None = None) -> str:
    """Serialize any contract object under the schema-versioned envelope.

    LF-bearing kinds serialize in a single ``json.dumps`` pass with a
    default hook instead of pre-building per-node dicts (see
    :func:`_sem_json_default`); output bytes are identical either way.
    """
    kind = kind_of(obj)
    _type, encode, _decode = _CONTRACTS[kind]
    lazy = _LAZY_ENCODERS.get(kind)
    data = lazy(obj, registry) if lazy is not None else encode(obj, registry)
    envelope = {"schema": SCHEMA_VERSION, "kind": kind, "data": data}
    return json.dumps(envelope, indent=indent, default=_sem_json_default)


def from_envelope(payload: dict, registry=None):
    if not isinstance(payload, dict):
        raise ContractError(
            f"expected an envelope object, got {type(payload).__name__}"
        )
    schema = payload.get("schema")
    if schema != SCHEMA_VERSION:
        raise SchemaVersionError(schema, SCHEMA_VERSION)
    kind = payload.get("kind")
    if kind not in _CONTRACTS:
        raise ContractError(
            f"unknown payload kind {kind!r}; readable kinds are "
            f"{', '.join(sorted(_CONTRACTS))}"
        )
    _type, _encode, decode = _CONTRACTS[kind]
    data = payload.get("data")
    if not isinstance(data, dict):
        raise ContractError(f"envelope {kind!r} carries no data object")
    try:
        return decode(data, registry)
    except (KeyError, TypeError, ValueError) as exc:
        if isinstance(exc, ResolutionError):
            raise ContractError(str(exc)) from exc
        raise ContractError(f"malformed {kind} payload: {exc!r}") from exc


def from_json(text: str, registry=None):
    """Deserialize any contract payload produced by :func:`to_json`.

    Logical forms decode inside the JSON parse itself (see
    :func:`_sem_parse_hook`); the envelope decoders accept the resulting
    pre-built Sem objects and plain dicts alike."""
    try:
        payload = json.loads(text, object_hook=_sem_parse_hook)
    except json.JSONDecodeError as exc:
        raise ContractError(f"payload is not JSON: {exc}") from exc
    return from_envelope(payload, registry)


def journal_to_json(journal: DecisionJournal) -> str:
    """Convenience passthrough (the journal carries its own schema)."""
    return journal.to_json()
