"""The ``python -m repro`` command line, a thin shell over the service.

Four subcommands mirror the :class:`~repro.api.service.SageService`
endpoints::

    python -m repro process ICMP --json --artifact c
    python -m repro sweep --all --json
    python -m repro resolve ICMP --journal decisions.json --list
    python -m repro resolve ICMP --journal decisions.json \
        --sentence 12 --rewrite "The revised sentence." --category ambiguous
    python -m repro emit ICMP --backend c --output icmp.c
    python -m repro fuzz --seed 0 --episodes 200 --json
    python -m repro cache warm --cache-dir ~/.cache/repro --json
    python -m repro cache stats --cache-dir ~/.cache/repro
    python -m repro serve --port 8742 --cache-dir ~/.cache/repro

Everything ``--json`` prints is a schema-versioned contract payload
(:mod:`repro.api.contracts`), so shell pipelines and test harnesses consume
the same wire format a network transport would carry.  Structured
:class:`~repro.api.errors.ApiError` failures print as error payloads and
exit with the error's ``exit_code`` — aligned with the error codes across
every subcommand: 2 bad request, 3 not found, 4 undecodable payload,
5 deadline exceeded, 6 corrupted cache store.  Unexpected exceptions
propagate (a traceback is a bug).
"""

from __future__ import annotations

import argparse
import json
import sys

from .contracts import ProcessRequest, SweepRequest, to_json
from .errors import ApiError, RequestError
from .service import SageService


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="SAGE pipeline service: process RFC corpora, resolve "
                    "ambiguities, emit generated code.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--mode", choices=("strict", "revised"),
                       default="revised", help="pipeline mode (default: revised)")
        p.add_argument("--json", action="store_true",
                       help="print the schema-versioned contract payload")
        p.add_argument("--journal", metavar="PATH",
                       help="decision journal to replay (and append to)")
        p.add_argument("--no-bundled-rewrites", action="store_true",
                       help="ignore the bundled rewrites.json (journal-only "
                            "operation, for replay verification)")
        p.add_argument("--cache-dir", metavar="PATH", default=None,
                       help="persistent cache directory shared across "
                            "processes (default: $REPRO_CACHE_DIR; unset = "
                            "in-memory caches only)")

    p_process = sub.add_parser("process", help="run one protocol")
    p_process.add_argument("protocol")
    p_process.add_argument("--artifact", action="append", default=[],
                           metavar="BACKEND",
                           help="render an artifact (repeatable: c, python)")
    p_process.add_argument("--no-sentences", action="store_true",
                           help="omit per-sentence reports from the response")
    p_process.add_argument("--parser-backend", default="", metavar="NAME",
                           help="parser backend (reference, indexed; "
                                "default: the protocol's registered choice)")
    common(p_process)

    p_sweep = sub.add_parser("sweep", help="run many protocols in one batch")
    p_sweep.add_argument("protocols", nargs="*", metavar="PROTOCOL",
                         help="protocols to run (default with --all: every "
                              "registered one)")
    p_sweep.add_argument("--all", action="store_true",
                         help="run every registered protocol")
    p_sweep.add_argument("--sequential", action="store_true",
                         help="disable the fork worker pool")
    p_sweep.add_argument("--max-workers", type=int, default=None)
    p_sweep.add_argument("--parser-backend", default="", metavar="NAME",
                         help="parser backend for every protocol in the "
                              "sweep (default: per-protocol registration)")
    common(p_sweep)

    p_parse = sub.add_parser(
        "parse", help="parsing-subsystem diagnostics: batch-parse one "
                      "corpus through a backend (no winnow, no codegen)"
    )
    p_parse.add_argument("protocol")
    p_parse.add_argument("--parser-backend", default="", metavar="NAME",
                         help="parser backend to drive (default: the "
                              "protocol's registered choice)")
    p_parse.add_argument("--compare", action="store_true",
                         help="run every registered parser backend, check "
                              "LF-set parity, and report relative speed")
    p_parse.add_argument("--sentences", action="store_true",
                         help="print the per-sentence diagnostic lines")
    p_parse.add_argument("--profile", action="store_true",
                         help="print the parser hot-path counters for this "
                              "batch (agenda pops, memo hit rates, deferred "
                              "items, budget drops)")
    common(p_parse)

    p_winnow = sub.add_parser(
        "winnow", help="winnow-subsystem diagnostics: parse + run the §4.2 "
                       "check suite over one corpus (no codegen)"
    )
    p_winnow.add_argument("protocol")
    p_winnow.add_argument("--parser-backend", default="", metavar="NAME",
                          help="parser backend feeding the winnow stage "
                               "(default: the protocol's registered choice)")
    p_winnow.add_argument("--sentences", action="store_true",
                          help="print the per-sentence stage-count lines")
    p_winnow.add_argument("--profile", action="store_true",
                          help="print the winnow hot-path counters for this "
                               "batch (canonical-sid and check-memo hit "
                               "rates, stage-cache hits, oracle calls)")
    common(p_winnow)

    p_resolve = sub.add_parser(
        "resolve", help="inspect flagged sentences and journal decisions"
    )
    p_resolve.add_argument("protocol")
    p_resolve.add_argument("--list", action="store_true",
                           help="list flagged sentences (the default action)")
    p_resolve.add_argument("--pending", action="store_true",
                           help="list only still-unresolved flagged sentences")
    p_resolve.add_argument("--sentence", metavar="INDEX|TEXT",
                           help="the sentence to resolve (corpus index or "
                                "unique text fragment)")
    p_resolve.add_argument("--rewrite", metavar="TEXT",
                           help="record a rewrite resolution")
    p_resolve.add_argument("--category",
                           choices=("ambiguous", "unparsed", "imprecise"),
                           default="",
                           help="rewrite category (default: derived from the "
                                "sentence's status)")
    p_resolve.add_argument("--annotate", action="store_true",
                           help="record a non-actionable annotation")
    p_resolve.add_argument("--select-lf", metavar="SIGNATURE|INDEX",
                           help="force one surviving logical form")
    p_resolve.add_argument("--note", default="", help="free-form provenance")
    p_resolve.add_argument("--replay", action="store_true",
                           help="re-run after resolving and print the "
                                "resulting status counts")
    common(p_resolve)

    p_emit = sub.add_parser("emit", help="emit a generated-code artifact")
    p_emit.add_argument("protocol")
    p_emit.add_argument("--backend", default="c",
                        help="codegen backend (default: c)")
    p_emit.add_argument("--output", metavar="PATH",
                        help="write the rendered source here instead of stdout")
    common(p_emit)

    p_fuzz = sub.add_parser(
        "fuzz", help="differential scenario fuzzing across executable "
                     "backends (see repro.fuzz)"
    )
    p_fuzz.add_argument("--seed", type=int, default=0,
                        help="campaign seed; the same seed reproduces "
                             "byte-identical episode traces (default: 0)")
    p_fuzz.add_argument("--episodes", type=int, default=50,
                        help="episodes to generate (default: 50)")
    p_fuzz.add_argument("--protocol", action="append", default=[],
                        metavar="NAME",
                        help="restrict to one protocol (repeatable; "
                             "default: every fuzzed protocol)")
    p_fuzz.add_argument("--family", action="append", default=[],
                        metavar="NAME",
                        help="restrict to one scenario family (repeatable)")
    p_fuzz.add_argument("--replay", metavar="CASE_FILE",
                        help="replay one saved case file instead of "
                             "generating episodes")
    p_fuzz.add_argument("--case-dir", metavar="DIR", default="fuzz-cases",
                        help="where shrunk divergence cases are written "
                             "(default: fuzz-cases)")
    p_fuzz.add_argument("--record-bench", metavar="PATH",
                        help="merge fuzz_* headline numbers into this "
                             "BENCH_pipeline.json")
    common(p_fuzz)

    p_cache = sub.add_parser(
        "cache", help="persistent cache maintenance (stats, clear, warm)"
    )
    p_cache.add_argument("action", choices=("stats", "clear", "warm"),
                         help="stats: report the store's footprint and "
                              "counters; clear: drop every persisted entry; "
                              "warm: sweep every registered protocol "
                              "through the store and report hit/miss counts")
    common(p_cache)

    p_serve = sub.add_parser(
        "serve", help="run the HTTP front end (see repro.server)"
    )
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default: 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=8742,
                         help="bind port; 0 picks an ephemeral port "
                              "(default: 8742)")
    p_serve.add_argument("--workers", type=int, default=None,
                         help="worker processes (default: cpu count when >1, "
                              "otherwise inline single-worker execution)")
    p_serve.add_argument("--deadline", type=float, default=60.0,
                         metavar="SECONDS",
                         help="default per-request deadline; requests past "
                              "it answer 504 (override per request with "
                              "X-Repro-Deadline)")
    common(p_serve)
    return parser


def _service(args) -> SageService:
    cache_dir = getattr(args, "cache_dir", None)
    if args.no_bundled_rewrites or args.journal or cache_dir:
        from ..rfc.registry import ProtocolRegistry

        registry = ProtocolRegistry(
            bundled_rewrites=not args.no_bundled_rewrites,
            cache_dir=cache_dir,
        )
    else:
        # The default registry still picks up $REPRO_CACHE_DIR on its own.
        registry = None
    journal = None
    if args.journal:
        from ..disambiguation.resolution import DecisionJournal, ResolutionError

        try:
            journal = DecisionJournal.load(args.journal)
        except (json.JSONDecodeError, ResolutionError, OSError) as exc:
            raise RequestError(
                f"cannot read journal {args.journal}: {exc}"
            ) from exc
    return SageService(registry=registry, journal=journal)


def _print_response(response, out) -> None:
    print(f"{response.protocol} ({response.mode} mode): "
          f"{response.sentence_count} sentences", file=out)
    for status, count in sorted(response.status_counts.items()):
        print(f"  {status:<16} {count}", file=out)
    for report in response.flagged():
        print(f"  [{report.status}] #{report.index} {report.text[:70]}",
              file=out)
    for artifact in response.artifacts:
        print(f"  artifact: {artifact.backend} "
              f"({len(artifact.source.splitlines())} lines, "
              f"sha1 {artifact.fingerprint[:12]})", file=out)


def _cmd_process(service: SageService, args, out) -> int:
    response = service.process(ProcessRequest(
        protocol=args.protocol, mode=args.mode,
        include_sentences=not args.no_sentences,
        artifacts=tuple(args.artifact),
        parser_backend=args.parser_backend,
    ))
    if args.json:
        print(to_json(response), file=out)
    else:
        _print_response(response, out)
    return 0


def _cmd_sweep(service: SageService, args, out) -> int:
    if not args.protocols and not args.all:
        raise RequestError("sweep needs protocol names or --all")
    response = service.sweep(SweepRequest(
        protocols=tuple(args.protocols), mode=args.mode,
        parallel=not args.sequential, max_workers=args.max_workers,
        parser_backend=args.parser_backend,
    ))
    if args.json:
        print(to_json(response), file=out)
        return 0
    workers = response.parallel_workers
    print(f"swept {len(response.protocols)} protocols "
          f"({'sequential' if not workers else f'{workers} workers'})",
          file=out)
    for name in response.protocols:
        sub = response.responses[name]
        flagged = sub.flagged_count
        print(f"  {name:<6} {sub.sentence_count:>3} sentences, "
              f"{flagged} flagged", file=out)
    return 0


def _cmd_resolve(service: SageService, args, out) -> int:
    session = service.session(args.protocol, mode=args.mode)
    resolving = bool(args.rewrite or args.annotate or args.select_lf)
    if resolving:
        if not args.sentence:
            raise RequestError("--rewrite/--annotate/--select-lf need "
                               "--sentence")
        if not args.journal:
            # Without a journal path the decision would die with the
            # process while claiming success — refuse instead.
            raise RequestError("recording a resolution needs --journal PATH "
                               "(the decision must outlive this process)")
        selector: int | str = args.sentence
        if selector.lstrip("-").isdigit():
            selector = int(selector)
        select_lf = args.select_lf
        if select_lf is not None and select_lf.isdigit():
            select_lf = int(select_lf)
        resolution = session.resolve(
            selector, rewrite=args.rewrite, category=args.category,
            annotate=args.annotate, select_lf=select_lf, note=args.note,
        )
        if args.json:
            print(to_json(resolution), file=out)
        else:
            print(f"journaled {resolution.kind} for: "
                  f"{resolution.original[:70]}", file=out)
        if args.replay:
            response = session.response(include_sentences=False)
            if args.json:
                print(to_json(response), file=out)
            else:
                _print_response(response, out)
        return 0
    reports = session.pending() if args.pending else session.flagged()
    if args.json:
        payload = {
            "schema": 1, "kind": "sentence_report_list",
            "data": {"protocol": session.protocol,
                     "reports": [report.to_dict() for report in reports]},
        }
        print(json.dumps(payload), file=out)
        return 0
    label = "pending" if args.pending else "flagged"
    print(f"{session.protocol}: {len(reports)} {label} sentences", file=out)
    for report in reports:
        print(f"\n[{report.status}] #{report.index} "
              f"{report.message} / {report.field or 'description'}", file=out)
        print(f"  {report.text}", file=out)
        if report.reason:
            print(f"  reason: {report.reason}", file=out)
        for position, survivor in enumerate(report.survivors):
            print(f"  LF {position}: {survivor['signature'][:90]}", file=out)
    return 0


def _cmd_parse(service: SageService, args, out) -> int:
    """Parsing diagnostics: one backend, or a parity/speed comparison."""
    if args.compare:
        from ..parsing import parser_backend_names

        if args.parser_backend:
            # --compare always runs every registered backend; silently
            # ignoring a (possibly misspelled) selection would mask the
            # mistake behind a successful comparison.
            raise RequestError(
                "--compare runs every registered parser backend; drop "
                "--parser-backend"
            )
        reports = {}
        for backend in parser_backend_names():
            service.registry.parse_cache().clear()  # honest cold numbers
            reports[backend] = service.parse_diagnostics(
                args.protocol, parser_backend=backend, mode=args.mode
            )
        lf_sets = {
            backend: tuple(s["lf_set_sha1"] for s in report["sentences"])
            for backend, report in reports.items()
        }
        parity = len(set(lf_sets.values())) == 1
        if args.json:
            payload = {
                "schema": 1, "kind": "parse_comparison",
                "data": {"protocol": args.protocol, "parity": parity,
                         "backends": {name: {k: v for k, v in rep.items()
                                             if k != "sentences"}
                                      for name, rep in reports.items()}},
            }
            print(json.dumps(payload), file=out)
        else:
            print(f"{args.protocol}: parser-backend comparison "
                  f"({'parity OK' if parity else 'PARITY MISMATCH'})",
                  file=out)
            for name, report in reports.items():
                print(f"  {name:<10} {report['sentences_per_s']:8.1f} "
                      f"sentences/s  ({report['sentence_count']} sentences, "
                      f"{report['unparsed']} unparsed, "
                      f"{report['pruned_sentences']} pruned)", file=out)
        return 0 if parity else 1
    report = service.parse_diagnostics(
        args.protocol, parser_backend=args.parser_backend, mode=args.mode
    )
    if args.json:
        payload = {"schema": 1, "kind": "parse_diagnostics", "data": report}
        print(json.dumps(payload), file=out)
        return 0
    print(f"{report['protocol']} via {report['parser_backend']}: "
          f"{report['sentence_count']} sentences in "
          f"{report['elapsed_s']:.3f}s "
          f"({report['sentences_per_s']:.1f}/s, "
          f"{report['parsed_from_cache']} cached)", file=out)
    print(f"  unparsed: {report['unparsed']}  "
          f"pruned: {report['pruned_sentences']}", file=out)
    if args.sentences:
        for sentence in report["sentences"]:
            flags = []
            if sentence["subject_supplied"]:
                flags.append("subject-supplied")
            if sentence["pruned"]:
                flags.append(f"pruned(-{sentence['dropped_items']})")
            if sentence["unknown_words"]:
                flags.append("unknown: " + ",".join(sentence["unknown_words"]))
            suffix = f"  [{'; '.join(flags)}]" if flags else ""
            print(f"  #{sentence['index']:>3} LFs={sentence['lf_count']:<3}"
                  f" {sentence['text'][:60]}{suffix}", file=out)
    if args.profile:
        profile = report["profile"]
        print("  profile:", file=out)
        for key in sorted(profile):
            value = profile[key]
            rendered = f"{value:.3f}" if isinstance(value, float) else value
            print(f"    {key:<28} {rendered}", file=out)
    return 0


def _cmd_winnow(service: SageService, args, out) -> int:
    """Winnow diagnostics: the §4.2 check suite in isolation."""
    report = service.winnow_diagnostics(
        args.protocol, parser_backend=args.parser_backend, mode=args.mode
    )
    if args.json:
        payload = {"schema": 1, "kind": "winnow_diagnostics", "data": report}
        print(json.dumps(payload), file=out)
        return 0
    print(f"{report['protocol']}: winnowed {report['sentence_count']} "
          f"sentences in {report['elapsed_s']:.3f}s "
          f"({report['sentences_per_s']:.1f}/s)", file=out)
    print(f"  still ambiguous: {report['ambiguous_after_winnowing']}",
          file=out)
    cache_stats = report.get("winnow_cache")
    if cache_stats:
        line = (f"  winnow cache: {cache_stats.get('size', 0)} entries, "
                f"{cache_stats.get('hits', 0)} hits, "
                f"{cache_stats.get('misses', 0)} misses")
        if "disk_hits" in cache_stats:
            line += f" ({cache_stats['disk_hits']} from disk)"
        print(line, file=out)
    if args.sentences:
        for sentence in report["sentences"]:
            counts = sentence["counts"]
            stages = " > ".join(str(counts[stage]) for stage in counts)
            flag = "  [ambiguous]" if sentence["ambiguous"] else ""
            print(f"  #{sentence['index']:>3} {stages:<24} "
                  f"{sentence['text'][:56]}{flag}", file=out)
    if args.profile:
        profile = report["profile"]
        print("  profile:", file=out)
        for key in sorted(profile):
            value = profile[key]
            rendered = f"{value:.3f}" if isinstance(value, float) else value
            print(f"    {key:<28} {rendered}", file=out)
    return 0


def _cmd_emit(service: SageService, args, out) -> int:
    artifact = service.artifact(args.protocol, backend=args.backend,
                                mode=args.mode)
    if args.json:
        text = to_json(artifact)
    else:
        text = artifact.source
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text if text.endswith("\n") else text + "\n")
        print(f"wrote {args.output} "
              f"(sha1 {artifact.fingerprint[:12]})", file=out)
    else:
        print(text, file=out)
    return 0


def _cmd_fuzz(service: SageService, args, out) -> int:
    """Differential fuzzing: a seeded campaign, or one saved case replayed."""
    from ..fuzz import DifferentialRunner, Episode, load_case, save_case, shrink

    def runner_for(protocol: str) -> DifferentialRunner:
        runs = service.engine(args.mode).process_corpora([protocol],
                                                         parallel=False)
        return DifferentialRunner(
            {name: run.code_unit for name, run in runs.items()})

    if args.replay:
        try:
            episode = load_case(args.replay)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            raise RequestError(
                f"cannot replay {args.replay}: {exc}") from exc
        runner = runner_for(episode.protocol)
        divergences, violations, _traces = runner.run_episode(episode)
        failed = bool(divergences or violations)
        if args.json:
            payload = {
                "schema": 1, "kind": "fuzz_replay",
                "data": {"episode": episode.to_dict(),
                         "divergences": [d.to_dict() for d in divergences],
                         "violations": [v.to_dict() for v in violations],
                         "clean": not failed},
            }
            print(json.dumps(payload), file=out)
        else:
            print(f"replayed {episode.key}: "
                  f"{len(divergences)} divergences, "
                  f"{len(violations)} violations", file=out)
            for divergence in divergences:
                print(f"  {divergence.backend_a}|{divergence.backend_b} "
                      f"at {divergence.path}: {divergence.left!r} != "
                      f"{divergence.right!r}", file=out)
            for violation in violations:
                print(f"  [{violation.backend}] {violation.message}",
                      file=out)
        return 1 if failed else 0

    report = service.fuzz(seed=args.seed, episodes=args.episodes,
                          protocols=tuple(args.protocol),
                          families=tuple(args.family), mode=args.mode)
    if args.record_bench:
        from ..fuzz import record_bench

        record_bench(report, args.record_bench)

    # A divergence must leave a replayable artifact behind: shrink the
    # first one and write the case file before reporting.
    cases = []
    if report["divergences"]:
        first = report["divergences"][0]
        episode = Episode.from_dict(first["episode"])
        runner = runner_for(episode.protocol)
        try:
            smallest = shrink(episode, runner.diverges)
        except ValueError:
            smallest = episode  # no longer reproduces; save it unshrunk
        path = save_case(smallest, args.case_dir,
                         note=f"diverges at {first['path']} "
                              f"({first['pair']})")
        cases.append(str(path))
    report["cases"] = cases

    if args.json:
        print(json.dumps({"schema": 1, "kind": "fuzz_report",
                          "data": report}), file=out)
        return 0 if report["clean"] else 1
    print(f"fuzz seed {report['seed']}: {report['episodes']} episodes "
          f"across {', '.join(report['backends'])} — "
          f"{len(report['divergences'])} divergences, "
          f"{len(report['violations'])} violations "
          f"[{'clean' if report['clean'] else 'NOT CLEAN'}]", file=out)
    for pair, protocols in sorted(report["matrix"].get("cells", {}).items()):
        for protocol, families in sorted(protocols.items()):
            for family, cell in sorted(families.items()):
                verdict = "ok" if cell["pass"] else "DIVERGED"
                print(f"  {pair:<17} {protocol:<5} {family:<18} "
                      f"{cell['episodes']:>3} episodes  {verdict}", file=out)
    for protocol, entry in sorted(report["c_fingerprints"].items()):
        lock = "stable" if entry["stable"] else "UNSTABLE"
        print(f"  c lock: {protocol:<5} {entry['sha1'][:12]} {lock}",
              file=out)
    print(f"  traces sha1 {report['traces_sha1']}", file=out)
    for divergence in report["divergences"][:5]:
        print(f"  divergence {divergence['episode']['protocol']}/"
              f"{divergence['episode']['family']} "
              f"({divergence['pair']}) at {divergence['path']}", file=out)
    for violation in report["violations"][:5]:
        print(f"  violation [{violation['backend']}] {violation['message']}",
              file=out)
    for case in cases:
        print(f"  case saved: {case} "
              f"(replay: python -m repro fuzz --replay {case})", file=out)
    return 0 if report["clean"] else 1


def _cmd_cache(service: SageService, args, out) -> int:
    """Persistent-cache maintenance over the service's registry store."""
    registry = service.registry
    store = registry.cache_store()
    if store is None:
        raise RequestError(
            "no persistent cache configured: pass --cache-dir PATH or set "
            "the REPRO_CACHE_DIR environment variable"
        )

    if args.action == "clear":
        removed = store.clear()
        registry.parse_cache().clear()
        registry.winnow_cache().clear()
        registry.compiled_cache().clear()
        if args.json:
            payload = {"schema": 1, "kind": "cache_clear",
                       "data": {"root": store.root, "removed": removed}}
            print(json.dumps(payload), file=out)
        else:
            print(f"cleared {removed} entries from {store.root}", file=out)
        return 0

    if args.action == "warm":
        from .contracts import SweepRequest as _SweepRequest

        response = service.sweep(_SweepRequest(mode=args.mode))

        def _layer(stats: dict) -> dict:
            layer = {key: stats[key] for key in ("size", "hits", "misses")
                     if key in stats}
            if "disk_hits" in stats:
                layer["disk_hits"] = stats["disk_hits"]
            layer["hit_rate"] = _hit_rate(layer.get("hits", 0),
                                          layer.get("misses", 0))
            return layer

        data = {
            "root": store.root,
            "protocols": list(response.protocols),
            "parse": _layer(registry.parse_cache().stats()),
            "winnow": _layer(registry.winnow_cache().stats()),
            "store": store.stats(),
        }
        if args.json:
            print(json.dumps({"schema": 1, "kind": "cache_warm",
                              "data": data}), file=out)
        else:
            print(f"warmed {len(data['protocols'])} protocols into "
                  f"{store.root}", file=out)
            for name in ("parse", "winnow"):
                layer = data[name]
                print(f"  {name}: {layer.get('size', 0)} entries, "
                      f"{layer.get('hits', 0)} hits "
                      f"({layer.get('disk_hits', 0)} from disk), "
                      f"{layer.get('misses', 0)} misses "
                      f"[hit rate {_render_rate(layer['hit_rate'])}]",
                      file=out)
        return 0

    # `cache stats`: report the footprint *and* verify it — a store full
    # of corrupt entries is a store that silently recomputes everything,
    # and that must be a loud non-zero exit, not a quiet quarantine.
    verification = store.verify()
    stats = store.stats()
    stats["verification"] = verification
    parse_stats = registry.parse_cache().stats()
    winnow_stats = registry.winnow_cache().stats()
    stats["rates"] = {
        "parse_hit_rate": _hit_rate(parse_stats.get("hits", 0),
                                    parse_stats.get("misses", 0)),
        "winnow_hit_rate": _hit_rate(winnow_stats.get("hits", 0),
                                     winnow_stats.get("misses", 0)),
        "disk_hit_rate": _hit_rate(stats["disk_hits"], stats["disk_misses"]),
    }
    if args.json:
        print(json.dumps({"schema": 1, "kind": "cache_stats",
                          "data": stats}), file=out)
    else:
        print(f"cache store {stats['root']} "
              f"(layout v{stats['layout_version']})", file=out)
        for namespace, entry in sorted(stats["namespaces"].items()):
            print(f"  {namespace:<10} {entry['entries']:>5} entries, "
                  f"{entry['bytes']} bytes", file=out)
        print(f"  quarantine {stats['quarantine_entries']:>5} entries",
              file=out)
        print(f"  verified   {verification['checked']:>5} entries, "
              f"{verification['corrupt']} corrupt", file=out)
        rates = stats["rates"]
        print(f"  parse hit rate {_render_rate(rates['parse_hit_rate'])}, "
              f"winnow hit rate {_render_rate(rates['winnow_hit_rate'])}, "
              f"disk hit rate {_render_rate(rates['disk_hit_rate'])} "
              "(this process)", file=out)
    if verification["corrupt"]:
        from .errors import CacheCorruption

        raise CacheCorruption(store.root, verification["corrupt"],
                              verification["checked"])
    return 0


def _hit_rate(hits: int, misses: int) -> float | None:
    """hits / (hits + misses), or None before any traffic — a rate is only
    meaningful over a window that saw lookups."""
    total = hits + misses
    return (hits / total) if total else None


def _render_rate(rate: float | None) -> str:
    return "n/a (no lookups)" if rate is None else f"{rate:.1%}"


def _cmd_serve(args, out) -> int:
    """Boot the asyncio HTTP front end (blocks until interrupted).

    Unlike every other subcommand this does *not* build a service in this
    process first: with a process pool, each worker constructs its own
    service over the shared cache directory, and building one here would
    only burn memory in a parent that never answers requests.
    """
    import asyncio
    import os

    from ..server import ReproServer, ServiceConfig

    cache_dir = args.cache_dir or os.environ.get("REPRO_CACHE_DIR") or None
    config = ServiceConfig(cache_dir=cache_dir, journal_path=args.journal,
                           bundled_rewrites=not args.no_bundled_rewrites)
    server = ReproServer(args.host, args.port, config=config,
                         workers=args.workers, deadline_s=args.deadline)

    async def _serve() -> None:
        await server.start()
        pool = server.pool
        plural = "" if pool.workers == 1 else "s"
        print(f"serving on {server.url} ({pool.mode} mode, "
              f"{pool.workers} worker{plural}; "
              f"cache {cache_dir or 'in-memory'})", file=out, flush=True)
        await server.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    finally:
        server.pool.close()
    return 0


_COMMANDS = {
    "process": _cmd_process,
    "sweep": _cmd_sweep,
    "parse": _cmd_parse,
    "winnow": _cmd_winnow,
    "resolve": _cmd_resolve,
    "emit": _cmd_emit,
    "fuzz": _cmd_fuzz,
    "cache": _cmd_cache,
}


def main(argv: list[str] | None = None, out=None) -> int:
    args = _build_parser().parse_args(argv)
    out = out or sys.stdout
    try:
        if args.command == "serve":
            return _cmd_serve(args, out)
        service = _service(args)
        return _COMMANDS[args.command](service, args, out)
    except ApiError as exc:
        if getattr(args, "json", False):
            print(json.dumps(exc.to_dict()), file=sys.stderr)
        else:
            print(f"error [{exc.code}]: {exc}", file=sys.stderr)
        return exc.exit_code
    except BrokenPipeError:
        # Downstream closed the pipe (`... | head`); exit quietly, pointing
        # stdout at devnull so interpreter shutdown does not re-raise.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
