"""``repro.api`` — the versioned public service layer (schema v1).

Three surfaces over the SAGE pipeline:

* **contracts** — JSON-round-trippable request/response dataclasses
  (:class:`ProcessRequest`, :class:`ProcessResponse`, :class:`SweepRequest`,
  :class:`SweepResponse`, :class:`SentenceReport`,
  :class:`GeneratedArtifact`) plus schema-versioned :func:`to_json` /
  :func:`from_json` for every pipeline result (``SageRun``,
  ``WinnowTrace``, ``CodeUnit``, ``SentenceResult``, ``Resolution``);
* **sessions** — the interactive :class:`DisambiguationSession`: iterate
  flagged sentences, inspect surviving LFs with per-check provenance,
  apply :class:`~repro.disambiguation.resolution.Resolution` records that a
  :class:`~repro.disambiguation.resolution.DecisionJournal` persists and
  the registry replays on later runs;
* **service** — :class:`SageService`, the front door: ``process`` /
  ``sweep`` / ``artifact`` / ``session`` endpoints with structured
  :class:`ApiError` failures, driven from Python or the ``python -m
  repro`` CLI.
"""

from ..disambiguation.resolution import DecisionJournal, Resolution
from .binenc import SCHEMA_1B, from_bytes, to_bytes
from .contracts import (
    SCHEMA_VERSION,
    GeneratedArtifact,
    ProcessRequest,
    ProcessResponse,
    SentenceReport,
    SweepRequest,
    SweepResponse,
    from_json,
    to_json,
)
from .errors import (
    ApiError,
    BackendNotFound,
    ContractError,
    ProtocolNotFound,
    RequestError,
    SchemaVersionError,
    SentenceNotFound,
)
from .service import SageService
from .session import DisambiguationSession, open_session

__all__ = [
    "SCHEMA_1B",
    "SCHEMA_VERSION",
    "ApiError",
    "BackendNotFound",
    "ContractError",
    "DecisionJournal",
    "DisambiguationSession",
    "GeneratedArtifact",
    "ProcessRequest",
    "ProcessResponse",
    "ProtocolNotFound",
    "RequestError",
    "Resolution",
    "SageService",
    "SchemaVersionError",
    "SentenceNotFound",
    "SentenceReport",
    "SweepRequest",
    "SweepResponse",
    "from_bytes",
    "from_json",
    "open_session",
    "to_bytes",
    "to_json",
]
