"""Structured error types for the service layer.

Every failure a caller can provoke through the public API maps to one
:class:`ApiError` subclass with a stable machine-readable ``code``; the
:meth:`ApiError.to_dict` rendering is the error half of the wire contract
(the CLI prints it under ``--json``, a transport layer would return it as
the response body).
"""

from __future__ import annotations


class ApiError(Exception):
    """Base class: a structured, serializable service-layer failure."""

    code = "api-error"

    def to_dict(self) -> dict:
        return {"error": self.code, "message": str(self)}


class RequestError(ApiError):
    """A malformed request (unknown mode, missing field, bad payload)."""

    code = "bad-request"


class ProtocolNotFound(ApiError):
    """The request names a protocol no registry entry covers."""

    code = "protocol-not-found"

    def __init__(self, name: str, known: list[str] | None = None):
        self.name = name
        self.known = list(known or [])
        message = f"unknown protocol {name!r}"
        if self.known:
            message += f": registered protocols are {', '.join(self.known)}"
        super().__init__(message)

    def to_dict(self) -> dict:
        record = super().to_dict()
        record["protocol"] = self.name
        record["known"] = self.known
        return record


class BackendNotFound(ApiError):
    """The request names a codegen backend the registry does not hold."""

    code = "backend-not-found"

    def __init__(self, name: str, known: list[str] | None = None):
        self.name = name
        self.known = list(known or [])
        message = f"unknown backend {name!r}"
        if self.known:
            message += f": registered backends are {', '.join(self.known)}"
        super().__init__(message)

    def to_dict(self) -> dict:
        record = super().to_dict()
        record["backend"] = self.name
        record["known"] = self.known
        return record


class ParserBackendNotFound(ApiError):
    """The request names a parser backend that was never registered."""

    code = "parser-backend-not-found"

    def __init__(self, name: str, known: list[str] | None = None):
        self.name = name
        self.known = list(known or [])
        message = f"unknown parser backend {name!r}"
        if self.known:
            message += f": registered parser backends are {', '.join(self.known)}"
        super().__init__(message)

    def to_dict(self) -> dict:
        record = super().to_dict()
        record["parser_backend"] = self.name
        record["known"] = self.known
        return record


class ContractError(ApiError):
    """A payload that cannot be (de)serialized under the contract."""

    code = "contract-error"


class SchemaVersionError(ContractError):
    """A payload written under a schema this build does not read."""

    code = "schema-version"

    def __init__(self, found, supported: int):
        self.found = found
        self.supported = supported
        super().__init__(
            f"unsupported schema version {found!r} "
            f"(this build reads schema {supported})"
        )


class SentenceNotFound(ApiError):
    """A resolve call addressed a sentence the corpus does not contain."""

    code = "sentence-not-found"
