"""Structured error types for the service layer.

Every failure a caller can provoke through the public API maps to one
:class:`ApiError` subclass with a stable machine-readable ``code``; the
:meth:`ApiError.to_dict` rendering is the error half of the wire contract
(the CLI prints it under ``--json``, a transport layer returns it as the
response body).  Two transport mappings ride on the code:

* ``http_status`` — the HTTP status the server layer
  (:mod:`repro.server`) answers with: caller mistakes are 400, unknown
  names are 404, an exceeded deadline is 504, store corruption is 500;
* ``exit_code`` — the ``python -m repro`` process exit status, aligned
  across every subcommand: 2 for malformed requests (argparse's own
  convention), 3 for not-found failures, 4 for undecodable payloads,
  5 for deadlines, 6 for a corrupted persistent store.
"""

from __future__ import annotations


class ApiError(Exception):
    """Base class: a structured, serializable service-layer failure."""

    code = "api-error"
    http_status = 400
    exit_code = 2

    def to_dict(self) -> dict:
        return {"error": self.code, "message": str(self)}


class RequestError(ApiError):
    """A malformed request (unknown mode, missing field, bad payload)."""

    code = "bad-request"


class ProtocolNotFound(ApiError):
    """The request names a protocol no registry entry covers."""

    code = "protocol-not-found"
    http_status = 404
    exit_code = 3

    def __init__(self, name: str, known: list[str] | None = None):
        self.name = name
        self.known = list(known or [])
        message = f"unknown protocol {name!r}"
        if self.known:
            message += f": registered protocols are {', '.join(self.known)}"
        super().__init__(message)

    def to_dict(self) -> dict:
        record = super().to_dict()
        record["protocol"] = self.name
        record["known"] = self.known
        return record


class BackendNotFound(ApiError):
    """The request names a codegen backend the registry does not hold."""

    code = "backend-not-found"
    http_status = 404
    exit_code = 3

    def __init__(self, name: str, known: list[str] | None = None):
        self.name = name
        self.known = list(known or [])
        message = f"unknown backend {name!r}"
        if self.known:
            message += f": registered backends are {', '.join(self.known)}"
        super().__init__(message)

    def to_dict(self) -> dict:
        record = super().to_dict()
        record["backend"] = self.name
        record["known"] = self.known
        return record


class ParserBackendNotFound(ApiError):
    """The request names a parser backend that was never registered."""

    code = "parser-backend-not-found"
    http_status = 404
    exit_code = 3

    def __init__(self, name: str, known: list[str] | None = None):
        self.name = name
        self.known = list(known or [])
        message = f"unknown parser backend {name!r}"
        if self.known:
            message += f": registered parser backends are {', '.join(self.known)}"
        super().__init__(message)

    def to_dict(self) -> dict:
        record = super().to_dict()
        record["parser_backend"] = self.name
        record["known"] = self.known
        return record


class ContractError(ApiError):
    """A payload that cannot be (de)serialized under the contract."""

    code = "contract-error"
    exit_code = 4


class SchemaVersionError(ContractError):
    """A payload written under a schema this build does not read."""

    code = "schema-version"

    def __init__(self, found, supported: int):
        self.found = found
        self.supported = supported
        super().__init__(
            f"unsupported schema version {found!r} "
            f"(this build reads schema {supported})"
        )


class SentenceNotFound(ApiError):
    """A resolve call addressed a sentence the corpus does not contain."""

    code = "sentence-not-found"
    http_status = 404
    exit_code = 3


class EnvelopeDecodeError(ContractError):
    """A wire envelope whose framing itself is malformed: a length prefix
    pointing past the payload, a varint that never terminates, a count
    larger than the bytes that could possibly back it.  Kept distinct from
    plain :class:`ContractError` so transports can tell "you sent garbage
    bytes" (this, HTTP 400) from "this build cannot express that object"."""

    code = "bad-envelope"


class DeadlineExceeded(ApiError):
    """The per-request deadline elapsed before the pipeline finished."""

    code = "deadline-exceeded"
    http_status = 504
    exit_code = 5

    def __init__(self, deadline_s: float, endpoint: str = ""):
        self.deadline_s = deadline_s
        self.endpoint = endpoint
        suffix = f" on {endpoint}" if endpoint else ""
        super().__init__(
            f"request exceeded its {deadline_s:g}s deadline{suffix}"
        )

    def to_dict(self) -> dict:
        record = super().to_dict()
        record["deadline_s"] = self.deadline_s
        if self.endpoint:
            record["endpoint"] = self.endpoint
        return record


class CacheCorruption(ApiError):
    """The persistent cache store holds entries that fail verification."""

    code = "cache-corrupt"
    http_status = 500
    exit_code = 6

    def __init__(self, root: str, corrupt: int, checked: int):
        self.root = root
        self.corrupt = corrupt
        self.checked = checked
        super().__init__(
            f"cache store {root}: {corrupt} of {checked} entries failed "
            "verification (quarantined; rerun to recompute)"
        )

    def to_dict(self) -> dict:
        record = super().to_dict()
        record["root"] = self.root
        record["corrupt"] = self.corrupt
        record["checked"] = self.checked
        return record
