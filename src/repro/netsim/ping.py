"""A Linux-faithful `ping` for the simulator.

The student study (§2.1) hinges on ping's *strictness*: Linux ping only
counts a reply when the ICMP checksum verifies (the kernel already dropped
bad IP checksums), the identifier matches the sender's, the sequence matches
an outstanding probe, and the payload bytes come back intact and whole.
Each check failing maps onto one of the Table 2 error classes, which is what
lets the fault injector reproduce the study.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..framework import icmp
from ..framework.ip import PROTO_ICMP, IPv4Header, make_ip_packet
from .host import Host

# Linux ping's default payload: 56 bytes; we use the classic pattern of
# incrementing bytes after an 8-byte (zeroed here) timestamp slot.
DEFAULT_PAYLOAD_LEN = 56


def default_payload(length: int = DEFAULT_PAYLOAD_LEN) -> bytes:
    return bytes(i & 0xFF for i in range(length))


@dataclass
class PingReply:
    """One accepted echo reply."""

    sequence: int
    source: int
    length: int


@dataclass
class PingError:
    """An ICMP error (e.g. destination unreachable) observed for a probe."""

    icmp_type: int
    icmp_code: int
    source: int


@dataclass
class PingResult:
    """Aggregate outcome of a ping run, plus every rejection reason."""

    transmitted: int = 0
    received: int = 0
    replies: list[PingReply] = field(default_factory=list)
    errors: list[PingError] = field(default_factory=list)
    rejections: list[str] = field(default_factory=list)

    @property
    def success(self) -> bool:
        return self.transmitted > 0 and self.received == self.transmitted

    @property
    def loss_percent(self) -> float:
        if self.transmitted == 0:
            return 0.0
        return 100.0 * (self.transmitted - self.received) / self.transmitted


class Ping:
    """Sends echo requests from ``host`` and strictly validates replies."""

    def __init__(self, host: Host, identifier: int = 0x4242,
                 payload_len: int = DEFAULT_PAYLOAD_LEN, ttl: int = 64) -> None:
        self.host = host
        self.identifier = identifier
        self.payload_len = payload_len
        self.ttl = ttl
        self.result = PingResult()
        self._outstanding: dict[int, bytes] = {}
        host.add_listener(self._on_packet)

    # -- sending ------------------------------------------------------------
    def send_probe(self, destination: int, sequence: int, tos: int = 0) -> None:
        payload = default_payload(self.payload_len)
        echo = icmp.make_echo(self.identifier, sequence, payload)
        packet = make_ip_packet(
            src=self.host.os.interfaces[0].address,
            dst=destination,
            protocol=PROTO_ICMP,
            data=echo.pack(),
            ttl=self.ttl,
            tos=tos,
        )
        self._outstanding[sequence] = payload
        self.result.transmitted += 1
        self.host.send(packet)

    def run(self, destination: int, count: int = 1, tos: int = 0) -> PingResult:
        """Send ``count`` probes and drive the network to quiescence."""
        for sequence in range(1, count + 1):
            self.send_probe(destination, sequence, tos=tos)
            assert self.host.network is not None
            self.host.network.run()
        return self.result

    # -- receiving ------------------------------------------------------------
    def _on_packet(self, packet: IPv4Header, _interface: str) -> None:
        if packet.protocol != PROTO_ICMP:
            return
        try:
            message = icmp.ICMPHeader.unpack(packet.data)
        except ValueError:
            self.result.rejections.append("truncated ICMP message")
            return
        if message.type == icmp.ECHO_REPLY:
            self._on_echo_reply(packet, message)
        elif message.type in (
            icmp.DEST_UNREACHABLE,
            icmp.TIME_EXCEEDED,
            icmp.SOURCE_QUENCH,
            icmp.PARAMETER_PROBLEM,
            icmp.REDIRECT,
        ):
            self.result.errors.append(
                PingError(icmp_type=message.type, icmp_code=message.code, source=packet.src)
            )

    def _on_echo_reply(self, packet: IPv4Header, message: icmp.ICMPHeader) -> None:
        if not message.checksum_ok():
            self.result.rejections.append("bad ICMP checksum")
            return
        if message.identifier != self.identifier:
            self.result.rejections.append(
                f"identifier mismatch (got {message.identifier}, want {self.identifier})"
            )
            return
        expected = self._outstanding.pop(message.sequence, None)
        if expected is None:
            self.result.rejections.append(f"unexpected sequence {message.sequence}")
            return
        if len(message.payload) != len(expected):
            self.result.rejections.append(
                f"payload length {len(message.payload)} != sent {len(expected)}"
            )
            return
        if message.payload != expected:
            self.result.rejections.append("payload corrupted in reply")
            return
        self.result.received += 1
        self.result.replies.append(
            PingReply(sequence=message.sequence, source=packet.src, length=len(packet.data))
        )


def ping(host: Host, destination: int, count: int = 1, **kwargs) -> PingResult:
    """Convenience wrapper: ``ping(host, dst)`` like the shell command."""
    return Ping(host, **kwargs).run(destination, count=count)
