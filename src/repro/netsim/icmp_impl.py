"""The pluggable ICMP implementation boundary.

Three kinds of implementation sit behind this interface:

* :class:`ReferenceICMP` — the hand-written ground truth (what a careful
  developer ships);
* the student-study fault injectors (`repro.analysis.student_study`), which
  wrap the reference with the Table 2/3 bug classes;
* SAGE-generated code (`repro.runtime.harness`), compiled from the RFC text.

Routers and hosts in the simulator call only this interface, so the paper's
comparisons ("generated code interoperates where faulty code does not") are
pure substitutions.
"""

from __future__ import annotations

from ..framework import icmp
from ..framework.ip import PROTO_ICMP, IPv4Header, make_ip_packet
from ..framework.netdev import Clock


class ICMPImplementation:
    """Interface the simulator expects from an ICMP message factory.

    Every method receives the *offending/request* IP datagram (as parsed by
    the receiving node) plus whatever scenario parameters apply, and returns
    a complete IP datagram (bytes) to transmit, or None to stay silent.
    ``responder_address`` is the IP address the reply is sourced from.
    """

    def echo_reply(self, request: IPv4Header, responder_address: int) -> bytes | None:
        raise NotImplementedError

    def destination_unreachable(
        self, original: IPv4Header, code: int, responder_address: int
    ) -> bytes | None:
        raise NotImplementedError

    def time_exceeded(self, original: IPv4Header, responder_address: int) -> bytes | None:
        raise NotImplementedError

    def parameter_problem(
        self, original: IPv4Header, pointer: int, responder_address: int
    ) -> bytes | None:
        raise NotImplementedError

    def source_quench(self, original: IPv4Header, responder_address: int) -> bytes | None:
        raise NotImplementedError

    def redirect(
        self, original: IPv4Header, gateway: int, responder_address: int
    ) -> bytes | None:
        raise NotImplementedError

    def timestamp_reply(self, request: IPv4Header, responder_address: int) -> bytes | None:
        raise NotImplementedError

    def info_reply(self, request: IPv4Header, responder_address: int) -> bytes | None:
        raise NotImplementedError


class ReferenceICMP(ICMPImplementation):
    """The correct, interoperable implementation built on the framework."""

    def __init__(self, clock: Clock | None = None) -> None:
        self.clock = clock or Clock()

    @staticmethod
    def _wrap(original: IPv4Header, responder_address: int, message_bytes: bytes) -> bytes:
        packet = make_ip_packet(
            src=responder_address,
            dst=original.src,
            protocol=PROTO_ICMP,
            data=message_bytes,
        )
        return packet.pack()

    def echo_reply(self, request: IPv4Header, responder_address: int) -> bytes | None:
        try:
            echo = icmp.ICMPHeader.unpack(request.data)
        except ValueError:
            return None
        if echo.type != icmp.ECHO or not echo.checksum_ok():
            return None
        reply = icmp.make_echo_reply(echo)
        return self._wrap(request, responder_address, reply.pack())

    def destination_unreachable(
        self, original: IPv4Header, code: int, responder_address: int
    ) -> bytes | None:
        message = icmp.make_dest_unreachable(code, original)
        return self._wrap(original, responder_address, message.pack())

    def time_exceeded(self, original: IPv4Header, responder_address: int) -> bytes | None:
        message = icmp.make_time_exceeded(icmp.TTL_EXCEEDED, original)
        return self._wrap(original, responder_address, message.pack())

    def parameter_problem(
        self, original: IPv4Header, pointer: int, responder_address: int
    ) -> bytes | None:
        message = icmp.make_parameter_problem(pointer, original)
        return self._wrap(original, responder_address, message.pack())

    def source_quench(self, original: IPv4Header, responder_address: int) -> bytes | None:
        message = icmp.make_source_quench(original)
        return self._wrap(original, responder_address, message.pack())

    def redirect(
        self, original: IPv4Header, gateway: int, responder_address: int
    ) -> bytes | None:
        message = icmp.make_redirect(1, gateway, original)  # code 1: host redirect
        return self._wrap(original, responder_address, message.pack())

    def timestamp_reply(self, request: IPv4Header, responder_address: int) -> bytes | None:
        try:
            ts_request = icmp.ICMPTimestampHeader.unpack(request.data)
        except ValueError:
            return None
        if ts_request.type != icmp.TIMESTAMP or not ts_request.checksum_ok():
            return None
        now = self.clock.now_ms()
        reply = icmp.make_timestamp_reply(ts_request, receive=now, transmit=now)
        return self._wrap(request, responder_address, reply.pack())

    def info_reply(self, request: IPv4Header, responder_address: int) -> bytes | None:
        try:
            info = icmp.ICMPHeader.unpack(request.data)
        except ValueError:
            return None
        if info.type != icmp.INFO_REQUEST or not info.checksum_ok():
            return None
        reply = icmp.make_info_reply(info)
        return self._wrap(request, responder_address, reply.pack())
