"""IGMP v1 group members and the commodity-switch model (§6.3).

The paper's IGMP experiment: "our generated code sends a host membership
query to a commodity switch. We verified, using packet captures, that the
switch's response is correct."  The switch here performs IGMP snooping the
way RFC 1112 hosts behave: on a query to the all-hosts group, every member
reports each group it belongs to (we model the report-suppression timer as
already expired, so reports are deterministic).
"""

from __future__ import annotations

from ..framework.igmp import (
    ALL_HOSTS_GROUP,
    HOST_MEMBERSHIP_QUERY,
    IGMPHeader,
    make_report,
)
from ..framework.ip import PROTO_IGMP, IPv4Header, make_ip_packet
from .core import Node


class IGMPSwitch(Node):
    """A switch with attached (modelled) group members.

    ``memberships`` maps member address → set of multicast groups joined.
    Replies are emitted back out the interface the query arrived on, one
    membership report per (member, group), with IP TTL 1 as RFC 1112
    requires for reports.
    """

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.memberships: dict[int, set[int]] = {}
        self.queries_seen: list[IGMPHeader] = []

    def join(self, member_address: int, group: int) -> None:
        self.memberships.setdefault(member_address, set()).add(group)

    def receive(self, data: bytes, interface: str) -> None:
        try:
            packet = IPv4Header.unpack(data)
        except ValueError:
            return
        if packet.protocol != PROTO_IGMP or not packet.checksum_ok():
            return
        try:
            message = IGMPHeader.unpack(packet.data)
        except ValueError:
            return
        if not message.checksum_ok():
            return
        if message.version != 1 or message.type != HOST_MEMBERSHIP_QUERY:
            return
        if packet.dst != ALL_HOSTS_GROUP:
            return  # queries must be addressed to 224.0.0.1
        self.queries_seen.append(message)
        self._send_reports(interface)

    def _send_reports(self, interface: str) -> None:
        for member, groups in sorted(self.memberships.items()):
            for group in sorted(groups):
                report = make_report(group)
                packet = make_ip_packet(
                    src=member,
                    dst=group,  # reports go to the group being reported
                    protocol=PROTO_IGMP,
                    data=report.pack(),
                    ttl=1,
                )
                self.transmit(interface, packet.pack())


class ForwardingIGMPSwitch(IGMPSwitch):
    """An IGMP-aware switch that also floods non-IGMP traffic.

    IGMP datagrams get the snooping behaviour of :class:`IGMPSwitch`
    (queries elicit one report per membership); every other valid IP
    datagram is flooded out every interface except the one it arrived on,
    like a learning-free L2 switch that does not touch TTL.  This is the
    multi-node substrate for scenarios such as "traceroute through an
    IGMP-aware switch": ICMP/UDP traffic crosses the switch unmodified
    while the same device keeps answering membership queries.
    """

    def receive(self, data: bytes, interface: str) -> None:
        try:
            packet = IPv4Header.unpack(data)
        except ValueError:
            return  # malformed datagrams die at the switch
        if packet.protocol == PROTO_IGMP:
            super().receive(data, interface)
            return
        self._flood(data, interface)

    def _flood(self, data: bytes, arrival_interface: str) -> None:
        for candidate in self.os.interfaces:
            if candidate.name != arrival_interface:
                self.transmit(candidate.name, data)
