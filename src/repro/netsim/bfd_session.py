"""A runnable BFD session driven by RFC 5880 §6.8.6 reception rules.

The paper parses the state-management sentences of §6.8.6 ("Reception of
BFD Control Packets") into state-update code.  This module provides the
session object those updates run against, plus a reference `receive_control`
transcription of §6.8.6 so generated update functions can be validated
transition-by-transition against it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..framework.bfd import (
    DIAG_NEIGHBOR_DOWN,
    STATE_ADMIN_DOWN,
    STATE_DOWN,
    STATE_INIT,
    STATE_UP,
    BFDControlHeader,
    BFDStateVariables,
    make_control_packet,
)


@dataclass
class BFDSession:
    """One end of a BFD session: state variables plus packet bookkeeping."""

    state: BFDStateVariables = field(default_factory=BFDStateVariables)
    discarded: list[str] = field(default_factory=list)
    transmitted: list[BFDControlHeader] = field(default_factory=list)
    periodic_transmission_enabled: bool = True

    def send_control(self, poll: bool = False, final: bool = False) -> BFDControlHeader:
        packet = make_control_packet(self.state, poll=poll, final=final)
        self.transmitted.append(packet)
        return packet

    # -- §6.8.6 reference transcription ------------------------------------
    def receive_control(self, packet: BFDControlHeader) -> None:
        """Process a received control packet per RFC 5880 §6.8.6.

        Each numbered step below corresponds to one of the 22 state-
        management sentences analysed in the paper; the generated code is
        checked to produce the same variable deltas.
        """
        variables = self.state

        # Validation prefix of §6.8.6.
        if packet.version != 1:
            return self._discard("version mismatch")
        if packet.length < 24:
            return self._discard("length too short")
        if packet.detect_mult == 0:
            return self._discard("detect mult is zero")
        if packet.multipoint:
            return self._discard("multipoint set")
        if packet.my_discriminator == 0:
            return self._discard("my discriminator zero")
        if packet.your_discriminator == 0 and packet.state not in (
            STATE_DOWN,
            STATE_ADMIN_DOWN,
        ):
            return self._discard("your discriminator zero outside Down/AdminDown")
        if packet.your_discriminator != 0 and packet.your_discriminator != variables.LocalDiscr:
            # "If the Your Discriminator field is nonzero, it MUST be used to
            # select the session ... If no session is found, the packet MUST
            # be discarded."  (the Table 5 co-reference sentence)
            return self._discard("no session with that discriminator")

        # "Set bfd.RemoteDiscr to the value of My Discriminator."
        variables.RemoteDiscr = packet.my_discriminator
        # "Set bfd.RemoteState to the value of the State (Sta) field."
        variables.RemoteSessionState = packet.state
        # "Set bfd.RemoteDemandMode to the value of the Demand (D) bit."
        variables.RemoteDemandMode = packet.demand
        # "Set bfd.RemoteMinRxInterval to the value of Required Min RX Interval."
        variables.RemoteMinRxInterval = packet.required_min_rx_interval

        if variables.SessionState == STATE_ADMIN_DOWN:
            return self._discard("session is AdminDown")

        # The three-state connection machine of §6.8.6.
        if packet.state == STATE_ADMIN_DOWN:
            if variables.SessionState != STATE_DOWN:
                variables.LocalDiag = DIAG_NEIGHBOR_DOWN
                variables.SessionState = STATE_DOWN
        elif variables.SessionState == STATE_DOWN:
            if packet.state == STATE_DOWN:
                variables.SessionState = STATE_INIT
            elif packet.state == STATE_INIT:
                variables.SessionState = STATE_UP
        elif variables.SessionState == STATE_INIT:
            if packet.state in (STATE_INIT, STATE_UP):
                variables.SessionState = STATE_UP
        else:  # SessionState is Up
            if packet.state == STATE_DOWN:
                variables.LocalDiag = DIAG_NEIGHBOR_DOWN
                variables.SessionState = STATE_DOWN

        # Demand-mode sentence (the Table 5 "rephrasing" example): "If
        # bfd.RemoteDemandMode is 1, bfd.SessionState is Up, and
        # bfd.RemoteSessionState is Up, ... the local system MUST cease the
        # periodic transmission of BFD Control packets."
        if (
            variables.RemoteDemandMode == 1
            and variables.SessionState == STATE_UP
            and variables.RemoteSessionState == STATE_UP
        ):
            self.periodic_transmission_enabled = False
        else:
            self.periodic_transmission_enabled = True

    def _discard(self, reason: str) -> None:
        self.discarded.append(reason)


def run_handshake(a: BFDSession, b: BFDSession, rounds: int = 3) -> None:
    """Exchange control packets until both sessions settle (Down→Init→Up)."""
    for _ in range(rounds):
        b.receive_control(a.send_control())
        a.receive_control(b.send_control())
