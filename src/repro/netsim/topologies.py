"""Canned topologies, including the Appendix A course topology.

The paper's test scenarios assume a router that "only recognizes three
subnets, which are 10.0.1.1/24, 192.168.2.1/24, and 172.64.3.1/24" with a
client and servers hanging off them.  :func:`course_topology` builds exactly
that; scenario helpers then perturb it (TTL=1 probes, bad ToS, full buffers,
unknown destinations) per Appendix A.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..framework.addressing import ip_to_int
from .core import Network
from .host import Host
from .icmp_impl import ICMPImplementation
from .router import Router

CLIENT_IP = "10.0.1.100"
SERVER1_IP = "192.168.2.2"
SERVER2_IP = "172.64.3.10"
ROUTER_CLIENT_SIDE = "10.0.1.1"
ROUTER_SERVER1_SIDE = "192.168.2.1"
ROUTER_SERVER2_SIDE = "172.64.3.1"
UNKNOWN_DESTINATION = "8.8.8.8"
SECOND_GATEWAY_IP = "10.0.1.254"  # a second router on the client's subnet


@dataclass
class CourseTopology:
    """The assembled course network with convenient node handles."""

    network: Network
    client: Host
    router: Router
    server1: Host
    server2: Host
    second_gateway: Router

    def run(self) -> int:
        return self.network.run()


def course_topology(
    implementation: ICMPImplementation | None = None,
    require_tos_zero: bool = False,
    buffer_capacity: int = 64,
) -> CourseTopology:
    """Build the three-subnet course topology around ``implementation``."""
    network = Network()

    client = Host("client")
    client.add_interface("eth0", f"{CLIENT_IP}/24")

    router = Router(
        "router",
        implementation=implementation,
        require_tos_zero=require_tos_zero,
        buffer_capacity=buffer_capacity,
    )
    router.add_interface("eth0", f"{ROUTER_CLIENT_SIDE}/24")
    router.add_interface("eth1", f"{ROUTER_SERVER1_SIDE}/24")
    router.add_interface("eth2", f"{ROUTER_SERVER2_SIDE}/24")
    router.add_route("10.0.1.0/24", "eth0")
    router.add_route("192.168.2.0/24", "eth1")
    router.add_route("172.64.3.0/24", "eth2")

    server1 = Host("server1")
    server1.add_interface("eth0", f"{SERVER1_IP}/24")
    server2 = Host("server2")
    server2.add_interface("eth0", f"{SERVER2_IP}/24")

    # A second gateway on the client's subnet: reaching it via the main
    # router triggers the redirect scenario.
    second_gateway = Router("gw2")
    second_gateway.add_interface("eth0", f"{SECOND_GATEWAY_IP}/24")
    second_gateway.add_route("10.0.1.0/24", "eth0")

    for node in (client, router, server1, server2, second_gateway):
        network.add_node(node)

    network.connect("client", "eth0", "router", "eth0")
    network.connect("router", "eth1", "server1", "eth0")
    network.connect("router", "eth2", "server2", "eth0")

    return CourseTopology(
        network=network,
        client=client,
        router=router,
        server1=server1,
        server2=server2,
        second_gateway=second_gateway,
    )


def add_redirect_route(topology: CourseTopology, cidr: str = "203.0.113.0/24") -> str:
    """Route ``cidr`` via the second gateway on the client's own subnet.

    A client packet for that prefix then makes the router issue a redirect
    (the next hop is reachable directly by the sender).  Returns an address
    inside the prefix to probe.
    """
    topology.router.add_route(cidr, "eth0", next_hop=SECOND_GATEWAY_IP)
    network_part = cidr.split("/")[0].rsplit(".", 1)[0]
    return f"{network_part}.7"


def client_ip() -> int:
    return ip_to_int(CLIENT_IP)


def server1_ip() -> int:
    return ip_to_int(SERVER1_IP)


def unknown_ip() -> int:
    return ip_to_int(UNKNOWN_DESTINATION)
