"""A Linux-faithful `traceroute` for the simulator.

Classic UDP traceroute: probes with increasing TTL to high, unlistened
ports.  Each hop answers with ICMP time exceeded; the destination answers
with ICMP port unreachable.  The tool validates that the quoted datagram
inside each ICMP error matches the probe it sent (the "Internet Header + 64
bits of Original Data Datagram" the RFC requires), so a router that quotes
the wrong bytes fails traceroute even if the ICMP envelope is fine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..framework import icmp
from ..framework.ip import PROTO_ICMP, PROTO_UDP, IPv4Header, make_ip_packet
from ..framework.udp import UDPHeader, make_udp
from .host import Host

BASE_PORT = 33434  # traceroute's traditional first destination port
MAX_TTL = 30


@dataclass
class Hop:
    """One hop in the discovered path."""

    ttl: int
    address: int | None  # None when the probe went unanswered
    reached_destination: bool = False


@dataclass
class TracerouteResult:
    hops: list[Hop] = field(default_factory=list)
    rejections: list[str] = field(default_factory=list)

    @property
    def destination_reached(self) -> bool:
        return bool(self.hops) and self.hops[-1].reached_destination

    def path(self) -> list[int | None]:
        return [hop.address for hop in self.hops]


class Traceroute:
    """Runs UDP traceroute from ``host`` toward a destination."""

    def __init__(self, host: Host, src_port: int = 51234) -> None:
        self.host = host
        self.src_port = src_port
        self.result = TracerouteResult()
        self._last_probe: bytes | None = None
        self._answer: tuple[int, bool] | None = None
        host.add_listener(self._on_packet)

    def run(self, destination: int, max_ttl: int = MAX_TTL) -> TracerouteResult:
        for ttl in range(1, max_ttl + 1):
            self._answer = None
            probe = self._make_probe(destination, ttl)
            self._last_probe = probe.pack()
            self.host.send(probe)
            assert self.host.network is not None
            self.host.network.run()
            if self._answer is None:
                self.result.hops.append(Hop(ttl=ttl, address=None))
                continue
            address, reached = self._answer
            self.result.hops.append(
                Hop(ttl=ttl, address=address, reached_destination=reached)
            )
            if reached:
                break
        return self.result

    def _make_probe(self, destination: int, ttl: int) -> IPv4Header:
        source = self.host.os.interfaces[0].address
        datagram = make_udp(
            src_ip=source,
            dst_ip=destination,
            src_port=self.src_port,
            dst_port=BASE_PORT + ttl - 1,
            data=b"SUPERMAN",  # 8 bytes, the traditional probe filler
        )
        return make_ip_packet(
            src=source, dst=destination, protocol=PROTO_UDP, data=datagram.pack(), ttl=ttl
        )

    # -- receiving ------------------------------------------------------------
    def _on_packet(self, packet: IPv4Header, _interface: str) -> None:
        if packet.protocol != PROTO_ICMP:
            return
        try:
            message = icmp.ICMPHeader.unpack(packet.data)
        except ValueError:
            self.result.rejections.append("truncated ICMP message")
            return
        if message.type == icmp.TIME_EXCEEDED:
            reached = False
        elif message.type == icmp.DEST_UNREACHABLE and message.code == icmp.PORT_UNREACHABLE:
            reached = True
        else:
            return
        if not message.checksum_ok():
            self.result.rejections.append("bad ICMP checksum in error message")
            return
        if not self._quotes_my_probe(message):
            self.result.rejections.append("ICMP error does not quote my probe")
            return
        self._answer = (packet.src, reached)

    def _quotes_my_probe(self, message: icmp.ICMPHeader) -> bool:
        """Check the quoted datagram matches the most recent probe.

        Routers decrement TTL before quoting, so the quoted IP header may
        differ in TTL and checksum; src/dst/protocol and the first 8 UDP
        bytes (the port pair) must match exactly.
        """
        if self._last_probe is None:
            return False
        try:
            quoted = IPv4Header.unpack(message.payload)
            original = IPv4Header.unpack(self._last_probe)
        except ValueError:
            return False
        if (quoted.src, quoted.dst, quoted.protocol) != (
            original.src,
            original.dst,
            original.protocol,
        ):
            return False
        if len(quoted.data) < 8:
            return False
        try:
            quoted_udp = UDPHeader.unpack(quoted.data[:8])
            original_udp = UDPHeader.unpack(original.data)
        except ValueError:
            return False
        return (quoted_udp.src_port, quoted_udp.dst_port) == (
            original_udp.src_port,
            original_udp.dst_port,
        )


def traceroute(host: Host, destination: int, max_ttl: int = MAX_TTL) -> TracerouteResult:
    """Convenience wrapper mirroring the shell command."""
    return Traceroute(host).run(destination, max_ttl=max_ttl)
