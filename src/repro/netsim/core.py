"""Nodes, links, and the event loop of the Mininet-like simulator.

The paper tests generated code "using Mininet": a client, a router, and
servers on several subnets exchange real packets, and tools (`ping`,
`traceroute`, `tcpdump`) judge interoperability.  This module is the
equivalent substrate: nodes hold interfaces, links move raw IP datagrams
between them, and :class:`Network` drives delivery deterministically.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..framework.netdev import Interface, OSServices


@dataclass
class Transmission:
    """A datagram in flight: which node sent it out of which interface."""

    sender: str
    interface: str
    data: bytes


class Node:
    """Base class for simulated devices.

    Subclasses implement :meth:`receive`.  ``transmit`` hands a datagram to
    the network; every transmitted and received packet is also appended to
    per-node capture lists so tests can run the tcpdump verifier over them
    (the paper's "captured both sender and receiver packets").
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.os = OSServices()
        self.network: "Network | None" = None
        self.sent_capture: list[bytes] = []
        self.received_capture: list[bytes] = []

    def add_interface(self, name: str, cidr: str) -> Interface:
        interface = Interface.from_cidr(name, cidr)
        self.os.interfaces.append(interface)
        return interface

    def interface(self, name: str) -> Interface:
        for candidate in self.os.interfaces:
            if candidate.name == name:
                return candidate
        raise KeyError(f"{self.name} has no interface {name!r}")

    def transmit(self, interface: str, data: bytes) -> None:
        if self.network is None:
            raise RuntimeError(f"{self.name} is not attached to a network")
        self.sent_capture.append(data)
        self.network.enqueue(Transmission(self.name, interface, data))

    def receive(self, data: bytes, interface: str) -> None:
        raise NotImplementedError


@dataclass(frozen=True)
class Link:
    """A point-to-point wire between two (node, interface) endpoints."""

    node_a: str
    iface_a: str
    node_b: str
    iface_b: str

    def other_end(self, node: str, iface: str) -> tuple[str, str] | None:
        if (node, iface) == (self.node_a, self.iface_a):
            return (self.node_b, self.iface_b)
        if (node, iface) == (self.node_b, self.iface_b):
            return (self.node_a, self.iface_a)
        return None


@dataclass
class Network:
    """The topology plus a synchronous delivery queue.

    ``run`` processes transmissions until quiescence; ``max_hops`` bounds
    total deliveries so a misconfigured topology cannot loop forever.
    """

    nodes: dict[str, Node] = field(default_factory=dict)
    links: list[Link] = field(default_factory=list)
    delivered: int = 0

    def add_node(self, node: Node) -> Node:
        if node.name in self.nodes:
            raise ValueError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node
        node.network = self
        return node

    def connect(self, node_a: str, iface_a: str, node_b: str, iface_b: str) -> None:
        for name, iface in ((node_a, iface_a), (node_b, iface_b)):
            self.nodes[name].interface(iface)  # validates existence
        self.links.append(Link(node_a, iface_a, node_b, iface_b))

    def __post_init__(self) -> None:
        self._queue: deque[Transmission] = deque()

    def enqueue(self, transmission: Transmission) -> None:
        self._queue.append(transmission)

    def _endpoint_for(self, transmission: Transmission) -> tuple[str, str] | None:
        for link in self.links:
            other = link.other_end(transmission.sender, transmission.interface)
            if other is not None:
                return other
        return None

    def run(self, max_hops: int = 10_000) -> int:
        """Deliver queued transmissions until the network is quiet.

        Returns the number of deliveries performed in this call.
        """
        performed = 0
        while self._queue:
            if performed >= max_hops:
                raise RuntimeError(f"delivery did not quiesce within {max_hops} hops")
            transmission = self._queue.popleft()
            endpoint = self._endpoint_for(transmission)
            if endpoint is None:
                continue  # unplugged cable: packet is lost
            node_name, iface_name = endpoint
            receiver = self.nodes[node_name]
            receiver.received_capture.append(transmission.data)
            receiver.receive(transmission.data, iface_name)
            performed += 1
            self.delivered += 1
        return performed
