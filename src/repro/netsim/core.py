"""Nodes, links, and the event loop of the Mininet-like simulator.

The paper tests generated code "using Mininet": a client, a router, and
servers on several subnets exchange real packets, and tools (`ping`,
`traceroute`, `tcpdump`) judge interoperability.  This module is the
equivalent substrate: nodes hold interfaces, links move raw IP datagrams
between them, and :class:`Network` drives delivery deterministically.

Links can carry seeded fault schedules (:class:`LinkFaults`): drop,
duplicate, and delay decisions are drawn from a per-link
``random.Random(seed)``, so a fuzz episode that perturbs delivery replays
byte-identically under the same seed — the substrate the differential
scenario fuzzer (:mod:`repro.fuzz`) leans on.
"""

from __future__ import annotations

import hashlib
import random
from collections import deque
from dataclasses import dataclass, field

from ..framework.netdev import Interface, OSServices


class StepClock:
    """A deterministic, injectable step counter for scenario replay.

    Scenarios that used to rely on implicit ordering (capture-list lengths,
    call sequence) take a ``StepClock`` instead: every observable event is
    stamped with an explicit step number, so an episode replayed under
    reordered or duplicated delivery still produces comparable traces.
    """

    def __init__(self, start: int = 0) -> None:
        self._step = start

    @property
    def step(self) -> int:
        return self._step

    def tick(self, steps: int = 1) -> int:
        if steps < 1:
            raise ValueError("a step clock only moves forward")
        self._step += steps
        return self._step

    def __repr__(self) -> str:
        return f"StepClock(step={self._step})"


@dataclass(eq=False)
class Transmission:
    """A datagram in flight: which node sent it out of which interface.

    ``delayed`` and ``duplicate`` are fault-injection bookkeeping (how many
    times a :class:`LinkFaults` schedule has held the datagram back, and
    whether it is an injected copy); they are deliberately excluded from
    equality — two transmissions are *the same packet* when sender,
    interface, and bytes agree, regardless of what the wire did to them.
    """

    sender: str
    interface: str
    data: bytes
    delayed: int = 0
    duplicate: bool = False

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Transmission):
            return NotImplemented
        return (self.sender, self.interface, self.data) == (
            other.sender, other.interface, other.data
        )

    def __hash__(self) -> int:
        return hash((self.sender, self.interface, self.data))

    def __repr__(self) -> str:
        digest = hashlib.sha1(self.data).hexdigest()[:8]
        flags = ""
        if self.delayed:
            flags += f", delayed x{self.delayed}"
        if self.duplicate:
            flags += ", duplicate"
        return (f"Transmission({self.sender}/{self.interface}, "
                f"{len(self.data)}B, sha1:{digest}{flags})")

    def summary(self) -> dict:
        """A JSON-safe record for fuzz case files and divergence reports."""
        return {
            "sender": self.sender,
            "interface": self.interface,
            "length": len(self.data),
            "sha1": hashlib.sha1(self.data).hexdigest(),
            "hex": self.data.hex(),
        }


class Node:
    """Base class for simulated devices.

    Subclasses implement :meth:`receive`.  ``transmit`` hands a datagram to
    the network; every transmitted and received packet is also appended to
    per-node capture lists so tests can run the tcpdump verifier over them
    (the paper's "captured both sender and receiver packets").
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.os = OSServices()
        self.network: "Network | None" = None
        self.sent_capture: list[bytes] = []
        self.received_capture: list[bytes] = []

    def add_interface(self, name: str, cidr: str) -> Interface:
        interface = Interface.from_cidr(name, cidr)
        self.os.interfaces.append(interface)
        return interface

    def interface(self, name: str) -> Interface:
        for candidate in self.os.interfaces:
            if candidate.name == name:
                return candidate
        raise KeyError(f"{self.name} has no interface {name!r}")

    def transmit(self, interface: str, data: bytes) -> None:
        if self.network is None:
            raise RuntimeError(f"{self.name} is not attached to a network")
        self.sent_capture.append(data)
        self.network.enqueue(Transmission(self.name, interface, data))

    def receive(self, data: bytes, interface: str) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:
        interfaces = ", ".join(str(i) for i in self.os.interfaces) or "no interfaces"
        return f"<{type(self).__name__} {self.name} [{interfaces}]>"


@dataclass(frozen=True)
class Link:
    """A point-to-point wire between two (node, interface) endpoints."""

    node_a: str
    iface_a: str
    node_b: str
    iface_b: str

    def other_end(self, node: str, iface: str) -> tuple[str, str] | None:
        if (node, iface) == (self.node_a, self.iface_a):
            return (self.node_b, self.iface_b)
        if (node, iface) == (self.node_b, self.iface_b):
            return (self.node_a, self.iface_a)
        return None

    def __repr__(self) -> str:
        return (f"Link({self.node_a}/{self.iface_a} <-> "
                f"{self.node_b}/{self.iface_b})")


@dataclass
class LinkFaults:
    """A seeded fault schedule for one link.

    ``drop``, ``duplicate``, and ``delay`` are per-crossing probabilities;
    every decision is drawn from a private ``random.Random(seed)``, so the
    same seed plus the same traffic reproduces the same fault sequence
    exactly.  A delayed datagram is re-queued behind everything currently
    in flight (bounded by ``max_delays`` so the network still quiesces);
    a duplicated datagram enqueues one marked copy that is never
    re-duplicated.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0
    seed: int = 0
    max_delays: int = 3

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "delay"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} probability must be in [0, 1], "
                                 f"got {value}")

    def to_dict(self) -> dict:
        return {"drop": self.drop, "duplicate": self.duplicate,
                "delay": self.delay, "seed": self.seed,
                "max_delays": self.max_delays}


class _FaultState:
    """A :class:`LinkFaults` schedule bound to its private RNG stream."""

    def __init__(self, faults: LinkFaults) -> None:
        self.faults = faults
        self.rng = random.Random(faults.seed)


@dataclass
class Network:
    """The topology plus a synchronous delivery queue.

    ``run`` processes transmissions until quiescence; ``max_hops`` bounds
    total deliveries so a misconfigured topology cannot loop forever.
    Links with an installed :class:`LinkFaults` schedule may drop, delay,
    or duplicate crossings; every fault decision is appended to
    ``fault_log`` so tests can assert determinism under a fixed seed.
    """

    nodes: dict[str, Node] = field(default_factory=dict)
    links: list[Link] = field(default_factory=list)
    delivered: int = 0

    def add_node(self, node: Node) -> Node:
        if node.name in self.nodes:
            raise ValueError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node
        node.network = self
        return node

    def connect(self, node_a: str, iface_a: str, node_b: str, iface_b: str,
                faults: LinkFaults | None = None) -> Link:
        for name, iface in ((node_a, iface_a), (node_b, iface_b)):
            self.nodes[name].interface(iface)  # validates existence
        link = Link(node_a, iface_a, node_b, iface_b)
        self.links.append(link)
        if faults is not None:
            self.install_faults(link, faults)
        return link

    def __post_init__(self) -> None:
        self._queue: deque[Transmission] = deque()
        self._faults: dict[Link, _FaultState] = {}
        self.fault_log: list[str] = []

    def install_faults(self, link: Link, faults: LinkFaults) -> None:
        """Attach (or replace) a seeded fault schedule on ``link``."""
        if link not in self.links:
            raise KeyError(f"{link!r} is not part of this network")
        self._faults[link] = _FaultState(faults)

    def enqueue(self, transmission: Transmission) -> None:
        self._queue.append(transmission)

    def _link_for(self, transmission: Transmission) -> tuple[Link, tuple[str, str]] | None:
        for link in self.links:
            other = link.other_end(transmission.sender, transmission.interface)
            if other is not None:
                return link, other
        return None

    def _endpoint_for(self, transmission: Transmission) -> tuple[str, str] | None:
        found = self._link_for(transmission)
        return found[1] if found is not None else None

    def _apply_faults(self, link: Link, transmission: Transmission) -> bool:
        """Roll the link's fault schedule for one crossing.

        Returns True when the datagram should be delivered now.  Rolls are
        made in a fixed order (drop, delay, duplicate) so the RNG stream —
        and therefore the whole fault sequence — is a pure function of the
        seed and the traffic.
        """
        state = self._faults.get(link)
        if state is None:
            return True
        faults, rng = state.faults, state.rng
        if faults.drop and rng.random() < faults.drop:
            self.fault_log.append(f"drop {transmission!r}")
            return False
        if (faults.delay and transmission.delayed < faults.max_delays
                and rng.random() < faults.delay):
            transmission.delayed += 1
            self.fault_log.append(f"delay {transmission!r}")
            self._queue.append(transmission)
            return False
        if faults.duplicate and not transmission.duplicate \
                and rng.random() < faults.duplicate:
            copy = Transmission(transmission.sender, transmission.interface,
                                transmission.data, duplicate=True)
            self.fault_log.append(f"duplicate {transmission!r}")
            self._queue.append(copy)
        return True

    def run(self, max_hops: int = 10_000) -> int:
        """Deliver queued transmissions until the network is quiet.

        Returns the number of deliveries performed in this call.
        """
        performed = 0
        processed = 0
        while self._queue:
            if processed >= max_hops:
                raise RuntimeError(f"delivery did not quiesce within {max_hops} hops")
            transmission = self._queue.popleft()
            processed += 1
            found = self._link_for(transmission)
            if found is None:
                continue  # unplugged cable: packet is lost
            link, endpoint = found
            if not self._apply_faults(link, transmission):
                continue  # dropped or held back by the fault schedule
            node_name, iface_name = endpoint
            receiver = self.nodes[node_name]
            receiver.received_capture.append(transmission.data)
            receiver.receive(transmission.data, iface_name)
            performed += 1
            self.delivered += 1
        return performed

    def __repr__(self) -> str:
        return (f"<Network {len(self.nodes)} nodes, {len(self.links)} links, "
                f"{len(self._queue)} queued, {self.delivered} delivered>")
