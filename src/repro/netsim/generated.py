"""Scenario wiring for SAGE-generated implementations (§6.2–§6.4).

Every bundled protocol gets a one-call way to run *generated* code inside a
simulator scenario, mirroring how the reference implementations mount:

* :func:`generated_course_topology` — the Appendix A course topology with a
  :class:`~repro.runtime.harness.GeneratedICMP` router (ping/traceroute
  interop, §6.2);
* :func:`igmp_query_scenario` — a host wired to the commodity-switch model,
  transmitting the *generated* membership query (§6.3);
* :func:`generated_ntp_peer` — an :class:`NTPPeer` whose timeout policy is
  the generated Table 11 dispatch (§6.3);
* :class:`GeneratedBFDSession` / :func:`generated_bfd_handshake` — a BFD
  session whose receive path is the generated §6.8.6 reception code, ready
  for :func:`~repro.netsim.bfd_session.run_handshake` against a reference
  peer (§6.4).

The runtime adapters are imported lazily inside each function:
``repro.runtime.harness`` itself imports ``repro.netsim.icmp_impl``, so a
module-level import here would make the package import order matter.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

from ..framework.bfd import BFDControlHeader
from ..framework.igmp import IGMPHeader
from ..framework.ip import PROTO_IGMP, IPv4Header
from .bfd_session import BFDSession
from .core import LinkFaults, Network, StepClock
from .host import Host
from .igmp_switch import IGMPSwitch
from .ntp_peer import NTPPeer
from .topologies import CourseTopology, course_topology


# -- ICMP (§6.2) ---------------------------------------------------------------

def generated_course_topology(unit, backend: str = "python",
                              **topology_kwargs) -> CourseTopology:
    """The course topology with generated ICMP code on the router.

    ``unit`` is an IR :class:`~repro.codegen.ir.Program` (a run's
    ``code_unit``); ``backend`` selects the executable backend ("python"
    or "interp").  Compilation goes through the shared compiled-program
    cache, so building the same topology twice compiles nothing.
    """
    from ..runtime.harness import GeneratedICMP  # lazy: see module docstring

    implementation = GeneratedICMP.from_unit(unit, backend=backend)
    return course_topology(implementation=implementation, **topology_kwargs)


# -- IGMP (§6.3) ---------------------------------------------------------------

@dataclass
class IGMPQueryScenario:
    """A querier host wired to the commodity-switch model.

    Observation is explicit, not positional: an injectable
    :class:`~repro.netsim.core.StepClock` stamps every query with a step
    number and an owned capture cursor accounts for the switch's emissions
    since *this scenario's* last query — so repeated queries, duplicated
    deliveries, and fault-reordered runs replay deterministically instead
    of depending on whatever happened to be in the capture list when
    ``run_query`` sampled its length.
    """

    network: Network
    sender: Host
    switch: IGMPSwitch
    implementation: object  # GeneratedIGMP
    clock: StepClock = dataclass_field(default_factory=StepClock)
    query_log: list[tuple[int, int]] = dataclass_field(default_factory=list)
    _capture_cursor: int = 0

    def run_query(self) -> list[IGMPHeader]:
        """Transmit the generated query; return the reports it elicited."""
        query = self.implementation.query_datagram(
            self.sender.interface("eth0").address
        )
        if query is None:
            return []
        step = self.clock.tick()
        cursor = self._capture_cursor
        self.sender.send(query)
        self.network.run()
        reports = [
            IGMPHeader.unpack(IPv4Header.unpack(raw).data)
            for raw in self.switch.sent_capture[cursor:]
        ]
        self._capture_cursor = len(self.switch.sent_capture)
        self.query_log.append((step, len(reports)))
        return reports


def igmp_query_scenario(unit, backend: str = "python",
                        memberships: list[tuple[int, int]] = (),
                        clock: StepClock | None = None,
                        faults: LinkFaults | None = None,
                        ) -> IGMPQueryScenario:
    """The §6.3 experiment: generated query code against the switch model.

    ``memberships`` is a list of (member address, group) pairs joined on
    the switch before any query runs.  ``clock`` injects the scenario's
    step counter (a fresh one by default); ``faults`` installs a seeded
    drop/delay/duplicate schedule on the querier-switch link.
    """
    from ..runtime.harness import GeneratedIGMP  # lazy: see module docstring

    network = Network()
    sender = Host("querier")
    sender.add_interface("eth0", "10.0.5.2/24")
    switch = IGMPSwitch("switch")
    switch.add_interface("eth0", "10.0.5.1/24")
    network.add_node(sender)
    network.add_node(switch)
    network.connect("querier", "eth0", "switch", "eth0", faults=faults)
    for member, group in memberships:
        switch.join(member, group)
    implementation = GeneratedIGMP.from_unit(unit, backend=backend)
    return IGMPQueryScenario(network=network, sender=sender, switch=switch,
                             implementation=implementation,
                             clock=clock or StepClock())


# -- NTP (§6.3) ----------------------------------------------------------------

def generated_ntp_peer(unit, local_address: int, remote_address: int,
                       backend: str = "python", **peer_kwargs) -> NTPPeer:
    """An NTP peer whose timeout policy is the generated Table 11 dispatch."""
    from ..runtime.state_runtime import GeneratedNTP  # lazy: see module docstring

    implementation = GeneratedNTP.from_unit(unit, backend=backend)
    return NTPPeer(
        local_address=local_address, remote_address=remote_address,
        timeout_predicate=implementation.timeout_predicate, **peer_kwargs,
    )


# -- BFD (§6.4) ----------------------------------------------------------------

class GeneratedBFDSession(BFDSession):
    """A BFD session whose receive path is the generated reception code.

    Drop-in for the reference :class:`BFDSession` in any scenario
    (handshakes, teardown, demand mode): ``send_control`` is inherited
    framework behaviour, ``receive_control`` runs the generated §6.8.6
    code against this session's state variables.
    """

    def __init__(self, implementation, session_exists: bool = True,
                 clock: StepClock | None = None) -> None:
        super().__init__()
        self.implementation = implementation
        self.session_exists = session_exists
        # Injectable step counter: every processed packet lands in
        # ``trajectory`` under an explicit step number, so fuzz episodes
        # replayed under reordered delivery compare snapshots by step
        # rather than by list position.
        self.clock = clock or StepClock()
        self.trajectory: list[tuple[int, dict]] = []

    @classmethod
    def from_unit(cls, unit, backend: str = "python",
                  session_exists: bool = True,
                  clock: StepClock | None = None) -> "GeneratedBFDSession":
        from ..runtime.state_runtime import GeneratedBFD  # lazy: see module docstring

        return cls(GeneratedBFD.from_unit(unit, backend=backend),
                   session_exists=session_exists, clock=clock)

    def receive_control(self, packet: BFDControlHeader) -> None:
        context = self.implementation.receive_control(
            self.state, packet, session_exists=self.session_exists
        )
        step = self.clock.tick()
        if context.discarded_reason is not None:
            # The reference session returns early on discard, leaving the
            # transmission policy untouched — a discarded packet must not
            # re-enable periodic transmission ceased by demand mode.
            self.discarded.append(context.discarded_reason)
            self.trajectory.append((step, self.state.snapshot()))
            return
        self.periodic_transmission_enabled = not context.transmission_ceased
        self.trajectory.append((step, self.state.snapshot()))


def generated_bfd_handshake(unit, backend: str = "python",
                            rounds: int = 3) -> tuple[GeneratedBFDSession, BFDSession]:
    """A generated-side session brought up against a reference peer."""
    from .bfd_session import run_handshake

    generated = GeneratedBFDSession.from_unit(unit, backend=backend)
    generated.state.LocalDiscr = 1
    reference = BFDSession()
    reference.state.LocalDiscr = 2
    run_handshake(generated, reference, rounds=rounds)
    return generated, reference
