"""End hosts: send datagrams via a default gateway, deliver to listeners."""

from __future__ import annotations

from typing import Callable

from ..framework import icmp
from ..framework.ip import PROTO_ICMP, PROTO_UDP, IPv4Header
from ..framework.udp import UDPHeader
from .core import Node
from .icmp_impl import ICMPImplementation, ReferenceICMP

Listener = Callable[[IPv4Header, str], None]


class Host(Node):
    """A host with one interface, a default gateway, and protocol listeners.

    Tools (ping, traceroute, NTP peers, IGMP members) register listeners;
    every valid received datagram is fanned out to all of them.  Datagrams
    rejected before delivery (malformed, bad IP checksum, wrong length) are
    recorded in ``dropped`` — the simulator's version of "dropped by kernel".

    Like a Linux host, the "kernel" answers echo/timestamp/info requests and
    sends port unreachable for UDP datagrams nobody listens on; both behaviours
    route through the pluggable ICMP implementation so a host can also run
    SAGE-generated code.
    """

    def __init__(self, name: str, implementation: ICMPImplementation | None = None,
                 kernel_responder: bool = True) -> None:
        super().__init__(name)
        self.listeners: list[Listener] = []
        self.dropped: list[tuple[bytes, str]] = []
        self.implementation = implementation or ReferenceICMP(self.os.clock)
        self.kernel_responder = kernel_responder
        self.udp_listeners: set[int] = set()

    def add_listener(self, listener: Listener) -> None:
        self.listeners.append(listener)

    def send(self, packet: IPv4Header | bytes, interface: str | None = None) -> None:
        """Transmit a datagram out of ``interface`` (default: only interface)."""
        if interface is None:
            if len(self.os.interfaces) != 1:
                raise ValueError(f"{self.name}: interface must be named explicitly")
            interface = self.os.interfaces[0].name
        data = packet if isinstance(packet, bytes) else packet.pack()
        self.transmit(interface, data)

    def receive(self, data: bytes, interface: str) -> None:
        try:
            packet = IPv4Header.unpack(data)
        except ValueError:
            self.dropped.append((data, "malformed"))
            return
        if not packet.checksum_ok():
            self.dropped.append((data, "bad ip checksum"))
            return
        if packet.total_length != len(data):
            self.dropped.append((data, "length mismatch"))
            return
        is_multicast = packet.dst >= 0xE0000000
        if packet.dst not in self.os.own_addresses() and not is_multicast:
            # Linux drops unicast datagrams not addressed to the host.
            self.dropped.append((data, "not addressed to this host"))
            return
        for listener in list(self.listeners):
            listener(packet, interface)
        if self.kernel_responder and packet.dst in self.os.own_addresses():
            self._kernel_respond(packet, interface)

    def _kernel_respond(self, packet: IPv4Header, interface: str) -> None:
        responder = self.interface(interface).address
        reply: bytes | None = None
        if packet.protocol == PROTO_ICMP and packet.data[:1]:
            message_type = packet.data[0]
            if message_type == icmp.ECHO:
                reply = self.implementation.echo_reply(packet, responder)
            elif message_type == icmp.TIMESTAMP:
                reply = self.implementation.timestamp_reply(packet, responder)
            elif message_type == icmp.INFO_REQUEST:
                reply = self.implementation.info_reply(packet, responder)
        elif packet.protocol == PROTO_UDP:
            try:
                datagram = UDPHeader.unpack(packet.data)
            except ValueError:
                return
            if datagram.dst_port not in self.udp_listeners:
                reply = self.implementation.destination_unreachable(
                    packet, icmp.PORT_UNREACHABLE, responder
                )
        if reply is not None:
            self.transmit(interface, reply)
