"""The simulated router: forwarding plus ICMP message generation.

Mirrors the course router of §2.1 and the test scenarios of Appendix A:
TTL expiry → time exceeded; no route → destination unreachable; unsupported
type-of-service → parameter problem; full outbound buffer → source quench;
next hop back out the arrival subnet → redirect; echo/timestamp/info requests
addressed to the router → the corresponding replies.  All ICMP construction
is delegated to a pluggable :class:`~repro.netsim.icmp_impl.ICMPImplementation`.
"""

from __future__ import annotations

from ..framework import icmp
from ..framework.ip import PROTO_ICMP, PROTO_UDP, IPv4Header, make_ip_packet
from ..framework.udp import UDPHeader
from .core import Node
from .icmp_impl import ICMPImplementation, ReferenceICMP
from .routing import RoutingTable


class Router(Node):
    """A router with an attached ICMP implementation under test."""

    def __init__(
        self,
        name: str,
        implementation: ICMPImplementation | None = None,
        require_tos_zero: bool = False,
        buffer_capacity: int = 64,
    ) -> None:
        super().__init__(name)
        self.routes = RoutingTable()
        self.implementation = implementation or ReferenceICMP(self.os.clock)
        self.require_tos_zero = require_tos_zero
        self.buffer_capacity = buffer_capacity
        self.udp_listeners: set[int] = set()

    # -- configuration -----------------------------------------------------
    def add_route(self, cidr: str, interface: str, next_hop: str | int = 0) -> None:
        self.routes.add(cidr, interface, next_hop)

    def set_implementation(self, implementation: ICMPImplementation) -> None:
        self.implementation = implementation

    # -- datapath ------------------------------------------------------------
    def receive(self, data: bytes, interface: str) -> None:
        try:
            packet = IPv4Header.unpack(data)
        except ValueError:
            return  # malformed datagram: silently dropped, like a kernel
        if not packet.checksum_ok():
            return  # bad IP checksum: dropped by the "kernel"
        if packet.total_length != len(data):
            return

        if packet.dst in self.os.own_addresses():
            self._deliver_locally(packet, interface)
            return
        self._forward(packet, interface)

    # -- local delivery ------------------------------------------------------
    def _deliver_locally(self, packet: IPv4Header, interface: str) -> None:
        responder = self.interface(interface).address
        if packet.protocol == PROTO_ICMP:
            self._respond_icmp(packet, responder, interface)
        elif packet.protocol == PROTO_UDP:
            self._respond_udp(packet, responder, interface)

    def _respond_icmp(self, packet: IPv4Header, responder: int, interface: str) -> None:
        if len(packet.data) < 1:
            return
        message_type = packet.data[0]
        reply: bytes | None = None
        if message_type == icmp.ECHO:
            reply = self.implementation.echo_reply(packet, responder)
        elif message_type == icmp.TIMESTAMP:
            reply = self.implementation.timestamp_reply(packet, responder)
        elif message_type == icmp.INFO_REQUEST:
            reply = self.implementation.info_reply(packet, responder)
        if reply is not None:
            self.transmit(interface, reply)

    def _respond_udp(self, packet: IPv4Header, responder: int, interface: str) -> None:
        try:
            datagram = UDPHeader.unpack(packet.data)
        except ValueError:
            return
        if datagram.dst_port in self.udp_listeners:
            return  # an application consumed it
        # No listener: port unreachable (this is what terminates traceroute).
        reply = self.implementation.destination_unreachable(
            packet, icmp.PORT_UNREACHABLE, responder
        )
        if reply is not None:
            self.transmit(interface, reply)

    # -- forwarding ------------------------------------------------------------
    def _forward(self, packet: IPv4Header, arrival_interface: str) -> None:
        responder = self.interface(arrival_interface).address

        if self.require_tos_zero and packet.tos != 0:
            # Appendix A parameter-problem scenario: the router only handles
            # type-of-service zero; the pointer indexes the ToS octet (1).
            reply = self.implementation.parameter_problem(packet, 1, responder)
            if reply is not None:
                self.transmit(arrival_interface, reply)
            return

        route = self.routes.lookup(packet.dst)
        if route is None:
            reply = self.implementation.destination_unreachable(
                packet, icmp.NET_UNREACHABLE, responder
            )
            if reply is not None:
                self.transmit(arrival_interface, reply)
            return

        if packet.ttl <= 1:
            reply = self.implementation.time_exceeded(packet, responder)
            if reply is not None:
                self.transmit(arrival_interface, reply)
            return

        arrival_subnet = self.interface(arrival_interface).subnet
        gateway = route.next_hop
        if gateway and arrival_subnet.contains(gateway):
            # Next hop lies on the sender's own subnet: tell it to go direct.
            reply = self.implementation.redirect(packet, gateway, responder)
            if reply is not None:
                self.transmit(arrival_interface, reply)
            return

        buffer_pool = self.os.buffer_for(route.interface, self.buffer_capacity)
        forwarded = self._decrement_ttl(packet)
        if not buffer_pool.enqueue(forwarded):
            # Outbound buffer full: discard and quench the source.
            reply = self.implementation.source_quench(packet, responder)
            if reply is not None:
                self.transmit(arrival_interface, reply)
            return
        for queued in buffer_pool.drain():
            self.transmit(route.interface, queued)

    @staticmethod
    def _decrement_ttl(packet: IPv4Header) -> bytes:
        forwarded = packet.copy()
        forwarded.ttl -= 1
        forwarded.header_checksum = 0
        forwarded.finalize()
        return forwarded.pack()


def fill_buffer(router: Router, interface: str) -> None:
    """Test helper: saturate an outbound buffer to force source quench."""
    pool = router.os.buffer_for(interface, router.buffer_capacity)
    filler = make_ip_packet(src=0x0A000001, dst=0x0A000002, protocol=PROTO_ICMP, data=b"")
    while not pool.full:
        pool.enqueue(filler.pack())
