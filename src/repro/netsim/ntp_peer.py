"""NTP peers with the RFC 1059 timeout procedure (§6.3 and Table 11).

The paper's NTP experiment "generated packets for the timeout procedure
containing both NTP and UDP headers."  An :class:`NTPPeer` keeps the peer
variables, ticks its timer, and — exactly as the Table 11 sentence says —
calls the timeout procedure in client and symmetric modes when the peer
timer reaches the timer threshold.  The dispatch predicate is pluggable so
SAGE-generated code can replace the reference one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..framework.ntp import (
    MODE_CLIENT,
    NTP_PORT,
    NTPHeader,
    PeerVariables,
    encapsulate,
)
from ..framework.ip import PROTO_UDP, make_ip_packet

TimeoutPredicate = Callable[[PeerVariables], bool]


def reference_timeout_predicate(peer: PeerVariables) -> bool:
    """Reference reading of the Table 11 sentence.

    "The timeout procedure is called in client mode and symmetric mode when
    the peer timer reaches the value of the timer threshold variable" — with
    the RFC's separate clarification that the mode conjunction is an OR.
    """
    if peer.timer < peer.threshold:
        return False
    return peer.in_client_mode() or peer.in_symmetric_mode()


@dataclass
class NTPPeer:
    """One NTP association with its peer variables and an address pair."""

    local_address: int
    remote_address: int
    peer: PeerVariables = field(default_factory=lambda: PeerVariables(mode=MODE_CLIENT))
    timeout_predicate: TimeoutPredicate = reference_timeout_predicate
    emitted_packets: list[bytes] = field(default_factory=list)

    def tick(self, seconds: int = 1) -> bytes | None:
        """Advance the peer timer; fire the timeout procedure when due.

        Returns the raw IP packet (NTP in UDP in IP) emitted on timeout,
        or None when no timeout fired.
        """
        self.peer.tick(seconds)
        if not self.timeout_predicate(self.peer):
            return None
        message = self.peer.timeout_procedure()
        packet = self._encapsulate(message)
        self.emitted_packets.append(packet)
        return packet

    def _encapsulate(self, message: NTPHeader) -> bytes:
        datagram = encapsulate(
            message, self.local_address, self.remote_address, NTP_PORT, NTP_PORT
        )
        return make_ip_packet(
            src=self.local_address,
            dst=self.remote_address,
            protocol=PROTO_UDP,
            data=datagram.pack(),
        ).pack()

    def run_for(self, seconds: int) -> list[bytes]:
        """Tick second-by-second; collect every packet emitted."""
        emitted = []
        for _ in range(seconds):
            packet = self.tick()
            if packet is not None:
                emitted.append(packet)
        return emitted
