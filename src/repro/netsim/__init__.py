"""A Mininet-like network simulator for interoperability testing.

Hosts, routers, and links move raw IPv4 datagrams; Linux-faithful `ping`
and `traceroute` tools judge implementations exactly the way the paper's
end-to-end evaluation (§6.2) and student study (§2.1) do.  IGMP switches,
BFD sessions, and NTP peers cover the generality experiments (§6.3-6.4).
"""

from .bfd_session import BFDSession, run_handshake
from .core import Link, LinkFaults, Network, Node, StepClock, Transmission
from .generated import (
    GeneratedBFDSession,
    IGMPQueryScenario,
    generated_bfd_handshake,
    generated_course_topology,
    generated_ntp_peer,
    igmp_query_scenario,
)
from .host import Host
from .icmp_impl import ICMPImplementation, ReferenceICMP
from .igmp_switch import ForwardingIGMPSwitch, IGMPSwitch
from .ntp_peer import NTPPeer, reference_timeout_predicate
from .ping import Ping, PingResult, ping
from .router import Router, fill_buffer
from .routing import Route, RoutingTable
from .topologies import CourseTopology, add_redirect_route, course_topology
from .traceroute import Traceroute, TracerouteResult, traceroute

__all__ = [
    "BFDSession",
    "CourseTopology",
    "ForwardingIGMPSwitch",
    "GeneratedBFDSession",
    "Host",
    "ICMPImplementation",
    "IGMPQueryScenario",
    "IGMPSwitch",
    "Link",
    "LinkFaults",
    "NTPPeer",
    "Network",
    "Node",
    "Ping",
    "PingResult",
    "ReferenceICMP",
    "Route",
    "Router",
    "RoutingTable",
    "StepClock",
    "Traceroute",
    "TracerouteResult",
    "Transmission",
    "add_redirect_route",
    "course_topology",
    "fill_buffer",
    "generated_bfd_handshake",
    "generated_course_topology",
    "generated_ntp_peer",
    "igmp_query_scenario",
    "ping",
    "reference_timeout_predicate",
    "run_handshake",
    "traceroute",
]
