"""Longest-prefix-match routing table for the simulator."""

from __future__ import annotations

from dataclasses import dataclass

from ..framework.addressing import Subnet, ip_to_int


@dataclass(frozen=True)
class Route:
    """One route: destination subnet, next hop (0 = directly connected),
    and the interface name to send out of."""

    subnet: Subnet
    next_hop: int
    interface: str

    @property
    def directly_connected(self) -> bool:
        return self.next_hop == 0


class RoutingTable:
    """A list of routes searched by longest prefix match."""

    def __init__(self) -> None:
        self._routes: list[Route] = []

    def add(self, cidr: str, interface: str, next_hop: str | int = 0) -> None:
        if isinstance(next_hop, str):
            next_hop = ip_to_int(next_hop) if next_hop else 0
        self._routes.append(
            Route(subnet=Subnet.parse(cidr), next_hop=next_hop, interface=interface)
        )

    def lookup(self, destination: int) -> Route | None:
        """Return the most specific matching route, or None."""
        best: Route | None = None
        for route in self._routes:
            if not route.subnet.contains(destination):
                continue
            if best is None or route.subnet.prefix_len > best.subnet.prefix_len:
                best = route
        return best

    def routes(self) -> list[Route]:
        return list(self._routes)

    def __len__(self) -> int:
        return len(self._routes)
