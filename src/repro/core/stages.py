"""The three pipeline stages, as independently usable objects (Figure 1).

The paper's pipeline is parse → disambiguate → generate.  This module gives
each box its own object with an explicit contract, so stages can be driven,
tested, swapped, and cached independently of the :class:`~repro.core.engine.
SageEngine` that composes them:

* :class:`ParseStage` — NP-chunk + CCG-parse one sentence, with the §4.1
  subject-supply retry and an optional content-addressed cache (keyed on
  sentence text + the lexicon/chunker fingerprint, so a cache shared across
  engines and modes never crosses grammars);
* :class:`WinnowStage` — apply the §4.2 check suite to the parsed logical
  forms, producing a :class:`~repro.disambiguation.winnow.WinnowTrace`;
* :class:`GenerateStage` — resolve the sentence context (Table 4), route
  the surviving logical form through the handler registry, and assemble the
  per-sentence ops into the typed codegen IR (a
  :class:`~repro.codegen.ir.Program` of per-message builder functions).

Stage objects are stateless apart from their substrate (parser, suite,
handlers): calling ``run`` twice with the same input yields the same output,
which is what makes the parse cache and the process-pool fan-out in
``engine.py`` safe.
"""

from __future__ import annotations

from dataclasses import dataclass
from hashlib import sha1
import re

from ..ccg.chart import CCGChartParser, ParseResult
from ..parsing import backend_id, create_parser
from ..ccg.semantics import Sem, signature
from ..codegen.context import (
    AmbiguousReference,
    ContextResolver,
    SentenceContext,
    UnknownReference,
)
from ..codegen.generator import assemble_message_program
from ..codegen.handlers import HandlerRegistry, HandlerResult, NonActionable
from ..codegen.ir import Program, SentenceCode
from ..codegen.ops import SetField, Value
from ..disambiguation.checks import CheckSuite
from ..disambiguation.profile import PROFILE as WINNOW_PROFILE
from ..disambiguation.winnow import WinnowTrace, winnow
from ..nlp.chunker import NounPhraseChunker
from ..nlp.tokenizer import KIND_NOUN_PHRASE, Token
from ..rfc.corpus import SpecSentence
from ..rfc.registry import ParseCache

_ROLE_MARKERS = {
    "sender": "sender",
    "receiver": "receiver",
    "echoer": "receiver",
    "replier": "receiver",
    "replying": "receiver",
}

# Word-boundary patterns: a marker must match a whole word, not a substring
# of an unrelated token ("sender" must not fire inside "senders" or
# "sendering"-style words).
_ROLE_PATTERNS = tuple(
    (re.compile(rf"\b{re.escape(marker)}\b"), role)
    for marker, role in _ROLE_MARKERS.items()
)


def role_of(text: str) -> str:
    """The sender/receiver role a sentence's wording implies (Table 4)."""
    lowered = text.lower()
    for pattern, role in _ROLE_PATTERNS:
        if pattern.search(lowered):
            return role
    return ""


@dataclass
class ParsedSentence:
    """The parse stage's output for one sentence."""

    spec: SpecSentence
    result: ParseResult
    subject_supplied: bool = False
    from_cache: bool = False

    @property
    def logical_forms(self) -> list[Sem]:
        return self.result.logical_forms

    @property
    def pruned(self) -> bool:
        """True when the backend's cell budget truncated this parse."""
        return self.result.pruned


class ParseStage:
    """NP-chunk + CCG-parse, with subject-supply retry and caching.

    The stage runs over any :class:`~repro.parsing.backend.ParserBackend`:
    pass a parser instance positionally, or select a registered backend by
    name with ``backend=`` (``ParseStage(backend="reference")``), in which
    case the default registry's memoized lexicon substrate supplies the
    grammar.

    The cache key is ``(backend_id:fingerprint, sentence_text, field)``:
    the backend id keeps different parser implementations' entries apart
    (never cross-served), the fingerprint hashes the lexicon entries and
    the chunker's dictionary and configuration, and ``field`` participates
    because the §4.1 retry splices the header-field name into the token
    stream.  Cached values are the ``(ParseResult, subject_supplied)``
    pair, stored as shared read-only objects.

    The cache is polymorphic: the registry hands this stage a plain
    in-memory :class:`~repro.rfc.registry.ParseCache`, or — when a cache
    directory is configured — a :class:`~repro.cache.persistent.
    PersistentParseCache` whose ``put`` also publishes the entry (the
    materialized forest result with full provenance, ``schema:1b``-encoded)
    to the shared on-disk store, and whose ``get`` falls through to it.
    The stage itself is oblivious; the same keys address both layers.
    """

    def __init__(self, parser: CCGChartParser | None = None,
                 chunker: NounPhraseChunker | None = None,
                 cache: ParseCache | None = None, *,
                 backend: str | None = None) -> None:
        if parser is None:
            from ..rfc.registry import default_registry

            registry = default_registry()
            parser = registry.parser(backend=backend)
            if chunker is None:
                chunker = registry.chunker()
        elif backend is not None:
            parser = create_parser(backend, parser.lexicon)
        if chunker is None:
            from ..rfc.registry import default_registry

            chunker = default_registry().chunker()
        self.parser = parser
        self._chunker = chunker
        self.cache = cache
        self._chunker_fingerprint: str | None = None

    @property
    def chunker(self) -> NounPhraseChunker:
        return self._chunker

    @chunker.setter
    def chunker(self, chunker: NounPhraseChunker) -> None:
        self._chunker = chunker
        self._chunker_fingerprint = None  # new token stream, new cache keys

    def fingerprint(self) -> str:
        """The combined backend + lexicon + chunker content identity.

        The backend id comes first: two backends never share cache
        entries, even over identical grammars (their ``ParseResult``
        metadata differs), and a backend swap is automatically a cache
        miss.  The lexicon part is re-read every call —
        ``Lexicon.fingerprint`` is self-invalidating on mutation, so
        entries added after construction move this stage to fresh cache
        keys instead of serving stale-grammar parses.  The chunker part is
        hashed once: dictionary and config objects are documented
        read-only after construction.
        """
        if self._chunker_fingerprint is None:
            self._chunker_fingerprint = self.chunker.fingerprint()
        return (backend_id(self.parser) + ":"
                + self.parser.lexicon.fingerprint() + ":"
                + self._chunker_fingerprint)

    def substrate_fingerprint(self) -> str:
        """The grammar-only content identity: lexicon + chunker, no backend.

        The winnow-result cache keys on this instead of ``fingerprint()``:
        winnowing consumes logical forms, which every backend over the same
        grammar is gated to produce identically (the parity suite), so a
        backend swap must *hit* the winnow cache even though it misses the
        parse cache.
        """
        if self._chunker_fingerprint is None:
            self._chunker_fingerprint = self.chunker.fingerprint()
        return (self.parser.lexicon.fingerprint() + ":"
                + self._chunker_fingerprint)

    def cache_key(self, spec: SpecSentence) -> tuple:
        return (self.fingerprint(), spec.text, spec.field)

    def run(self, spec: SpecSentence) -> ParsedSentence:
        """Parse one sentence, serving repeats from the shared cache."""
        if self.cache is None:
            result, supplied = self._parse(spec)
            return ParsedSentence(spec=spec, result=result,
                                  subject_supplied=supplied)
        key = self.cache_key(spec)
        hit = self.cache.get(key)
        if hit is not None:
            result, supplied = hit
            return ParsedSentence(spec=spec, result=result,
                                  subject_supplied=supplied, from_cache=True)
        result, supplied = self._parse(spec)
        self.cache.put(key, (result, supplied))
        return ParsedSentence(spec=spec, result=result,
                              subject_supplied=supplied)

    def run_batch(self, specs) -> list[ParsedSentence]:
        """Parse a whole corpus (any iterable of specs) through this one
        backend instance, serving repeats from the shared cache.

        The batch surface exists so sweeps, benchmarks, and diagnostics
        drive one warm backend over many sentences without re-resolving
        the stage per sentence; see ``SageEngine.parse_batch`` for the
        engine-level corpus entry point.  Under the ``indexed`` backend a
        batch additionally reuses packed-forest subtrees *across*
        sentences through the span-signature memo (keyed by the lexicon
        fingerprint — RFC prose repeats field clauses and directive
        phrasing heavily), so corpus order parses strictly faster than
        the same sentences parsed in isolation; the reuse is gated to be
        output-invariant.  ``repro.parsing.profile`` counters (span
        reuse, memo hit rates, budget drops) accumulate across the batch
        and are surfaced by ``SageService.parse_diagnostics`` and
        ``python -m repro parse --profile``.
        """
        return [self.run(spec) for spec in specs]

    def parse_text(self, text: str) -> ParseResult:
        """Parse bare text (no spec, no subject-supply retry), cached.

        The ablation experiments count base logical forms over raw
        sentences; routing them through the stage lets them share the
        pipeline's cache under the same fingerprint scheme."""
        spec = SpecSentence(text=text, protocol="", message="", field="",
                            kind="intro")
        return self.run(spec).result

    def _parse(self, spec: SpecSentence) -> tuple[ParseResult, bool]:
        tokens = self.chunker.chunk_text(spec.text)
        result = self.parser.parse(tokens)
        if result.logical_forms or not spec.field:
            return result, False
        for variant in self.supply_variants(spec, tokens):
            retry = self.parser.parse(variant)
            if retry.logical_forms:
                return retry, True
        return result, False

    @staticmethod
    def supply_variants(spec: SpecSentence, tokens: list[Token]):
        """Subject-supply re-parses (§4.1): the field name as subject.

        Yields (1) the sentence with ``<field> is`` prefixed, for verb-led
        fragments like "identifies the octet ..."; (2) the field name
        spliced after the first comma, for conditional fragments like
        "If code = 0, identifies ...".
        """
        field_np = Token(spec.field.replace("_", " "), KIND_NOUN_PHRASE, 0)
        yield [field_np, Token("is", "word", 0)] + tokens
        for index, token in enumerate(tokens):
            if token.text == ",":
                yield tokens[: index + 1] + [field_np] + tokens[index + 1:]
                break


class WinnowStage:
    """Apply the §4.2 disambiguation checks to a sentence's parses.

    With a cache attached, the whole :class:`WinnowTrace` is served by
    content address instead of re-running the checks.  The key is

    ``(suite fingerprint, grammar substrate fingerprint, field, sentence,
    LF-set digest)``

    — every input the trace depends on and nothing else.  The suite part
    self-invalidates when any check's rules change (see
    :meth:`~repro.disambiguation.checks.CheckSuite.fingerprint`); the
    substrate part is the *backend-free* grammar identity from
    :meth:`ParseStage.substrate_fingerprint`, so both parser backends hit
    the same winnow entries; the LF digest hashes the provenance-free
    structural signatures of the parsed forms, guarding against any route
    (resolution rewrites, hand-built forms) that changes the LF set under
    an unchanged sentence.  Like the parse cache, the attached cache may be
    the plain in-memory :class:`~repro.rfc.registry.ParseCache` or the
    persistent variant that falls through to the shared on-disk store.
    """

    def __init__(self, suite: CheckSuite | None = None,
                 cache: ParseCache | None = None,
                 substrate_fingerprint=None) -> None:
        self.suite = suite or CheckSuite.default()
        self.cache = cache
        #: Zero-arg callable giving the grammar substrate fingerprint
        #: (usually ``ParseStage.substrate_fingerprint``); "" when absent.
        self._substrate_fingerprint = substrate_fingerprint
        self._suite_fp: str | None = None
        self._suite_fp_generation = -1

    def suite_fingerprint(self) -> str:
        """The suite's content digest, recomputed only when classes mutate."""
        generation = self.suite.type_check.classes.generation
        if self._suite_fp is None or self._suite_fp_generation != generation:
            self._suite_fp = self.suite.fingerprint()
            self._suite_fp_generation = generation
        return self._suite_fp

    def cache_key(self, parsed: ParsedSentence) -> tuple:
        digest = sha1("\x1e".join(
            signature(form) for form in parsed.logical_forms
        ).encode("utf-8")).hexdigest()
        substrate = (self._substrate_fingerprint()
                     if self._substrate_fingerprint is not None else "")
        return (self.suite_fingerprint(), substrate, parsed.spec.field,
                parsed.spec.text, digest)

    def run(self, parsed: ParsedSentence) -> WinnowTrace:
        if self.cache is None:
            return winnow(parsed.spec.text, parsed.logical_forms, self.suite)
        key = self.cache_key(parsed)
        hit = self.cache.get(key)
        if hit is not None:
            WINNOW_PROFILE.stage_cache_hits += 1
            return hit
        WINNOW_PROFILE.stage_cache_misses += 1
        trace = winnow(parsed.spec.text, parsed.logical_forms, self.suite)
        self.cache.put(key, trace)
        return trace


class GenerateStage:
    """Resolve sentence context and compile a logical form to ops.

    ``generate`` raises the handler layer's exceptions (`NonActionable`,
    `AmbiguousReference`, `UnknownReference`) untranslated — mapping them to
    sentence statuses is the engine's job, keeping this stage reusable for
    single-form experiments like the quickstart example.
    """

    def __init__(self, handlers: HandlerRegistry | None = None,
                 resolver: ContextResolver | None = None) -> None:
        if handlers is not None and resolver is not None:
            raise ValueError(
                "pass either a handler registry (which carries its own "
                "resolver) or a resolver, not both"
            )
        self.handlers = handlers or HandlerRegistry(resolver or ContextResolver())

    def context_for(self, spec: SpecSentence) -> SentenceContext:
        """The Table 4 context dictionary — built once per sentence."""
        return SentenceContext(
            protocol=spec.field_group or spec.protocol,
            message=spec.message,
            field=spec.field,
            role=role_of(spec.text),
        )

    def generate(self, form: Sem, context: SentenceContext) -> HandlerResult:
        return self.handlers.generate(form, context)

    def all_non_actionable(self, forms: list[Sem],
                           context: SentenceContext) -> bool:
        """True when every surviving LF fails code generation outright.

        Such sentences are descriptive prose; their residual LF multiplicity
        is not an ambiguity a human needs to resolve (§5.2's iterative
        discovery tags them @AdvComment).
        """
        for form in forms:
            try:
                self.generate(form, context)
                return False
            except (NonActionable, UnknownReference):
                continue
            except AmbiguousReference:
                return False
        return True

    def assemble(self, corpus, codes_by_section: dict[str, list[SentenceCode]],
                 sender_built: frozenset[str] | None = None) -> Program:
        """Assemble sentence ops into the typed IR: one
        :class:`~repro.codegen.ir.Function` per (message, role), with the
        struct declarations from the header diagrams.

        ``codes_by_section`` maps a section title to the
        :class:`~repro.codegen.ir.SentenceCode` records its sentences
        produced; ``sender_built`` is the registry's role metadata for the
        protocol.  Colliding builder names raise
        :class:`~repro.codegen.ir.FunctionNameCollision` (two messages must
        never silently merge into one function).
        """
        program = Program(protocol=corpus.protocol)
        struct_parts = []
        for section in corpus.document.message_sections:
            if section.diagram is not None:
                struct_parts.append(section.diagram.layout.to_c_struct())
            type_values = section.type_values()
            code_field = section.field_named("code")
            code_value = code_field.fixed_value if code_field else None
            code_is_enumerated = bool(
                code_field and len(code_field.values) > 1
            )
            for message_name in section.message_names:
                function = assemble_message_program(
                    protocol=corpus.protocol,
                    message_name=message_name,
                    sentence_codes=codes_by_section.get(section.title, []),
                    type_value=type_values.get(message_name),
                    code_value=code_value,
                    sender_built=sender_built,
                )
                if code_is_enumerated:
                    # "0 = net unreachable; 1 = ..." — the scenario picks
                    # which enumerated code applies at run time.
                    function.ops.insert(
                        1, SetField(corpus.protocol.lower(), "code",
                                    Value.param("code"))
                    )
                program.add(function)
        program.struct_c = "\n\n".join(dict.fromkeys(struct_parts))
        return program
