"""The SAGE pipeline facade: parse → disambiguate → generate code (Figure 1).

Per sentence:

1. NP-chunk and CCG-parse; on zero logical forms, re-parse with the
   header-field subject supplied from document structure (§4.1);
2. winnow logical forms through the §4.2 checks;
3. route the survivor to code generation; non-actionable sentences become
   ``@AdvComment`` annotations, ambiguous references are flagged.

Two modes mirror Figure 4's human-in-the-loop:

* ``strict`` — the RFC text as-is: ambiguous/unparsed sentences are flagged
  and produce no code (and the naive reading of under-specified sentences
  flows through, ready to fail unit tests);
* ``revised`` — sentences with entries in ``rewrites.json`` are replaced by
  their human rewrite before parsing, yielding clean code.

The heavy lifting lives in :mod:`repro.core.stages` (the three stage
objects) and :mod:`repro.core.engine` (the :class:`SageEngine` composing
them, with parse caching and parallel multi-protocol execution).
:class:`Sage` here is a thin compatible facade over one engine: historical
call sites keep working unchanged, and ``Sage.process_corpus`` output is
identical to the engine's.
"""

from __future__ import annotations

from ..ccg.chart import ParseResult
from ..ccg.lexicon import Lexicon
from ..codegen.context import ContextResolver, SentenceContext
from ..disambiguation.checks import CheckSuite
from ..nlp.chunker import NounPhraseChunker
from ..nlp.tokenizer import Token
from ..rfc.corpus import Corpus, SpecSentence
from ..rfc.registry import ProtocolRegistry
from .engine import (
    STATUS_AMBIGUOUS_LF,
    STATUS_AMBIGUOUS_REF,
    STATUS_NON_ACTIONABLE,
    STATUS_OK,
    STATUS_REWRITTEN,
    STATUS_UNPARSED,
    SageEngine,
    SageRun,
    SentenceResult,
    SentenceStatus,
    modal_sentences,
)
from .stages import ParseStage, role_of

__all__ = [
    "STATUS_AMBIGUOUS_LF",
    "STATUS_AMBIGUOUS_REF",
    "STATUS_NON_ACTIONABLE",
    "STATUS_OK",
    "STATUS_REWRITTEN",
    "STATUS_UNPARSED",
    "Sage",
    "SageRun",
    "SentenceResult",
    "SentenceStatus",
    "modal_sentences",
]


class Sage:
    """The end-to-end pipeline object (one per run) — facade over an engine.

    Construction arguments, attributes, and per-sentence/per-corpus methods
    are unchanged from the pre-engine pipeline; the instance simply owns a
    :class:`~repro.core.engine.SageEngine` and delegates.  Code that wants
    the batch/parallel surface should use the engine directly (``sage.engine``
    or ``SageEngine(...)``).
    """

    def __init__(
        self,
        mode: str = "revised",
        lexicon: Lexicon | None = None,
        chunker: NounPhraseChunker | None = None,
        suite: CheckSuite | None = None,
        resolver: ContextResolver | None = None,
        protocol_registry: ProtocolRegistry | None = None,
    ) -> None:
        self.engine = SageEngine(
            mode=mode,
            lexicon=lexicon,
            chunker=chunker,
            suite=suite,
            resolver=resolver,
            protocol_registry=protocol_registry,
        )

    # -- substrate views (historical attribute surface) -------------------------
    # These were plain instance attributes before the engine refactor, and
    # assigning to them was a supported pattern (tests swap rewrite tables,
    # experiments swap check suites) — so every property also has a setter
    # that delegates to the owning stage.
    @property
    def mode(self) -> str:
        return self.engine.mode

    @mode.setter
    def mode(self, mode: str) -> None:
        if mode not in ("strict", "revised"):
            raise ValueError(f"unknown mode {mode!r}")
        self.engine.mode = mode

    @property
    def protocol_registry(self) -> ProtocolRegistry:
        return self.engine.protocol_registry

    @protocol_registry.setter
    def protocol_registry(self, registry: ProtocolRegistry) -> None:
        # Historical semantics: assignment swaps the registry used for
        # corpus-name resolution; substrate already built is untouched.
        self.engine.protocol_registry = registry

    @property
    def lexicon(self) -> Lexicon:
        return self.engine.lexicon

    @lexicon.setter
    def lexicon(self, lexicon: Lexicon) -> None:
        # Rebuild the parser over the new grammar, preserving whichever
        # registered backend the engine's stage was running (ad-hoc parser
        # objects rebuild as the default backend, the historical
        # behavior).  Marks the engine custom-lexicon so per-protocol
        # backend resolution can never fall back to the registry grammar.
        self.engine.set_lexicon(lexicon)

    @property
    def chunker(self) -> NounPhraseChunker:
        return self.engine.chunker

    @chunker.setter
    def chunker(self, chunker: NounPhraseChunker) -> None:
        self.engine.parse_stage.chunker = chunker

    @property
    def parser(self):
        return self.engine.parser

    @parser.setter
    def parser(self, parser) -> None:
        self.engine.parse_stage.parser = parser

    @property
    def suite(self) -> CheckSuite:
        return self.engine.suite

    @suite.setter
    def suite(self, suite: CheckSuite) -> None:
        self.engine.winnow_stage.suite = suite

    @property
    def registry(self):
        """The handler registry (historical name)."""
        return self.engine.generate_stage.handlers

    @registry.setter
    def registry(self, handlers) -> None:
        self.engine.generate_stage.handlers = handlers

    @property
    def rewrites(self):
        return self.engine.rewrites

    @rewrites.setter
    def rewrites(self, rewrites) -> None:
        self.engine.rewrites = rewrites

    # -- pipeline surface -------------------------------------------------------
    def parse_sentence(self, spec: SpecSentence) -> tuple[ParseResult, bool]:
        """Parse, retrying with the field subject supplied on zero LFs."""
        return self.engine.parse_sentence(spec)

    def process_sentence(self, spec: SpecSentence) -> SentenceResult:
        return self.engine.process_sentence(spec)

    def process_corpus(self, corpus: Corpus | str) -> SageRun:
        """Run the pipeline over ``corpus`` — a :class:`Corpus` object or a
        registered protocol name (resolved through the protocol registry)."""
        return self.engine.process_corpus(corpus)

    # -- historical helpers, now stage methods ----------------------------------
    @staticmethod
    def _supply_variants(spec: SpecSentence, tokens: list[Token]):
        return ParseStage.supply_variants(spec, tokens)

    @staticmethod
    def _role_of(text: str) -> str:
        return role_of(text)

    def _context_for(self, spec: SpecSentence) -> SentenceContext:
        return self.engine.generate_stage.context_for(spec)
