"""The SAGE pipeline: parse → disambiguate → generate code (Figure 1).

Per sentence:

1. NP-chunk and CCG-parse; on zero logical forms, re-parse with the
   header-field subject supplied from document structure (§4.1);
2. winnow logical forms through the §4.2 checks;
3. route the survivor to code generation; non-actionable sentences become
   ``@AdvComment`` annotations, ambiguous references are flagged.

Two modes mirror Figure 4's human-in-the-loop:

* ``strict`` — the RFC text as-is: ambiguous/unparsed sentences are flagged
  and produce no code (and the naive reading of under-specified sentences
  flows through, ready to fail unit tests);
* ``revised`` — sentences with entries in ``rewrites.json`` are replaced by
  their human rewrite before parsing, yielding clean code.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

from ..ccg.chart import CCGChartParser, ParseResult
from ..ccg.lexicon import Lexicon
from ..ccg.semantics import Call, Const, Sem, iter_calls
from ..codegen.context import (
    AmbiguousReference,
    ContextResolver,
    SentenceContext,
    UnknownReference,
)
from ..codegen.generator import (
    CodeUnit,
    SentenceCode,
    assemble_message_program,
)
from ..codegen.handlers import HandlerRegistry, NonActionable
from ..codegen.ops import SetField, Value
from ..disambiguation.checks import CheckSuite
from ..disambiguation.winnow import WinnowTrace, winnow
from ..nlp.chunker import NounPhraseChunker
from ..nlp.tokenizer import KIND_NOUN_PHRASE, Token, split_sentences
from ..rfc.corpus import Corpus, Rewrite, SpecSentence, sentence_key
from ..rfc.registry import ProtocolRegistry, default_registry

# Sentence statuses.
STATUS_OK = "ok"
STATUS_NON_ACTIONABLE = "non-actionable"
STATUS_AMBIGUOUS_LF = "ambiguous-lf"
STATUS_AMBIGUOUS_REF = "ambiguous-ref"
STATUS_UNPARSED = "unparsed"
STATUS_REWRITTEN = "rewritten"

_ROLE_MARKERS = {
    "sender": "sender",
    "receiver": "receiver",
    "echoer": "receiver",
    "replier": "receiver",
    "replying": "receiver",
}


@dataclass
class SentenceResult:
    """Everything the pipeline derived from one specification sentence."""

    spec: SpecSentence
    status: str
    trace: WinnowTrace | None = None
    logical_form: Sem | None = None
    codes: list[SentenceCode] = dataclass_field(default_factory=list)
    rewrite: Rewrite | None = None
    sub_results: list["SentenceResult"] = dataclass_field(default_factory=list)
    subject_supplied: bool = False
    reason: str = ""

    @property
    def base_lf_count(self) -> int:
        return self.trace.base_count if self.trace else 0

    @property
    def final_lf_count(self) -> int:
        return self.trace.final_count if self.trace else 0


class Sage:
    """The end-to-end pipeline object (one per run)."""

    def __init__(
        self,
        mode: str = "revised",
        lexicon: Lexicon | None = None,
        chunker: NounPhraseChunker | None = None,
        suite: CheckSuite | None = None,
        resolver: ContextResolver | None = None,
        protocol_registry: ProtocolRegistry | None = None,
    ) -> None:
        if mode not in ("strict", "revised"):
            raise ValueError(f"unknown mode {mode!r}")
        self.mode = mode
        self.protocol_registry = protocol_registry or default_registry()
        # Default construction shares the registry's memoized substrate, so
        # a second Sage() re-pays none of the dictionary/lexicon/parser cost;
        # explicit arguments still get private instances.
        self.lexicon = lexicon or self.protocol_registry.lexicon()
        self.chunker = chunker or self.protocol_registry.chunker()
        if lexicon is None:
            self.parser = self.protocol_registry.parser()
        else:
            self.parser = CCGChartParser(self.lexicon)
        self.suite = suite or CheckSuite.default()
        self.registry = HandlerRegistry(resolver or ContextResolver())
        self.rewrites = self.protocol_registry.rewrites()

    # -- parsing ---------------------------------------------------------------
    def parse_sentence(self, spec: SpecSentence) -> tuple[ParseResult, bool]:
        """Parse, retrying with the field subject supplied on zero LFs."""
        tokens = self.chunker.chunk_text(spec.text)
        result = self.parser.parse(tokens)
        if result.logical_forms or not spec.field:
            return result, False
        for variant in self._supply_variants(spec, tokens):
            retry = self.parser.parse(variant)
            if retry.logical_forms:
                return retry, True
        return result, False

    @staticmethod
    def _supply_variants(spec: SpecSentence, tokens: list[Token]):
        """Subject-supply re-parses (§4.1): the field name as subject."""
        field_np = Token(spec.field.replace("_", " "), KIND_NOUN_PHRASE, 0)
        yield [field_np, Token("is", "word", 0)] + tokens
        for index, token in enumerate(tokens):
            if token.text == ",":
                yield tokens[: index + 1] + [field_np] + tokens[index + 1:]
                break

    # -- per-sentence pipeline ---------------------------------------------------
    def process_sentence(self, spec: SpecSentence) -> SentenceResult:
        rewrite = self.rewrites.get(sentence_key(spec.text))
        if rewrite is not None and rewrite.category == "non-actionable":
            return SentenceResult(
                spec=spec, status=STATUS_NON_ACTIONABLE, rewrite=rewrite,
                reason="annotated non-actionable",
                codes=[SentenceCode(sentence=spec.text, status="non-actionable")],
            )

        parse_result, supplied = self.parse_sentence(spec)
        trace = winnow(spec.text, parse_result.logical_forms, self.suite)
        result = SentenceResult(
            spec=spec, status=STATUS_OK, trace=trace, subject_supplied=supplied
        )

        if trace.final_count == 0:
            return self._flagged(result, STATUS_UNPARSED, rewrite)
        if trace.final_count > 1:
            if self._all_non_actionable(trace.survivors, spec):
                if rewrite is not None and rewrite.revised:
                    return self._flagged(result, STATUS_NON_ACTIONABLE, rewrite)
                result.status = STATUS_NON_ACTIONABLE
                result.reason = "descriptive prose (no actionable reading)"
                result.codes = [SentenceCode(sentence=spec.text, status="non-actionable")]
                return result
            return self._flagged(result, STATUS_AMBIGUOUS_LF, rewrite)

        form = trace.survivors[0]
        result.logical_form = form
        if (
            self.mode == "revised"
            and rewrite is not None
            and rewrite.category == "imprecise"
        ):
            # Figure 4's unit-test loop: the sentence parses cleanly but its
            # naive reading fails interoperability tests (§6.5); in revised
            # mode the post-test rewrite replaces it.
            return self._flagged(result, STATUS_AMBIGUOUS_LF, rewrite)
        context = self._context_for(spec)
        try:
            handled = self.registry.generate(form, context)
        except AmbiguousReference as exc:
            result.reason = str(exc)
            return self._flagged(result, STATUS_AMBIGUOUS_REF, rewrite)
        except (NonActionable, UnknownReference) as exc:
            if rewrite is not None and rewrite.revised:
                # The fragment-annotation case (Table 5's "rephrasing"): code
                # generation fails on the original, the rewrite succeeds.
                return self._flagged(result, STATUS_NON_ACTIONABLE, rewrite)
            result.status = STATUS_NON_ACTIONABLE
            result.reason = getattr(exc, "reason", str(exc))
            result.codes = [SentenceCode(sentence=spec.text, status="non-actionable")]
            return result
        result.codes = [
            SentenceCode(
                sentence=spec.text,
                ops=handled.ops,
                goal_message=handled.goal_message,
                role=self._role_of(spec.text),
            )
        ]
        return result

    def _flagged(self, result: SentenceResult, status: str,
                 rewrite: Rewrite | None) -> SentenceResult:
        """A sentence needing human attention; apply its rewrite if allowed."""
        result.status = status
        result.rewrite = rewrite
        if self.mode == "revised" and rewrite is not None and rewrite.revised:
            result.status = STATUS_REWRITTEN
            for revised_sentence in split_sentences(rewrite.revised):
                sub_spec = SpecSentence(
                    text=revised_sentence,
                    protocol=result.spec.protocol,
                    message=result.spec.message,
                    field=result.spec.field,
                    kind=result.spec.kind,
                    field_group=result.spec.field_group,
                )
                sub_result = self.process_sentence(sub_spec)
                result.sub_results.append(sub_result)
                result.codes.extend(sub_result.codes)
        return result

    def _all_non_actionable(self, forms: list[Sem], spec: SpecSentence) -> bool:
        """True when every surviving LF fails code generation outright.

        Such sentences are descriptive prose; their residual LF multiplicity
        is not an ambiguity a human needs to resolve (§5.2's iterative
        discovery tags them @AdvComment).
        """
        context = self._context_for(spec)
        for form in forms:
            try:
                self.registry.generate(form, context)
                return False
            except (NonActionable, UnknownReference):
                continue
            except AmbiguousReference:
                return False
        return True

    def _context_for(self, spec: SpecSentence) -> SentenceContext:
        return SentenceContext(
            protocol=spec.field_group or spec.protocol,
            message=spec.message,
            field=spec.field,
            role=self._role_of(spec.text),
        )

    @staticmethod
    def _role_of(text: str) -> str:
        lowered = text.lower()
        for marker, role in _ROLE_MARKERS.items():
            if marker in lowered:
                return role
        return ""

    # -- corpus pipeline -----------------------------------------------------------
    def process_corpus(self, corpus: Corpus | str) -> "SageRun":
        """Run the pipeline over ``corpus`` — a :class:`Corpus` object or a
        registered protocol name (resolved through the protocol registry)."""
        if isinstance(corpus, str):
            corpus = self.protocol_registry.load_corpus(corpus)
        results = [self.process_sentence(spec) for spec in corpus.sentences]
        unit = self._assemble(corpus, results)
        return SageRun(corpus=corpus, results=results, code_unit=unit)

    def _assemble(self, corpus: Corpus, results: list[SentenceResult]) -> CodeUnit:
        by_section: dict[str, list[SentenceCode]] = {}
        for result in results:
            by_section.setdefault(result.spec.message, []).extend(result.codes)
        unit = CodeUnit(protocol=corpus.protocol)
        struct_parts = []
        for section in corpus.document.message_sections:
            if section.diagram is not None:
                struct_parts.append(section.diagram.layout.to_c_struct())
            type_values = section.type_values()
            code_field = section.field_named("code")
            code_value = code_field.fixed_value if code_field else None
            code_is_enumerated = bool(
                code_field and len(code_field.values) > 1
            )
            for message_name in section.message_names:
                program = assemble_message_program(
                    protocol=corpus.protocol,
                    message_name=message_name,
                    sentence_codes=by_section.get(section.title, []),
                    type_value=type_values.get(message_name),
                    code_value=code_value,
                )
                if code_is_enumerated:
                    # "0 = net unreachable; 1 = ..." — the scenario picks
                    # which enumerated code applies at run time.
                    program.ops.insert(
                        1, SetField(corpus.protocol.lower(), "code",
                                    Value.param("code"))
                    )
                unit.programs.append(program)
        unit.struct_c = "\n\n".join(dict.fromkeys(struct_parts))
        return unit


@dataclass
class SageRun:
    """One full pipeline run over a corpus."""

    corpus: Corpus
    results: list[SentenceResult]
    code_unit: CodeUnit

    def by_status(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for result in self.results:
            counts[result.status] = counts.get(result.status, 0) + 1
        return counts

    def flagged(self) -> list[SentenceResult]:
        """Sentences a human must look at (Figure 4's feedback arrows)."""
        return [
            result
            for result in self.results
            if result.status in (STATUS_AMBIGUOUS_LF, STATUS_AMBIGUOUS_REF,
                                 STATUS_UNPARSED)
        ]

    def rewritten(self) -> list[SentenceResult]:
        return [r for r in self.results if r.status == STATUS_REWRITTEN]

    def traces(self) -> list[WinnowTrace]:
        return [r.trace for r in self.results if r.trace is not None]


def modal_sentences(run: SageRun) -> list[SentenceResult]:
    """Sentences whose code came from a @May reading — the candidates the
    §6.5 unit tests flag as under-specified."""
    flagged = []
    for result in run.results:
        form = result.logical_form
        if form is None:
            continue
        if any(call.pred == "May" for call in iter_calls(form)):
            flagged.append(result)
    return flagged
