"""The SAGE pipeline: the paper's primary contribution, end to end."""

from .pipeline import (
    STATUS_AMBIGUOUS_LF,
    STATUS_AMBIGUOUS_REF,
    STATUS_NON_ACTIONABLE,
    STATUS_OK,
    STATUS_REWRITTEN,
    STATUS_UNPARSED,
    Sage,
    SageRun,
    SentenceResult,
    modal_sentences,
)

__all__ = [
    "STATUS_AMBIGUOUS_LF",
    "STATUS_AMBIGUOUS_REF",
    "STATUS_NON_ACTIONABLE",
    "STATUS_OK",
    "STATUS_REWRITTEN",
    "STATUS_UNPARSED",
    "Sage",
    "SageRun",
    "SentenceResult",
    "modal_sentences",
]
