"""The SAGE pipeline: the paper's primary contribution, end to end."""

from .engine import (
    STATUS_AMBIGUOUS_LF,
    STATUS_AMBIGUOUS_REF,
    STATUS_NON_ACTIONABLE,
    STATUS_OK,
    STATUS_REWRITTEN,
    STATUS_UNPARSED,
    SageEngine,
    SageRun,
    SentenceResult,
    SentenceStatus,
    modal_sentences,
)
from .pipeline import Sage
from .stages import (
    GenerateStage,
    ParsedSentence,
    ParseStage,
    WinnowStage,
    role_of,
)

__all__ = [
    "STATUS_AMBIGUOUS_LF",
    "STATUS_AMBIGUOUS_REF",
    "STATUS_NON_ACTIONABLE",
    "STATUS_OK",
    "STATUS_REWRITTEN",
    "STATUS_UNPARSED",
    "GenerateStage",
    "ParsedSentence",
    "ParseStage",
    "Sage",
    "SageEngine",
    "SageRun",
    "SentenceResult",
    "SentenceStatus",
    "WinnowStage",
    "modal_sentences",
    "role_of",
]
