"""The staged execution engine composing parse → winnow → generate.

:class:`SageEngine` owns one instance of each stage from ``stages.py`` and
orchestrates the control flow the paper's Figure 4 describes — rewrite
lookup, stage sequencing, status flagging, and the human-rewrite recursion.
On top of the per-sentence pipeline it adds two batch surfaces:

* :meth:`SageEngine.process_corpus` — one corpus, sequential (identical in
  output to the historical ``Sage.process_corpus``);
* :meth:`SageEngine.process_corpora` — every registered protocol in one
  call, optionally fanned out across a ``concurrent.futures`` process pool
  (fork start method).  Workers inherit the warm registry substrate, and
  the parses they compute are merged back into the shared
  :class:`~repro.rfc.registry.ParseCache`, so a follow-up run skips
  re-parsing entirely.

The historical :class:`~repro.core.pipeline.Sage` class remains as a thin
facade over this engine.
"""

from __future__ import annotations

import enum
import os
import threading
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field as dataclass_field

from ..ccg.chart import CCGChartParser, ParseResult
from ..ccg.lexicon import Lexicon
from ..parsing import backend_id, create_parser
from ..ccg.semantics import Sem, iter_calls, signature
from ..codegen.context import AmbiguousReference, ContextResolver, UnknownReference
from ..codegen.generator import CodeUnit, SentenceCode
from ..codegen.handlers import NonActionable
from ..disambiguation.checks import CheckSuite
from ..disambiguation.winnow import WinnowTrace
from ..nlp.chunker import NounPhraseChunker
from ..nlp.tokenizer import split_sentences
from ..rfc.corpus import Corpus, Rewrite, SpecSentence, sentence_key
from ..rfc.registry import ParseCache, ProtocolRegistry, default_registry
from .stages import GenerateStage, ParseStage, WinnowStage, role_of


class SentenceStatus(str, enum.Enum):
    """What the pipeline concluded about one sentence.

    Members are plain strings (``SentenceStatus.OK == "ok"``, hashes like
    ``"ok"``, serializes as ``"ok"``), so every historical call site that
    compared against the old string constants — and every JSON consumer —
    keeps working; the enum adds the closed set and the ``flagged`` property
    the service layer dispatches on.
    """

    OK = "ok"
    NON_ACTIONABLE = "non-actionable"
    AMBIGUOUS_LF = "ambiguous-lf"
    AMBIGUOUS_REF = "ambiguous-ref"
    UNPARSED = "unparsed"
    REWRITTEN = "rewritten"

    # String transparency: render and hash as the value so enum members and
    # raw strings interoperate as dict keys and in f-strings.
    __str__ = str.__str__
    __format__ = str.__format__

    def __hash__(self) -> int:
        return str.__hash__(self)

    @property
    def flagged(self) -> bool:
        """True when a human must look at the sentence (Figure 4)."""
        return self in FLAGGED_STATUSES

    @classmethod
    def coerce(cls, value: "SentenceStatus | str") -> "SentenceStatus | str":
        """The member for ``value`` when it names one, else the raw string
        (ad-hoc experiment statuses pass through untouched)."""
        # Dict probe instead of EnumMeta.__call__: coerce sits on the
        # deserialisation hot path (once per sentence) and the metaclass
        # call is ~10x the cost of the lookup.  Members hash as their
        # value, so passing an existing member through is a hit too.
        member = cls._value2member_map_.get(value)
        return member if member is not None else value


# Historical constant names, kept as aliases of the enum members.
STATUS_OK = SentenceStatus.OK
STATUS_NON_ACTIONABLE = SentenceStatus.NON_ACTIONABLE
STATUS_AMBIGUOUS_LF = SentenceStatus.AMBIGUOUS_LF
STATUS_AMBIGUOUS_REF = SentenceStatus.AMBIGUOUS_REF
STATUS_UNPARSED = SentenceStatus.UNPARSED
STATUS_REWRITTEN = SentenceStatus.REWRITTEN

#: Statuses a human must look at (Figure 4's feedback arrows).
FLAGGED_STATUSES = (STATUS_AMBIGUOUS_LF, STATUS_AMBIGUOUS_REF, STATUS_UNPARSED)


@dataclass
class SentenceResult:
    """Everything the pipeline derived from one specification sentence."""

    spec: SpecSentence
    status: SentenceStatus | str
    trace: WinnowTrace | None = None
    logical_form: Sem | None = None
    codes: list[SentenceCode] = dataclass_field(default_factory=list)
    rewrite: Rewrite | None = None
    sub_results: list["SentenceResult"] = dataclass_field(default_factory=list)
    subject_supplied: bool = False
    reason: str = ""
    #: True when the parser's cell budget truncated this sentence's chart:
    #: the winnow provenance may be incomplete (honest-pruning flag).
    pruned: bool = False

    @property
    def base_lf_count(self) -> int:
        return self.trace.base_count if self.trace else 0

    @property
    def final_lf_count(self) -> int:
        return self.trace.final_count if self.trace else 0


@dataclass
class SageRun:
    """One full pipeline run over a corpus."""

    corpus: Corpus
    results: list[SentenceResult]
    code_unit: CodeUnit

    def by_status(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for result in self.results:
            counts[result.status] = counts.get(result.status, 0) + 1
        return counts

    def flagged(self) -> list[SentenceResult]:
        """Sentences a human must look at (Figure 4's feedback arrows)."""
        return [
            result
            for result in self.results
            if result.status in FLAGGED_STATUSES
        ]

    def rewritten(self) -> list[SentenceResult]:
        return [r for r in self.results if r.status == STATUS_REWRITTEN]

    def traces(self) -> list[WinnowTrace]:
        return [r.trace for r in self.results if r.trace is not None]


def modal_sentences(run: SageRun) -> list[SentenceResult]:
    """Sentences whose code came from a @May reading — the candidates the
    §6.5 unit tests flag as under-specified."""
    flagged = []
    for result in run.results:
        form = result.logical_form
        if form is None:
            continue
        if any(call.pred == "May" for call in iter_calls(form)):
            flagged.append(result)
    return flagged


class SageEngine:
    """Composable staged pipeline: one engine, three stages, shared cache."""

    def __init__(
        self,
        mode: str = "revised",
        lexicon: Lexicon | None = None,
        chunker: NounPhraseChunker | None = None,
        suite: CheckSuite | None = None,
        resolver: ContextResolver | None = None,
        protocol_registry: ProtocolRegistry | None = None,
        parse_cache: ParseCache | None | bool = True,
        winnow_cache: ParseCache | None | bool = True,
        parser_backend: str | None = None,
    ) -> None:
        if mode not in ("strict", "revised"):
            raise ValueError(f"unknown mode {mode!r}")
        self.mode = mode
        self.protocol_registry = protocol_registry or default_registry()
        #: Engine-wide backend override; None defers to each protocol's
        #: registered preference (``register_protocol(parser_backend=...)``)
        #: and ultimately the process default.
        self.parser_backend = parser_backend
        # Default construction shares the registry's memoized substrate, so
        # a second engine re-pays none of the dictionary/lexicon/parser cost;
        # explicit arguments still get private instances.
        chunker = chunker or self.protocol_registry.chunker()
        if lexicon is None:
            lexicon = self.protocol_registry.lexicon()
            parser = self.protocol_registry.parser(backend=parser_backend)
            self._custom_lexicon = False
        else:
            parser = create_parser(parser_backend, lexicon)
            self._custom_lexicon = True
        if parse_cache is True:
            parse_cache = self.protocol_registry.parse_cache()
        elif parse_cache is False:
            parse_cache = None
        self.parse_stage = ParseStage(parser, chunker, cache=parse_cache)
        #: Backend name → ParseStage, for per-protocol backend resolution;
        #: stages share this engine's chunker and cache.
        self._parse_stages: dict[str, ParseStage] = {
            backend_id(parser): self.parse_stage
        }
        # The winnow cache follows the parse-cache switch: a default engine
        # shares the registry's (possibly disk-backed) winnow cache, and an
        # engine built hermetic (parse_cache=False) stays fully uncached.
        if winnow_cache is True:
            winnow_cache = (self.protocol_registry.winnow_cache()
                            if parse_cache is not None else None)
        elif winnow_cache is False:
            winnow_cache = None
        self.winnow_stage = WinnowStage(
            suite, cache=winnow_cache,
            substrate_fingerprint=self.parse_stage.substrate_fingerprint,
        )
        self.generate_stage = GenerateStage(resolver=resolver)
        self.rewrites = self.protocol_registry.rewrites()
        #: Journaled LF selections (sentence key → chosen LF signature),
        #: applied in revised mode when winnowing leaves several survivors.
        self.selections = self.protocol_registry.selections()
        #: Pool size of the most recent parallel fan-out (None before one
        #: runs, or when the sweep degraded to sequential execution).
        self.last_parallel_workers: int | None = None

    def set_lexicon(self, lexicon: Lexicon) -> None:
        """Swap the engine onto a new grammar.

        Rebuilds the default stage's parser over ``lexicon`` (preserving
        its registered backend, when it has one) and marks the engine
        custom-lexicon: per-protocol backend resolution stops consulting
        the registry's lexicon and every stage built from now on uses the
        supplied grammar.  Previously resolved per-backend stages are
        dropped (they carry the old grammar).
        """
        from ..parsing import parser_backend_names

        backend = backend_id(self.parse_stage.parser)
        if backend not in parser_backend_names():
            backend = None
        self.parse_stage.parser = create_parser(backend, lexicon)
        self._custom_lexicon = True
        self._parse_stages = {backend_id(self.parse_stage.parser):
                              self.parse_stage}

    def refresh_decisions(self) -> None:
        """Re-pull the human-decision tables from the registry.

        An engine snapshots ``rewrites``/``selections`` at construction;
        after new resolutions land in the registry's journal (a
        :class:`~repro.api.session.DisambiguationSession` resolving
        sentences), this picks them up without rebuilding the substrate.
        """
        self.rewrites = self.protocol_registry.rewrites()
        self.selections = self.protocol_registry.selections()

    # -- convenience views over the stages -------------------------------------
    @property
    def lexicon(self) -> Lexicon:
        return self.parse_stage.parser.lexicon

    @property
    def chunker(self) -> NounPhraseChunker:
        return self.parse_stage.chunker

    @property
    def parser(self) -> CCGChartParser:
        return self.parse_stage.parser

    @property
    def suite(self) -> CheckSuite:
        return self.winnow_stage.suite

    @property
    def parse_cache(self) -> ParseCache | None:
        return self.parse_stage.cache

    @property
    def winnow_cache(self) -> ParseCache | None:
        return self.winnow_stage.cache

    def stages(self) -> tuple[ParseStage, WinnowStage, GenerateStage]:
        return (self.parse_stage, self.winnow_stage, self.generate_stage)

    # -- per-sentence pipeline --------------------------------------------------
    def _stage_for(self, spec: SpecSentence) -> ParseStage:
        """The parse stage serving ``spec``'s protocol.

        An engine-wide ``parser_backend`` pins every sentence to one
        stage.  Otherwise the sentence's protocol resolves its registered
        backend preference; stages are built lazily per backend name and
        share this engine's chunker and parse cache (whose keys carry the
        backend id, so entries never cross).  Engines built over a custom
        lexicon always use their single private stage.
        """
        if self.parser_backend is not None or self._custom_lexicon:
            return self.parse_stage
        protocol = spec.protocol
        if not protocol:
            return self.parse_stage
        return self._stage_for_backend(
            self.protocol_registry.parser_backend_for(protocol)
        )

    def _stage_for_backend(self, backend: str) -> ParseStage:
        """The (lazily built, memoized) stage running ``backend`` for this
        engine — over the engine's own lexicon when one was supplied, the
        registry's memoized substrate otherwise.  Stages share the
        engine's chunker and parse cache; cache keys carry the backend id
        so entries never cross."""
        stage = self._parse_stages.get(backend)
        if stage is None:
            if self._custom_lexicon:
                parser = create_parser(backend, self.lexicon)
            else:
                parser = self.protocol_registry.parser(backend=backend)
            stage = ParseStage(parser, self.parse_stage.chunker,
                               cache=self.parse_stage.cache)
            self._parse_stages[backend] = stage
        return stage

    def parse_sentence(self, spec: SpecSentence) -> tuple[ParseResult, bool]:
        """Parse, retrying with the field subject supplied on zero LFs."""
        parsed = self._stage_for(spec).run(spec)
        return parsed.result, parsed.subject_supplied

    def parse_batch(self, corpus: Corpus | str, *,
                    parser_backend: str | None = None) -> list:
        """Parse a whole corpus through one backend instance (no winnow,
        no codegen) — the batch diagnostics surface behind ``python -m
        repro parse``.

        ``corpus`` is a :class:`Corpus` or a registered protocol name;
        ``parser_backend`` overrides the stage resolution (engine setting,
        then the protocol's registered preference).  Returns the
        :class:`~repro.core.stages.ParsedSentence` list in corpus order,
        cache-served like any pipeline parse.
        """
        if isinstance(corpus, str):
            corpus = self.protocol_registry.load_corpus(corpus)
        if parser_backend is None:
            stage = (self._stage_for(corpus.sentences[0])
                     if corpus.sentences else self.parse_stage)
        else:
            stage = self._stage_for_backend(parser_backend)
        return stage.run_batch(corpus.sentences)

    @staticmethod
    def _decision_for(table: dict, spec: SpecSentence):
        """Look up a journaled/bundled decision for ``spec``.

        Journal entries are protocol-scoped (``(PROTOCOL, key)`` tuple
        keys) so a decision made in one protocol's session never leaks
        onto an identical sentence in another corpus; the bundled table
        and protocol-less resolutions use bare sentence keys and apply
        everywhere.  A scoped entry wins over an unscoped one.
        """
        key = sentence_key(spec.text)
        if spec.protocol:
            scoped = table.get((spec.protocol.upper(), key))
            if scoped is not None:
                return scoped
        return table.get(key)

    def process_sentence(self, spec: SpecSentence) -> SentenceResult:
        rewrite = self._decision_for(self.rewrites, spec)
        if rewrite is not None and rewrite.category == "non-actionable":
            return SentenceResult(
                spec=spec, status=STATUS_NON_ACTIONABLE, rewrite=rewrite,
                reason="annotated non-actionable",
                codes=[SentenceCode(sentence=spec.text, status="non-actionable")],
            )

        parsed = self._stage_for(spec).run(spec)
        trace = self.winnow_stage.run(parsed)
        result = SentenceResult(
            spec=spec, status=STATUS_OK, trace=trace,
            subject_supplied=parsed.subject_supplied,
            pruned=parsed.pruned,
        )
        context = self.generate_stage.context_for(spec)

        if trace.final_count == 0:
            return self._flagged(result, STATUS_UNPARSED, rewrite)
        if trace.final_count > 1:
            form = self._journaled_selection(spec, trace.survivors)
            if form is None:
                if self.generate_stage.all_non_actionable(trace.survivors, context):
                    if rewrite is not None and rewrite.revised:
                        return self._flagged(result, STATUS_NON_ACTIONABLE, rewrite)
                    result.status = STATUS_NON_ACTIONABLE
                    result.reason = "descriptive prose (no actionable reading)"
                    result.codes = [SentenceCode(sentence=spec.text, status="non-actionable")]
                    return result
                return self._flagged(result, STATUS_AMBIGUOUS_LF, rewrite)
            result.reason = "journaled LF selection"
        else:
            form = trace.survivors[0]
        result.logical_form = form
        if (
            self.mode == "revised"
            and rewrite is not None
            and rewrite.category == "imprecise"
        ):
            # Figure 4's unit-test loop: the sentence parses cleanly but its
            # naive reading fails interoperability tests (§6.5); in revised
            # mode the post-test rewrite replaces it.
            return self._flagged(result, STATUS_AMBIGUOUS_LF, rewrite)
        try:
            handled = self.generate_stage.generate(form, context)
        except AmbiguousReference as exc:
            result.reason = str(exc)
            return self._flagged(result, STATUS_AMBIGUOUS_REF, rewrite)
        except (NonActionable, UnknownReference) as exc:
            if rewrite is not None and rewrite.revised:
                # The fragment-annotation case (Table 5's "rephrasing"): code
                # generation fails on the original, the rewrite succeeds.
                return self._flagged(result, STATUS_NON_ACTIONABLE, rewrite)
            result.status = STATUS_NON_ACTIONABLE
            result.reason = getattr(exc, "reason", str(exc))
            result.codes = [SentenceCode(sentence=spec.text, status="non-actionable")]
            return result
        result.codes = [
            SentenceCode(
                sentence=spec.text,
                ops=handled.ops,
                goal_message=handled.goal_message,
                role=context.role,
            )
        ]
        return result

    def _journaled_selection(self, spec: SpecSentence,
                             survivors: list[Sem]) -> Sem | None:
        """The survivor a journaled force-select resolution names, if any.

        Selections are human decisions, so — like rewrites — they only apply
        in revised mode; a selection whose signature matches none of the
        current survivors is ignored (the grammar moved under it), leaving
        the sentence flagged for a fresh decision.
        """
        if self.mode != "revised" or not self.selections:
            return None
        chosen = self._decision_for(self.selections, spec)
        if chosen is None:
            return None
        for form in survivors:
            if signature(form) == chosen:
                return form
        return None

    def _flagged(self, result: SentenceResult, status: SentenceStatus,
                 rewrite: Rewrite | None) -> SentenceResult:
        """A sentence needing human attention; apply its rewrite if allowed."""
        result.status = status
        result.rewrite = rewrite
        if self.mode == "revised" and rewrite is not None and rewrite.revised:
            result.status = STATUS_REWRITTEN
            for revised_sentence in split_sentences(rewrite.revised):
                sub_spec = SpecSentence(
                    text=revised_sentence,
                    protocol=result.spec.protocol,
                    message=result.spec.message,
                    field=result.spec.field,
                    kind=result.spec.kind,
                    field_group=result.spec.field_group,
                )
                sub_result = self.process_sentence(sub_spec)
                result.sub_results.append(sub_result)
                result.codes.extend(sub_result.codes)
        return result

    # -- corpus pipeline --------------------------------------------------------
    def process_corpus(self, corpus: Corpus | str) -> SageRun:
        """Run the pipeline over ``corpus`` — a :class:`Corpus` object or a
        registered protocol name (resolved through the protocol registry)."""
        if isinstance(corpus, str):
            corpus = self.protocol_registry.load_corpus(corpus)
        results = [self.process_sentence(spec) for spec in corpus.sentences]
        unit = self._assemble(corpus, results)
        return SageRun(corpus=corpus, results=results, code_unit=unit)

    def process_corpora(
        self,
        protocols: list[str] | None = None,
        *,
        parallel: bool = True,
        max_workers: int | None = None,
        chunk_size: int = 16,
    ) -> dict[str, SageRun]:
        """Run every protocol (default: all registered) in one call.

        With ``parallel=True`` the sentences of all corpora are fanned out
        across a fork-based process pool; each worker shares this process's
        warm substrate (forked memory) and ships its new parse-cache entries
        back, so the shared :class:`ParseCache` ends the call fully warm.
        Falls back to sequential execution where fork is unavailable (the
        output is identical either way: calling :meth:`process_corpus` per
        protocol in registration order).
        """
        names = [name.upper() for name in (
            protocols if protocols is not None
            else self.protocol_registry.protocols()
        )]
        corpora = {name: self.protocol_registry.load_corpus(name)
                   for name in names}
        if parallel:
            self.last_parallel_workers = None
            chunk_results = self._fan_out(corpora, max_workers, chunk_size)
        else:
            chunk_results = None
        runs: dict[str, SageRun] = {}
        for name in names:
            corpus = corpora[name]
            if chunk_results is None:
                # The documented contract: identical to per-protocol runs.
                runs[name] = self.process_corpus(corpus)
                continue
            results = chunk_results[name]
            runs[name] = SageRun(
                corpus=corpus, results=results,
                code_unit=self._assemble(corpus, results),
            )
        return runs

    def _fan_out(self, corpora: dict[str, Corpus], max_workers: int | None,
                 chunk_size: int) -> dict[str, list[SentenceResult]] | None:
        """Process every corpus's sentences on a fork process pool.

        Returns None when fan-out is unavailable (no fork support), letting
        the caller run sequentially instead.
        """
        try:
            import multiprocessing as mp

            mp_context = mp.get_context("fork")
        except ValueError:
            return None
        tasks = [
            (name, start, min(start + chunk_size, len(corpus.sentences)))
            for name, corpus in corpora.items()
            for start in range(0, len(corpus.sentences), chunk_size)
        ]
        if not tasks:
            return {name: [] for name in corpora}
        workers = max_workers or min(len(tasks), os.cpu_count() or 1)
        if workers <= 1:
            # One worker cannot beat in-process execution — it re-pays fork,
            # task pickling, and cache shipping for zero concurrency (~2x
            # slower on single-CPU machines).  Degrade to the sequential
            # path; the documented contract (identical output) is unchanged.
            return None
        self.last_parallel_workers = workers

        global _WORKER_ENGINE
        # The pool forks workers lazily as tasks are submitted, so the
        # module global must stay set (and unclobbered by a concurrent
        # sweep on another thread) for the pool's whole lifetime.
        with _WORKER_ENGINE_LOCK:
            _WORKER_ENGINE = self  # inherited by forked workers
            try:
                with ProcessPoolExecutor(
                    max_workers=workers, mp_context=mp_context,
                    initializer=_init_worker,
                ) as pool:
                    outputs = list(pool.map(_process_chunk, tasks))
            finally:
                _WORKER_ENGINE = None

        by_name: dict[str, list[SentenceResult]] = {
            name: [None] * len(corpus.sentences)
            for name, corpus in corpora.items()
        }
        cache = self.parse_stage.cache
        winnow_cache = self.winnow_stage.cache
        for (name, start, _end), output in zip(tasks, outputs):
            results, cache_entries, winnow_entries = output
            by_name[name][start:start + len(results)] = results
            if cache is not None and cache_entries:
                cache.merge(cache_entries)
            if winnow_cache is not None and winnow_entries:
                winnow_cache.merge(winnow_entries)
        return by_name

    def _assemble(self, corpus: Corpus, results: list[SentenceResult]) -> CodeUnit:
        """IR assembly (the generate stage emits a typed Program), with the
        sender-built role metadata resolved from the protocol registry."""
        by_section: dict[str, list[SentenceCode]] = {}
        for result in results:
            by_section.setdefault(result.spec.message, []).extend(result.codes)
        try:
            sender_built = self.protocol_registry.sender_built(corpus.protocol)
        except KeyError:
            # Ad-hoc corpora processed without a registration fall back to
            # the generator's bundled-ICMP default.
            sender_built = None
        return self.generate_stage.assemble(corpus, by_section,
                                            sender_built=sender_built)


# -- process-pool plumbing -----------------------------------------------------
#
# The engine cannot be pickled (it holds locks and an open-ended substrate),
# so the fork start method is used instead: the parent stores itself in a
# module global immediately before creating the pool, and each forked worker
# inherits that global — warm caches, parser, lexicon and all — by memory
# copy.  Workers track which parse-cache keys existed at fork time and ship
# only the entries they add, which the parent merges back.

_WORKER_ENGINE: "SageEngine | None" = None
_WORKER_ENGINE_LOCK = threading.Lock()
_WORKER_SEEN_KEYS: set | None = None
_WORKER_SEEN_WINNOW_KEYS: set | None = None


def _init_worker() -> None:
    global _WORKER_SEEN_KEYS, _WORKER_SEEN_WINNOW_KEYS
    # Fork can land while another thread of the parent holds the cache or
    # registry lock; the child would inherit it permanently held.  Workers
    # are single-threaded, so fresh locks are safe and unblock them.
    if _WORKER_ENGINE is not None:
        _WORKER_ENGINE.protocol_registry.reset_locks_after_fork()
    cache = _WORKER_ENGINE.parse_stage.cache if _WORKER_ENGINE else None
    if cache is not None:
        # The stage's cache is usually the registry's (already reset), but
        # an explicitly passed cache needs its own fresh lock.
        cache._lock = threading.Lock()
    _WORKER_SEEN_KEYS = set(cache.items()) if cache is not None else set()
    winnow_cache = _WORKER_ENGINE.winnow_stage.cache if _WORKER_ENGINE else None
    if winnow_cache is not None:
        winnow_cache._lock = threading.Lock()
    _WORKER_SEEN_WINNOW_KEYS = (set(winnow_cache.items())
                                if winnow_cache is not None else set())


def _process_chunk(task: tuple[str, int, int]):
    """Worker body: process one slice of one corpus's sentences."""
    name, start, end = task
    engine = _WORKER_ENGINE
    corpus = engine.protocol_registry.load_corpus(name)
    results = [engine.process_sentence(spec)
               for spec in corpus.sentences[start:end]]
    cache = engine.parse_stage.cache
    new_entries = {}
    if cache is not None:
        new_entries = {key: value for key, value in cache.items().items()
                       if key not in _WORKER_SEEN_KEYS}
        _WORKER_SEEN_KEYS.update(new_entries)
    winnow_cache = engine.winnow_stage.cache
    new_winnow_entries = {}
    if winnow_cache is not None:
        new_winnow_entries = {
            key: value for key, value in winnow_cache.items().items()
            if key not in _WORKER_SEEN_WINNOW_KEYS
        }
        _WORKER_SEEN_WINNOW_KEYS.update(new_winnow_entries)
    return results, new_entries, new_winnow_entries
