"""Persistent content-addressed caching (ROADMAP item 4).

The package has two layers:

* :mod:`repro.cache.store` — :class:`CacheStore`, the disk format: a
  versioned directory of content-addressed entries with atomic
  rename-based writes (safe for concurrent writers) and
  corruption-quarantining reads;
* :mod:`repro.cache.persistent` — :class:`PersistentParseCache` /
  :class:`PersistentWinnowCache` / :class:`PersistentCompiledCache`, the
  registry cache classes promoted to write through one shared store, so
  every fresh process (CLI call, CI job, sweep worker, HTTP worker)
  starts warm.

A registry opts in via ``ProtocolRegistry(cache_dir=...)`` or the
``REPRO_CACHE_DIR`` environment variable; see DESIGN.md §9 for the layout
and invalidation rules.
"""

from .persistent import (
    COMPILED_NAMESPACE,
    PARSE_NAMESPACE,
    WINNOW_NAMESPACE,
    PersistentCompiledCache,
    PersistentParseCache,
    PersistentWinnowCache,
)
from .store import LAYOUT_VERSION, CacheStore

__all__ = [
    "CacheStore",
    "LAYOUT_VERSION",
    "PARSE_NAMESPACE",
    "WINNOW_NAMESPACE",
    "COMPILED_NAMESPACE",
    "PersistentParseCache",
    "PersistentWinnowCache",
    "PersistentCompiledCache",
]
